//! The pre-copy migration engine with UISR proxies.

use std::sync::{Arc, Mutex, MutexGuard};

use hypertp_core::{HtpError, Hypervisor, HypervisorKind, VmId};
use hypertp_machine::{Extent, Gfn, Machine, PAGE_SIZE};
use hypertp_sim::fault::{FaultPlan, InjectionPoint, RecoveryAction};
use hypertp_sim::hash::{digest_pages_with_pool, Digest128};
use hypertp_sim::{CostModel, Ewma, SimDuration, SimTime, WorkerPool};

use crate::control::{
    predict_migration, ControlConfig, FleetOrder, FleetPolicy, FleetVm, LinkContention,
    MigrationPrediction, PrecopyController, PredictInput, VmSloOutcome, UISR_BYTES_ALLOWANCE,
};
use crate::framing::FrameRing;
use crate::network::{Link, WireFrame, WireStats};
use crate::wire::TransferCache;

/// Extra one-way delay modelled for an injected link latency spike
/// (transient congestion); the engine absorbs it into the round time.
const LATENCY_SPIKE: SimDuration = SimDuration::from_millis(150);

/// Exponential backoff for retry `attempt` (1-based): `base << (attempt-1)`,
/// capped at 16 doublings so the shift cannot overflow.
pub(crate) fn backoff_delay(base: SimDuration, attempt: u32) -> SimDuration {
    let doublings = attempt.saturating_sub(1).min(16);
    SimDuration::from_nanos(base.as_nanos().saturating_mul(1u64 << doublings))
}

/// How guest pages are represented on the migration wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WireMode {
    /// Legacy path: every page ships as a full raw payload. This is the
    /// paper-faithful accounting used by the fig. 11–13 reproductions and
    /// the pinned timing tests, so it stays the default.
    #[default]
    Raw,
    /// Content-aware path (PR 3): zero-page elision, digest-keyed dedup
    /// across rounds and VMs, and XOR+RLE deltas for re-dirtied pages,
    /// with per-kind accounting in [`MigrationReport::wire`].
    ContentAware,
}

impl WireMode {
    /// Stable short name used in logs and JSON.
    pub fn name(self) -> &'static str {
        match self {
            WireMode::Raw => "raw",
            WireMode::ContentAware => "content_aware",
        }
    }
}

/// Pre-copy tuning parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MigrationConfig {
    /// The link between source and destination.
    pub link: Link,
    /// Maximum pre-copy rounds before forcing stop-and-copy.
    pub max_rounds: u32,
    /// Go to stop-and-copy once a round's dirty set is at most this many
    /// pages.
    pub stop_threshold_pages: u64,
    /// Guest write rate while migrating, in pages/second (drives pre-copy
    /// convergence; idle VMs in §5.2 have a near-zero rate).
    pub dirty_rate_pages_per_sec: f64,
    /// Verify that destination guest memory equals the source at pause
    /// time (tests; costs a full extra pass).
    pub verify_contents: bool,
    /// Maximum consecutive link-failure retries per round before the
    /// migration is abandoned with [`HtpError::LinkFailure`].
    pub max_link_retries: u32,
    /// Base backoff after a link failure; doubles on each consecutive
    /// retry of the same round (exponential backoff).
    pub retry_backoff: SimDuration,
    /// Wire representation of guest pages (raw or content-aware).
    pub wire_mode: WireMode,
    /// Below this many pages, gathers run serially: the thread spawn +
    /// hand-off cost of the pool exceeds the work (BENCH_parallel.json
    /// showed `migrate_many` *losing* 2 ms to pool overhead on small
    /// dirty sets before this threshold existed).
    pub parallel_threshold_pages: usize,
    /// Bounded hand-off window of the content-aware round pipeline:
    /// gather/hash chunks may run at most this many chunks ahead of the
    /// encode/transmit stage.
    pub pipeline_window: usize,
    /// Target ceiling for VM downtime. When set, the adaptive controller
    /// replaces [`MigrationConfig::stop_threshold_pages`] with the budget
    /// converted to pages at the *observed* effective throughput and
    /// per-page wire cost (see [`crate::control::PrecopyController`]).
    /// `None` (the default) keeps the static threshold and the pinned
    /// §5.2 timings byte-identical.
    pub downtime_budget: Option<SimDuration>,
    /// Adaptive-controller tuning ([`ControlConfig`]); defaults leave the
    /// controller disabled.
    pub control: ControlConfig,
    /// Use PR 3's gather-`Vec` content-aware path (one `Vec<WireFrame>`
    /// per round, one boxed delta per re-dirtied page) instead of the
    /// zero-copy frame ring. Reports and chaos replays are byte-identical
    /// either way — the legacy path survives purely as the benchmark
    /// baseline the ring's speedup is measured against.
    pub legacy_gather: bool,
}

impl Default for MigrationConfig {
    fn default() -> Self {
        MigrationConfig {
            link: Link::gigabit(),
            max_rounds: 30,
            stop_threshold_pages: 64,
            dirty_rate_pages_per_sec: 10.0,
            verify_contents: false,
            max_link_retries: 4,
            retry_backoff: SimDuration::from_millis(50),
            wire_mode: WireMode::Raw,
            parallel_threshold_pages: 8192,
            pipeline_window: 8,
            downtime_budget: None,
            control: ControlConfig::default(),
            legacy_gather: false,
        }
    }
}

/// Reusable per-round buffers of the zero-copy wire path, shared by every
/// clone of an engine (like the [`TransferCache`]): `migrate_many` and
/// `migrate_fleet` run their data phases sequentially on the simulated
/// timeline, so one set of buffers serves the whole fleet and the
/// allocator drops out of the hot path after the first round warms them.
#[derive(Debug, Default)]
pub struct EngineScratch {
    round: Mutex<RoundScratch>,
    stats: Mutex<ScratchStats>,
}

impl EngineScratch {
    pub(crate) fn round(&self) -> MutexGuard<'_, RoundScratch> {
        self.round.lock().expect("engine scratch poisoned")
    }

    fn stats(&self) -> MutexGuard<'_, ScratchStats> {
        self.stats.lock().expect("engine scratch stats poisoned")
    }
}

/// The buffers themselves: the serialized frame ring plus the gather /
/// digest / destination-probe vectors. All are cleared-and-refilled per
/// round, never shrunk.
#[derive(Debug, Default)]
pub(crate) struct RoundScratch {
    /// Serialized frames of the in-flight round.
    pub(crate) ring: FrameRing,
    /// Source content words, in GFN-list order.
    pub(crate) words: Vec<u64>,
    /// Content digests, parallel to `words`.
    pub(crate) digests: Vec<Digest128>,
    /// Destination's current words (write-elision probe).
    pub(crate) current: Vec<u64>,
}

/// Observability counters for the engine's reusable wire-path buffers —
/// the allocation-regression probe: after the first migration warms the
/// buffers, `grows` must stay flat across further same-shape migrations.
///
/// Deliberately *not* part of [`WireStats`]: reports are compared for
/// equality across worker counts and transports, and capacity growth is
/// an implementation detail, not wire accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScratchStats {
    /// Batches encoded through the ring path.
    pub rounds: u64,
    /// Capacity-growth events across the ring and every scratch vector.
    pub grows: u64,
    /// Current ring backing capacity, bytes.
    pub ring_capacity: u64,
    /// Largest serialized round the ring ever held, bytes.
    pub ring_high_water: u64,
}

/// Statistics of one pre-copy round, including the adaptive controller's
/// per-round telemetry (estimates are recorded even when the controller
/// is inactive, so `perf_smoke`/`wire_smoke` can plot trajectories for
/// default-config runs too).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundStats {
    /// Round number (0 = full copy).
    pub round: u32,
    /// Pages transferred.
    pub pages: u64,
    /// Simulated duration of the round.
    pub duration: SimDuration,
    /// Bytes this round put on the wire (raw payloads or frames).
    pub wire_bytes: u64,
    /// Pages the guest dirtied while the round ran (after throttling).
    pub dirtied: u64,
    /// EWMA dirty-rate estimate after this round, pages/second.
    pub dirty_rate_est: f64,
    /// EWMA drain-rate estimate after this round, pages/second.
    pub drain_rate_est: f64,
    /// EWMA effective-throughput estimate after this round, bytes/second.
    pub throughput_est: f64,
    /// EWMA wire/raw compression-ratio estimate after this round.
    pub compression_est: f64,
    /// Stop threshold (pages) in force for the stop check after this
    /// round — the static threshold, or the downtime budget converted.
    pub stop_threshold: u64,
    /// Guest dirty-rate multiplier applied during this round (1.0 =
    /// unthrottled).
    pub throttle: f64,
}

/// Result of one VM migration.
#[derive(Debug, Clone)]
pub struct MigrationReport {
    /// Migrated VM's name.
    pub vm_name: String,
    /// Instant the migration started.
    pub start: SimTime,
    /// Per-round statistics.
    pub rounds: Vec<RoundStats>,
    /// VM downtime (pause on source → resume on destination, including
    /// any destination queueing).
    pub downtime: SimDuration,
    /// Total migration time.
    pub total: SimDuration,
    /// Guest page bytes sent. Under [`WireMode::Raw`] this is the raw
    /// page payload; under [`WireMode::ContentAware`] it is the bytes
    /// actually put on the wire (frames + payloads).
    pub bytes_sent: u64,
    /// Encoded UISR bytes sent through the proxies.
    pub uisr_bytes: u64,
    /// Per-frame-kind wire accounting. All zero under [`WireMode::Raw`].
    pub wire: WireStats,
    /// Pages in the final stop-and-copy set.
    pub stop_pages: u64,
    /// True when the non-convergence detector forced the stop-and-copy
    /// before the dirty set shrank under the threshold.
    pub forced_stop: bool,
    /// Guest throttle in force at pause time (1.0 = never throttled).
    pub final_throttle: f64,
    /// Compatibility warnings from the destination proxy.
    pub warnings: Vec<String>,
}

impl MigrationReport {
    /// Bytes the content-aware wire path kept off the link (0 when the
    /// migration ran raw).
    pub fn wire_bytes_saved(&self) -> u64 {
        self.wire.saved_bytes()
    }
}

/// Outcome of the data phase, before scheduling adjustments.
struct DataPhase {
    report: MigrationReport,
    precopy: SimDuration,
    stop_copy: SimDuration,
    dst_id: VmId,
}

/// The MigrationTP engine.
#[derive(Debug, Clone, Default)]
pub struct MigrationTp {
    /// Cost model for CPU-side costs and activation.
    pub cost: CostModel,
    /// Pre-copy configuration.
    pub config: MigrationConfig,
    /// Worker pool for the wall-clock hot paths (page gather, content
    /// verification). Defaults to [`WorkerPool::from_env`]; reports are
    /// identical for any worker count.
    pub pool: WorkerPool,
    /// Fault plan consulted at the engine's injection points (link drop,
    /// latency spike, truncated page, UISR corruption). Defaults to a
    /// disarmed plan that never fires.
    pub faults: FaultPlan,
    /// Destination-synchronised dedup/delta cache used by
    /// [`WireMode::ContentAware`]. Clones of the engine share it, so
    /// [`migrate_many`] dedups template content *across* VMs.
    pub cache: TransferCache,
    /// Reusable wire-path buffers (frame ring, gather/digest/probe
    /// vectors). Shared across engine clones, reused across rounds and
    /// VMs — see [`EngineScratch`].
    pub scratch: Arc<EngineScratch>,
}

impl MigrationTp {
    /// Creates an engine with defaults.
    pub fn new() -> Self {
        MigrationTp::default()
    }

    /// Replaces the configuration.
    pub fn with_config(mut self, config: MigrationConfig) -> Self {
        self.config = config;
        self
    }

    /// Replaces the worker pool.
    pub fn with_pool(mut self, pool: WorkerPool) -> Self {
        self.pool = pool;
        self
    }

    /// Installs a fault plan (chaos testing). All engine clones made from
    /// this one share the plan's fault log.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Selects the wire representation (sugar over editing the config).
    pub fn with_wire_mode(mut self, mode: WireMode) -> Self {
        self.config.wire_mode = mode;
        self
    }

    /// Snapshot of the reusable-buffer counters (allocation probe).
    pub fn scratch_stats(&self) -> ScratchStats {
        let mut s = *self.scratch.stats();
        let round = self.scratch.round();
        s.grows += round.ring.grows();
        s.ring_capacity = round.ring.capacity() as u64;
        s.ring_high_water = round.ring.high_water() as u64;
        s
    }

    /// Migrates one VM from `src_hv` on `src_machine` to `dst_hv` on
    /// `dst_machine`, advancing the source clock through the whole
    /// migration. The source VM is destroyed on success, as in a normal
    /// live migration.
    #[allow(clippy::too_many_arguments)]
    pub fn migrate(
        &self,
        src_machine: &mut Machine,
        src_hv: &mut dyn Hypervisor,
        src_id: VmId,
        dst_machine: &mut Machine,
        dst_hv: &mut dyn Hypervisor,
    ) -> Result<MigrationReport, HtpError> {
        let phase = self.migrate_data(
            src_machine,
            src_hv,
            src_id,
            dst_machine,
            dst_hv,
            1,
            SimDuration::ZERO,
            None,
        )?;
        // Critical path: pre-copy then stop-and-copy.
        src_machine.clock().advance(phase.precopy + phase.stop_copy);
        dst_machine.clock().advance_to(src_machine.clock().now());
        dst_hv.resume_vm(phase.dst_id)?;
        src_hv.destroy_vm(src_machine, src_id)?;
        Ok(phase.report)
    }

    /// The data phase: performs every page and state transfer and computes
    /// durations, without advancing machine clocks (the caller schedules).
    ///
    /// `sharers` models concurrent migrations dividing the link;
    /// `receiver_queue_wait` is added to the downtime before destination
    /// activation (Xen's sequential receive side, §5.2.2);
    /// `dirty_rate_override` replaces the config's global dirty rate for
    /// this VM (heterogeneous fleets, [`FleetVm::dirty_rate`]).
    #[allow(clippy::too_many_arguments)]
    fn migrate_data(
        &self,
        src_machine: &mut Machine,
        src_hv: &mut dyn Hypervisor,
        src_id: VmId,
        dst_machine: &mut Machine,
        dst_hv: &mut dyn Hypervisor,
        sharers: u32,
        receiver_queue_wait: SimDuration,
        dirty_rate_override: Option<f64>,
    ) -> Result<DataPhase, HtpError> {
        let cfg = src_hv.vm_config(src_id)?.clone();
        let start = src_machine.clock().now();
        let dst_id = dst_hv.prepare_incoming(dst_machine, &cfg)?;
        src_hv.enable_dirty_log(src_id)?;

        let mut rounds = Vec::new();
        let mut bytes_sent = 0u64;
        let mut precopy = SimDuration::ZERO;
        let mut wire = WireStats::new();
        let cache_before = self.cache.stats();
        let dirty_rate = dirty_rate_override.unwrap_or(self.config.dirty_rate_pages_per_sec);
        // Fixed stop-and-copy costs the budget→pages conversion subtracts:
        // destination activation plus a conservative UISR transfer.
        let stop_fixed = self.cost.activate(dst_hv.kind().boot_target(), cfg.vcpus)
            + self.config.link.transfer(UISR_BYTES_ALLOWANCE, sharers);
        let mut controller = PrecopyController::new(&self.config, sharers, stop_fixed);

        // Round 0: full copy of every mapped page.
        let map = src_hv.guest_memory_map(src_id)?;
        let all_gfns: Vec<Gfn> = map
            .iter()
            .flat_map(|(gfn, e)| (gfn.0..gfn.0 + e.pages()).map(Gfn))
            .collect();
        let mut round = 0u32;
        let mut to_send: Vec<Gfn> = all_gfns;
        let stop_set;
        loop {
            let pages = to_send.len() as u64;
            let outcome = match self.config.wire_mode {
                WireMode::Raw => self.send_round_raw(
                    src_machine,
                    src_hv,
                    src_id,
                    dst_machine,
                    dst_hv,
                    dst_id,
                    &to_send,
                    round,
                    sharers,
                    &cfg.name,
                )?,
                WireMode::ContentAware => self.send_round_content_aware(
                    src_machine,
                    src_hv,
                    src_id,
                    dst_machine,
                    dst_hv,
                    dst_id,
                    &to_send,
                    round,
                    sharers,
                    &cfg.name,
                    &mut wire,
                )?,
            };
            let duration = outcome.duration;
            bytes_sent += outcome.bytes_sent;
            precopy += duration;
            // The guest keeps running and dirtying pages during the round
            // (scaled by the controller's auto-converge throttle, 1.0 when
            // the controller is inactive). A guest cannot dirty more
            // distinct pages than it has.
            let dirtied = ((dirty_rate * controller.throttle() * duration.as_secs_f64()) as u64)
                .min(cfg.pages());
            if dirtied > 0 {
                src_hv.guest_tick(src_machine, src_id, dirtied)?;
            }
            controller.observe_round(
                pages,
                outcome.bytes_sent,
                outcome.transfer,
                duration,
                dirtied,
            );
            if outcome.drops > 0 && controller.active() {
                // The drop invalidated what the estimators were measuring
                // (the retries and backoff are not steady-state signal):
                // restart the estimate from the next clean round.
                controller.reset_estimators();
                self.faults.record_recovery(
                    InjectionPoint::LinkDrop,
                    RecoveryAction::ResetController,
                    &format!(
                        "{} round {round}: estimators reset after {} drop(s)",
                        cfg.name, outcome.drops
                    ),
                );
            }
            let stop_threshold = controller.stop_threshold();
            rounds.push(RoundStats {
                round,
                pages,
                duration,
                wire_bytes: outcome.bytes_sent,
                dirtied,
                dirty_rate_est: controller.dirty_rate_est(),
                drain_rate_est: controller.drain_rate_est(),
                throughput_est: controller.throughput_est(),
                compression_est: controller.compression_est(),
                stop_threshold,
                throttle: controller.throttle(),
            });
            round += 1;
            let dirty = src_hv.collect_dirty(src_id)?;
            if dirty.len() as u64 <= stop_threshold
                || round >= self.config.max_rounds
                || controller.force_stop()
            {
                stop_set = dirty;
                break;
            }
            to_send = dirty;
        }

        // Stop-and-copy: quiesce devices (§4.2.3 — the guest is still
        // running, so this extends pre-copy, not downtime), then pause and
        // send the residual dirty set, translate the VMi State through the
        // UISR proxies, and activate on the destination.
        precopy += src_hv.notify_prepare_transplant(src_machine, src_id)?;
        src_hv.pause_vm(src_id)?;
        let final_bytes = match self.config.wire_mode {
            WireMode::Raw => {
                self.copy_pages(
                    src_machine,
                    src_hv,
                    src_id,
                    dst_machine,
                    dst_hv,
                    dst_id,
                    &stop_set,
                )?;
                stop_set.len() as u64 * PAGE_SIZE
            }
            WireMode::ContentAware => {
                self.cache.begin_round();
                let encoded = if self.config.legacy_gather {
                    self.gather_encode(src_machine, src_hv, src_id, &stop_set)
                        .and_then(|(frames, wb)| {
                            self.apply_frames(
                                dst_machine,
                                dst_hv,
                                dst_id,
                                &stop_set,
                                &frames,
                                &cfg.name,
                                &mut wire,
                            )?;
                            Ok(wb)
                        })
                } else {
                    self.gather_encode_ring(src_machine, src_hv, src_id, &stop_set)
                        .and_then(|wb| {
                            self.apply_ring(
                                dst_machine,
                                dst_hv,
                                dst_id,
                                &stop_set,
                                &cfg.name,
                                &mut wire,
                            )?;
                            Ok(wb)
                        })
                };
                match encoded {
                    Ok(wb) => {
                        self.cache.commit_round();
                        if !self.config.legacy_gather {
                            self.scratch.round().ring.commit();
                        }
                        wb
                    }
                    Err(e) => {
                        self.cache.rollback_round();
                        return Err(e);
                    }
                }
            }
        };
        bytes_sent += final_bytes;

        let uisr = src_hv.save_uisr(src_machine, src_id)?; // Source proxy.
        let blob = hypertp_uisr::encode(&uisr);
        // UISR corruption: the blob is damaged in flight, the destination
        // proxy's decode rejects it, and the source re-sends. The codec's
        // totality (no panic on arbitrary bytes) is what makes this a
        // recoverable fault rather than a crash.
        let mut uisr_sends = 1u64;
        if self
            .faults
            .should_inject(InjectionPoint::UisrCorruption, &cfg.name)
        {
            let mut damaged = blob.clone();
            damaged[0] ^= 0xff; // magic byte flipped in flight
            let rejected = hypertp_uisr::decode(&damaged).is_err();
            debug_assert!(rejected, "corrupted magic must not decode");
            if rejected {
                uisr_sends = 2;
                self.faults.record_recovery(
                    InjectionPoint::UisrCorruption,
                    RecoveryAction::ResentUisr,
                    &format!(
                        "{}: decode rejected corrupted blob; re-sent {} bytes",
                        cfg.name,
                        blob.len()
                    ),
                );
            }
        }
        let uisr_vm = hypertp_uisr::decode(&blob)?; // Destination proxy.
        let restored = dst_hv.restore_uisr(dst_machine, dst_id, &uisr_vm)?;

        let stop_copy = self.config.link.transfer(final_bytes, sharers)
            + self
                .config
                .link
                .transfer(blob.len() as u64 * uisr_sends, sharers)
            + receiver_queue_wait
            + self.cost.activate(dst_hv.kind().boot_target(), cfg.vcpus);

        if self.config.verify_contents {
            // Verification only reads both sides, so extent groups compare
            // on their own pool workers; batched reads keep the per-page
            // translation cost off the comparison loop.
            let src_ref: &dyn Hypervisor = src_hv;
            let dst_ref: &dyn Hypervisor = dst_hv;
            let src_m: &Machine = src_machine;
            let dst_m: &Machine = dst_machine;
            let per_task = map.len().div_ceil((self.pool.workers() * 4).max(1)).max(1);
            let groups: Vec<&[(Gfn, Extent)]> = map.chunks(per_task).collect();
            let verdicts = self
                .pool
                .map_indices(groups.len(), |i| -> Result<bool, HtpError> {
                    let mut gfns = Vec::new();
                    for &(gfn, e) in groups[i] {
                        for off in 0..e.pages() {
                            gfns.push(Gfn(gfn.0 + off));
                        }
                    }
                    Ok(src_ref.read_guest_many(src_m, src_id, &gfns)?
                        == dst_ref.read_guest_many(dst_m, dst_id, &gfns)?)
                })
                .results;
            for ok in verdicts {
                if !ok? {
                    return Err(HtpError::IntegrityViolation {
                        vm_name: cfg.name.clone(),
                    });
                }
            }
        }

        if self.config.wire_mode == WireMode::ContentAware {
            // Snapshot the shared cache into the report: occupancy and
            // capacity as of now, counters as deltas over this migration
            // (the cache is shared across engine clones, so absolute
            // counters would double-count in merged fleet stats).
            let cs = self.cache.stats();
            wire.record_cache(
                cs.occupancy,
                cs.capacity,
                cs.evictions - cache_before.evictions,
                cs.dup_hits - cache_before.dup_hits,
                cs.dup_lookups - cache_before.dup_lookups,
            );
        }

        let report = MigrationReport {
            vm_name: cfg.name.clone(),
            start,
            rounds,
            downtime: stop_copy,
            total: precopy + stop_copy,
            bytes_sent,
            uisr_bytes: blob.len() as u64,
            wire,
            stop_pages: stop_set.len() as u64,
            forced_stop: controller.force_stop(),
            final_throttle: controller.throttle(),
            warnings: restored.warnings,
        };
        Ok(DataPhase {
            report,
            precopy,
            stop_copy,
            dst_id,
        })
    }

    /// Sends one pre-copy round in [`WireMode::Raw`]: the legacy path
    /// with paper-faithful byte accounting (every page ships as a full
    /// payload). Fault handling: link drops retry the round with backoff,
    /// latency spikes stretch it, a truncated page is detected by the
    /// destination echo and re-sent.
    #[allow(clippy::too_many_arguments)]
    fn send_round_raw(
        &self,
        src_machine: &Machine,
        src_hv: &dyn Hypervisor,
        src_id: VmId,
        dst_machine: &mut Machine,
        dst_hv: &mut dyn Hypervisor,
        dst_id: VmId,
        to_send: &[Gfn],
        round: u32,
        sharers: u32,
        vm_name: &str,
    ) -> Result<RoundOutcome, HtpError> {
        let perf = src_machine.spec().perf();
        let pages = to_send.len() as u64;
        let bytes = pages * PAGE_SIZE;
        let mut bytes_sent = 0u64;
        let transfer = self.config.link.transfer(bytes, sharers);
        let mut duration = transfer
            + perf.cpu(self.cost.migrate_ghz_s_per_page * pages as f64)
            + SimDuration::from_secs_f64(self.cost.migrate_round_overhead_s);

        // Link drop: the round's transfer aborts partway. Recovery:
        // retry the same round with exponential backoff — the pages
        // acknowledged in earlier rounds stay acknowledged, so the
        // migration resumes from the last acked round instead of
        // restarting from scratch. A retry budget bounds the damage.
        let mut drops = 0u32;
        while self.faults.should_inject(
            InjectionPoint::LinkDrop,
            &format!("{vm_name} round {round}"),
        ) {
            drops += 1;
            if drops > self.config.max_link_retries {
                self.faults.record_recovery(
                    InjectionPoint::LinkDrop,
                    RecoveryAction::GaveUp,
                    &format!(
                        "{vm_name} round {round}: {} retries exhausted",
                        self.config.max_link_retries
                    ),
                );
                // The source VM keeps running untouched; only the
                // half-built destination shell is torn down.
                dst_hv.destroy_vm(dst_machine, dst_id)?;
                return Err(HtpError::LinkFailure {
                    vm_name: vm_name.to_string(),
                    retries: self.config.max_link_retries,
                });
            }
            let wait = backoff_delay(self.config.retry_backoff, drops);
            // Half a round was on the wire before the drop, plus the
            // backoff before reconnecting.
            duration += self.config.link.transfer(bytes / 2, sharers) + wait;
            self.faults.record_recovery(
                InjectionPoint::LinkDrop,
                RecoveryAction::RetriedWithBackoff,
                &format!(
                    "{vm_name} round {round} attempt {drops} backoff {:.0}ms",
                    wait.as_millis_f64()
                ),
            );
        }
        if drops > 0 {
            self.faults.record_recovery(
                InjectionPoint::LinkDrop,
                RecoveryAction::ResumedFromRound,
                &format!("{vm_name} resumed at round {round} after {drops} drop(s)"),
            );
        }

        // Latency spike: transient congestion stretches the round; the
        // engine absorbs the extra time rather than failing over.
        if self.faults.should_inject(
            InjectionPoint::LinkLatencySpike,
            &format!("{vm_name} round {round}"),
        ) {
            duration += LATENCY_SPIKE;
            self.faults.record_recovery(
                InjectionPoint::LinkLatencySpike,
                RecoveryAction::AbsorbedLatency,
                &format!(
                    "{vm_name} round {round}: +{:.0}ms",
                    LATENCY_SPIKE.as_millis_f64()
                ),
            );
        }

        self.copy_pages(
            src_machine,
            src_hv,
            src_id,
            dst_machine,
            dst_hv,
            dst_id,
            to_send,
        )?;

        // Truncated page: one page of this round lands corrupted on
        // the destination. The per-round content check detects the
        // mismatch and the page is re-sent.
        if let Some(&bad_gfn) = to_send.last() {
            if self.faults.should_inject(
                InjectionPoint::TruncatedPage,
                &format!("{vm_name} round {round} gfn {}", bad_gfn.0),
            ) {
                let good = src_hv.read_guest(src_machine, src_id, bad_gfn)?;
                dst_hv.write_guest(dst_machine, dst_id, bad_gfn, !good)?;
                // Detection: destination echoes the page back; the
                // mismatch triggers a single-page re-send.
                let echoed = dst_hv.read_guest(dst_machine, dst_id, bad_gfn)?;
                debug_assert_ne!(echoed, good, "truncation must be observable");
                if echoed != good {
                    self.copy_pages(
                        src_machine,
                        src_hv,
                        src_id,
                        dst_machine,
                        dst_hv,
                        dst_id,
                        &[bad_gfn],
                    )?;
                    duration += self.config.link.transfer(2 * PAGE_SIZE, sharers);
                    bytes_sent += PAGE_SIZE;
                    self.faults.record_recovery(
                        InjectionPoint::TruncatedPage,
                        RecoveryAction::ResentPages,
                        &format!("{vm_name} round {round}: re-sent gfn {}", bad_gfn.0),
                    );
                }
            }
        }

        bytes_sent += bytes;
        Ok(RoundOutcome {
            duration,
            bytes_sent,
            transfer,
            drops,
        })
    }

    /// Sends one pre-copy round in [`WireMode::ContentAware`]: pages are
    /// gathered and hashed on the pool, encoded against the
    /// destination-synchronised cache (zero markers, dedup references,
    /// XOR+RLE deltas) in a bounded pipeline, and applied to the
    /// destination in GFN order.
    ///
    /// Fault semantics differ from the raw path in one crucial way: a
    /// dropped round invalidates the dedup/delta state it would have
    /// acked — the cache journal is rolled back and the retry re-encodes
    /// from the last state the destination confirmed, so a `Dup` frame
    /// never references content the destination lost with the round.
    #[allow(clippy::too_many_arguments)]
    fn send_round_content_aware(
        &self,
        src_machine: &Machine,
        src_hv: &dyn Hypervisor,
        src_id: VmId,
        dst_machine: &mut Machine,
        dst_hv: &mut dyn Hypervisor,
        dst_id: VmId,
        to_send: &[Gfn],
        round: u32,
        sharers: u32,
        vm_name: &str,
        wire: &mut WireStats,
    ) -> Result<RoundOutcome, HtpError> {
        let perf = src_machine.spec().perf();
        let pages = to_send.len() as u64;
        let mut duration = SimDuration::ZERO;
        let mut drops = 0u32;
        let use_ring = !self.config.legacy_gather;
        let (frames, round_wire_bytes) = loop {
            self.cache.begin_round();
            // Ring path: frames are serialized into the shared scratch
            // ring (no per-round Vec); `frames` stays `None` and the
            // apply below walks the ring's borrowed views instead.
            let encoded: (Option<Vec<WireFrame>>, u64) = if use_ring {
                match self.gather_encode_ring(src_machine, src_hv, src_id, to_send) {
                    Ok(wb) => (None, wb),
                    Err(e) => {
                        self.cache.rollback_round();
                        return Err(e);
                    }
                }
            } else {
                match self.gather_encode(src_machine, src_hv, src_id, to_send) {
                    Ok((f, wb)) => (Some(f), wb),
                    Err(e) => {
                        self.cache.rollback_round();
                        return Err(e);
                    }
                }
            };
            if !self.faults.should_inject(
                InjectionPoint::LinkDrop,
                &format!("{vm_name} round {round}"),
            ) {
                break encoded;
            }
            // The round died on the wire: nothing it shipped was acked, so
            // every dedup/delta entry it journalled is invalid. Roll back
            // to the last committed state and re-encode — the retry's
            // frames are built against what the destination actually
            // holds. The ring rolls back in lockstep with the cache
            // journal, dropping the failed round's serialized frames.
            self.cache.rollback_round();
            if use_ring {
                self.scratch.round().ring.rollback();
            }
            self.faults.record_recovery(
                InjectionPoint::LinkDrop,
                RecoveryAction::InvalidatedWireCache,
                &format!("{vm_name} round {round}: rolled back dedup/delta journal"),
            );
            drops += 1;
            if drops > self.config.max_link_retries {
                self.faults.record_recovery(
                    InjectionPoint::LinkDrop,
                    RecoveryAction::GaveUp,
                    &format!(
                        "{vm_name} round {round}: {} retries exhausted",
                        self.config.max_link_retries
                    ),
                );
                // The destination shell (and every page it held) is torn
                // down; drop the VM's delta bases and, conservatively,
                // the dedup map.
                self.cache.forget_vm(src_id.0);
                dst_hv.destroy_vm(dst_machine, dst_id)?;
                return Err(HtpError::LinkFailure {
                    vm_name: vm_name.to_string(),
                    retries: self.config.max_link_retries,
                });
            }
            let wait = backoff_delay(self.config.retry_backoff, drops);
            // Half the (compressed) round was on the wire before the
            // drop, plus the backoff before reconnecting.
            duration += self.config.link.transfer(encoded.1 / 2, sharers) + wait;
            self.faults.record_recovery(
                InjectionPoint::LinkDrop,
                RecoveryAction::RetriedWithBackoff,
                &format!(
                    "{vm_name} round {round} attempt {drops} backoff {:.0}ms",
                    wait.as_millis_f64()
                ),
            );
        };
        if drops > 0 {
            self.faults.record_recovery(
                InjectionPoint::LinkDrop,
                RecoveryAction::ResumedFromRound,
                &format!("{vm_name} resumed at round {round} after {drops} drop(s)"),
            );
        }
        let transfer = self.config.link.transfer(round_wire_bytes, sharers);
        duration += transfer
            + perf.cpu(self.cost.migrate_ghz_s_per_page * pages as f64)
            + SimDuration::from_secs_f64(self.cost.migrate_round_overhead_s);
        let mut bytes_sent = round_wire_bytes;
        debug_assert_eq!(frames.is_none(), use_ring);

        if self.faults.should_inject(
            InjectionPoint::LinkLatencySpike,
            &format!("{vm_name} round {round}"),
        ) {
            duration += LATENCY_SPIKE;
            self.faults.record_recovery(
                InjectionPoint::LinkLatencySpike,
                RecoveryAction::AbsorbedLatency,
                &format!(
                    "{vm_name} round {round}: +{:.0}ms",
                    LATENCY_SPIKE.as_millis_f64()
                ),
            );
        }

        match &frames {
            Some(f) => self.apply_frames(dst_machine, dst_hv, dst_id, to_send, f, vm_name, wire)?,
            None => self.apply_ring(dst_machine, dst_hv, dst_id, to_send, vm_name, wire)?,
        }

        // Truncated page: the echo check detects the corruption; the
        // re-send re-encodes through the cache, which by now holds the
        // page's content — so the correction usually ships as a
        // digest-sized Dup frame rather than a full page.
        if let Some(&bad_gfn) = to_send.last() {
            if self.faults.should_inject(
                InjectionPoint::TruncatedPage,
                &format!("{vm_name} round {round} gfn {}", bad_gfn.0),
            ) {
                let good = src_hv.read_guest(src_machine, src_id, bad_gfn)?;
                dst_hv.write_guest(dst_machine, dst_id, bad_gfn, !good)?;
                let echoed = dst_hv.read_guest(dst_machine, dst_id, bad_gfn)?;
                debug_assert_ne!(echoed, good, "truncation must be observable");
                if echoed != good {
                    let resend = self.cache.encode_page(src_id.0, bad_gfn.0, good);
                    let word = self.cache.apply_frame(&resend, echoed).ok_or_else(|| {
                        HtpError::IntegrityViolation {
                            vm_name: vm_name.to_string(),
                        }
                    })?;
                    dst_hv.write_guest(dst_machine, dst_id, bad_gfn, word)?;
                    wire.record(&resend);
                    duration += self.config.link.transfer(2 * resend.wire_bytes(), sharers);
                    bytes_sent += resend.wire_bytes();
                    self.faults.record_recovery(
                        InjectionPoint::TruncatedPage,
                        RecoveryAction::ResentPages,
                        &format!(
                            "{vm_name} round {round}: re-sent gfn {} as {} frame",
                            bad_gfn.0,
                            resend.kind().name()
                        ),
                    );
                }
            }
        }

        self.cache.commit_round();
        if use_ring {
            self.scratch.round().ring.commit();
        }
        Ok(RoundOutcome {
            duration,
            bytes_sent,
            transfer,
            drops,
        })
    }

    /// The gather/hash → encode pipeline of the content-aware path: pool
    /// workers gather and digest source chunks while the calling thread
    /// encodes them against the cache in strict GFN order (bounded
    /// hand-off window, so encode back-pressure throttles the gather
    /// instead of queueing unboundedly). Returns the frames plus their
    /// total wire bytes. Below the parallel threshold everything runs
    /// serially — same result, no thread spawn.
    fn gather_encode(
        &self,
        src_machine: &Machine,
        src_hv: &dyn Hypervisor,
        src_id: VmId,
        gfns: &[Gfn],
    ) -> Result<(Vec<WireFrame>, u64), HtpError> {
        let mut frames = Vec::with_capacity(gfns.len());
        let mut wire_bytes = 0u64;
        if self.pool.workers() <= 1 || gfns.len() < self.config.parallel_threshold_pages {
            let words = src_hv.read_guest_many(src_machine, src_id, gfns)?;
            for (&g, w) in gfns.iter().zip(words) {
                let f = self.cache.encode_page(src_id.0, g.0, w);
                wire_bytes += f.wire_bytes();
                frames.push(f);
            }
        } else {
            let chunk = gfns.len().div_ceil(self.pool.workers() * 4).max(1);
            let chunks: Vec<&[Gfn]> = gfns.chunks(chunk).collect();
            let mut first_err: Option<HtpError> = None;
            self.pool.pipeline(
                chunks.len(),
                self.config.pipeline_window,
                |i| -> Result<Vec<u64>, HtpError> {
                    src_hv.read_guest_many(src_machine, src_id, chunks[i])
                },
                |i, gathered| {
                    if first_err.is_some() {
                        return;
                    }
                    match gathered {
                        Ok(words) => {
                            for (&g, w) in chunks[i].iter().zip(words) {
                                let f = self.cache.encode_page(src_id.0, g.0, w);
                                wire_bytes += f.wire_bytes();
                                frames.push(f);
                            }
                        }
                        Err(e) => first_err = Some(e),
                    }
                },
            );
            if let Some(e) = first_err {
                return Err(e);
            }
        }
        debug_assert_eq!(frames.len(), gfns.len());
        Ok((frames, wire_bytes))
    }

    /// Zero-copy counterpart of [`MigrationTp::gather_encode`]: content
    /// words are borrowed straight out of the source's RAM extents
    /// (`read_guest_into` walks coalesced GFN→MFN runs and memcpys whole
    /// extents), digests are batch-computed word-parallel across the
    /// worker pool, and frames are serialized into the shared scratch
    /// ring under a single cache lock. Every buffer is reused across
    /// rounds and VMs — after warm-up this path performs no heap
    /// allocations. Returns the round's accounted wire bytes; the frames
    /// live in the ring for [`MigrationTp::apply_ring`].
    pub(crate) fn gather_encode_ring(
        &self,
        src_machine: &Machine,
        src_hv: &dyn Hypervisor,
        src_id: VmId,
        gfns: &[Gfn],
    ) -> Result<u64, HtpError> {
        let mut s = self.scratch.round();
        let RoundScratch {
            ring,
            words,
            digests,
            ..
        } = &mut *s;
        let caps = (words.capacity(), digests.capacity());
        ring.restart();
        ring.begin();
        src_hv.read_guest_into(src_machine, src_id, gfns, words)?;
        digest_pages_with_pool(
            words,
            digests,
            &self.pool,
            self.config.parallel_threshold_pages,
        );
        let wire_bytes = self
            .cache
            .encode_batch_into(src_id.0, gfns, words, digests, ring);
        let mut st = self.scratch.stats();
        st.rounds += 1;
        st.grows += u64::from(words.capacity() != caps.0) + u64::from(digests.capacity() != caps.1);
        Ok(wire_bytes)
    }

    /// Zero-copy counterpart of [`MigrationTp::apply_frames`]: walks the
    /// scratch ring's borrowed frame views in GFN order, probing the
    /// destination with one batched read into a reused buffer and eliding
    /// no-op writes. Accounting ([`WireStats`]) and integrity semantics
    /// are identical to the owned-frame path.
    fn apply_ring(
        &self,
        dst_machine: &mut Machine,
        dst_hv: &mut dyn Hypervisor,
        dst_id: VmId,
        gfns: &[Gfn],
        vm_name: &str,
        wire: &mut WireStats,
    ) -> Result<(), HtpError> {
        let mut s = self.scratch.round();
        let RoundScratch { ring, current, .. } = &mut *s;
        let cap = current.capacity();
        dst_hv.read_guest_into(dst_machine, dst_id, gfns, current)?;
        debug_assert_eq!(ring.frame_count() as usize, gfns.len());
        for (view, (&g, &cur)) in ring.iter().zip(gfns.iter().zip(current.iter())) {
            debug_assert_eq!(view.gfn, g.0);
            wire.record_parts(view.kind, view.wire_bytes());
            let word =
                self.cache
                    .apply_view(&view, cur)
                    .ok_or_else(|| HtpError::IntegrityViolation {
                        vm_name: vm_name.to_string(),
                    })?;
            if word != cur {
                dst_hv.write_guest(dst_machine, dst_id, g, word)?;
            }
        }
        self.scratch.stats().grows += u64::from(current.capacity() != cap);
        Ok(())
    }

    /// Materialises a round's frames on the destination, in GFN order.
    /// Writes are elided when the destination already holds the page's
    /// content (zero pages on a fresh shell, dedup hits) — the wall-clock
    /// counterpart of the bytes the frames kept off the wire.
    #[allow(clippy::too_many_arguments)]
    fn apply_frames(
        &self,
        dst_machine: &mut Machine,
        dst_hv: &mut dyn Hypervisor,
        dst_id: VmId,
        gfns: &[Gfn],
        frames: &[WireFrame],
        vm_name: &str,
        wire: &mut WireStats,
    ) -> Result<(), HtpError> {
        let current = dst_hv.read_guest_many(dst_machine, dst_id, gfns)?;
        for ((frame, &g), &cur) in frames.iter().zip(gfns).zip(&current) {
            wire.record(frame);
            let word =
                self.cache
                    .apply_frame(frame, cur)
                    .ok_or_else(|| HtpError::IntegrityViolation {
                        vm_name: vm_name.to_string(),
                    })?;
            if word != cur {
                dst_hv.write_guest(dst_machine, dst_id, g, word)?;
            }
        }
        Ok(())
    }

    /// Copies guest pages source → destination: a parallel *gather* of the
    /// source values (read-only, chunked across the worker pool) followed
    /// by a serial *apply* on the destination (`write_guest` needs
    /// `&mut`). Values land in GFN-list order either way, so serial and
    /// pooled runs are byte-identical.
    #[allow(clippy::too_many_arguments)]
    fn copy_pages(
        &self,
        src_machine: &Machine,
        src_hv: &dyn Hypervisor,
        src_id: VmId,
        dst_machine: &mut Machine,
        dst_hv: &mut dyn Hypervisor,
        dst_id: VmId,
        gfns: &[Gfn],
    ) -> Result<(), HtpError> {
        // Below the threshold the serial gather wins over thread spawn
        // (see MigrationConfig::parallel_threshold_pages).
        let values: Vec<u64> =
            if self.pool.workers() <= 1 || gfns.len() < self.config.parallel_threshold_pages {
                src_hv.read_guest_many(src_machine, src_id, gfns)?
            } else {
                let chunk = gfns.len().div_ceil(self.pool.workers() * 4).max(1);
                let chunks: Vec<&[Gfn]> = gfns.chunks(chunk).collect();
                let gathered = self
                    .pool
                    .map_indices(chunks.len(), |i| -> Result<Vec<u64>, HtpError> {
                        src_hv.read_guest_many(src_machine, src_id, chunks[i])
                    })
                    .results;
                let mut v = Vec::with_capacity(gfns.len());
                for c in gathered {
                    v.extend(c?);
                }
                v
            };
        // Write elision: a fresh destination shell is overwhelmingly zero
        // pages, and the simulator's RAM write does per-page bookkeeping a
        // read does not — probing with one batched read and skipping no-op
        // writes is the single biggest wall-clock win for idle-VM
        // migrations.
        let current = dst_hv.read_guest_many(dst_machine, dst_id, gfns)?;
        for ((&g, &val), &cur) in gfns.iter().zip(&values).zip(&current) {
            if cur != val {
                dst_hv.write_guest(dst_machine, dst_id, g, val)?;
            }
        }
        Ok(())
    }
}

/// Per-round result of a send helper.
struct RoundOutcome {
    /// Simulated duration of the round (transfer + CPU + fault effects).
    duration: SimDuration,
    /// Bytes put on the wire this round (raw payloads, or frames).
    bytes_sent: u64,
    /// Nominal link time of the shipped bytes (excludes fault retries and
    /// backoff) — the controller's effective-throughput sample.
    transfer: SimDuration,
    /// Injected link drops survived by this round.
    drops: u32,
}

/// Result of a fleet migration ([`migrate_fleet`]).
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Per-VM reports, **in input order** (downtime/total reflect the
    /// fleet schedule, measured from the fleet start).
    pub reports: Vec<MigrationReport>,
    /// The scheduler's cold-start per-VM predictions, in input order
    /// (predicted-vs-actual telemetry).
    pub predictions: Vec<MigrationPrediction>,
    /// The prediction in force when each VM was actually admitted, in
    /// input order. Equal to [`FleetReport::predictions`] under
    /// [`FleetOrder::Fifo`] and [`FleetOrder::ShortestPredictedFirst`];
    /// under [`FleetOrder::Repredict`] these are the warmed re-predictions
    /// the scheduler ordered by, so comparing them against the actuals
    /// shows how much the feedback loop tightened the estimates.
    pub admission_predictions: Vec<MigrationPrediction>,
    /// Policy the fleet ran under.
    pub policy: FleetPolicy,
    /// Admission order chosen by the scheduler (indices into the input).
    pub admission: Vec<usize>,
    /// Per-VM pre-copy start instants (from fleet start), in input order
    /// — the schedule the SLO accounting prices.
    pub starts: Vec<SimDuration>,
    /// Per-VM SLO outcomes, in input order: `Some` for every
    /// [`FleetVm`] that carried an [`crate::SloVm`] attachment (priced
    /// against its actual schedule — start, contended pre-copy, real
    /// downtime), `None` for traffic-free VMs.
    pub slo: Vec<Option<VmSloOutcome>>,
    /// Instant (from fleet start) the last VM became ready.
    pub makespan: SimDuration,
}

impl FleetReport {
    fn mean(iter: impl Iterator<Item = SimDuration>, n: usize) -> SimDuration {
        if n == 0 {
            return SimDuration::ZERO;
        }
        let total: u64 = iter.map(|d| d.as_nanos()).sum();
        SimDuration::from_nanos(total / n as u64)
    }

    /// Mean VM downtime across the fleet.
    pub fn mean_downtime(&self) -> SimDuration {
        Self::mean(self.reports.iter().map(|r| r.downtime), self.reports.len())
    }

    /// Mean VM-ready time (time from fleet start until each VM resumed on
    /// the destination) — the per-VM exposure window the scheduler
    /// minimises.
    pub fn mean_ready(&self) -> SimDuration {
        Self::mean(self.reports.iter().map(|r| r.total), self.reports.len())
    }

    /// Total wire bytes across the fleet.
    pub fn total_bytes(&self) -> u64 {
        self.reports.iter().map(|r| r.bytes_sent).sum()
    }

    /// Actual pre-copy duration of VM `i`: the sum of its round times
    /// (schedule-independent, unlike [`MigrationReport::total`]).
    pub fn actual_precopy(&self, i: usize) -> SimDuration {
        self.reports[i]
            .rounds
            .iter()
            .map(|r| r.duration)
            .sum::<SimDuration>()
    }

    /// Per-VM signed relative error (%) of the admission-time predicted
    /// pre-copy duration against the actual one: positive means the
    /// scheduler over-predicted. The predicted-vs-actual telemetry the
    /// [`FleetOrder::Repredict`] feedback loop is judged by.
    pub fn precopy_error_pct(&self) -> Vec<f64> {
        (0..self.reports.len())
            .map(|i| {
                let actual = self.actual_precopy(i).as_secs_f64();
                if actual <= 0.0 {
                    return 0.0;
                }
                let predicted = self.admission_predictions[i].precopy.as_secs_f64();
                (predicted - actual) / actual * 100.0
            })
            .collect()
    }

    /// Mean absolute pre-copy prediction error (%), across the fleet.
    pub fn mean_abs_precopy_error_pct(&self) -> f64 {
        let errs = self.precopy_error_pct();
        if errs.is_empty() {
            return 0.0;
        }
        errs.iter().map(|e| e.abs()).sum::<f64>() / errs.len() as f64
    }

    /// Total SLO violation-seconds across the fleet (zero when no VM
    /// carried an SLO).
    pub fn total_violation(&self) -> SimDuration {
        self.slo
            .iter()
            .flatten()
            .map(|o| o.violation)
            .sum::<SimDuration>()
    }

    /// Worst per-VM error-budget burn (fraction of the daily budget one
    /// migration consumed; 0.0 when no VM carried an SLO).
    pub fn max_budget_burn(&self) -> f64 {
        self.slo
            .iter()
            .flatten()
            .map(|o| o.budget_burn)
            .fold(0.0, f64::max)
    }

    /// Number of fleet members that carried an SLO attachment.
    pub fn slo_vm_count(&self) -> usize {
        self.slo.iter().flatten().count()
    }
}

/// Migrates a fleet of VMs under a [`FleetPolicy`]: convergence-aware
/// admission/ordering plus shared-link accounting.
///
/// * **Admission**: at most `policy.max_concurrent` pre-copy streams run
///   at once (0 = everyone, the legacy behaviour); a stream's slot frees
///   when its pre-copy ends. Bounding concurrency shortens rounds, which
///   shrinks per-round dirtying — the fleet-level convergence win.
/// * **Ordering**: [`FleetOrder::Fifo`] admits in input order;
///   [`FleetOrder::ShortestPredictedFirst`] admits by predicted
///   stop-and-copy time ([`predict_migration`]), so small/idle VMs clear
///   the (sequential) receiver before the heavyweights park on it;
///   [`FleetOrder::SloAware`] admits by predicted SLO harm at the slot's
///   current time, steering hot-traffic VMs toward their low-QPS windows.
/// * **SLO physics**: a [`FleetVm`] carrying an [`crate::SloVm`]
///   contends its traffic against its pre-copy stream
///   ([`LinkContention`]) and has its violation-seconds and error-budget
///   burn accounted in [`FleetReport::slo`] — under *every* order, so
///   SLO-blind baselines feel the same contention they ignore.
/// * **Receive side**: sequential when the destination is Xen (each
///   stop-and-copy queues behind the previous one, §5.2.2), parallel for
///   kvmtool — as in [`migrate_many`].
///
/// With the default policy (FIFO, unlimited concurrency) the schedule is
/// byte-identical to the legacy [`migrate_many`], which is now a thin
/// wrapper over this function.
pub fn migrate_fleet(
    tp: &MigrationTp,
    src_machine: &mut Machine,
    src_hv: &mut dyn Hypervisor,
    vms: &[FleetVm],
    dst_machine: &mut Machine,
    dst_hv: &mut dyn Hypervisor,
    policy: FleetPolicy,
) -> Result<FleetReport, HtpError> {
    let n = vms.len();
    let slots = if policy.max_concurrent == 0 {
        n
    } else {
        policy.max_concurrent.min(n)
    };
    let sharers = slots as u32;
    let sequential_receive = dst_hv.kind() == HypervisorKind::Xen;
    let perf = src_machine.spec().perf();

    // Predict every VM up front (input order): ordering + telemetry.
    // `pred_inputs` keeps the per-VM (pages, base dirty rate, stop_fixed)
    // triple so [`FleetOrder::Repredict`] can re-run the model later.
    let mut predictions = Vec::with_capacity(n);
    let mut pred_inputs: Vec<(u64, f64, SimDuration)> = Vec::with_capacity(n);
    for vm in vms {
        let cfg = src_hv.vm_config(vm.id)?.clone();
        let stop_fixed = tp.cost.activate(dst_hv.kind().boot_target(), cfg.vcpus)
            + tp.config.link.transfer(UISR_BYTES_ALLOWANCE, sharers);
        let pages = cfg.pages();
        let base_rate = vm.dirty_rate.unwrap_or(tp.config.dirty_rate_pages_per_sec);
        pred_inputs.push((pages, base_rate, stop_fixed));
        predictions.push(predict_migration(&PredictInput {
            pages,
            dirty_rate: base_rate,
            config: &tp.config,
            sharers,
            perf,
            ghz_s_per_page: tp.cost.migrate_ghz_s_per_page,
            round_overhead_s: tp.cost.migrate_round_overhead_s,
            compression_hint: policy.compression_hint,
            stop_fixed,
            contention: LinkContention::NONE,
        }));
    }

    let mut admission: Vec<usize> = (0..n).collect();
    if policy.order == FleetOrder::ShortestPredictedFirst {
        admission.sort_by_key(|&i| (predictions[i].stop_copy, i));
    }

    // Run the data phases in admission order (the shared wire cache sees
    // VMs in the same order the link does), assigning each stream to the
    // earliest-free slot.
    let mut phases: Vec<Option<(VmId, DataPhase, SimDuration)>> = (0..n).map(|_| None).collect();
    let mut slot_free = vec![SimDuration::ZERO; slots];
    let mut admission_predictions = predictions.clone();
    if policy.order == FleetOrder::Repredict {
        // Feedback admission: after each completed migration fold the
        // observed dirty rate (as a scale against the configured rate)
        // and wire compression into fleet-level EWMAs, re-predict the
        // waiting VMs, and admit the one with the smallest re-predicted
        // stop-and-copy (input index breaks ties — deterministic).
        let alpha = tp.config.control.ewma_alpha;
        let mut rate_scale = Ewma::new(alpha);
        let mut compression = Ewma::new(alpha);
        let mut remaining: Vec<usize> = (0..n).collect();
        admission.clear();
        while !remaining.is_empty() {
            let mut best: Option<(SimDuration, usize, MigrationPrediction)> = None;
            for &i in &remaining {
                let (pages, base_rate, stop_fixed) = pred_inputs[i];
                let pred = predict_migration(&PredictInput {
                    pages,
                    dirty_rate: base_rate * rate_scale.get_or(1.0),
                    config: &tp.config,
                    sharers,
                    perf,
                    ghz_s_per_page: tp.cost.migrate_ghz_s_per_page,
                    round_overhead_s: tp.cost.migrate_round_overhead_s,
                    compression_hint: compression.get_or(policy.compression_hint),
                    stop_fixed,
                    contention: LinkContention::NONE,
                });
                let better = match &best {
                    None => true,
                    Some((stop, idx, _)) => (pred.stop_copy, i) < (*stop, *idx),
                };
                if better {
                    best = Some((pred.stop_copy, i, pred));
                }
            }
            let (_, i, pred) = best.expect("remaining is non-empty");
            admission_predictions[i] = pred;
            remaining.retain(|&j| j != i);
            admission.push(i);
            let vm = vms[i];
            let (phase, start) = run_fleet_phase(
                tp,
                src_machine,
                src_hv,
                vm,
                dst_machine,
                dst_hv,
                sharers,
                &mut slot_free,
            )?;
            // Warm the estimators from the completed migration's last
            // round (the per-migration controller observes even when
            // inactive, so the telemetry is always populated).
            if let Some(last) = phase.report.rounds.last() {
                let (_, base_rate, _) = pred_inputs[i];
                if base_rate > 0.0 && last.dirty_rate_est > 0.0 {
                    rate_scale.observe(last.dirty_rate_est / base_rate);
                }
                if last.compression_est > 0.0 {
                    compression.observe(last.compression_est);
                }
            }
            phases[i] = Some((vm.id, phase, start));
        }
    } else if policy.order == FleetOrder::SloAware {
        // Least-predicted-harm admission: at each free slot, re-price
        // every waiting VM's migration *at the slot's current time* —
        // the pre-copy prediction contended by the VM's own traffic,
        // priced in violation-seconds by its SLO — and admit the
        // cheapest (predicted stop-and-copy, then input index, break
        // ties: harmless VMs drain in SPDF order). Hot-traffic VMs are
        // pushed back and picked up when the advancing fleet clock
        // reaches their low-QPS window. Work-conserving: a slot never
        // idles waiting for a window.
        let mut remaining: Vec<usize> = (0..n).collect();
        admission.clear();
        while !remaining.is_empty() {
            let now = slot_free
                .iter()
                .copied()
                .min()
                .expect("slots >= 1 when vms is non-empty");
            let mut best: Option<(SimDuration, SimDuration, usize, MigrationPrediction)> = None;
            for &i in &remaining {
                let (pages, base_rate, stop_fixed) = pred_inputs[i];
                let contention = match vms[i].slo {
                    Some(s) => LinkContention::new(s.traffic.bps_at(now)),
                    None => LinkContention::NONE,
                };
                let pred = predict_migration(&PredictInput {
                    pages,
                    dirty_rate: base_rate,
                    config: &tp.config,
                    sharers,
                    perf,
                    ghz_s_per_page: tp.cost.migrate_ghz_s_per_page,
                    round_overhead_s: tp.cost.migrate_round_overhead_s,
                    compression_hint: policy.compression_hint,
                    stop_fixed,
                    contention,
                });
                let harm = match vms[i].slo {
                    Some(s) => s.outcome(now, pred.precopy, pred.stop_copy).violation,
                    None => SimDuration::ZERO,
                };
                let better = match &best {
                    None => true,
                    Some((h, stop, idx, _)) => (harm, pred.stop_copy, i) < (*h, *stop, *idx),
                };
                if better {
                    best = Some((harm, pred.stop_copy, i, pred));
                }
            }
            let (_, _, i, pred) = best.expect("remaining is non-empty");
            admission_predictions[i] = pred;
            remaining.retain(|&j| j != i);
            admission.push(i);
            let vm = vms[i];
            let (phase, start) = run_fleet_phase(
                tp,
                src_machine,
                src_hv,
                vm,
                dst_machine,
                dst_hv,
                sharers,
                &mut slot_free,
            )?;
            debug_assert_eq!(start, now, "admission priced at the slot it got");
            phases[i] = Some((vm.id, phase, start));
        }
    } else {
        for &i in &admission {
            let vm = vms[i];
            let (phase, start) = run_fleet_phase(
                tp,
                src_machine,
                src_hv,
                vm,
                dst_machine,
                dst_hv,
                sharers,
                &mut slot_free,
            )?;
            phases[i] = Some((vm.id, phase, start));
        }
    }

    // Schedule the receive side: stop-and-copies queue on a sequential
    // receiver in pre-copy completion order (admission order breaks
    // ties, via the stable sort).
    let mut recv_order: Vec<(usize, SimDuration)> = admission
        .iter()
        .map(|&i| {
            let (_, phase, start) = phases[i].as_ref().expect("admitted");
            (i, *start + phase.precopy)
        })
        .collect();
    recv_order.sort_by_key(|&(_, end)| end);
    let mut receiver_free = SimDuration::ZERO;
    let mut makespan = SimDuration::ZERO;
    let mut out: Vec<Option<MigrationReport>> = (0..n).map(|_| None).collect();
    for &(i, precopy_end) in &recv_order {
        let (_, phase, _) = phases[i].as_ref().expect("admitted");
        let (finish, downtime) = if sequential_receive {
            let begin = precopy_end.max(receiver_free);
            let finish = begin + phase.stop_copy;
            receiver_free = finish;
            (finish, finish - precopy_end)
        } else {
            (precopy_end + phase.stop_copy, phase.stop_copy)
        };
        makespan = makespan.max(finish);
        let mut report = phase.report.clone();
        report.downtime = downtime;
        report.total = finish;
        out[i] = Some(report);
    }

    src_machine.clock().advance(makespan);
    dst_machine.clock().advance_to(src_machine.clock().now());
    for (vm, slot) in vms.iter().zip(&phases) {
        let (id, phase, _) = slot.as_ref().expect("all scheduled");
        debug_assert_eq!(*id, vm.id);
        dst_hv.resume_vm(phase.dst_id)?;
        src_hv.destroy_vm(src_machine, *id)?;
    }
    let reports: Vec<MigrationReport> =
        out.into_iter().map(|r| r.expect("all scheduled")).collect();
    // Price every SLO-carrying VM's migration against the schedule it
    // actually got: its start, its (contention-stretched) pre-copy and
    // the real downtime including receiver queuing. The accounting runs
    // under every order — the baseline schedulers are *blind* to the
    // harm, not exempt from it.
    let starts: Vec<SimDuration> = phases
        .iter()
        .map(|p| p.as_ref().expect("all scheduled").2)
        .collect();
    let slo: Vec<Option<VmSloOutcome>> = (0..n)
        .map(|i| {
            vms[i].slo.map(|s| {
                let (_, phase, start) = phases[i].as_ref().expect("all scheduled");
                s.outcome(*start, phase.precopy, reports[i].downtime)
            })
        })
        .collect();
    Ok(FleetReport {
        reports,
        predictions,
        admission_predictions,
        policy,
        admission,
        starts,
        slo,
        makespan,
    })
}

/// Runs one fleet member's data phase on the earliest-free slot and
/// advances that slot's clock. Shared by the static (FIFO/SPDF) and
/// feedback ([`FleetOrder::Repredict`], [`FleetOrder::SloAware`])
/// admission loops so all schedule identically given the same admission
/// order.
///
/// **Tie-breaking rule**: among equally-early free slots the
/// *lowest-indexed* slot wins — the key is the `(free_time, slot_index)`
/// pair, so the choice is a total order independent of iteration
/// quirks. Identical predicted durations therefore produce identical
/// slot assignments on every run and under every `HYPERTP_WORKERS`
/// setting (the schedule is simulated time; worker count only changes
/// wall-clock). Regression-tested by
/// `equal_duration_fleet_schedule_is_deterministic`.
///
/// A [`FleetVm`] carrying an [`crate::SloVm`] contends its own traffic
/// (sampled at the slot's start instant) against the pre-copy stream:
/// the engine runs the data phase over the contention-scaled link, so
/// round transfers stretch and the controller's estimators observe the
/// stretched reality.
#[allow(clippy::too_many_arguments)]
fn run_fleet_phase(
    tp: &MigrationTp,
    src_machine: &mut Machine,
    src_hv: &mut dyn Hypervisor,
    vm: FleetVm,
    dst_machine: &mut Machine,
    dst_hv: &mut dyn Hypervisor,
    sharers: u32,
    slot_free: &mut [SimDuration],
) -> Result<(DataPhase, SimDuration), HtpError> {
    let slot = slot_free
        .iter()
        .enumerate()
        .min_by_key(|&(s, &t)| (t, s))
        .map(|(s, _)| s)
        .expect("slots >= 1 when vms is non-empty");
    let start = slot_free[slot];
    let workload_bps = vm.slo.map(|s| s.traffic.bps_at(start)).unwrap_or(0.0);
    let contended_tp;
    let tp = if workload_bps > 0.0 {
        let mut config = tp.config;
        config.link = LinkContention::new(workload_bps).contended(&config.link);
        contended_tp = tp.clone().with_config(config);
        &contended_tp
    } else {
        tp
    };
    let phase = tp.migrate_data(
        src_machine,
        src_hv,
        vm.id,
        dst_machine,
        dst_hv,
        sharers,
        SimDuration::ZERO,
        vm.dirty_rate,
    )?;
    slot_free[slot] = start + phase.precopy;
    Ok((phase, start))
}

/// Migrates several VMs from one host to another, reproducing §5.2.2's
/// multi-VM behaviour: sends run in parallel and share the link; the
/// receive side is **sequential** when the destination is Xen (each VM's
/// stop-and-copy queues behind the previous one, inflating later VMs'
/// downtime) and parallel when it is kvmtool.
///
/// Wall-clock execution: each VM's page gathers and verification fan out
/// over `tp`'s worker pool (see [`MigrationTp::with_pool`]), while the
/// destination applies — and therefore the Xen receive queue — stay
/// serial. The simulated schedule and every report are identical for any
/// worker count.
///
/// This is [`migrate_fleet`] under the legacy default policy (FIFO
/// admission, unlimited concurrency); the schedule is byte-identical to
/// the pre-scheduler implementation.
pub fn migrate_many(
    tp: &MigrationTp,
    src_machine: &mut Machine,
    src_hv: &mut dyn Hypervisor,
    vm_ids: &[VmId],
    dst_machine: &mut Machine,
    dst_hv: &mut dyn Hypervisor,
) -> Result<Vec<MigrationReport>, HtpError> {
    let vms: Vec<FleetVm> = vm_ids.iter().map(|&id| FleetVm::new(id)).collect();
    let fleet = migrate_fleet(
        tp,
        src_machine,
        src_hv,
        &vms,
        dst_machine,
        dst_hv,
        FleetPolicy::default(),
    )?;
    Ok(fleet.reports)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypertp_core::testing::SimpleHv;
    use hypertp_core::VmConfig;
    use hypertp_machine::MachineSpec;
    use hypertp_sim::SimClock;

    fn pair() -> (Machine, Machine) {
        let clock = SimClock::new();
        let mut spec = MachineSpec::m1();
        spec.ram_gb = 4;
        (
            Machine::with_clock(spec.clone(), clock.clone()),
            Machine::with_clock(spec, clock),
        )
    }

    #[test]
    fn migration_preserves_memory_and_state() {
        let (mut src_m, mut dst_m) = pair();
        let mut src = SimpleHv::new(HypervisorKind::Xen);
        let mut dst = SimpleHv::new(HypervisorKind::Kvm);
        let id = src.create_vm(&mut src_m, &VmConfig::small("vm0")).unwrap();
        src.write_guest(&mut src_m, id, Gfn(777), 0xfeed).unwrap();
        src.guest_tick(&mut src_m, id, 100).unwrap();
        let tp = MigrationTp::new().with_config(MigrationConfig {
            verify_contents: true,
            ..MigrationConfig::default()
        });
        let report = tp
            .migrate(&mut src_m, &mut src, id, &mut dst_m, &mut dst)
            .unwrap();
        assert!(src.vm_ids().is_empty(), "source VM destroyed");
        let new_id = dst.find_vm("vm0").unwrap();
        assert_eq!(dst.read_guest(&dst_m, new_id, Gfn(777)).unwrap(), 0xfeed);
        assert_eq!(
            dst.vm_state(new_id).unwrap(),
            hypertp_core::VmState::Running
        );
        assert!(report.rounds[0].pages == 262_144, "full first round");
        assert!(report.bytes_sent >= 1 << 30);
    }

    #[test]
    fn table4_downtime_and_total() {
        // 1 vCPU / 1 GB idle VM over 1 Gbps: total ≈ 9.6 s; downtime
        // ≈ 5 ms to kvmtool, ≈ 134 ms to Xen (27× more).
        let run = |dst_kind: HypervisorKind| {
            let (mut src_m, mut dst_m) = pair();
            let mut src = SimpleHv::new(HypervisorKind::Xen);
            let mut dst = SimpleHv::new(dst_kind);
            let id = src.create_vm(&mut src_m, &VmConfig::small("vm0")).unwrap();
            let tp = MigrationTp::new().with_config(MigrationConfig {
                dirty_rate_pages_per_sec: 1.0, // idle
                ..MigrationConfig::default()
            });
            tp.migrate(&mut src_m, &mut src, id, &mut dst_m, &mut dst)
                .unwrap()
        };
        let to_kvm = run(HypervisorKind::Kvm);
        let total = to_kvm.total.as_secs_f64();
        assert!((9.0..10.5).contains(&total), "total = {total}");
        let dt = to_kvm.downtime.as_millis_f64();
        assert!((3.0..10.0).contains(&dt), "downtime = {dt} ms");

        let to_xen = run(HypervisorKind::Xen);
        let ratio = to_xen.downtime.as_secs_f64() / to_kvm.downtime.as_secs_f64();
        assert!((15.0..35.0).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn dirty_rate_extends_migration() {
        let run = |rate: f64| {
            let (mut src_m, mut dst_m) = pair();
            let mut src = SimpleHv::new(HypervisorKind::Xen);
            let mut dst = SimpleHv::new(HypervisorKind::Kvm);
            let id = src.create_vm(&mut src_m, &VmConfig::small("vm0")).unwrap();
            let tp = MigrationTp::new().with_config(MigrationConfig {
                dirty_rate_pages_per_sec: rate,
                ..MigrationConfig::default()
            });
            tp.migrate(&mut src_m, &mut src, id, &mut dst_m, &mut dst)
                .unwrap()
        };
        let idle = run(1.0);
        let busy = run(2000.0);
        assert!(busy.rounds.len() > idle.rounds.len());
        assert!(busy.total > idle.total);
        assert!(busy.bytes_sent > idle.bytes_sent);
    }

    #[test]
    fn nonconvergent_guest_hits_round_cap() {
        let (mut src_m, mut dst_m) = pair();
        let mut src = SimpleHv::new(HypervisorKind::Xen);
        let mut dst = SimpleHv::new(HypervisorKind::Kvm);
        let id = src.create_vm(&mut src_m, &VmConfig::small("vm0")).unwrap();
        let tp = MigrationTp::new().with_config(MigrationConfig {
            dirty_rate_pages_per_sec: 1e7, // Dirties faster than the link.
            max_rounds: 6,
            ..MigrationConfig::default()
        });
        let r = tp
            .migrate(&mut src_m, &mut src, id, &mut dst_m, &mut dst)
            .unwrap();
        assert_eq!(r.rounds.len(), 6);
        // Forced stop-and-copy carries a large residual set.
        assert!(r.downtime.as_secs_f64() > 1.0);
    }

    #[test]
    fn migrate_many_pooled_matches_serial() {
        // Reports (rounds, downtime, totals, bytes) must be identical
        // whether the engine gathers pages serially or on a wide pool.
        let run = |pool: WorkerPool| {
            let (mut src_m, mut dst_m) = pair();
            let mut src = SimpleHv::new(HypervisorKind::Xen);
            let mut dst = SimpleHv::new(HypervisorKind::Xen);
            let ids: Vec<VmId> = (0..3)
                .map(|i| {
                    let id = src
                        .create_vm(&mut src_m, &VmConfig::small(format!("vm{i}")))
                        .unwrap();
                    src.write_guest(&mut src_m, id, Gfn(id.0 as u64 * 7), 0xbeef + id.0 as u64)
                        .unwrap();
                    id
                })
                .collect();
            let tp = MigrationTp::new()
                .with_config(MigrationConfig {
                    dirty_rate_pages_per_sec: 500.0,
                    verify_contents: true,
                    ..MigrationConfig::default()
                })
                .with_pool(pool);
            migrate_many(&tp, &mut src_m, &mut src, &ids, &mut dst_m, &mut dst).unwrap()
        };
        let serial = run(WorkerPool::serial());
        let pooled = run(WorkerPool::new(8));
        assert_eq!(serial.len(), pooled.len());
        for (a, b) in serial.iter().zip(&pooled) {
            assert_eq!(a.vm_name, b.vm_name);
            assert_eq!(a.rounds, b.rounds);
            assert_eq!(a.downtime, b.downtime);
            assert_eq!(a.total, b.total);
            assert_eq!(a.bytes_sent, b.bytes_sent);
            assert_eq!(a.uisr_bytes, b.uisr_bytes);
        }
    }

    #[test]
    fn migrate_many_xen_receive_windows_do_not_overlap() {
        // With identical VMs the pre-copies all finish together; a
        // sequential receiver must then space the finish times one
        // stop-and-copy apart (no two receive windows overlap), while a
        // parallel receiver finishes everyone at the same instant.
        let run = |dst_kind: HypervisorKind| {
            let (mut src_m, mut dst_m) = pair();
            let mut src = SimpleHv::new(HypervisorKind::Xen);
            let mut dst = SimpleHv::new(dst_kind);
            let ids: Vec<VmId> = (0..4)
                .map(|i| {
                    src.create_vm(&mut src_m, &VmConfig::small(format!("vm{i}")))
                        .unwrap()
                })
                .collect();
            let tp = MigrationTp::new().with_config(MigrationConfig {
                dirty_rate_pages_per_sec: 1.0,
                ..MigrationConfig::default()
            });
            migrate_many(&tp, &mut src_m, &mut src, &ids, &mut dst_m, &mut dst).unwrap()
        };

        let to_kvm = run(HypervisorKind::Kvm);
        let kvm_totals: Vec<f64> = to_kvm.iter().map(|r| r.total.as_secs_f64()).collect();
        for t in &kvm_totals {
            assert!((t - kvm_totals[0]).abs() < 1e-9, "parallel receiver");
        }

        let to_xen = run(HypervisorKind::Xen);
        let mut finishes: Vec<SimDuration> = to_xen.iter().map(|r| r.total).collect();
        finishes.sort();
        // Receive windows are back to back: consecutive finishes are one
        // stop-and-copy apart, and every stop-and-copy takes the same time
        // for identical VMs (the first VM's downtime has no queue wait).
        let stop_copy = to_xen.iter().map(|r| r.downtime).min().expect("4 reports");
        assert!(stop_copy > SimDuration::ZERO);
        for w in finishes.windows(2) {
            let gap = w[1] - w[0];
            let err = (gap.as_secs_f64() - stop_copy.as_secs_f64()).abs();
            assert!(err < 1e-9, "gap {gap:?} vs stop-copy {stop_copy:?}");
        }
        // And the k-th VM's downtime grows by exactly k stop-and-copies.
        let mut downtimes: Vec<SimDuration> = to_xen.iter().map(|r| r.downtime).collect();
        downtimes.sort();
        for (k, d) in downtimes.iter().enumerate() {
            let want = stop_copy.as_secs_f64() * (k + 1) as f64;
            assert!((d.as_secs_f64() - want).abs() < 1e-9, "vm{k}");
        }
    }

    #[test]
    fn link_drop_retries_with_backoff_and_resumes() {
        use hypertp_sim::fault::{FaultPlan, InjectionPoint, RecoveryAction};
        let run = |faults: Option<FaultPlan>| {
            let (mut src_m, mut dst_m) = pair();
            let mut src = SimpleHv::new(HypervisorKind::Xen);
            let mut dst = SimpleHv::new(HypervisorKind::Kvm);
            let id = src.create_vm(&mut src_m, &VmConfig::small("vm0")).unwrap();
            src.write_guest(&mut src_m, id, Gfn(9), 0xabc).unwrap();
            let mut tp = MigrationTp::new().with_config(MigrationConfig {
                dirty_rate_pages_per_sec: 1.0,
                verify_contents: true,
                ..MigrationConfig::default()
            });
            if let Some(f) = faults {
                tp = tp.with_faults(f);
            }
            tp.migrate(&mut src_m, &mut src, id, &mut dst_m, &mut dst)
                .map(|r| (r, dst.find_vm("vm0").is_some()))
                .unwrap()
        };
        let (clean, _) = run(None);

        // Two drops on the first round, then success.
        let plan = FaultPlan::new(0x11);
        plan.arm_calls(InjectionPoint::LinkDrop, &[1, 2]);
        let (faulted, arrived) = run(Some(plan.clone()));
        assert!(arrived, "VM must arrive despite the drops");
        assert!(
            faulted.total > clean.total,
            "retries must cost time: {:?} vs {:?}",
            faulted.total,
            clean.total
        );
        let log = plan.log();
        assert_eq!(log.injections_at(InjectionPoint::LinkDrop), 2);
        assert_eq!(
            log.recoveries(InjectionPoint::LinkDrop, RecoveryAction::RetriedWithBackoff),
            2
        );
        assert!(log.recovered_via(InjectionPoint::LinkDrop, RecoveryAction::ResumedFromRound));
    }

    #[test]
    fn link_drop_exhaustion_fails_but_source_vm_survives() {
        use hypertp_sim::fault::{FaultPlan, InjectionPoint, RecoveryAction};
        let (mut src_m, mut dst_m) = pair();
        let mut src = SimpleHv::new(HypervisorKind::Xen);
        let mut dst = SimpleHv::new(HypervisorKind::Kvm);
        let id = src.create_vm(&mut src_m, &VmConfig::small("vm0")).unwrap();
        let plan = FaultPlan::new(0x22);
        plan.arm(InjectionPoint::LinkDrop, 1.0, u64::MAX); // every attempt drops
        let tp = MigrationTp::new()
            .with_config(MigrationConfig {
                max_link_retries: 3,
                ..MigrationConfig::default()
            })
            .with_faults(plan.clone());
        let err = tp
            .migrate(&mut src_m, &mut src, id, &mut dst_m, &mut dst)
            .unwrap_err();
        assert_eq!(
            err,
            HtpError::LinkFailure {
                vm_name: "vm0".into(),
                retries: 3
            }
        );
        // No VM lost: still running on the source, no shell left behind.
        assert_eq!(
            src.vm_state(id).unwrap(),
            hypertp_core::VmState::Running,
            "source VM must keep running after an abandoned migration"
        );
        assert!(dst.find_vm("vm0").is_none(), "destination shell torn down");
        assert!(plan
            .log()
            .recovered_via(InjectionPoint::LinkDrop, RecoveryAction::GaveUp));
    }

    #[test]
    fn truncated_page_is_detected_and_resent() {
        use hypertp_sim::fault::{FaultPlan, InjectionPoint, RecoveryAction};
        let (mut src_m, mut dst_m) = pair();
        let mut src = SimpleHv::new(HypervisorKind::Xen);
        let mut dst = SimpleHv::new(HypervisorKind::Kvm);
        let id = src.create_vm(&mut src_m, &VmConfig::small("vm0")).unwrap();
        src.write_guest(&mut src_m, id, Gfn(42), 0x4242).unwrap();
        let plan = FaultPlan::new(0x33);
        plan.arm_once(InjectionPoint::TruncatedPage);
        let tp = MigrationTp::new()
            .with_config(MigrationConfig {
                dirty_rate_pages_per_sec: 1.0,
                verify_contents: true, // full check would fail without the re-send
                ..MigrationConfig::default()
            })
            .with_faults(plan.clone());
        tp.migrate(&mut src_m, &mut src, id, &mut dst_m, &mut dst)
            .unwrap();
        assert!(plan
            .log()
            .recovered_via(InjectionPoint::TruncatedPage, RecoveryAction::ResentPages));
        let new_id = dst.find_vm("vm0").unwrap();
        assert_eq!(dst.read_guest(&dst_m, new_id, Gfn(42)).unwrap(), 0x4242);
    }

    #[test]
    fn corrupted_uisr_blob_is_resent() {
        use hypertp_sim::fault::{FaultPlan, InjectionPoint, RecoveryAction};
        let run = |faults: Option<FaultPlan>| {
            let (mut src_m, mut dst_m) = pair();
            let mut src = SimpleHv::new(HypervisorKind::Xen);
            let mut dst = SimpleHv::new(HypervisorKind::Kvm);
            let id = src.create_vm(&mut src_m, &VmConfig::small("vm0")).unwrap();
            src.guest_tick(&mut src_m, id, 3).unwrap();
            let mut tp = MigrationTp::new().with_config(MigrationConfig {
                dirty_rate_pages_per_sec: 1.0,
                ..MigrationConfig::default()
            });
            if let Some(f) = faults {
                tp = tp.with_faults(f);
            }
            tp.migrate(&mut src_m, &mut src, id, &mut dst_m, &mut dst)
                .unwrap()
        };
        let clean = run(None);
        let plan = FaultPlan::new(0x44);
        plan.arm_once(InjectionPoint::UisrCorruption);
        let faulted = run(Some(plan.clone()));
        assert!(plan
            .log()
            .recovered_via(InjectionPoint::UisrCorruption, RecoveryAction::ResentUisr));
        // The blob crossed the link twice: downtime strictly grows.
        assert!(faulted.downtime > clean.downtime);
        assert_eq!(faulted.uisr_bytes, clean.uisr_bytes);
    }

    #[test]
    fn latency_spike_is_absorbed_into_round_time() {
        use hypertp_sim::fault::{FaultPlan, InjectionPoint, RecoveryAction};
        let (mut src_m, mut dst_m) = pair();
        let mut src = SimpleHv::new(HypervisorKind::Xen);
        let mut dst = SimpleHv::new(HypervisorKind::Kvm);
        let id = src.create_vm(&mut src_m, &VmConfig::small("vm0")).unwrap();
        let plan = FaultPlan::new(0x55);
        plan.arm_once(InjectionPoint::LinkLatencySpike);
        let tp = MigrationTp::new()
            .with_config(MigrationConfig {
                dirty_rate_pages_per_sec: 1.0,
                ..MigrationConfig::default()
            })
            .with_faults(plan.clone());
        let r = tp
            .migrate(&mut src_m, &mut src, id, &mut dst_m, &mut dst)
            .unwrap();
        assert!(plan.log().recovered_via(
            InjectionPoint::LinkLatencySpike,
            RecoveryAction::AbsorbedLatency
        ));
        // The spike landed in round 0's duration.
        assert!(r.rounds[0].duration > super::LATENCY_SPIKE);
    }

    #[test]
    fn auto_converge_tames_a_nonconvergent_guest() {
        // Same hot guest as nonconvergent_guest_hits_round_cap; with
        // auto-converge the controller throttles the dirty rate and stops
        // early, so the residual set — and the downtime — collapse.
        let run = |auto_converge: bool| {
            let (mut src_m, mut dst_m) = pair();
            let mut src = SimpleHv::new(HypervisorKind::Xen);
            let mut dst = SimpleHv::new(HypervisorKind::Kvm);
            let id = src.create_vm(&mut src_m, &VmConfig::small("vm0")).unwrap();
            let mut cfg = MigrationConfig {
                dirty_rate_pages_per_sec: 1e6,
                ..MigrationConfig::default()
            };
            cfg.control.auto_converge = auto_converge;
            let tp = MigrationTp::new().with_config(cfg);
            tp.migrate(&mut src_m, &mut src, id, &mut dst_m, &mut dst)
                .unwrap()
        };
        let unaided = run(false);
        assert_eq!(unaided.final_throttle, 1.0);
        assert!(!unaided.forced_stop);
        let tamed = run(true);
        assert!(tamed.final_throttle < 1.0, "throttle engaged");
        assert!(
            tamed.downtime < unaided.downtime,
            "tamed {:?} !< unaided {:?}",
            tamed.downtime,
            unaided.downtime
        );
        assert!(
            tamed.bytes_sent < unaided.bytes_sent,
            "throttling ships fewer re-dirtied pages"
        );
        assert!(tamed.stop_pages < unaided.stop_pages);
        // Telemetry followed the throttle down.
        let last = tamed.rounds.last().unwrap();
        assert!(last.throttle < 1.0);
        assert!(last.dirty_rate_est < 1e6);
    }

    #[test]
    fn downtime_budget_is_respected_by_a_busy_guest() {
        // A 2000 pages/s guest never gets under the static 64-page
        // threshold (steady state ≈ 108 pages) and burns all 30 rounds.
        // A 50 ms budget converts to >64 pages at gigabit throughput, so
        // the budgeted run stops earlier and still lands under budget.
        let run = |budget: Option<SimDuration>| {
            let (mut src_m, mut dst_m) = pair();
            let mut src = SimpleHv::new(HypervisorKind::Xen);
            let mut dst = SimpleHv::new(HypervisorKind::Kvm);
            let id = src.create_vm(&mut src_m, &VmConfig::small("vm0")).unwrap();
            let tp = MigrationTp::new().with_config(MigrationConfig {
                dirty_rate_pages_per_sec: 2000.0,
                downtime_budget: budget,
                ..MigrationConfig::default()
            });
            tp.migrate(&mut src_m, &mut src, id, &mut dst_m, &mut dst)
                .unwrap()
        };
        let stat = run(None);
        assert_eq!(stat.rounds.len(), 30, "static threshold never converges");
        let budget = SimDuration::from_millis(50);
        let adaptive = run(Some(budget));
        assert!(
            adaptive.rounds.len() < stat.rounds.len(),
            "budget threshold stops early: {} rounds",
            adaptive.rounds.len()
        );
        assert!(
            adaptive.downtime <= budget,
            "downtime {:?} over budget {:?}",
            adaptive.downtime,
            budget
        );
        assert!(adaptive.total < stat.total, "fewer rounds, shorter total");
        assert!(adaptive.bytes_sent < stat.bytes_sent);
    }

    #[test]
    fn default_config_reports_inactive_controller_telemetry() {
        let (mut src_m, mut dst_m) = pair();
        let mut src = SimpleHv::new(HypervisorKind::Xen);
        let mut dst = SimpleHv::new(HypervisorKind::Kvm);
        let id = src.create_vm(&mut src_m, &VmConfig::small("vm0")).unwrap();
        let tp = MigrationTp::new().with_config(MigrationConfig {
            dirty_rate_pages_per_sec: 1.0,
            ..MigrationConfig::default()
        });
        let r = tp
            .migrate(&mut src_m, &mut src, id, &mut dst_m, &mut dst)
            .unwrap();
        assert_eq!(r.final_throttle, 1.0);
        assert!(!r.forced_stop);
        for round in &r.rounds {
            assert_eq!(round.throttle, 1.0);
            assert_eq!(round.stop_threshold, 64, "static threshold in force");
            assert!(round.throughput_est > 0.0, "telemetry observes anyway");
        }
        assert!(r.stop_pages <= 64);
    }

    #[test]
    fn fleet_default_policy_matches_migrate_many() {
        let mk = || {
            let (mut src_m, dst_m) = pair();
            let mut src = SimpleHv::new(HypervisorKind::Xen);
            let ids: Vec<VmId> = (0..3)
                .map(|i| {
                    src.create_vm(&mut src_m, &VmConfig::small(format!("vm{i}")))
                        .unwrap()
                })
                .collect();
            (src_m, dst_m, src, ids)
        };
        let tp = MigrationTp::new().with_config(MigrationConfig {
            dirty_rate_pages_per_sec: 500.0,
            ..MigrationConfig::default()
        });
        let (mut src_m, mut dst_m, mut src, ids) = mk();
        let mut dst = SimpleHv::new(HypervisorKind::Xen);
        let legacy = migrate_many(&tp, &mut src_m, &mut src, &ids, &mut dst_m, &mut dst).unwrap();

        let (mut src_m2, mut dst_m2, mut src2, ids2) = mk();
        let mut dst2 = SimpleHv::new(HypervisorKind::Xen);
        let vms: Vec<FleetVm> = ids2.iter().map(|&id| FleetVm::new(id)).collect();
        let fleet = migrate_fleet(
            &tp,
            &mut src_m2,
            &mut src2,
            &vms,
            &mut dst_m2,
            &mut dst2,
            FleetPolicy::default(),
        )
        .unwrap();
        assert_eq!(fleet.admission, vec![0, 1, 2], "FIFO admits in order");
        assert_eq!(legacy.len(), fleet.reports.len());
        for (a, b) in legacy.iter().zip(&fleet.reports) {
            assert_eq!(a.vm_name, b.vm_name);
            assert_eq!(a.rounds, b.rounds);
            assert_eq!(a.downtime, b.downtime);
            assert_eq!(a.total, b.total);
            assert_eq!(a.bytes_sent, b.bytes_sent);
        }
        assert_eq!(fleet.predictions.len(), 3);
    }

    #[test]
    fn fleet_spdf_admits_predicted_fast_vms_first() {
        // vm0 is hot (large predicted stop-copy), vm1/vm2 idle: SPDF must
        // admit the idle VMs before the hot one, and behind Xen's
        // sequential receiver the idle VMs' downtime must not queue
        // behind the hot VM's long stop-and-copy.
        let (mut src_m, mut dst_m) = pair();
        let mut src = SimpleHv::new(HypervisorKind::Xen);
        let mut dst = SimpleHv::new(HypervisorKind::Xen);
        let ids: Vec<VmId> = (0..3)
            .map(|i| {
                src.create_vm(&mut src_m, &VmConfig::small(format!("vm{i}")))
                    .unwrap()
            })
            .collect();
        let tp = MigrationTp::new();
        let vms = vec![
            FleetVm::with_dirty_rate(ids[0], 1e6),
            FleetVm::with_dirty_rate(ids[1], 1.0),
            FleetVm::with_dirty_rate(ids[2], 1.0),
        ];
        let fleet = migrate_fleet(
            &tp,
            &mut src_m,
            &mut src,
            &vms,
            &mut dst_m,
            &mut dst,
            FleetPolicy {
                order: FleetOrder::ShortestPredictedFirst,
                max_concurrent: 0,
                compression_hint: 1.0,
            },
        )
        .unwrap();
        assert_eq!(fleet.admission, vec![1, 2, 0], "idle VMs first");
        assert!(fleet.predictions[0].stop_copy > fleet.predictions[1].stop_copy);
        // The idle VMs' stop-and-copies clear the receiver before the hot
        // VM's long pre-copy even ends, so their downtime stays small.
        assert!(fleet.reports[1].downtime < fleet.reports[0].downtime);
        assert!(fleet.reports[2].downtime < fleet.reports[0].downtime);
    }

    #[test]
    fn fleet_repredict_orders_like_spdf_and_warms_its_predictions() {
        // Same fleet as the SPDF test: the cold pick must agree (idle VMs
        // first), and every admission after the first must be ordered by
        // *re-predicted* stop-copy with estimators warmed by the finished
        // migrations — recorded in `admission_predictions`.
        let run = || {
            let (mut src_m, mut dst_m) = pair();
            let mut src = SimpleHv::new(HypervisorKind::Xen);
            let mut dst = SimpleHv::new(HypervisorKind::Xen);
            let ids: Vec<VmId> = (0..3)
                .map(|i| {
                    src.create_vm(&mut src_m, &VmConfig::small(format!("vm{i}")))
                        .unwrap()
                })
                .collect();
            let tp = MigrationTp::new();
            let vms = vec![
                FleetVm::with_dirty_rate(ids[0], 1e6),
                FleetVm::with_dirty_rate(ids[1], 1.0),
                FleetVm::with_dirty_rate(ids[2], 1.0),
            ];
            migrate_fleet(
                &tp,
                &mut src_m,
                &mut src,
                &vms,
                &mut dst_m,
                &mut dst,
                FleetPolicy {
                    order: FleetOrder::Repredict,
                    max_concurrent: 0,
                    compression_hint: 1.0,
                },
            )
            .unwrap()
        };
        let fleet = run();
        assert_eq!(fleet.admission, vec![1, 2, 0], "idle VMs still first");
        assert_eq!(fleet.policy.order, FleetOrder::Repredict);
        // The first admission ran on the cold prediction; the later ones
        // on warmed estimates (which may differ from the cold model).
        assert_eq!(fleet.admission_predictions[1], fleet.predictions[1]);
        assert_eq!(fleet.admission_predictions.len(), 3);
        // Telemetry is well-formed: one signed error per VM, finite mean.
        let errs = fleet.precopy_error_pct();
        assert_eq!(errs.len(), 3);
        assert!(fleet.mean_abs_precopy_error_pct().is_finite());
        // Deterministic: the same fleet re-runs identically.
        let again = run();
        assert_eq!(again.admission, fleet.admission);
        assert_eq!(again.makespan, fleet.makespan);
        assert_eq!(again.admission_predictions, fleet.admission_predictions);
    }

    #[test]
    fn fleet_static_orders_report_cold_predictions_at_admission() {
        let (mut src_m, mut dst_m) = pair();
        let mut src = SimpleHv::new(HypervisorKind::Xen);
        let mut dst = SimpleHv::new(HypervisorKind::Kvm);
        let ids: Vec<VmId> = (0..2)
            .map(|i| {
                src.create_vm(&mut src_m, &VmConfig::small(format!("vm{i}")))
                    .unwrap()
            })
            .collect();
        let tp = MigrationTp::new().with_config(MigrationConfig {
            dirty_rate_pages_per_sec: 500.0,
            ..MigrationConfig::default()
        });
        let vms: Vec<FleetVm> = ids.iter().map(|&id| FleetVm::new(id)).collect();
        let fleet = migrate_fleet(
            &tp,
            &mut src_m,
            &mut src,
            &vms,
            &mut dst_m,
            &mut dst,
            FleetPolicy::default(),
        )
        .unwrap();
        assert_eq!(
            fleet.admission_predictions, fleet.predictions,
            "static orders never re-predict"
        );
        // The analytic model replays the engine's round loop, so under
        // raw wire + static control the predictions are near-exact.
        assert!(
            fleet.mean_abs_precopy_error_pct() < 5.0,
            "error = {}%",
            fleet.mean_abs_precopy_error_pct()
        );
    }

    #[test]
    fn bounded_concurrency_reduces_dirty_amplification() {
        // Unbounded: 4 streams share the link, rounds stretch 4×, the
        // guests dirty 4× more per round. Two slots halve the sharing;
        // each migration ships fewer re-dirtied pages.
        let run = |max_concurrent: usize| {
            let (mut src_m, mut dst_m) = pair();
            let mut src = SimpleHv::new(HypervisorKind::Xen);
            let mut dst = SimpleHv::new(HypervisorKind::Kvm);
            let ids: Vec<VmId> = (0..4)
                .map(|i| {
                    src.create_vm(&mut src_m, &VmConfig::small(format!("vm{i}")))
                        .unwrap()
                })
                .collect();
            let tp = MigrationTp::new().with_config(MigrationConfig {
                dirty_rate_pages_per_sec: 800.0,
                ..MigrationConfig::default()
            });
            let vms: Vec<FleetVm> = ids.iter().map(|&id| FleetVm::new(id)).collect();
            migrate_fleet(
                &tp,
                &mut src_m,
                &mut src,
                &vms,
                &mut dst_m,
                &mut dst,
                FleetPolicy {
                    order: FleetOrder::Fifo,
                    max_concurrent,
                    compression_hint: 1.0,
                },
            )
            .unwrap()
        };
        let unbounded = run(0);
        let bounded = run(2);
        assert!(
            bounded.total_bytes() < unbounded.total_bytes(),
            "bounded {} !< unbounded {}",
            bounded.total_bytes(),
            unbounded.total_bytes()
        );
    }

    #[test]
    fn migrate_many_xen_receive_serializes() {
        let run = |dst_kind: HypervisorKind| {
            let (mut src_m, mut dst_m) = pair();
            let mut src = SimpleHv::new(HypervisorKind::Xen);
            let mut dst = SimpleHv::new(dst_kind);
            let ids: Vec<VmId> = (0..4)
                .map(|i| {
                    src.create_vm(&mut src_m, &VmConfig::small(format!("vm{i}")))
                        .unwrap()
                })
                .collect();
            let tp = MigrationTp::new().with_config(MigrationConfig {
                dirty_rate_pages_per_sec: 1.0,
                ..MigrationConfig::default()
            });
            migrate_many(&tp, &mut src_m, &mut src, &ids, &mut dst_m, &mut dst).unwrap()
        };
        let to_xen = run(HypervisorKind::Xen);
        let to_kvm = run(HypervisorKind::Kvm);
        let spread = |rs: &[MigrationReport]| {
            let ds: Vec<f64> = rs.iter().map(|r| r.downtime.as_secs_f64()).collect();
            ds.iter().cloned().fold(f64::MIN, f64::max)
                - ds.iter().cloned().fold(f64::MAX, f64::min)
        };
        assert!(
            spread(&to_xen) > 10.0 * spread(&to_kvm).max(1e-9),
            "xen spread {} vs kvm spread {}",
            spread(&to_xen),
            spread(&to_kvm)
        );
        // All four guests actually arrived.
        assert_eq!(to_kvm.len(), 4);
    }

    #[test]
    fn empty_fleet_report_ratios_stay_finite() {
        // A fleet that migrated nothing must not divide by zero anywhere
        // in the telemetry accessors.
        let empty = FleetReport {
            reports: Vec::new(),
            predictions: Vec::new(),
            admission_predictions: Vec::new(),
            policy: FleetPolicy::default(),
            admission: Vec::new(),
            starts: Vec::new(),
            slo: Vec::new(),
            makespan: SimDuration::ZERO,
        };
        assert_eq!(empty.mean_downtime(), SimDuration::ZERO);
        assert_eq!(empty.mean_ready(), SimDuration::ZERO);
        assert_eq!(empty.total_bytes(), 0);
        assert!(empty.precopy_error_pct().is_empty());
        assert_eq!(empty.mean_abs_precopy_error_pct(), 0.0);
        assert_eq!(empty.total_violation(), SimDuration::ZERO);
        assert_eq!(empty.max_budget_burn(), 0.0);
        assert_eq!(empty.slo_vm_count(), 0);
        assert!(empty.mean_abs_precopy_error_pct().is_finite());
    }

    #[test]
    fn equal_duration_fleet_schedule_is_deterministic() {
        // Four byte-identical VMs over two slots: every admission sees
        // *tied* earliest-free slots (equal predicted and actual
        // durations), so the first-index tie-break is the only thing
        // keeping the schedule stable. The expected pattern — VM k on
        // slot k mod 2, starts paired up — must hold for every worker
        // count (the schedule is simulated time; workers are wall-clock
        // only).
        let run = |pool: WorkerPool| {
            let (mut src_m, mut dst_m) = pair();
            let mut src = SimpleHv::new(HypervisorKind::Xen);
            let mut dst = SimpleHv::new(HypervisorKind::Kvm);
            let ids: Vec<VmId> = (0..4)
                .map(|i| {
                    src.create_vm(&mut src_m, &VmConfig::small(format!("vm{i}")))
                        .unwrap()
                })
                .collect();
            let tp = MigrationTp::new().with_pool(pool);
            let vms: Vec<FleetVm> = ids.iter().map(|&id| FleetVm::new(id)).collect();
            migrate_fleet(
                &tp,
                &mut src_m,
                &mut src,
                &vms,
                &mut dst_m,
                &mut dst,
                FleetPolicy {
                    order: FleetOrder::Fifo,
                    max_concurrent: 2,
                    compression_hint: 1.0,
                },
            )
            .unwrap()
        };
        let serial = run(WorkerPool::serial());
        let pooled = run(WorkerPool::new(4));
        assert_eq!(serial.starts, pooled.starts, "worker-count invariant");
        assert_eq!(serial.admission, pooled.admission);
        // First-index rule: VMs 0 and 1 start together at t=0 (slots 0
        // and 1 in that order), VMs 2 and 3 start together afterwards.
        assert_eq!(serial.starts[0], SimDuration::ZERO);
        assert_eq!(serial.starts[1], SimDuration::ZERO);
        assert_eq!(serial.starts[2], serial.starts[3]);
        assert!(serial.starts[2] > SimDuration::ZERO);
    }

    #[test]
    fn slo_attachment_contends_the_link_and_accounts() {
        // A VM migrated at its traffic peak fights its own users for the
        // NIC: the pre-copy must stretch versus the same VM migrated
        // with no traffic attached, and the report must price the harm.
        let curve = crate::control::TrafficCurve {
            peak_qps: 4000.0,
            trough_fraction: 0.05,
            peak_offset: SimDuration::ZERO, // peak at fleet start
            period: crate::control::TrafficCurve::DAY,
            sharpness: 1,
            bytes_per_query: 20_000.0, // 80 MB/s at peak on a ~116 MB/s link
        };
        let slo = crate::control::SloVm {
            traffic: curve,
            degraded_capacity: 0.65,
            error_budget: SimDuration::from_secs(120),
        };
        let run = |with_slo: bool| {
            let (mut src_m, mut dst_m) = pair();
            let mut src = SimpleHv::new(HypervisorKind::Xen);
            let mut dst = SimpleHv::new(HypervisorKind::Kvm);
            let id = src.create_vm(&mut src_m, &VmConfig::small("vm0")).unwrap();
            let tp = MigrationTp::new();
            let mut vm = FleetVm::new(id);
            if with_slo {
                vm = vm.with_slo(slo);
            }
            migrate_fleet(
                &tp,
                &mut src_m,
                &mut src,
                &[vm],
                &mut dst_m,
                &mut dst,
                FleetPolicy::default(),
            )
            .unwrap()
        };
        let quiet = run(false);
        let contended = run(true);
        let q = quiet.actual_precopy(0).as_secs_f64();
        let c = contended.actual_precopy(0).as_secs_f64();
        assert!(c > q * 2.0, "peak traffic stretches pre-copy: {q} -> {c}");
        assert!(quiet.slo[0].is_none());
        let outcome = contended.slo[0].expect("SLO priced");
        // The whole (stretched) pre-copy ran at peak: every second
        // violates, plus the blackout.
        assert!(outcome.violation.as_secs_f64() >= c * 0.95);
        assert!(outcome.budget_burn > 0.0);
        assert_eq!(contended.slo_vm_count(), 1);
        assert!(contended.total_violation() >= outcome.violation);
    }

    #[test]
    fn slo_aware_order_defers_hot_vms_to_quiet_windows() {
        // vm0 peaks at fleet start, vm1 and vm2 are in their trough.
        // SloAware must admit the quiet VMs first and the hot VM last;
        // the accounting must show the hot VM's harm no worse than FIFO
        // (which migrates it straight into its peak).
        let day = crate::control::TrafficCurve::DAY;
        let mk_slo = |peak_offset: SimDuration| crate::control::SloVm {
            traffic: crate::control::TrafficCurve {
                peak_qps: 4000.0,
                trough_fraction: 0.05,
                peak_offset,
                period: day,
                sharpness: 1,
                bytes_per_query: 20_000.0,
            },
            degraded_capacity: 0.65,
            error_budget: SimDuration::from_secs(120),
        };
        let run = |order: FleetOrder| {
            let (mut src_m, mut dst_m) = pair();
            let mut src = SimpleHv::new(HypervisorKind::Xen);
            let mut dst = SimpleHv::new(HypervisorKind::Kvm);
            let ids: Vec<VmId> = (0..3)
                .map(|i| {
                    src.create_vm(&mut src_m, &VmConfig::small(format!("vm{i}")))
                        .unwrap()
                })
                .collect();
            let tp = MigrationTp::new();
            let vms = vec![
                FleetVm::new(ids[0]).with_slo(mk_slo(SimDuration::ZERO)),
                FleetVm::new(ids[1]).with_slo(mk_slo(SimDuration::from_secs(43_200))),
                FleetVm::new(ids[2]).with_slo(mk_slo(SimDuration::from_secs(43_200))),
            ];
            migrate_fleet(
                &tp,
                &mut src_m,
                &mut src,
                &vms,
                &mut dst_m,
                &mut dst,
                FleetPolicy {
                    order,
                    max_concurrent: 1,
                    compression_hint: 1.0,
                },
            )
            .unwrap()
        };
        let aware = run(FleetOrder::SloAware);
        assert_eq!(
            aware.admission,
            vec![1, 2, 0],
            "quiet VMs drain first, the hot VM is deferred"
        );
        let fifo = run(FleetOrder::Fifo);
        assert!(
            aware.total_violation() <= fifo.total_violation(),
            "deferring the hot VM never costs more harm: {:?} vs {:?}",
            aware.total_violation(),
            fifo.total_violation()
        );
        // The deferred hot VM starts after both quiet VMs finished.
        assert!(aware.starts[0] >= aware.starts[1].max(aware.starts[2]));
    }
}
