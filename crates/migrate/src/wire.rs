//! Content-aware page encoding for the migration wire path.
//!
//! This module holds the two stateful halves of PR 3's wire path:
//!
//! * an **XOR+RLE delta codec** ([`delta_encode`]/[`delta_decode`]) for
//!   re-dirtied pages: the new page is XORed against the last version the
//!   destination acked, and the (hopefully sparse) XOR image is run-length
//!   encoded — zero runs collapse to 3 bytes, literals are shipped as-is.
//!   The encoder is total and the decoder rejects malformed streams
//!   instead of panicking, so a corrupted delta is a recoverable fault.
//! * a **destination-synchronised [`TransferCache`]** keyed by 128-bit
//!   content digests ([`hypertp_sim::hash::Digest128`]). The source
//!   mirrors exactly what the destination holds: which content digests it
//!   has materialised (for [`WireFrame::Dup`] suppression — across
//!   pre-copy rounds *and* across VMs sharing the engine in
//!   `migrate_many`), and the last word acked per (vm, gfn) (for
//!   [`WireFrame::Delta`] encoding).
//!
//! **Transactional rounds.** The destination only acks a round as a whole;
//! if the link drops mid-round, nothing the round shipped can be assumed
//! present on the other side. The cache therefore journals every mutation
//! between [`TransferCache::begin_round`] and
//! [`TransferCache::commit_round`]; a drop triggers
//! [`TransferCache::rollback_round`], which restores the last committed
//! state so the retry re-encodes against what the destination *actually*
//! holds. An abandoned migration calls [`TransferCache::forget_vm`] (the
//! destination shell is torn down, its pages gone).

use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard};

use hypertp_machine::{Gfn, PAGE_SIZE};
use hypertp_sim::hash::{digest_words, Digest128};

use crate::framing::{FrameRing, FrameView};
use crate::network::{FrameKind, WireFrame, WIRE_FRAME_HEADER};

/// RLE opcode: a run of zero bytes in the XOR image (`[0x00, len: u16le]`).
pub(crate) const OP_ZERO_RUN: u8 = 0x00;
/// RLE opcode: literal bytes (`[0x01, len: u16le, bytes...]`).
const OP_LITERAL: u8 = 0x01;
/// RLE opcode: a repeated 8-byte XOR pattern
/// (`[0x02, count: u16le, pattern: 8 bytes]` covering `count * 8` bytes).
/// Pages in the simulator's memory model are a 64-bit word repeated
/// across the page, so the XOR image of two versions is an 8-byte pattern
/// repeated 512× — this op collapses a whole-page delta to 11 bytes.
pub(crate) const OP_PATTERN8: u8 = 0x02;
/// Longest run any opcode can carry.
const MAX_RUN: usize = u16::MAX as usize;

/// Expands a content word to its full 4 KiB page image (the simulator's
/// memory model stores one 64-bit word per page; on the wire the page is
/// the word repeated little-endian across the page).
pub fn expand_word(word: u64) -> Vec<u8> {
    let mut page = Vec::new();
    expand_word_into(word, &mut page);
    page
}

/// [`expand_word`] into a caller-owned buffer: `out` is cleared and
/// refilled, so steady-state callers expand pages with zero allocations.
pub fn expand_word_into(word: u64, out: &mut Vec<u8>) {
    let le = word.to_le_bytes();
    out.clear();
    out.reserve(PAGE_SIZE as usize);
    for _ in 0..(PAGE_SIZE as usize / 8) {
        out.extend_from_slice(&le);
    }
}

/// Encodes `new` as an XOR+RLE delta against `old`. Both buffers must be
/// the same length. The stream is a sequence of zero-run and literal ops
/// over `old XOR new`; applying it with [`delta_decode`] against `old`
/// reproduces `new` exactly.
pub fn delta_encode(old: &[u8], new: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    delta_encode_into(old, new, &mut out);
    out
}

/// [`delta_encode`] into a caller-owned op buffer: `out` is cleared and
/// refilled, so a gather loop reuses one scratch buffer across pages
/// instead of allocating a fresh stream per page. Output bytes are
/// identical to [`delta_encode`].
pub fn delta_encode_into(old: &[u8], new: &[u8], out: &mut Vec<u8>) {
    assert_eq!(old.len(), new.len(), "delta operands must align");
    let n = new.len();
    out.clear();
    // Whole-buffer periodic fast path: when the XOR image is one 8-byte
    // pattern repeated (the common case for uniform pages), a single
    // pattern op covers everything. Skipped for the all-zero pattern,
    // where one zero-run op is smaller still.
    if n >= 16 && n.is_multiple_of(8) && n / 8 <= MAX_RUN {
        let mut pattern = [0u8; 8];
        for (p, (&o, &w)) in pattern.iter_mut().zip(old[..8].iter().zip(&new[..8])) {
            *p = o ^ w;
        }
        let periodic = (8..n).all(|i| (old[i] ^ new[i]) == pattern[i % 8]);
        if periodic && pattern.iter().any(|&b| b != 0) {
            let count = (n / 8) as u16;
            out.push(OP_PATTERN8);
            out.extend_from_slice(&count.to_le_bytes());
            out.extend_from_slice(&pattern);
            return;
        }
    }
    let mut i = 0usize;
    while i < n {
        if old[i] == new[i] {
            // Zero run in the XOR image.
            let mut j = i;
            while j < n && old[j] == new[j] && j - i < MAX_RUN {
                j += 1;
            }
            let len = (j - i) as u16;
            out.push(OP_ZERO_RUN);
            out.extend_from_slice(&len.to_le_bytes());
            i = j;
        } else {
            let mut j = i;
            while j < n && old[j] != new[j] && j - i < MAX_RUN {
                j += 1;
            }
            let len = (j - i) as u16;
            out.push(OP_LITERAL);
            out.extend_from_slice(&len.to_le_bytes());
            for k in i..j {
                out.push(old[k] ^ new[k]);
            }
            i = j;
        }
    }
}

/// Delta-encodes two *uniform* pages directly from their content words —
/// the zero-copy hot path. Byte-identical to
/// `delta_encode(&expand_word(old_word), &expand_word(new_word))` without
/// expanding either page: the XOR image of two uniform pages is the
/// words' XOR repeated, which is exactly one pattern op (or one zero-run
/// op when the words are equal).
pub fn delta_encode_words_into(old_word: u64, new_word: u64, out: &mut Vec<u8>) {
    out.clear();
    let x = old_word ^ new_word;
    if x == 0 {
        // Equal pages: the zero-run loop emits a single full-page run.
        out.push(OP_ZERO_RUN);
        out.extend_from_slice(&(PAGE_SIZE as u16).to_le_bytes());
    } else {
        out.push(OP_PATTERN8);
        out.extend_from_slice(&((PAGE_SIZE / 8) as u16).to_le_bytes());
        out.extend_from_slice(&x.to_le_bytes());
    }
}

/// Applies a delta stream to a *uniform* page given only its content
/// word — the zero-copy destination hot path. Returns the new content
/// word exactly when `delta_decode(&expand_word(old_word), delta)`
/// succeeds *and* decodes to a uniform page (the same condition
/// [`TransferCache::apply_frame`] enforces); `None` otherwise. Total on
/// arbitrary bytes, allocates nothing.
///
/// Works by tracking, per byte-offset class modulo 8, the XOR byte each
/// op assigns: the decoded page is uniform iff every class gets a single
/// consistent value, and then the new word is `old ^ pattern`.
pub fn delta_apply_word(old_word: u64, delta: &[u8]) -> Option<u64> {
    let n = PAGE_SIZE as usize;
    let mut xb: [Option<u8>; 8] = [None; 8];
    let mut uniform = true;
    fn set(xb: &mut [Option<u8>; 8], uniform: &mut bool, class: usize, v: u8) {
        match xb[class] {
            None => xb[class] = Some(v),
            Some(u) if u == v => {}
            Some(_) => *uniform = false,
        }
    }
    let mut pos = 0usize;
    let mut d = 0usize;
    while d < delta.len() {
        let op = delta[d];
        let len_bytes = delta.get(d + 1..d + 3)?;
        let len = u16::from_le_bytes([len_bytes[0], len_bytes[1]]) as usize;
        d += 3;
        let start = pos;
        let end = start.checked_add(len)?;
        if end > n {
            return None;
        }
        match op {
            OP_ZERO_RUN => {
                for k in 0..len.min(8) {
                    set(&mut xb, &mut uniform, (start + k) % 8, 0);
                }
                pos = end;
            }
            OP_LITERAL => {
                let lits = delta.get(d..d + len)?;
                d += len;
                for (k, &b) in lits.iter().enumerate() {
                    set(&mut xb, &mut uniform, (start + k) % 8, b);
                }
                pos = end;
            }
            OP_PATTERN8 => {
                // `len` counts 8-byte repetitions here.
                let pattern = delta.get(d..d + 8)?;
                d += 8;
                let bytes = len.checked_mul(8)?;
                let end = start.checked_add(bytes)?;
                if end > n {
                    return None;
                }
                for k in 0..bytes.min(8) {
                    set(&mut xb, &mut uniform, (start + k) % 8, pattern[k % 8]);
                }
                pos = end;
            }
            _ => return None,
        }
    }
    if pos != n || !uniform {
        return None;
    }
    let ow = old_word.to_le_bytes();
    let mut w = [0u8; 8];
    for (c, b) in w.iter_mut().enumerate() {
        *b = ow[c] ^ xb[c].unwrap_or(0);
    }
    Some(u64::from_le_bytes(w))
}

/// Applies a [`delta_encode`] stream to `old`, returning the
/// reconstructed buffer, or `None` if the stream is malformed (truncated
/// op, bad opcode, or coverage not exactly `old.len()`). Total: never
/// panics on arbitrary bytes.
pub fn delta_decode(old: &[u8], delta: &[u8]) -> Option<Vec<u8>> {
    let mut out = Vec::with_capacity(old.len());
    let mut d = 0usize;
    while d < delta.len() {
        let op = delta[d];
        let len_bytes = delta.get(d + 1..d + 3)?;
        let len = u16::from_le_bytes([len_bytes[0], len_bytes[1]]) as usize;
        d += 3;
        let start = out.len();
        let end = start.checked_add(len)?;
        if end > old.len() {
            return None;
        }
        match op {
            OP_ZERO_RUN => out.extend_from_slice(&old[start..end]),
            OP_LITERAL => {
                let lits = delta.get(d..d + len)?;
                d += len;
                out.extend(lits.iter().zip(&old[start..end]).map(|(&x, &o)| x ^ o));
            }
            OP_PATTERN8 => {
                // `len` counts 8-byte repetitions here.
                let pattern = delta.get(d..d + 8)?;
                d += 8;
                let end = start.checked_add(len.checked_mul(8)?)?;
                if end > old.len() {
                    return None;
                }
                out.extend(
                    old[start..end]
                        .iter()
                        .enumerate()
                        .map(|(k, &o)| o ^ pattern[k % 8]),
                );
            }
            _ => return None,
        }
    }
    if out.len() == old.len() {
        Some(out)
    } else {
        None
    }
}

/// Default cap on committed dedup entries (see
/// [`TransferCache::with_capacity`]). 64 Ki entries ≈ 1.5 MiB of cache
/// state on each side — enough to cover every distinct content word of
/// the fig. 12 fleets while bounding a long-lived destination's memory.
pub const DEFAULT_CACHE_CAPACITY: usize = 1 << 16;

/// One committed dedup entry: the content word plus the logical tick of
/// its last touch (insert or dup hit), the LRU eviction key.
#[derive(Debug, Clone, Copy)]
struct DedupEntry {
    word: u64,
    touched: u64,
}

/// Observability counters of the dedup cache (see [`TransferCache::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Dedup entries currently held.
    pub occupancy: u64,
    /// Configured entry cap.
    pub capacity: u64,
    /// Entries evicted (LRU) since the cache was created.
    pub evictions: u64,
    /// Dedup lookups that hit since the cache was created.
    pub dup_hits: u64,
    /// Dedup lookups performed since the cache was created (every
    /// non-zero page encode consults the map once).
    pub dup_lookups: u64,
}

/// Committed + in-flight state of the dedup/delta cache.
#[derive(Debug)]
struct CacheInner {
    /// Content the destination has materialised: digest → entry.
    dedup: HashMap<u128, DedupEntry>,
    /// Last word acked per (vm tag, gfn) — the destination's current
    /// version of each page, used as the delta base.
    sent: HashMap<(u32, u64), u64>,
    /// Digests inserted into `dedup` since `begin_round` (rollback:
    /// remove).
    journal_dedup: Vec<u128>,
    /// Previous `sent` values overwritten since `begin_round` (rollback:
    /// restore; `None` = the key was absent).
    journal_sent: Vec<((u32, u64), Option<u64>)>,
    /// Max committed dedup entries before LRU eviction kicks in. A soft
    /// cap: entries touched by the in-flight round are never evicted (a
    /// `Dup` frame already encoded this round may reference them), so
    /// occupancy can transiently exceed the cap by the round's footprint.
    capacity: usize,
    /// Logical clock driving LRU order: bumps on every insert/hit.
    tick: u64,
    /// Tick at the last `begin_round` — entries touched at or after this
    /// are pinned for the round.
    round_start_tick: u64,
    /// Entries evicted so far (monotonic; never rolled back).
    evictions: u64,
    /// Dedup lookups that hit (monotonic observability counter).
    dup_hits: u64,
    /// Dedup lookups performed (monotonic observability counter).
    dup_lookups: u64,
}

impl Default for CacheInner {
    fn default() -> Self {
        CacheInner {
            dedup: HashMap::new(),
            sent: HashMap::new(),
            journal_dedup: Vec::new(),
            journal_sent: Vec::new(),
            capacity: DEFAULT_CACHE_CAPACITY,
            tick: 0,
            round_start_tick: 0,
            evictions: 0,
            dup_hits: 0,
            dup_lookups: 0,
        }
    }
}

impl CacheInner {
    /// Inserts `digest → word` with an LRU touch, evicting the least
    /// recently used *evictable* entry first when at capacity. Entries
    /// touched since `begin_round` are pinned (frames already encoded in
    /// this round may reference them), so the cap is soft. The victim is
    /// the minimum `(touched, digest)` pair — a set minimum, deterministic
    /// regardless of `HashMap` iteration order.
    ///
    /// Eviction is safe by construction: losing a digest only downgrades
    /// a *future* `Dup` to `Raw`/`Delta`; it never invalidates delta bases
    /// (those live in `sent`) or frames already on the wire.
    fn insert_dedup(&mut self, digest: u128, word: u64) {
        self.tick += 1;
        let touched = self.tick;
        if !self.dedup.contains_key(&digest) && self.dedup.len() >= self.capacity {
            let victim = self
                .dedup
                .iter()
                .filter(|(_, e)| e.touched < self.round_start_tick)
                .map(|(&k, e)| (e.touched, k))
                .min();
            if let Some((_, k)) = victim {
                self.dedup.remove(&k);
                self.evictions += 1;
            }
        }
        self.dedup.insert(digest, DedupEntry { word, touched });
    }
}

/// The destination-synchronised dedup/delta cache. Cheap to clone —
/// clones share state, which is exactly what `migrate_many` wants: VMs
/// migrated through the same engine dedup against each other's pages
/// (shared template content crosses the wire once).
#[derive(Debug, Clone, Default)]
pub struct TransferCache {
    inner: Arc<Mutex<CacheInner>>,
}

impl TransferCache {
    /// A fresh, empty cache with the default entry cap
    /// ([`DEFAULT_CACHE_CAPACITY`]).
    pub fn new() -> Self {
        TransferCache::default()
    }

    /// A fresh cache capped at `capacity` committed dedup entries
    /// (minimum 1). The cap is soft — see [`CacheInner::insert_dedup`]'s
    /// pinning rule — and eviction-only-safe: overflowing it can only
    /// downgrade future `Dup` frames to `Raw`/`Delta`, never corrupt a
    /// transfer.
    pub fn with_capacity(capacity: usize) -> Self {
        let cache = TransferCache::default();
        cache.lock().capacity = capacity.max(1);
        cache
    }

    /// The configured dedup entry cap.
    pub fn capacity(&self) -> usize {
        self.lock().capacity
    }

    /// Observability counters: occupancy, capacity, evictions, dup
    /// hit/lookup totals.
    pub fn stats(&self) -> CacheStats {
        let c = self.lock();
        CacheStats {
            occupancy: c.dedup.len() as u64,
            capacity: c.capacity as u64,
            evictions: c.evictions,
            dup_hits: c.dup_hits,
            dup_lookups: c.dup_lookups,
        }
    }

    fn lock(&self) -> MutexGuard<'_, CacheInner> {
        self.inner.lock().expect("transfer cache poisoned")
    }

    /// Opens a transactional round: mutations from here to
    /// [`TransferCache::commit_round`] can be undone by
    /// [`TransferCache::rollback_round`].
    pub fn begin_round(&self) {
        let mut c = self.lock();
        debug_assert!(
            c.journal_dedup.is_empty() && c.journal_sent.is_empty(),
            "previous round neither committed nor rolled back"
        );
        c.journal_dedup.clear();
        c.journal_sent.clear();
        // Entries touched from here on are pinned against eviction until
        // the round commits or rolls back: frames already encoded this
        // round may reference them.
        c.round_start_tick = c.tick + 1;
    }

    /// The destination acked the round: in-flight state becomes committed.
    pub fn commit_round(&self) {
        let mut c = self.lock();
        c.journal_dedup.clear();
        c.journal_sent.clear();
    }

    /// The round was lost on the wire: undo every mutation since
    /// [`TransferCache::begin_round`], restoring the last committed state
    /// (what the destination actually holds).
    pub fn rollback_round(&self) {
        let mut c = self.lock();
        let dedup_undo: Vec<u128> = c.journal_dedup.drain(..).collect();
        for key in dedup_undo {
            c.dedup.remove(&key);
        }
        // Restore in reverse so the oldest snapshot of a twice-written key
        // wins.
        let sent_undo: Vec<((u32, u64), Option<u64>)> = c.journal_sent.drain(..).collect();
        for (key, prev) in sent_undo.into_iter().rev() {
            match prev {
                Some(v) => {
                    c.sent.insert(key, v);
                }
                None => {
                    c.sent.remove(&key);
                }
            }
        }
    }

    /// Drops every entry belonging to `vm` (the destination shell was
    /// torn down after an abandoned migration; its pages no longer exist
    /// on the other side). Dedup entries stay: they are owned by whichever
    /// VMs committed them — but when no other VM holds the content the
    /// conservative choice is to drop the whole dedup map, which is what
    /// this does. Correctness never depends on dedup hits, only on the
    /// map never claiming content the destination lacks.
    pub fn forget_vm(&self, vm: u32) {
        let mut c = self.lock();
        c.sent.retain(|&(tag, _), _| tag != vm);
        c.dedup.clear();
        c.journal_dedup.clear();
        c.journal_sent.retain(|&((tag, _), _)| tag != vm);
    }

    /// Wipes everything (tests; or a destination host restart). The
    /// configured capacity survives; counters restart from zero.
    pub fn clear(&self) {
        let mut c = self.lock();
        let capacity = c.capacity;
        *c = CacheInner {
            capacity,
            ..CacheInner::default()
        };
    }

    /// Committed dedup entries (diagnostics).
    pub fn dedup_len(&self) -> usize {
        self.lock().dedup.len()
    }

    /// Tracked (vm, gfn) delta bases (diagnostics).
    pub fn sent_len(&self) -> usize {
        self.lock().sent.len()
    }

    /// Encodes one page for the wire, journalling the cache mutations the
    /// destination will perform when it applies the frame.
    ///
    /// Classification order: zero marker, dedup hit, delta against the
    /// last acked version (falling back to raw when the delta does not
    /// pay), raw.
    pub fn encode_page(&self, vm: u32, gfn: u64, word: u64) -> WireFrame {
        let mut c = self.lock();
        let key = (vm, gfn);
        if word == 0 {
            // Destination materialises zeros locally; record the base so a
            // later non-zero version can delta against a zero page.
            let prev = c.sent.insert(key, 0);
            c.journal_sent.push((key, prev));
            return WireFrame::Zero;
        }
        let digest = digest_words(&[word]);
        c.dup_lookups += 1;
        if c.dedup.contains_key(&digest.as_u128()) {
            // LRU touch: a hit pins the entry for the round and refreshes
            // its eviction rank.
            c.dup_hits += 1;
            c.tick += 1;
            let tick = c.tick;
            if let Some(e) = c.dedup.get_mut(&digest.as_u128()) {
                e.touched = tick;
            }
            let prev = c.sent.insert(key, word);
            c.journal_sent.push((key, prev));
            return WireFrame::Dup { digest };
        }
        let frame = match c.sent.get(&key).copied() {
            Some(old) if old != word => {
                let delta = delta_encode(&expand_word(old), &expand_word(word));
                if (delta.len() as u64) + WIRE_FRAME_HEADER < WIRE_FRAME_HEADER + PAGE_SIZE {
                    WireFrame::Delta { delta }
                } else {
                    WireFrame::Raw { word }
                }
            }
            // `old == word` reaches here only when the word's digest was
            // evicted after `old` shipped (a dedup hit would otherwise
            // have fired above); the re-send ships raw, which is always
            // correct. An untracked page ships raw too.
            _ => WireFrame::Raw { word },
        };
        c.insert_dedup(digest.as_u128(), word);
        c.journal_dedup.push(digest.as_u128());
        let prev = c.sent.insert(key, word);
        c.journal_sent.push((key, prev));
        frame
    }

    /// Applies a frame on the destination side, given the destination's
    /// current content word for the page. Returns the page's new word, or
    /// `None` when the frame is inconsistent with the destination's state
    /// (a dup for unknown content; a delta that does not decode to a
    /// uniform page) — an integrity violation for the engine to surface.
    pub fn apply_frame(&self, frame: &WireFrame, dst_current: u64) -> Option<u64> {
        match frame {
            WireFrame::Raw { word } => Some(*word),
            WireFrame::Zero => Some(0),
            WireFrame::Dup { digest } => self.lock().dedup.get(&digest.as_u128()).map(|e| e.word),
            WireFrame::Delta { delta } => {
                let old = expand_word(dst_current);
                let page = delta_decode(&old, delta)?;
                let word = u64::from_le_bytes(page[..8].try_into().ok()?);
                // The simulator's pages are uniform; a non-uniform decode
                // means the delta base diverged from the destination.
                if page == expand_word(word) {
                    Some(word)
                } else {
                    None
                }
            }
        }
    }

    /// Batch counterpart of [`TransferCache::encode_page`]: encodes a
    /// whole extent of pages straight into `ring` under **one** lock
    /// acquisition, with digests precomputed by the caller (fanned over
    /// the worker pool). Returns the accounted wire bytes of the batch.
    ///
    /// Classification, journalling and LRU mutation order are identical
    /// to calling `encode_page` per page — `WireStats`, cache counters
    /// and chaos-replay rollback behaviour match byte for byte. The one
    /// shortcut is deliberate and lossless: the simulator's pages are
    /// uniform, so a re-dirtied page's delta is the ≤11-byte word-level
    /// stream, which always beats a raw page — the legacy size check can
    /// never pick `Raw` there.
    ///
    /// `digests[i]` must equal `digest_words(&[words[i]])`; it is only
    /// consulted for non-zero words, matching `encode_page`.
    pub fn encode_batch_into(
        &self,
        vm: u32,
        gfns: &[Gfn],
        words: &[u64],
        digests: &[Digest128],
        ring: &mut FrameRing,
    ) -> u64 {
        debug_assert_eq!(gfns.len(), words.len());
        debug_assert_eq!(words.len(), digests.len());
        let mut c = self.lock();
        let mut wire_bytes = 0u64;
        for ((&g, &word), &digest) in gfns.iter().zip(words).zip(digests) {
            let gfn = g.0;
            let key = (vm, gfn);
            if word == 0 {
                let prev = c.sent.insert(key, 0);
                c.journal_sent.push((key, prev));
                wire_bytes += ring.push_zero(gfn);
                continue;
            }
            debug_assert_eq!(digest, digest_words(&[word]));
            c.dup_lookups += 1;
            if c.dedup.contains_key(&digest.as_u128()) {
                c.dup_hits += 1;
                c.tick += 1;
                let tick = c.tick;
                if let Some(e) = c.dedup.get_mut(&digest.as_u128()) {
                    e.touched = tick;
                }
                let prev = c.sent.insert(key, word);
                c.journal_sent.push((key, prev));
                wire_bytes += ring.push_dup(gfn, digest);
                continue;
            }
            match c.sent.get(&key).copied() {
                Some(old) if old != word => {
                    wire_bytes += ring.push_delta_words(gfn, old, word);
                }
                _ => {
                    wire_bytes += ring.push_raw(gfn, word);
                }
            }
            c.insert_dedup(digest.as_u128(), word);
            c.journal_dedup.push(digest.as_u128());
            let prev = c.sent.insert(key, word);
            c.journal_sent.push((key, prev));
        }
        wire_bytes
    }

    /// Applies a borrowed serialized frame on the destination side — the
    /// zero-copy counterpart of [`TransferCache::apply_frame`], using the
    /// word-level delta apply so the steady state never expands a page.
    /// Same contract: `None` flags an integrity violation.
    pub fn apply_view(&self, view: &FrameView<'_>, dst_current: u64) -> Option<u64> {
        match view.kind {
            FrameKind::Raw => view.raw_word(),
            FrameKind::Zero => Some(0),
            FrameKind::Dup => {
                let digest = view.dup_digest()?;
                self.lock().dedup.get(&digest.as_u128()).map(|e| e.word)
            }
            FrameKind::Delta => delta_apply_word(dst_current, view.payload),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::FrameKind;
    use hypertp_sim::SimRng;

    #[test]
    fn expand_word_shape() {
        let p = expand_word(0x0102_0304_0506_0708);
        assert_eq!(p.len(), PAGE_SIZE as usize);
        assert_eq!(&p[..8], &0x0102_0304_0506_0708u64.to_le_bytes());
        assert_eq!(&p[8..16], &p[..8]);
        assert!(expand_word(0).iter().all(|&b| b == 0));
    }

    #[test]
    fn delta_roundtrip_identity_and_disjoint() {
        let old = expand_word(0xdead_beef);
        // Identical pages: a couple of zero-run ops, tiny stream.
        let d = delta_encode(&old, &old);
        assert!(d.len() <= 6, "identity delta is {} bytes", d.len());
        assert_eq!(delta_decode(&old, &d).unwrap(), old);
        // Single-byte change per word: mostly zero runs.
        let new = expand_word(0xdead_beef ^ 0x41);
        let d = delta_encode(&old, &new);
        assert!(d.len() < PAGE_SIZE as usize / 2, "sparse delta pays");
        assert_eq!(delta_decode(&old, &d).unwrap(), new);
    }

    #[test]
    fn delta_property_random_mutations() {
        // Seeded property test: arbitrary byte-level mutations of a 4 KiB
        // page always round-trip, and the stream is never absurdly large.
        let mut rng = SimRng::new(0xde17a);
        for case in 0..200 {
            let old = expand_word(rng.next_u64());
            let mut new = old.clone();
            let mutations = rng.gen_range(64) as usize;
            for _ in 0..mutations {
                let at = rng.gen_range(PAGE_SIZE) as usize;
                new[at] ^= (rng.gen_range(255) + 1) as u8;
            }
            let d = delta_encode(&old, &new);
            assert_eq!(
                delta_decode(&old, &d).as_deref(),
                Some(new.as_slice()),
                "case {case}"
            );
            // Worst case: alternating ops cost ≤ 4 bytes/byte + slack.
            assert!(d.len() <= 4 * PAGE_SIZE as usize + 8, "case {case}");
            // Wrong base must not silently succeed as the right page.
            let wrong = expand_word(rng.next_u64());
            if wrong != old {
                if let Some(p) = delta_decode(&wrong, &d) {
                    assert_ne!(p, new, "case {case}: wrong base produced right page");
                }
            }
        }
    }

    #[test]
    fn word_level_encode_matches_expanded_encode() {
        // The zero-copy fast path must emit byte-identical streams to the
        // page-expanding encoder for every pair of uniform pages.
        let mut rng = SimRng::new(0x0e17_c0de);
        let mut fast = Vec::new();
        for case in 0..500 {
            let old = rng.next_u64();
            let new = if case % 7 == 0 { old } else { rng.next_u64() };
            delta_encode_words_into(old, new, &mut fast);
            assert_eq!(
                fast,
                delta_encode(&expand_word(old), &expand_word(new)),
                "case {case}: old={old:#x} new={new:#x}"
            );
        }
        // Scratch reuse never regrows after the first call.
        let cap = fast.capacity();
        for i in 0..64u64 {
            delta_encode_words_into(i, i ^ 0xff, &mut fast);
        }
        assert_eq!(fast.capacity(), cap);
    }

    #[test]
    fn encode_into_matches_encode_and_reuses_scratch() {
        let mut rng = SimRng::new(0xe4c0);
        let mut scratch = Vec::new();
        for _ in 0..100 {
            let old = expand_word(rng.next_u64());
            let mut new = old.clone();
            for _ in 0..rng.gen_range(96) {
                let at = rng.gen_range(PAGE_SIZE) as usize;
                new[at] ^= (rng.gen_range(255) + 1) as u8;
            }
            delta_encode_into(&old, &new, &mut scratch);
            assert_eq!(scratch, delta_encode(&old, &new));
        }
    }

    #[test]
    fn word_level_apply_matches_expanded_apply() {
        // delta_apply_word must agree with decode-then-uniform-check on
        // real deltas, garbage streams, and mismatched bases alike.
        let mut rng = SimRng::new(0xa117);
        let legacy = |old_word: u64, delta: &[u8]| -> Option<u64> {
            let old = expand_word(old_word);
            let page = delta_decode(&old, delta)?;
            let word = u64::from_le_bytes(page[..8].try_into().ok()?);
            if page == expand_word(word) {
                Some(word)
            } else {
                None
            }
        };
        for case in 0..400 {
            let base = rng.next_u64();
            let delta: Vec<u8> = match case % 4 {
                0 => delta_encode(&expand_word(base), &expand_word(rng.next_u64())),
                1 => {
                    // A non-uniform mutation: decodes but fails uniformity.
                    let mut new = expand_word(base);
                    let at = rng.gen_range(PAGE_SIZE) as usize;
                    new[at] ^= 1 + rng.gen_range(255) as u8;
                    delta_encode(&expand_word(base), &new)
                }
                2 => {
                    let len = rng.gen_range(48) as usize;
                    (0..len).map(|_| rng.gen_range(256) as u8).collect()
                }
                _ => {
                    // Valid delta applied against the wrong base word.
                    delta_encode(&expand_word(rng.next_u64()), &expand_word(rng.next_u64()))
                }
            };
            assert_eq!(
                delta_apply_word(base, &delta),
                legacy(base, &delta),
                "case {case}"
            );
        }
        assert_eq!(delta_apply_word(7, &[]), None);
        assert_eq!(delta_apply_word(7, &[OP_ZERO_RUN]), None);
    }

    #[test]
    fn delta_decode_is_total_on_garbage() {
        let old = expand_word(7);
        let mut rng = SimRng::new(0x6a6b);
        for _ in 0..500 {
            let len = rng.gen_range(64) as usize;
            let junk: Vec<u8> = (0..len).map(|_| rng.gen_range(256) as u8).collect();
            // Must not panic; may decode or reject.
            let _ = delta_decode(&old, &junk);
        }
        assert_eq!(delta_decode(&old, &[]), None, "empty covers nothing");
        assert_eq!(delta_decode(&old, &[OP_ZERO_RUN]), None, "truncated op");
        assert_eq!(delta_decode(&old, &[0x7f, 0, 16]), None, "bad opcode");
    }

    #[test]
    fn encode_classifies_zero_dup_delta_raw() {
        let cache = TransferCache::new();
        cache.begin_round();
        assert_eq!(cache.encode_page(0, 1, 0).kind(), FrameKind::Zero);
        assert_eq!(cache.encode_page(0, 2, 0xaaaa).kind(), FrameKind::Raw);
        // Same content, different page / different VM: dedup.
        assert_eq!(cache.encode_page(0, 3, 0xaaaa).kind(), FrameKind::Dup);
        assert_eq!(cache.encode_page(1, 9, 0xaaaa).kind(), FrameKind::Dup);
        cache.commit_round();
        // Page 2 re-dirtied with a near value: delta beats raw.
        cache.begin_round();
        let f = cache.encode_page(0, 2, 0xaaab);
        assert_eq!(f.kind(), FrameKind::Delta);
        assert!(f.wire_bytes() < WIRE_FRAME_HEADER + PAGE_SIZE);
        // And the destination, holding 0xaaaa, reconstructs 0xaaab.
        assert_eq!(cache.apply_frame(&f, 0xaaaa), Some(0xaaab));
        cache.commit_round();
    }

    #[test]
    fn apply_matches_encode_for_all_kinds() {
        let cache = TransferCache::new();
        cache.begin_round();
        let raw = cache.encode_page(0, 1, 0x1234);
        assert_eq!(cache.apply_frame(&raw, 0), Some(0x1234));
        let dup = cache.encode_page(0, 2, 0x1234);
        assert_eq!(dup.kind(), FrameKind::Dup);
        assert_eq!(cache.apply_frame(&dup, 0), Some(0x1234));
        let zero = cache.encode_page(0, 3, 0);
        assert_eq!(cache.apply_frame(&zero, 0xffff), Some(0));
        cache.commit_round();
    }

    #[test]
    fn dup_for_unknown_content_is_rejected() {
        let cache = TransferCache::new();
        let frame = WireFrame::Dup {
            digest: digest_words(&[0x5555]),
        };
        assert_eq!(cache.apply_frame(&frame, 0), None);
    }

    #[test]
    fn rollback_restores_committed_state() {
        let cache = TransferCache::new();
        cache.begin_round();
        assert_eq!(cache.encode_page(0, 1, 0xcafe).kind(), FrameKind::Raw);
        cache.commit_round();
        assert_eq!(cache.dedup_len(), 1);

        // A round that never reaches the destination.
        cache.begin_round();
        assert_eq!(cache.encode_page(0, 2, 0xf00d).kind(), FrameKind::Raw);
        assert_eq!(cache.encode_page(0, 1, 0xf00d).kind(), FrameKind::Dup);
        cache.rollback_round();
        assert_eq!(cache.dedup_len(), 1, "0xf00d never arrived");
        assert_eq!(cache.sent_len(), 1, "gfn 2 never arrived");

        // Re-encoding after rollback must not emit a Dup for content the
        // destination lacks, and gfn 1's base must still be 0xcafe.
        cache.begin_round();
        assert_eq!(cache.encode_page(0, 2, 0xf00d).kind(), FrameKind::Raw);
        let f = cache.encode_page(0, 1, 0xcaff);
        assert_eq!(f.kind(), FrameKind::Delta);
        assert_eq!(cache.apply_frame(&f, 0xcafe), Some(0xcaff));
        cache.commit_round();
    }

    #[test]
    fn rollback_restores_oldest_snapshot_of_twice_written_key() {
        let cache = TransferCache::new();
        cache.begin_round();
        cache.encode_page(0, 5, 0x11);
        cache.commit_round();
        cache.begin_round();
        cache.encode_page(0, 5, 0x22);
        cache.encode_page(0, 5, 0x33);
        cache.rollback_round();
        // Delta base for gfn 5 must be back to 0x11: encoding 0x44 as a
        // delta against 0x11 must decode against a dest holding 0x11.
        cache.begin_round();
        let f = cache.encode_page(0, 5, 0x1111_0011);
        if let WireFrame::Delta { .. } = f {
            assert_eq!(cache.apply_frame(&f, 0x11), Some(0x1111_0011));
        }
        cache.commit_round();
    }

    #[test]
    fn forget_vm_drops_its_delta_bases() {
        let cache = TransferCache::new();
        cache.begin_round();
        cache.encode_page(0, 1, 0xaa);
        cache.encode_page(1, 1, 0xbb);
        cache.commit_round();
        cache.forget_vm(0);
        assert_eq!(cache.sent_len(), 1, "vm1's base survives");
        assert_eq!(cache.dedup_len(), 0, "dedup conservatively dropped");
        // vm0's page must ship raw again (no stale delta base).
        cache.begin_round();
        assert_eq!(cache.encode_page(0, 1, 0xab).kind(), FrameKind::Raw);
        cache.commit_round();
    }

    #[test]
    fn capped_cache_evicts_lru_and_downgrades_future_dups() {
        let cache = TransferCache::with_capacity(2);
        assert_eq!(cache.capacity(), 2);
        cache.begin_round();
        cache.encode_page(0, 1, 0x01);
        cache.encode_page(0, 2, 0x02);
        cache.commit_round();
        // Touch 0x01 so 0x02 is the LRU entry.
        cache.begin_round();
        assert_eq!(cache.encode_page(0, 3, 0x01).kind(), FrameKind::Dup);
        cache.commit_round();
        // Inserting 0x03 evicts 0x02 (LRU), not 0x01.
        cache.begin_round();
        assert_eq!(cache.encode_page(0, 4, 0x03).kind(), FrameKind::Raw);
        cache.commit_round();
        let s = cache.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.occupancy, 2);
        cache.begin_round();
        assert_eq!(
            cache.encode_page(0, 5, 0x01).kind(),
            FrameKind::Dup,
            "recently used entry survives"
        );
        // 0x02's digest was evicted: the future reference downgrades to
        // Raw — never an unreconstructable Dup.
        assert_eq!(cache.encode_page(0, 6, 0x02).kind(), FrameKind::Raw);
        cache.commit_round();
        let s = cache.stats();
        assert!(s.dup_lookups >= 6);
        assert_eq!(s.dup_hits, 2);
    }

    #[test]
    fn entries_touched_this_round_are_pinned_against_eviction() {
        // Capacity 1, but a round that references its own insert must not
        // evict it: the Dup frame already encoded would dangle.
        let cache = TransferCache::with_capacity(1);
        cache.begin_round();
        let raw = cache.encode_page(0, 1, 0xaa);
        assert_eq!(raw.kind(), FrameKind::Raw);
        // Same round: new content wants a slot, but 0xaa is pinned — the
        // soft cap lets occupancy overflow instead.
        let raw2 = cache.encode_page(0, 2, 0xbb);
        assert_eq!(raw2.kind(), FrameKind::Raw);
        let dup = cache.encode_page(0, 3, 0xaa);
        assert_eq!(dup.kind(), FrameKind::Dup);
        assert_eq!(cache.apply_frame(&dup, 0), Some(0xaa), "no dangling dup");
        cache.commit_round();
        assert_eq!(cache.stats().evictions, 0);
        assert_eq!(cache.stats().occupancy, 2, "soft cap overflowed by one");
        // Next round the cap is enforced again: inserting 0xcc evicts.
        cache.begin_round();
        cache.encode_page(0, 4, 0xcc);
        cache.commit_round();
        assert!(cache.stats().evictions >= 1);
    }

    #[test]
    fn eviction_after_rollback_keeps_cache_consistent() {
        let cache = TransferCache::with_capacity(2);
        cache.begin_round();
        cache.encode_page(0, 1, 0x11);
        cache.encode_page(0, 2, 0x22);
        cache.commit_round();
        // A round that inserts (evicting 0x11) and then rolls back.
        cache.begin_round();
        assert_eq!(cache.encode_page(0, 3, 0x33).kind(), FrameKind::Raw);
        cache.rollback_round();
        // 0x33 never arrived; re-encoding it must not claim a Dup.
        cache.begin_round();
        assert_eq!(cache.encode_page(0, 3, 0x33).kind(), FrameKind::Raw);
        cache.commit_round();
    }

    #[test]
    fn clear_preserves_capacity_and_resets_counters() {
        let cache = TransferCache::with_capacity(3);
        cache.begin_round();
        cache.encode_page(0, 1, 0x9);
        cache.commit_round();
        cache.clear();
        assert_eq!(cache.capacity(), 3);
        let s = cache.stats();
        assert_eq!(
            (s.occupancy, s.evictions, s.dup_hits, s.dup_lookups),
            (0, 0, 0, 0)
        );
    }

    #[test]
    fn clones_share_state_for_cross_vm_dedup() {
        let a = TransferCache::new();
        let b = a.clone();
        a.begin_round();
        assert_eq!(a.encode_page(0, 1, 0x7777).kind(), FrameKind::Raw);
        a.commit_round();
        b.begin_round();
        assert_eq!(
            b.encode_page(5, 99, 0x7777).kind(),
            FrameKind::Dup,
            "clone sees content committed through the original"
        );
        b.commit_round();
    }

    /// Drives the same random multi-round, multi-VM workload (with
    /// rollbacks and a tight eviction cap) through the per-page
    /// `encode_page` path and the batched ring path, asserting
    /// frame-for-frame, byte-for-byte, counter-for-counter equality —
    /// the identity the zero-copy engine path rests on.
    #[test]
    fn batch_encode_matches_per_page_path_exactly() {
        use crate::framing::FrameRing;

        let mut rng = SimRng::new(0xba7c);
        for &cap in &[DEFAULT_CACHE_CAPACITY, 5] {
            let legacy = TransferCache::with_capacity(cap);
            let ring_cache = TransferCache::with_capacity(cap);
            let mut ring = FrameRing::new();
            for round in 0..24u64 {
                let vm = (round % 3) as u32;
                let n = 1 + rng.gen_range(40) as usize;
                let gfns: Vec<Gfn> = (0..n).map(|_| Gfn(rng.gen_range(32))).collect();
                let words: Vec<u64> = (0..n)
                    .map(|_| match rng.gen_range(4) {
                        0 => 0,
                        1 => 0x5a5a, // recurring content → dup hits
                        _ => rng.next_u64() | 1,
                    })
                    .collect();
                let digests: Vec<Digest128> = words.iter().map(|&w| digest_words(&[w])).collect();
                let drop_round = rng.gen_range(5) == 0;

                legacy.begin_round();
                let mut legacy_frames = Vec::new();
                let mut legacy_bytes = 0u64;
                for (&g, &w) in gfns.iter().zip(&words) {
                    let f = legacy.encode_page(vm, g.0, w);
                    legacy_bytes += f.wire_bytes();
                    legacy_frames.push(f);
                }

                ring.restart();
                ring.begin();
                ring_cache.begin_round();
                let ring_bytes =
                    ring_cache.encode_batch_into(vm, &gfns, &words, &digests, &mut ring);

                assert_eq!(ring_bytes, legacy_bytes, "round {round} wire accounting");
                assert_eq!(ring.frame_count() as usize, legacy_frames.len());
                for (i, (view, legacy_frame)) in ring.iter().zip(legacy_frames.iter()).enumerate() {
                    assert_eq!(view.gfn, gfns[i].0);
                    assert_eq!(
                        &view.to_frame().unwrap(),
                        legacy_frame,
                        "round {round} frame {i}"
                    );
                    // Apply parity, including deliberately wrong bases.
                    let dst = words[i] ^ u64::from(i as u32);
                    assert_eq!(
                        ring_cache.apply_view(&view, dst),
                        legacy.apply_frame(legacy_frame, dst),
                        "round {round} frame {i} apply"
                    );
                }

                if drop_round {
                    legacy.rollback_round();
                    ring_cache.rollback_round();
                    ring.rollback();
                    assert_eq!(ring.frame_count(), 0, "round batch fully rolled back");
                } else {
                    legacy.commit_round();
                    ring_cache.commit_round();
                    ring.commit();
                }
                let (a, b) = (legacy.stats(), ring_cache.stats());
                assert_eq!(
                    (a.occupancy, a.evictions, a.dup_hits, a.dup_lookups),
                    (b.occupancy, b.evictions, b.dup_hits, b.dup_lookups),
                    "round {round} cache counters"
                );
                assert_eq!(legacy.sent_len(), ring_cache.sent_len());
            }
        }
    }
}
