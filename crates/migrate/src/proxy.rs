//! The §4.2 source/destination proxy pair over a pluggable transport.
//!
//! The in-process engine ([`crate::engine::MigrationTp`]) holds both
//! machines in one address space. The paper's deployment instead runs a
//! *proxy* on each machine: the source proxy drives the pre-copy loop and
//! streams serialized frames, the destination proxy materialises them and
//! translates the VMi State through UISR. This module is that split: the
//! exact same encode path (shared [`crate::wire::TransferCache`], shared
//! [`crate::framing::FrameRing`] scratch, same frame classification) with
//! a [`Transport`] in the middle — so a fault-free proxy run produces a
//! destination RAM image and [`WireStats`] **byte-identical** to the
//! in-process engine.
//!
//! **Protocol.** Each transport frame is one message, tag byte first:
//!
//! | tag  | message   | payload |
//! |------|-----------|---------|
//! | 0x10 | Hello     | resume flag, round, [`VmConfig`] |
//! | 0x11 | HelloAck  | destination hypervisor kind |
//! | 0x12 | Round     | stop flag, round, frame count, serialized frames |
//! | 0x13 | Ack       | round (`u32::MAX` acks the UISR blob) |
//! | 0x14 | Nak       | round (`u32::MAX` = UISR decode rejected) |
//! | 0x15 | Uisr      | encoded UISR blob |
//! | 0x16 | Done      | source RAM checksum, total duration |
//! | 0x17 | DoneAck   | destination RAM checksum, wire bytes, frames |
//!
//! **Commit discipline.** A round commits on `Ack` delivery: the
//! destination stages every write (and dedup-mirror insert) while
//! validating the stream, applies atomically, then acks; the source
//! commits its cache journal and ring watermark only on the ack. A
//! mid-stream disconnect therefore loses the round wholesale — the
//! destination drops its staged state, the source rolls back and
//! re-encodes against what the destination still holds, exactly like the
//! engine's `LinkDrop` recovery (and recorded through the same
//! [`RecoveryAction`]s). The destination's dedup mirror is insert-only
//! and content-addressed; the source's LRU evictions only downgrade
//! future `Dup`s, so a larger mirror can never disagree.

use std::collections::HashMap;

use hypertp_core::{HtpError, Hypervisor, HypervisorKind, VmConfig, VmId};
use hypertp_machine::Gfn;
use hypertp_machine::Machine;
use hypertp_sim::fault::{InjectionPoint, RecoveryAction};
use hypertp_sim::hash::digest_words;
use hypertp_sim::SimDuration;

use crate::engine::{backoff_delay, MigrationTp};
use crate::framing::FrameIter;
use crate::network::{FrameKind, WireStats};
use crate::transport::Transport;
use crate::wire::delta_apply_word;

const MSG_HELLO: u8 = 0x10;
const MSG_HELLO_ACK: u8 = 0x11;
const MSG_ROUND: u8 = 0x12;
const MSG_ACK: u8 = 0x13;
const MSG_NAK: u8 = 0x14;
const MSG_UISR: u8 = 0x15;
const MSG_DONE: u8 = 0x16;
const MSG_DONE_ACK: u8 = 0x17;

/// Round number that acks/naks the UISR blob instead of a page round.
const UISR_ROUND: u32 = u32::MAX;

/// Maps a transport failure to the engine's link-failure error.
fn link_err(vm_name: &str, e: crate::transport::TransportError) -> HtpError {
    let _ = e;
    HtpError::LinkFailure {
        vm_name: vm_name.to_string(),
        retries: 0,
    }
}

fn integrity(vm_name: &str) -> HtpError {
    HtpError::IntegrityViolation {
        vm_name: vm_name.to_string(),
    }
}

/// Little-endian cursor over a received message.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }
    fn u8(&mut self) -> Option<u8> {
        let v = *self.buf.get(self.pos)?;
        self.pos += 1;
        Some(v)
    }
    fn u16(&mut self) -> Option<u16> {
        let b = self.buf.get(self.pos..self.pos + 2)?;
        self.pos += 2;
        Some(u16::from_le_bytes(b.try_into().ok()?))
    }
    fn u32(&mut self) -> Option<u32> {
        let b = self.buf.get(self.pos..self.pos + 4)?;
        self.pos += 4;
        Some(u32::from_le_bytes(b.try_into().ok()?))
    }
    fn u64(&mut self) -> Option<u64> {
        let b = self.buf.get(self.pos..self.pos + 8)?;
        self.pos += 8;
        Some(u64::from_le_bytes(b.try_into().ok()?))
    }
    fn bytes(&mut self, n: usize) -> Option<&'a [u8]> {
        let b = self.buf.get(self.pos..self.pos + n)?;
        self.pos += n;
        Some(b)
    }
    fn rest(&mut self) -> &'a [u8] {
        let b = &self.buf[self.pos..];
        self.pos = self.buf.len();
        b
    }
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u16).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn get_str(r: &mut Reader<'_>) -> Option<String> {
    let n = r.u16()? as usize;
    String::from_utf8(r.bytes(n)?.to_vec()).ok()
}

fn encode_hello(out: &mut Vec<u8>, cfg: &VmConfig, resume: bool, round: u32) {
    out.clear();
    out.push(MSG_HELLO);
    out.push(resume as u8);
    out.extend_from_slice(&round.to_le_bytes());
    out.extend_from_slice(&cfg.vcpus.to_le_bytes());
    out.extend_from_slice(&cfg.memory_gb.to_le_bytes());
    let flags = (cfg.huge_pages as u8)
        | ((cfg.inplace_compatible as u8) << 1)
        | ((cfg.has_network as u8) << 2);
    out.push(flags);
    put_str(out, &cfg.name);
    put_str(out, &cfg.storage_backend);
}

fn decode_hello(buf: &[u8]) -> Option<(VmConfig, bool, u32)> {
    let mut r = Reader::new(buf);
    if r.u8()? != MSG_HELLO {
        return None;
    }
    let resume = r.u8()? != 0;
    let round = r.u32()?;
    let vcpus = r.u32()?;
    let memory_gb = r.u64()?;
    let flags = r.u8()?;
    let name = get_str(&mut r)?;
    let storage_backend = get_str(&mut r)?;
    Some((
        VmConfig {
            name,
            vcpus,
            memory_gb,
            huge_pages: flags & 1 != 0,
            inplace_compatible: flags & 2 != 0,
            has_network: flags & 4 != 0,
            storage_backend,
        },
        resume,
        round,
    ))
}

fn kind_tag(kind: HypervisorKind) -> u8 {
    match kind {
        HypervisorKind::Xen => 0,
        HypervisorKind::Kvm => 1,
    }
}

fn kind_from_tag(tag: u8) -> Option<HypervisorKind> {
    match tag {
        0 => Some(HypervisorKind::Xen),
        1 => Some(HypervisorKind::Kvm),
        _ => None,
    }
}

/// Report of a source-proxy migration — the over-the-wire analogue of
/// [`crate::engine::MigrationReport`], plus both sides' RAM checksums.
#[derive(Debug, Clone)]
pub struct ProxyReport {
    /// Migrated VM's name.
    pub vm_name: String,
    /// Pre-copy rounds sent (excluding the stop-and-copy set).
    pub rounds: u32,
    /// Accounted wire bytes sent (frames + payloads).
    pub bytes_sent: u64,
    /// Encoded UISR bytes.
    pub uisr_bytes: u64,
    /// Per-frame-kind wire accounting (matches the in-process engine's).
    pub wire: WireStats,
    /// Pre-copy duration (simulated).
    pub precopy: SimDuration,
    /// Downtime (simulated stop-and-copy).
    pub downtime: SimDuration,
    /// Total migration time (simulated).
    pub total: SimDuration,
    /// Source guest-RAM checksum at pause time.
    pub src_checksum: u64,
    /// Destination guest-RAM checksum after resume (from `DoneAck`).
    pub dst_checksum: u64,
    /// Frames the destination reported applying.
    pub dst_frames: u64,
}

/// Report of a destination-proxy session.
#[derive(Debug, Clone)]
pub struct DestReport {
    /// The VM received.
    pub vm_name: String,
    /// Rounds applied (including the stop-and-copy set).
    pub rounds: u32,
    /// Frames applied.
    pub frames: u64,
    /// Accounted wire bytes received.
    pub wire_bytes: u64,
    /// Guest-RAM checksum after resume.
    pub checksum: u64,
    /// Compatibility warnings from UISR restore.
    pub warnings: Vec<String>,
}

/// Folds a VM's guest pages into a 64-bit checksum (two-lane FNV over
/// the content words; both proxies compute it the same way).
pub fn guest_checksum(
    machine: &Machine,
    hv: &dyn Hypervisor,
    id: VmId,
    gfns: &[Gfn],
) -> Result<u64, HtpError> {
    let words = hv.read_guest_many(machine, id, gfns)?;
    let d = digest_words(&words);
    Ok(d.hi ^ d.lo)
}

fn all_gfns(hv: &dyn Hypervisor, id: VmId) -> Result<Vec<Gfn>, HtpError> {
    Ok(hv
        .guest_memory_map(id)?
        .iter()
        .flat_map(|(gfn, e)| (gfn.0..gfn.0 + e.pages()).map(Gfn))
        .collect())
}

/// Runs the source proxy: drives the pre-copy loop against the local
/// (source) hypervisor, streaming each round's serialized frames through
/// `transport` and committing the shared cache/ring state on the
/// destination's acks. Advances the source clock through the migration
/// and destroys the source VM on success, like
/// [`crate::engine::MigrationTp::migrate`].
///
/// The proxy always speaks the serialized content-aware stream (the
/// frame ring is the wire format) — [`crate::engine::WireMode`] does not
/// apply — and drives the static pre-copy loop: the adaptive controller
/// ([`crate::control::PrecopyController`]) is not replicated across the
/// split, so equivalence against the engine holds for
/// controller-inactive configurations.
///
/// Fault injection points mirror the engine's, with the same labels and
/// [`RecoveryAction`]s: `LinkDrop` tears the transport down mid-stream
/// (the retry re-handshakes with a resume `Hello` and re-encodes against
/// the rolled-back cache), `TruncatedPage` corrupts a frame in flight
/// (the destination naks, the source re-encodes and re-sends), and
/// `UisrCorruption` damages the UISR blob (nak → re-send).
pub fn run_source(
    tp: &MigrationTp,
    machine: &mut Machine,
    hv: &mut dyn Hypervisor,
    id: VmId,
    transport: &mut dyn Transport,
) -> Result<ProxyReport, HtpError> {
    let cfg = hv.vm_config(id)?.clone();
    let vm_name = cfg.name.clone();
    let mut msg = Vec::new();
    encode_hello(&mut msg, &cfg, false, 0);
    transport
        .send_frame(&msg)
        .and_then(|_| transport.flush())
        .map_err(|e| link_err(&vm_name, e))?;
    transport
        .recv_frame(&mut msg)
        .map_err(|e| link_err(&vm_name, e))?;
    let dst_kind = (msg.first() == Some(&MSG_HELLO_ACK))
        .then(|| msg.get(1).copied())
        .flatten()
        .and_then(kind_from_tag)
        .ok_or_else(|| integrity(&vm_name))?;

    hv.enable_dirty_log(id)?;
    let everything = all_gfns(&*hv, id)?;
    let mut wire = WireStats::new();
    let cache_before = tp.cache.stats();
    let dirty_rate = tp.config.dirty_rate_pages_per_sec;
    let mut round = 0u32;
    let mut bytes_sent = 0u64;
    let mut precopy = SimDuration::ZERO;
    let mut to_send = everything.clone();
    let stop_set;
    loop {
        let (wb, duration) = send_round(
            tp, machine, hv, id, transport, &to_send, round, &vm_name, &mut wire,
        )?;
        bytes_sent += wb;
        precopy += duration;
        let dirtied = ((dirty_rate * duration.as_secs_f64()) as u64).min(cfg.pages());
        if dirtied > 0 {
            hv.guest_tick(machine, id, dirtied)?;
        }
        round += 1;
        let dirty = hv.collect_dirty(id)?;
        if dirty.len() as u64 <= tp.config.stop_threshold_pages || round >= tp.config.max_rounds {
            stop_set = dirty;
            break;
        }
        to_send = dirty;
    }

    // Stop-and-copy: quiesce, pause, ship the residual set and the UISR.
    precopy += hv.notify_prepare_transplant(machine, id)?;
    hv.pause_vm(id)?;
    let (final_bytes, _stop_dur) = send_round(
        tp, machine, hv, id, transport, &stop_set, round, &vm_name, &mut wire,
    )?;
    bytes_sent += final_bytes;

    let uisr = hv.save_uisr(machine, id)?;
    let blob = hypertp_uisr::encode(&uisr);
    let mut uisr_sends = 1u64;
    if tp
        .faults
        .should_inject(InjectionPoint::UisrCorruption, &vm_name)
    {
        // The blob is damaged in flight; the destination's decode rejects
        // it and naks, and the source re-sends.
        let mut damaged = blob.clone();
        damaged[0] ^= 0xff;
        msg.clear();
        msg.push(MSG_UISR);
        msg.extend_from_slice(&damaged);
        transport
            .send_frame(&msg)
            .and_then(|_| transport.flush())
            .map_err(|e| link_err(&vm_name, e))?;
        transport
            .recv_frame(&mut msg)
            .map_err(|e| link_err(&vm_name, e))?;
        let naked = msg.first() == Some(&MSG_NAK);
        debug_assert!(naked, "corrupted magic must not decode");
        if naked {
            uisr_sends = 2;
            tp.faults.record_recovery(
                InjectionPoint::UisrCorruption,
                RecoveryAction::ResentUisr,
                &format!(
                    "{vm_name}: decode rejected corrupted blob; re-sent {} bytes",
                    blob.len()
                ),
            );
        }
    }
    msg.clear();
    msg.push(MSG_UISR);
    msg.extend_from_slice(&blob);
    transport
        .send_frame(&msg)
        .and_then(|_| transport.flush())
        .map_err(|e| link_err(&vm_name, e))?;
    transport
        .recv_frame(&mut msg)
        .map_err(|e| link_err(&vm_name, e))?;
    if msg.first() != Some(&MSG_ACK) {
        return Err(integrity(&vm_name));
    }

    let stop_copy = tp.config.link.transfer(final_bytes, 1)
        + tp.config.link.transfer(blob.len() as u64 * uisr_sends, 1)
        + tp.cost.activate(dst_kind.boot_target(), cfg.vcpus);
    let total = precopy + stop_copy;

    let src_checksum = guest_checksum(machine, &*hv, id, &everything)?;
    msg.clear();
    msg.push(MSG_DONE);
    msg.extend_from_slice(&src_checksum.to_le_bytes());
    msg.extend_from_slice(&total.as_nanos().to_le_bytes());
    transport
        .send_frame(&msg)
        .and_then(|_| transport.flush())
        .map_err(|e| link_err(&vm_name, e))?;
    transport
        .recv_frame(&mut msg)
        .map_err(|e| link_err(&vm_name, e))?;
    let mut r = Reader::new(&msg);
    if r.u8() != Some(MSG_DONE_ACK) {
        return Err(integrity(&vm_name));
    }
    let dst_checksum = r.u64().ok_or_else(|| integrity(&vm_name))?;
    let _dst_wire_bytes = r.u64().ok_or_else(|| integrity(&vm_name))?;
    let dst_frames = r.u64().ok_or_else(|| integrity(&vm_name))?;
    if dst_checksum != src_checksum {
        return Err(integrity(&vm_name));
    }

    machine.clock().advance(total);
    hv.destroy_vm(machine, id)?;

    let cs = tp.cache.stats();
    wire.record_cache(
        cs.occupancy,
        cs.capacity,
        cs.evictions - cache_before.evictions,
        cs.dup_hits - cache_before.dup_hits,
        cs.dup_lookups - cache_before.dup_lookups,
    );

    Ok(ProxyReport {
        vm_name,
        rounds: round,
        bytes_sent,
        uisr_bytes: blob.len() as u64,
        wire,
        precopy,
        downtime: stop_copy,
        total,
        src_checksum,
        dst_checksum,
        dst_frames,
    })
}

/// Encodes one round through the engine's shared ring scratch, ships it,
/// and waits for the destination's verdict — retrying through injected
/// link drops (transport reset + resume handshake + cache/ring rollback)
/// and naks (re-encode + re-send). Returns (accounted wire bytes
/// including lost attempts, simulated round duration).
#[allow(clippy::too_many_arguments)]
fn send_round(
    tp: &MigrationTp,
    machine: &Machine,
    hv: &dyn Hypervisor,
    id: VmId,
    transport: &mut dyn Transport,
    to_send: &[Gfn],
    round: u32,
    vm_name: &str,
    wire: &mut WireStats,
) -> Result<(u64, SimDuration), HtpError> {
    let perf = machine.spec().perf();
    let pages = to_send.len() as u64;
    let cfg = hv.vm_config(id)?.clone();
    let mut duration = SimDuration::ZERO;
    let mut drops = 0u32;
    let mut naks = 0u32;
    let mut lost_bytes = 0u64;
    let mut msg = Vec::new();
    let wb = loop {
        tp.cache.begin_round();
        let wb = match tp.gather_encode_ring(machine, hv, id, to_send) {
            Ok(w) => w,
            Err(e) => {
                tp.cache.rollback_round();
                return Err(e);
            }
        };

        // Mid-stream disconnect: the connection dies before the round is
        // acked. Nothing shipped was acked — roll the cache journal and
        // the ring back, tear the transport down, re-handshake, and
        // re-encode against what the destination actually holds.
        if tp.faults.should_inject(
            InjectionPoint::LinkDrop,
            &format!("{vm_name} round {round}"),
        ) {
            tp.cache.rollback_round();
            tp.scratch.round().ring.rollback();
            tp.faults.record_recovery(
                InjectionPoint::LinkDrop,
                RecoveryAction::InvalidatedWireCache,
                &format!("{vm_name} round {round}: rolled back dedup/delta journal"),
            );
            drops += 1;
            if drops > tp.config.max_link_retries {
                tp.faults.record_recovery(
                    InjectionPoint::LinkDrop,
                    RecoveryAction::GaveUp,
                    &format!(
                        "{vm_name} round {round}: {} retries exhausted",
                        tp.config.max_link_retries
                    ),
                );
                tp.cache.forget_vm(id.0);
                return Err(HtpError::LinkFailure {
                    vm_name: vm_name.to_string(),
                    retries: tp.config.max_link_retries,
                });
            }
            transport.reset().map_err(|e| link_err(vm_name, e))?;
            let wait = backoff_delay(tp.config.retry_backoff, drops);
            duration += tp.config.link.transfer(wb / 2, 1) + wait;
            tp.faults.record_recovery(
                InjectionPoint::LinkDrop,
                RecoveryAction::RetriedWithBackoff,
                &format!(
                    "{vm_name} round {round} attempt {drops} backoff {:.0}ms",
                    wait.as_millis_f64()
                ),
            );
            // Resume handshake: tell the destination which round we are
            // re-sending so it drops any staged state.
            encode_hello(&mut msg, &cfg, true, round);
            transport
                .send_frame(&msg)
                .and_then(|_| transport.flush())
                .map_err(|e| link_err(vm_name, e))?;
            transport
                .recv_frame(&mut msg)
                .map_err(|e| link_err(vm_name, e))?;
            if msg.first() != Some(&MSG_HELLO_ACK) {
                return Err(integrity(vm_name));
            }
            continue;
        }

        // Build the round message around the ring's serialized bytes.
        let truncate = to_send.last().is_some_and(|g| {
            tp.faults.should_inject(
                InjectionPoint::TruncatedPage,
                &format!("{vm_name} round {round} gfn {}", g.0),
            )
        });
        {
            let s = tp.scratch.round();
            msg.clear();
            msg.push(MSG_ROUND);
            msg.push(0);
            msg.extend_from_slice(&round.to_le_bytes());
            msg.extend_from_slice(&s.ring.frame_count().to_le_bytes());
            msg.extend_from_slice(s.ring.bytes());
            if truncate {
                // Corrupt the last frame's header in the outgoing copy
                // (the ring itself stays intact): the destination's parse
                // fails and it naks the whole round.
                let last_start = msg.len() - s.ring.iter().last().map_or(0, |v| v.frame_bytes());
                msg[last_start] ^= 0x7f;
            }
        }
        transport
            .send_frame(&msg)
            .and_then(|_| transport.flush())
            .map_err(|e| link_err(vm_name, e))?;
        transport
            .recv_frame(&mut msg)
            .map_err(|e| link_err(vm_name, e))?;
        let mut r = Reader::new(&msg);
        match (r.u8(), r.u32()) {
            (Some(MSG_ACK), Some(rr)) if rr == round => break wb,
            (Some(MSG_NAK), Some(rr)) if rr == round => {
                // The destination rejected the stream (corrupt frame):
                // everything staged was dropped, so roll back and
                // re-encode. The lost attempt's bytes were on the wire.
                tp.cache.rollback_round();
                tp.scratch.round().ring.rollback();
                naks += 1;
                if naks > tp.config.max_link_retries {
                    return Err(integrity(vm_name));
                }
                lost_bytes += wb;
                duration += tp.config.link.transfer(wb, 1);
                tp.faults.record_recovery(
                    InjectionPoint::TruncatedPage,
                    RecoveryAction::ResentPages,
                    &format!("{vm_name} round {round}: destination nak, re-sent {pages} page(s)"),
                );
                continue;
            }
            _ => return Err(integrity(vm_name)),
        }
    };
    if drops > 0 {
        tp.faults.record_recovery(
            InjectionPoint::LinkDrop,
            RecoveryAction::ResumedFromRound,
            &format!("{vm_name} resumed at round {round} after {drops} drop(s)"),
        );
    }

    duration += tp.config.link.transfer(wb, 1)
        + perf.cpu(tp.cost.migrate_ghz_s_per_page * pages as f64)
        + SimDuration::from_secs_f64(tp.cost.migrate_round_overhead_s);

    // The destination acked: record the round's frames and seal the
    // cache journal and ring watermark.
    {
        let s = tp.scratch.round();
        for view in s.ring.iter() {
            wire.record_parts(view.kind, view.wire_bytes());
        }
    }
    tp.cache.commit_round();
    tp.scratch.round().ring.commit();
    Ok((wb + lost_bytes, duration))
}

/// Runs the destination proxy for one incoming migration. Sugar over
/// [`DestProxy::serve`] with fresh dedup state — use a [`DestProxy`] when
/// several VMs arrive over one connection (the source's
/// [`crate::wire::TransferCache`] persists across VMs, so the
/// destination's mirror must too).
pub fn run_dest(
    machine: &mut Machine,
    hv: &mut dyn Hypervisor,
    transport: &mut dyn Transport,
) -> Result<DestReport, HtpError> {
    DestProxy::new().serve(machine, hv, transport)
}

/// The destination proxy's cross-migration state: the insert-only mirror
/// of the source's dedup map. Evictions on the source only downgrade
/// future `Dup`s to `Raw`, so keeping more than the source can never
/// disagree — and a fleet's later VMs reference content first shipped
/// during earlier VMs' sessions.
#[derive(Debug, Default)]
pub struct DestProxy {
    mirror: HashMap<u128, u64>,
}

impl DestProxy {
    /// Creates a destination proxy with an empty dedup mirror.
    pub fn new() -> Self {
        DestProxy::default()
    }

    /// Serves one incoming migration to completion (`Done`), surviving
    /// mid-stream disconnects by re-accepting and waiting for the
    /// source's resume handshake. Returns after resuming the VM and
    /// reporting the RAM checksum back to the source.
    pub fn serve(
        &mut self,
        machine: &mut Machine,
        hv: &mut dyn Hypervisor,
        transport: &mut dyn Transport,
    ) -> Result<DestReport, HtpError> {
        serve_one(machine, hv, transport, &mut self.mirror)
    }
}

fn serve_one(
    machine: &mut Machine,
    hv: &mut dyn Hypervisor,
    transport: &mut dyn Transport,
    mirror: &mut HashMap<u128, u64>,
) -> Result<DestReport, HtpError> {
    let mut buf = Vec::new();
    let mut reply = Vec::new();
    let mut dst_id: Option<VmId> = None;
    let mut cfg: Option<VmConfig> = None;
    let mut rounds = 0u32;
    let mut frames = 0u64;
    let mut wire_bytes = 0u64;
    let mut warnings = Vec::new();
    let name = |cfg: &Option<VmConfig>| {
        cfg.as_ref()
            .map(|c| c.name.clone())
            .unwrap_or_else(|| "<handshake>".to_string())
    };

    loop {
        if transport.recv_frame(&mut buf).is_err() {
            // Mid-stream disconnect: any round in flight died unacked (we
            // stage per message, so nothing partial survives). Re-accept
            // and wait for the source's resume handshake.
            transport.reset().map_err(|e| link_err(&name(&cfg), e))?;
            continue;
        }
        match buf.first().copied() {
            Some(MSG_HELLO) => {
                let (hello_cfg, resume, _round) =
                    decode_hello(&buf).ok_or_else(|| integrity(&name(&cfg)))?;
                if !resume {
                    let id = hv.prepare_incoming(machine, &hello_cfg)?;
                    dst_id = Some(id);
                    cfg = Some(hello_cfg);
                }
                reply.clear();
                reply.push(MSG_HELLO_ACK);
                reply.push(kind_tag(hv.kind()));
                transport
                    .send_frame(&reply)
                    .and_then(|_| transport.flush())
                    .map_err(|e| link_err(&name(&cfg), e))?;
            }
            Some(MSG_ROUND) => {
                let id = dst_id.ok_or_else(|| integrity(&name(&cfg)))?;
                let mut r = Reader::new(&buf);
                let _ = r.u8();
                let _stop = r.u8().ok_or_else(|| integrity(&name(&cfg)))?;
                let round = r.u32().ok_or_else(|| integrity(&name(&cfg)))?;
                let count = r.u64().ok_or_else(|| integrity(&name(&cfg)))?;
                let stream = r.rest();

                // Stage the whole round before touching guest RAM: a
                // corrupt stream naks without side effects.
                let mut staged: Vec<(Gfn, u64, u64)> = Vec::new(); // (gfn, new, cur)
                let mut staged_mirror: Vec<(u128, u64)> = Vec::new();
                let mut staged_lookup: HashMap<u128, u64> = HashMap::new();
                let mut batch_bytes = 0u64;
                let mut ok = true;
                let mut seen = 0u64;
                for view in FrameIter::over(stream) {
                    seen += 1;
                    let gfn = Gfn(view.gfn);
                    let cur = hv.read_guest(machine, id, gfn)?;
                    let word = match view.kind {
                        FrameKind::Raw => view.raw_word(),
                        FrameKind::Zero => Some(0),
                        FrameKind::Dup => view.dup_digest().and_then(|d| {
                            staged_lookup
                                .get(&d.as_u128())
                                .copied()
                                .or_else(|| mirror.get(&d.as_u128()).copied())
                        }),
                        FrameKind::Delta => delta_apply_word(cur, view.payload),
                    };
                    match word {
                        Some(w) => {
                            batch_bytes += view.wire_bytes();
                            staged.push((gfn, w, cur));
                            // Mirror what the source's cache journalled:
                            // Raw and Delta frames insert their content;
                            // Zero and Dup do not.
                            if matches!(view.kind, FrameKind::Raw | FrameKind::Delta) && w != 0 {
                                let d = digest_words(&[w]).as_u128();
                                staged_lookup.insert(d, w);
                                staged_mirror.push((d, w));
                            }
                        }
                        None => {
                            ok = false;
                            break;
                        }
                    }
                }
                if !ok || seen != count {
                    reply.clear();
                    reply.push(MSG_NAK);
                    reply.extend_from_slice(&round.to_le_bytes());
                } else {
                    for &(gfn, w, cur) in &staged {
                        if w != cur {
                            hv.write_guest(machine, id, gfn, w)?;
                        }
                    }
                    for (d, w) in staged_mirror {
                        mirror.insert(d, w);
                    }
                    rounds += 1;
                    frames += seen;
                    wire_bytes += batch_bytes;
                    reply.clear();
                    reply.push(MSG_ACK);
                    reply.extend_from_slice(&round.to_le_bytes());
                }
                transport
                    .send_frame(&reply)
                    .and_then(|_| transport.flush())
                    .map_err(|e| link_err(&name(&cfg), e))?;
            }
            Some(MSG_UISR) => {
                let id = dst_id.ok_or_else(|| integrity(&name(&cfg)))?;
                reply.clear();
                match hypertp_uisr::decode(&buf[1..]) {
                    Ok(vm) => {
                        let restored = hv.restore_uisr(machine, id, &vm)?;
                        warnings = restored.warnings;
                        reply.push(MSG_ACK);
                    }
                    Err(_) => reply.push(MSG_NAK),
                }
                reply.extend_from_slice(&UISR_ROUND.to_le_bytes());
                transport
                    .send_frame(&reply)
                    .and_then(|_| transport.flush())
                    .map_err(|e| link_err(&name(&cfg), e))?;
            }
            Some(MSG_DONE) => {
                let id = dst_id.ok_or_else(|| integrity(&name(&cfg)))?;
                let vm_cfg = cfg.clone().ok_or_else(|| integrity(&name(&cfg)))?;
                let mut r = Reader::new(&buf);
                let _ = r.u8();
                let _src_checksum = r.u64().ok_or_else(|| integrity(&vm_cfg.name))?;
                let nanos = r.u64().ok_or_else(|| integrity(&vm_cfg.name))?;
                machine.clock().advance(SimDuration::from_nanos(nanos));
                hv.resume_vm(id)?;
                let gfns = all_gfns(&*hv, id)?;
                let checksum = guest_checksum(machine, &*hv, id, &gfns)?;
                reply.clear();
                reply.push(MSG_DONE_ACK);
                reply.extend_from_slice(&checksum.to_le_bytes());
                reply.extend_from_slice(&wire_bytes.to_le_bytes());
                reply.extend_from_slice(&frames.to_le_bytes());
                transport
                    .send_frame(&reply)
                    .and_then(|_| transport.flush())
                    .map_err(|e| link_err(&vm_cfg.name, e))?;
                return Ok(DestReport {
                    vm_name: vm_cfg.name,
                    rounds,
                    frames,
                    wire_bytes,
                    checksum,
                    warnings,
                });
            }
            _ => return Err(integrity(&name(&cfg))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::MigrationConfig;
    use crate::transport::InProcTransport;
    use hypertp_core::testing::SimpleHv;
    use hypertp_machine::MachineSpec;
    use hypertp_sim::fault::FaultPlan;
    use hypertp_sim::SimClock;

    fn machine() -> Machine {
        let mut spec = MachineSpec::m1();
        spec.ram_gb = 4;
        Machine::with_clock(spec, SimClock::new())
    }

    /// Creates the test VM and seeds a deterministic page mix (zeros,
    /// duplicates, uniques) so every frame kind is exercised.
    fn seed_vm(hv: &mut SimpleHv, m: &mut Machine) -> VmId {
        let id = hv.create_vm(m, &VmConfig::small("vm0")).unwrap();
        for i in 0..512u64 {
            let word = match i % 3 {
                0 => 0xdead_beef,
                1 => i.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1,
                _ => 0,
            };
            hv.write_guest(m, id, Gfn(i * 7), word).unwrap();
        }
        hv.guest_tick(m, id, 100).unwrap();
        id
    }

    fn config() -> MigrationConfig {
        MigrationConfig {
            wire_mode: crate::engine::WireMode::ContentAware,
            dirty_rate_pages_per_sec: 2000.0,
            ..MigrationConfig::default()
        }
    }

    /// A fault-free proxy run over the in-process transport produces the
    /// same wire traffic, timings, and destination RAM as the engine.
    #[test]
    fn proxy_matches_engine_byte_for_byte() {
        // In-process engine run.
        let mut src_m = machine();
        let mut dst_m = machine();
        let mut src = SimpleHv::new(HypervisorKind::Xen);
        let mut dst = SimpleHv::new(HypervisorKind::Kvm);
        let id = seed_vm(&mut src, &mut src_m);
        let tp = MigrationTp::new().with_config(config());
        let engine_report = tp
            .migrate(&mut src_m, &mut src, id, &mut dst_m, &mut dst)
            .unwrap();
        let e_id = dst.find_vm("vm0").unwrap();
        let e_gfns = all_gfns(&dst, e_id).unwrap();
        let engine_checksum = guest_checksum(&dst_m, &dst, e_id, &e_gfns).unwrap();

        // Proxy run over crossed in-process channels, fresh everything.
        let mut psrc_m = machine();
        let mut pdst_m = machine();
        let mut psrc = SimpleHv::new(HypervisorKind::Xen);
        let mut pdst = SimpleHv::new(HypervisorKind::Kvm);
        let pid = seed_vm(&mut psrc, &mut psrc_m);
        let ptp = MigrationTp::new().with_config(config());
        let (mut ta, mut tb) = InProcTransport::pair();
        let (src_report, dst_report) = std::thread::scope(|s| {
            let dest = s.spawn(|| run_dest(&mut pdst_m, &mut pdst, &mut tb));
            let srcr = run_source(&ptp, &mut psrc_m, &mut psrc, pid, &mut ta).unwrap();
            (srcr, dest.join().unwrap().unwrap())
        });

        assert_eq!(src_report.bytes_sent, engine_report.bytes_sent);
        assert_eq!(src_report.wire, engine_report.wire);
        assert_eq!(src_report.rounds as usize, engine_report.rounds.len());
        assert_eq!(src_report.uisr_bytes, engine_report.uisr_bytes);
        assert_eq!(src_report.downtime, engine_report.downtime);
        assert_eq!(src_report.total, engine_report.total);
        assert_eq!(src_report.dst_checksum, engine_checksum);
        assert_eq!(dst_report.checksum, engine_checksum);
        assert_eq!(src_report.src_checksum, engine_checksum);

        // Both sides converged on the same simulated time.
        assert_eq!(psrc_m.clock().now(), pdst_m.clock().now());
        assert!(psrc.vm_ids().is_empty(), "source VM destroyed");
        assert_eq!(
            pdst.vm_state(pdst.find_vm("vm0").unwrap()).unwrap(),
            hypertp_core::VmState::Running
        );
    }

    /// Chaos run: a mid-stream disconnect, a truncated frame, and a
    /// corrupted UISR blob all recover through the protocol (resume
    /// handshake, whole-round nak/re-send, blob re-send) and still land a
    /// byte-identical destination.
    #[test]
    fn proxy_recovers_from_injected_faults() {
        let mut src_m = machine();
        let mut dst_m = machine();
        let mut src = SimpleHv::new(HypervisorKind::Xen);
        let mut dst = SimpleHv::new(HypervisorKind::Kvm);
        let id = seed_vm(&mut src, &mut src_m);
        let faults = FaultPlan::new(42);
        faults.arm_once(InjectionPoint::LinkDrop);
        faults.arm_once(InjectionPoint::TruncatedPage);
        faults.arm_once(InjectionPoint::UisrCorruption);
        let tp = MigrationTp::new().with_config(config()).with_faults(faults);
        let (mut ta, mut tb) = InProcTransport::pair();
        let (src_report, dst_report) = std::thread::scope(|s| {
            let dest = s.spawn(|| run_dest(&mut dst_m, &mut dst, &mut tb));
            let srcr = run_source(&tp, &mut src_m, &mut src, id, &mut ta).unwrap();
            (srcr, dest.join().unwrap().unwrap())
        });
        assert_eq!(src_report.dst_checksum, dst_report.checksum);

        let log = tp.faults.log();
        use hypertp_sim::fault::{InjectionPoint as P, RecoveryAction as A};
        assert!(log.recovered_via(P::LinkDrop, A::InvalidatedWireCache));
        assert!(log.recovered_via(P::LinkDrop, A::RetriedWithBackoff));
        assert!(log.recovered_via(P::LinkDrop, A::ResumedFromRound));
        assert!(log.recovered_via(P::TruncatedPage, A::ResentPages));
        assert!(log.recovered_via(P::UisrCorruption, A::ResentUisr));

        // The destination landed the source's exact pause-time RAM
        // (run_source verifies this internally too — the DoneAck checksum
        // must echo the source's — so getting here at all means the
        // recovered stream converged byte-identically).
        assert_eq!(src_report.src_checksum, dst_report.checksum);
        assert_eq!(
            dst.vm_state(dst.find_vm("vm0").unwrap()).unwrap(),
            hypertp_core::VmState::Running
        );
    }
}
