//! Pluggable byte transports for the serialized wire path.
//!
//! The engine's in-process path hands [`crate::framing::FrameRing`] bytes
//! straight to the destination hypervisor; the §4.2 proxy pair instead
//! ships the same bytes through a [`Transport`]: a bidirectional,
//! length-prefixed frame pipe. Two backends:
//!
//! * [`InProcTransport`] — deterministic crossed in-memory channels, the
//!   default for tests and the simulator (no I/O, no timing noise).
//! * [`UdsTransport`] / [`UdsServerTransport`] — a real Unix-domain
//!   socket (std-only), carrying the identical byte stream between two
//!   processes; used by the `proxy` CLI subcommand.
//!
//! The wire encoding is one `u32` little-endian length prefix per frame,
//! followed by the frame's bytes. A frame here is one *protocol message*
//! (see [`crate::proxy`]) — a whole serialized round rides in a single
//! frame, so the ring's bytes go on the socket with one write.
//!
//! [`Transport::reset`] models a connection teardown + re-establish: the
//! UDS client redials (with bounded retries), the UDS server re-accepts,
//! and the in-proc pipe — which cannot lose data — treats it as a no-op.
//! The proxy's mid-stream-disconnect recovery drives this.

use std::fmt;
use std::io::{ErrorKind, Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::mpsc::{Receiver, Sender};
use std::time::Duration;

/// Defensive ceiling on a single frame (16 MiB): a corrupt length prefix
/// fails fast instead of attempting a huge allocation.
pub const MAX_FRAME_BYTES: u32 = 16 << 20;

/// Transport failure modes.
#[derive(Debug)]
pub enum TransportError {
    /// The peer hung up (EOF / channel closed).
    Closed,
    /// A length prefix exceeded [`MAX_FRAME_BYTES`].
    FrameTooLarge(u32),
    /// Underlying socket error.
    Io(std::io::Error),
    /// Reconnect attempts exhausted.
    ReconnectFailed(String),
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::Closed => write!(f, "transport closed by peer"),
            TransportError::FrameTooLarge(n) => {
                write!(f, "frame length {n} exceeds cap {MAX_FRAME_BYTES}")
            }
            TransportError::Io(e) => write!(f, "transport i/o error: {e}"),
            TransportError::ReconnectFailed(s) => write!(f, "reconnect failed: {s}"),
        }
    }
}

impl std::error::Error for TransportError {}

impl From<std::io::Error> for TransportError {
    fn from(e: std::io::Error) -> Self {
        if e.kind() == ErrorKind::UnexpectedEof {
            TransportError::Closed
        } else {
            TransportError::Io(e)
        }
    }
}

/// A bidirectional, length-prefixed frame pipe between the two proxies.
/// `Send` so a test or CLI can run the destination half on its own
/// thread, as the real deployment runs it in its own process.
pub trait Transport: Send {
    /// Queues one frame (sent as `[len: u32 le][bytes]`).
    fn send_frame(&mut self, bytes: &[u8]) -> Result<(), TransportError>;

    /// Pushes every queued frame to the peer.
    fn flush(&mut self) -> Result<(), TransportError>;

    /// Blocks for the next frame, clearing and refilling `out`.
    fn recv_frame(&mut self, out: &mut Vec<u8>) -> Result<(), TransportError>;

    /// Tears the connection down and re-establishes it (client redials,
    /// server re-accepts). Queued unflushed frames are discarded — they
    /// model bytes lost mid-stream. Lossless in-proc pipes no-op.
    fn reset(&mut self) -> Result<(), TransportError> {
        Ok(())
    }
}

/// Deterministic in-process transport: a pair of crossed channels.
/// Frames queue locally until [`Transport::flush`]; `reset` is a no-op
/// on the channel but still discards the unflushed queue, so drop
/// semantics match the socket backend.
pub struct InProcTransport {
    tx: Sender<Vec<u8>>,
    rx: Receiver<Vec<u8>>,
    queued: Vec<Vec<u8>>,
}

impl fmt::Debug for InProcTransport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("InProcTransport")
            .field("queued", &self.queued.len())
            .finish()
    }
}

impl InProcTransport {
    /// A connected pair of endpoints (source, destination).
    pub fn pair() -> (InProcTransport, InProcTransport) {
        let (a_tx, b_rx) = std::sync::mpsc::channel();
        let (b_tx, a_rx) = std::sync::mpsc::channel();
        (
            InProcTransport {
                tx: a_tx,
                rx: a_rx,
                queued: Vec::new(),
            },
            InProcTransport {
                tx: b_tx,
                rx: b_rx,
                queued: Vec::new(),
            },
        )
    }
}

impl Transport for InProcTransport {
    fn send_frame(&mut self, bytes: &[u8]) -> Result<(), TransportError> {
        self.queued.push(bytes.to_vec());
        Ok(())
    }

    fn flush(&mut self) -> Result<(), TransportError> {
        for frame in self.queued.drain(..) {
            self.tx.send(frame).map_err(|_| TransportError::Closed)?;
        }
        Ok(())
    }

    fn recv_frame(&mut self, out: &mut Vec<u8>) -> Result<(), TransportError> {
        let frame = self.rx.recv().map_err(|_| TransportError::Closed)?;
        out.clear();
        out.extend_from_slice(&frame);
        Ok(())
    }

    fn reset(&mut self) -> Result<(), TransportError> {
        self.queued.clear();
        Ok(())
    }
}

/// Writes one length-prefixed frame to a stream.
fn write_frame(stream: &mut impl Write, bytes: &[u8]) -> Result<(), TransportError> {
    if bytes.len() as u64 > MAX_FRAME_BYTES as u64 {
        return Err(TransportError::FrameTooLarge(bytes.len() as u32));
    }
    stream.write_all(&(bytes.len() as u32).to_le_bytes())?;
    stream.write_all(bytes)?;
    Ok(())
}

/// Reads one length-prefixed frame from a stream into `out`.
fn read_frame(stream: &mut impl Read, out: &mut Vec<u8>) -> Result<(), TransportError> {
    let mut len_buf = [0u8; 4];
    stream.read_exact(&mut len_buf)?;
    let len = u32::from_le_bytes(len_buf);
    if len > MAX_FRAME_BYTES {
        return Err(TransportError::FrameTooLarge(len));
    }
    out.clear();
    out.resize(len as usize, 0);
    stream.read_exact(out)?;
    Ok(())
}

/// Client (source-proxy) end of a Unix-domain-socket transport.
#[derive(Debug)]
pub struct UdsTransport {
    path: PathBuf,
    stream: UnixStream,
    /// Length-prefixed frames queued until `flush` — one socket write
    /// per flush, and `reset` can discard unsent frames wholesale.
    queued: Vec<u8>,
}

impl UdsTransport {
    /// Connects to the destination proxy's socket, retrying for up to
    /// ~5 s so the two processes can start in either order.
    pub fn connect(path: impl AsRef<Path>) -> Result<UdsTransport, TransportError> {
        let path = path.as_ref().to_path_buf();
        let stream = Self::dial(&path)?;
        Ok(UdsTransport {
            path,
            stream,
            queued: Vec::new(),
        })
    }

    fn dial(path: &Path) -> Result<UnixStream, TransportError> {
        let mut last = None;
        for attempt in 0..100 {
            match UnixStream::connect(path) {
                Ok(s) => return Ok(s),
                Err(e) => last = Some(e),
            }
            std::thread::sleep(Duration::from_millis(10 + attempt));
        }
        Err(TransportError::ReconnectFailed(format!(
            "{}: {}",
            path.display(),
            last.map(|e| e.to_string()).unwrap_or_default()
        )))
    }

    /// Wraps an already-connected stream (tests use
    /// `UnixStream::pair()`); `reset` cannot redial without a path and
    /// reports `ReconnectFailed`.
    pub fn from_stream(stream: UnixStream) -> UdsTransport {
        UdsTransport {
            path: PathBuf::new(),
            stream,
            queued: Vec::new(),
        }
    }
}

impl Transport for UdsTransport {
    fn send_frame(&mut self, bytes: &[u8]) -> Result<(), TransportError> {
        if bytes.len() as u64 > MAX_FRAME_BYTES as u64 {
            return Err(TransportError::FrameTooLarge(bytes.len() as u32));
        }
        self.queued
            .extend_from_slice(&(bytes.len() as u32).to_le_bytes());
        self.queued.extend_from_slice(bytes);
        Ok(())
    }

    fn flush(&mut self) -> Result<(), TransportError> {
        if !self.queued.is_empty() {
            self.stream.write_all(&self.queued)?;
            self.queued.clear();
        }
        self.stream.flush()?;
        Ok(())
    }

    fn recv_frame(&mut self, out: &mut Vec<u8>) -> Result<(), TransportError> {
        read_frame(&mut self.stream, out)
    }

    fn reset(&mut self) -> Result<(), TransportError> {
        self.queued.clear();
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
        if self.path.as_os_str().is_empty() {
            return Err(TransportError::ReconnectFailed(
                "transport wraps a raw stream pair; no path to redial".to_string(),
            ));
        }
        self.stream = Self::dial(&self.path)?;
        Ok(())
    }
}

/// Server (destination-proxy) end: owns the listener, accepts one
/// connection at a time, and re-accepts on [`Transport::reset`] — the
/// mid-stream-disconnect recovery path.
#[derive(Debug)]
pub struct UdsServerTransport {
    listener: UnixListener,
    stream: UnixStream,
}

impl UdsServerTransport {
    /// Binds `path` (removing any stale socket file) and blocks for the
    /// first connection.
    pub fn bind(path: impl AsRef<Path>) -> Result<UdsServerTransport, TransportError> {
        let path = path.as_ref();
        if path.exists() {
            let _ = std::fs::remove_file(path);
        }
        let listener = UnixListener::bind(path)?;
        let (stream, _) = listener.accept()?;
        Ok(UdsServerTransport { listener, stream })
    }
}

impl Transport for UdsServerTransport {
    fn send_frame(&mut self, bytes: &[u8]) -> Result<(), TransportError> {
        write_frame(&mut self.stream, bytes)
    }

    fn flush(&mut self) -> Result<(), TransportError> {
        self.stream.flush()?;
        Ok(())
    }

    fn recv_frame(&mut self, out: &mut Vec<u8>) -> Result<(), TransportError> {
        read_frame(&mut self.stream, out)
    }

    fn reset(&mut self) -> Result<(), TransportError> {
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
        let (stream, _) = self.listener.accept()?;
        self.stream = stream;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inproc_pair_round_trips_frames_in_order() {
        let (mut a, mut b) = InProcTransport::pair();
        a.send_frame(b"round 0").unwrap();
        a.send_frame(&[0u8; 0]).unwrap();
        a.send_frame(b"round 1").unwrap();
        a.flush().unwrap();
        let mut buf = Vec::new();
        b.recv_frame(&mut buf).unwrap();
        assert_eq!(buf, b"round 0");
        b.recv_frame(&mut buf).unwrap();
        assert_eq!(buf, b"");
        b.recv_frame(&mut buf).unwrap();
        assert_eq!(buf, b"round 1");
        // Reverse direction.
        b.send_frame(b"ack").unwrap();
        b.flush().unwrap();
        a.recv_frame(&mut buf).unwrap();
        assert_eq!(buf, b"ack");
    }

    #[test]
    fn inproc_reset_discards_unflushed_frames() {
        let (mut a, mut b) = InProcTransport::pair();
        a.send_frame(b"lost").unwrap();
        a.reset().unwrap();
        a.send_frame(b"kept").unwrap();
        a.flush().unwrap();
        let mut buf = Vec::new();
        b.recv_frame(&mut buf).unwrap();
        assert_eq!(buf, b"kept");
    }

    #[test]
    fn inproc_closed_peer_reports_closed() {
        let (mut a, b) = InProcTransport::pair();
        drop(b);
        a.send_frame(b"x").unwrap();
        assert!(matches!(a.flush(), Err(TransportError::Closed)));
        let mut buf = Vec::new();
        assert!(matches!(
            a.recv_frame(&mut buf),
            Err(TransportError::Closed)
        ));
    }

    #[test]
    fn uds_stream_pair_round_trips_and_rejects_oversize() {
        let (s1, s2) = UnixStream::pair().expect("socketpair");
        let mut a = UdsTransport::from_stream(s1);
        let mut b = UdsTransport::from_stream(s2);
        a.send_frame(b"hello over af_unix").unwrap();
        a.send_frame(b"second").unwrap();
        a.flush().unwrap();
        let mut buf = Vec::new();
        b.recv_frame(&mut buf).unwrap();
        assert_eq!(buf, b"hello over af_unix");
        b.recv_frame(&mut buf).unwrap();
        assert_eq!(buf, b"second");
        // A corrupt (oversize) length prefix fails fast.
        use std::io::Write as _;
        let mut raw = b.stream.try_clone().unwrap();
        raw.write_all(&u32::MAX.to_le_bytes()).unwrap();
        assert!(matches!(
            a.recv_frame(&mut buf),
            Err(TransportError::FrameTooLarge(_))
        ));
    }

    #[test]
    fn uds_eof_maps_to_closed() {
        let (s1, s2) = UnixStream::pair().expect("socketpair");
        let mut a = UdsTransport::from_stream(s1);
        drop(s2);
        let mut buf = Vec::new();
        assert!(matches!(
            a.recv_frame(&mut buf),
            Err(TransportError::Closed)
        ));
    }

    #[test]
    fn uds_connect_reconnects_after_server_reset() {
        let dir = std::env::temp_dir().join(format!("htp-uds-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let sock = dir.join("reset.sock");
        let sock2 = sock.clone();
        let server = std::thread::spawn(move || {
            let mut srv = UdsServerTransport::bind(&sock2).unwrap();
            let mut buf = Vec::new();
            srv.recv_frame(&mut buf).unwrap();
            assert_eq!(buf, b"before drop");
            // Simulate a mid-stream disconnect, then serve the retry.
            srv.reset().unwrap();
            srv.recv_frame(&mut buf).unwrap();
            assert_eq!(buf, b"after drop");
            srv.send_frame(b"ack").unwrap();
            srv.flush().unwrap();
        });
        let mut cli = UdsTransport::connect(&sock).unwrap();
        cli.send_frame(b"before drop").unwrap();
        cli.flush().unwrap();
        // The server tears the connection down; the client redials.
        cli.reset().unwrap();
        cli.send_frame(b"after drop").unwrap();
        cli.flush().unwrap();
        let mut buf = Vec::new();
        cli.recv_frame(&mut buf).unwrap();
        assert_eq!(buf, b"ack");
        server.join().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
