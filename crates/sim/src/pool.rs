//! Real parallel execution for the transplant hot paths.
//!
//! The paper's §4.2.5 "Parallelization" optimization translates each VM's
//! state on a separate thread. [`crate::par`] *models* that speedup in
//! simulated time (LPT makespan); this module is its wall-clock
//! counterpart: a scoped worker pool over [`std::thread::scope`] that runs
//! a batch of independent tasks across the machine's hardware threads and
//! returns results **in deterministic input order** regardless of worker
//! count or OS scheduling.
//!
//! Properties:
//!
//! * **Deterministic output.** Task `i`'s result is always at index `i` of
//!   [`Batch::results`]; serial and parallel runs of pure tasks are
//!   byte-identical.
//! * **Load-balanced.** Workers claim tasks from a shared atomic cursor
//!   (dynamic self-scheduling), which approximates the LPT bound the cost
//!   model predicts without needing task durations up front.
//! * **No dependencies.** Only `std`: scoped threads, one atomic, one
//!   mutex per task slot (each slot is locked exactly once, uncontended).
//! * **Measured makespan.** [`Batch::makespan`] is the wall-clock time of
//!   the whole batch, so tests can check real scaling against the
//!   [`crate::par::makespan`] model.
//!
//! Worker count resolution (see [`WorkerPool::from_env`]): the
//! `HYPERTP_WORKERS` environment variable if set and ≥ 1, otherwise
//! [`std::thread::available_parallelism`].

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Environment variable overriding the default worker count.
pub const WORKERS_ENV: &str = "HYPERTP_WORKERS";

/// The result of running a batch of tasks on a [`WorkerPool`].
#[derive(Debug)]
pub struct Batch<T> {
    /// One result per input task, in input order.
    pub results: Vec<T>,
    /// Wall-clock duration of the whole batch.
    pub makespan: Duration,
    /// Number of worker threads actually used (`min(workers, tasks)`).
    pub workers: usize,
}

/// A scoped worker pool executing batches of closures on OS threads.
///
/// The pool is a *policy* object (it holds only the worker count); threads
/// are spawned per batch with [`std::thread::scope`], so borrowed data can
/// be captured by tasks without `'static` bounds and no threads linger
/// between batches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerPool {
    workers: usize,
}

impl WorkerPool {
    /// A pool with an explicit worker count (clamped to at least 1).
    pub fn new(workers: usize) -> Self {
        WorkerPool {
            workers: workers.max(1),
        }
    }

    /// A single-threaded pool: tasks run inline on the calling thread.
    pub fn serial() -> Self {
        WorkerPool { workers: 1 }
    }

    /// The default pool: `HYPERTP_WORKERS` if set (and ≥ 1), otherwise the
    /// machine's available parallelism.
    pub fn from_env() -> Self {
        let workers = std::env::var(WORKERS_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            });
        WorkerPool { workers }
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs a batch of heterogeneous tasks, returning results in input
    /// order plus the measured makespan.
    ///
    /// With one worker (or one task) everything runs inline on the calling
    /// thread — no threads are spawned, so `HYPERTP_WORKERS=1` is a true
    /// serial baseline.
    pub fn run<T, F>(&self, tasks: Vec<F>) -> Batch<T>
    where
        T: Send,
        F: FnOnce() -> T + Send,
    {
        let n = tasks.len();
        let start = Instant::now();
        let workers = self.workers.min(n.max(1));
        if workers <= 1 || n <= 1 {
            let results: Vec<T> = tasks.into_iter().map(|f| f()).collect();
            return Batch {
                results,
                makespan: start.elapsed(),
                workers: 1,
            };
        }

        // Each slot is taken exactly once by whichever worker claims its
        // index from the shared cursor; the Mutex is never contended.
        let slots: Vec<Mutex<Option<F>>> = tasks.into_iter().map(|f| Mutex::new(Some(f))).collect();
        let cursor = AtomicUsize::new(0);
        let collected: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(n));

        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let mut local: Vec<(usize, T)> = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let task = slots[i]
                            .lock()
                            .expect("pool slot poisoned")
                            .take()
                            .expect("pool slot claimed twice");
                        local.push((i, task()));
                    }
                    collected
                        .lock()
                        .expect("pool result vector poisoned")
                        .extend(local);
                });
            }
        });

        let mut pairs = collected.into_inner().expect("pool result vector poisoned");
        pairs.sort_unstable_by_key(|&(i, _)| i);
        debug_assert_eq!(pairs.len(), n);
        Batch {
            results: pairs.into_iter().map(|(_, t)| t).collect(),
            makespan: start.elapsed(),
            workers,
        }
    }

    /// Maps a shared function over owned items on the pool. Sugar over
    /// [`WorkerPool::run`] for the common homogeneous-batch case.
    pub fn map<I, T, F>(&self, items: Vec<I>, f: F) -> Batch<T>
    where
        I: Send,
        T: Send,
        F: Fn(I) -> T + Sync,
    {
        let fref = &f;
        self.run(
            items
                .into_iter()
                .map(|item| move || fref(item))
                .collect::<Vec<_>>(),
        )
    }

    /// Maps a shared function over the indices `0..n`. Useful when tasks
    /// borrow everything they need from the environment.
    pub fn map_indices<T, F>(&self, n: usize, f: F) -> Batch<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let fref = &f;
        self.run((0..n).map(|i| move || fref(i)).collect::<Vec<_>>())
    }

    /// Like [`WorkerPool::map_indices`], but the workers assigned the
    /// `doomed` indices "die" mid-task: their results are lost in the
    /// parallel phase. The orchestrator detects each missing slot and
    /// re-runs that task inline on the calling thread — the
    /// ReHype-style recovery the chaos suite exercises via
    /// `InjectionPoint::WorkerPanic`.
    ///
    /// `doomed` indices are decided by the caller *before* dispatch (see
    /// `fault::FaultPlan::pick_doomed_tasks`) so log order stays
    /// deterministic. Out-of-range indices are ignored. Returns the batch
    /// (complete, in input order) plus the indices that were retried
    /// inline, in ascending order.
    pub fn map_indices_recovering<T, F>(
        &self,
        n: usize,
        doomed: &[usize],
        f: F,
    ) -> (Batch<T>, Vec<usize>)
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let fref = &f;
        let start = Instant::now();
        let mut batch = self.run(
            (0..n)
                .map(|i| {
                    let dead = doomed.contains(&i);
                    move || if dead { None } else { Some(fref(i)) }
                })
                .collect::<Vec<_>>(),
        );
        // Orchestrator-side recovery: any lost slot is recomputed inline.
        let mut retried = Vec::new();
        let results: Vec<T> = batch
            .results
            .drain(..)
            .enumerate()
            .map(|(i, slot)| match slot {
                Some(t) => t,
                None => {
                    retried.push(i);
                    fref(i)
                }
            })
            .collect();
        (
            Batch {
                results,
                makespan: start.elapsed(),
                workers: batch.workers,
            },
            retried,
        )
    }

    /// Splits `0..n` into `chunks` contiguous, near-equal ranges and maps
    /// `f` over them on the pool, returning results **in chunk order**.
    ///
    /// The chunking is a pure function of `(n, chunks)` — the first
    /// `n % chunks` ranges get one extra element — so the decomposition
    /// (and therefore any chunk-local accumulation) is identical for every
    /// worker count. This is the sharding primitive of the campaign
    /// engine: each range is one deterministic host/group shard.
    ///
    /// `chunks` is clamped to `1..=n` (0 tasks ⇒ no calls).
    pub fn map_chunks<T, F>(&self, n: usize, chunks: usize, f: F) -> Batch<T>
    where
        T: Send,
        F: Fn(std::ops::Range<usize>) -> T + Sync,
    {
        let fref = &f;
        self.run(
            chunk_ranges(n, chunks)
                .into_iter()
                .map(|r| move || fref(r))
                .collect::<Vec<_>>(),
        )
    }

    /// Pipelined execution with bounded hand-off: workers *produce* items
    /// `0..n` concurrently while the calling thread *consumes* them in
    /// strict index order, at most `window` items ahead of consumption.
    ///
    /// This is the primitive behind the content-aware migration wire path:
    /// gather/hash stages run on the pool while the encode/transmit stage
    /// (which needs `&mut` access to the destination and the link) runs on
    /// the caller, overlapped instead of barrier-separated per round.
    ///
    /// Guarantees:
    ///
    /// * `consume(i, item)` is called exactly once for every `i` in
    ///   `0..n`, in ascending order — so the consumer side is
    ///   deterministic regardless of worker count.
    /// * Producers never run more than `window` items ahead of the
    ///   consumer (bounded memory; back-pressure instead of unbounded
    ///   queueing).
    /// * With one worker (or `n <= 1`) everything runs inline on the
    ///   calling thread in produce→consume order, so `HYPERTP_WORKERS=1`
    ///   remains a true serial baseline.
    pub fn pipeline<T, P, C>(&self, n: usize, window: usize, produce: P, mut consume: C)
    where
        T: Send,
        P: Fn(usize) -> T + Sync,
        C: FnMut(usize, T),
    {
        if n == 0 {
            return;
        }
        let window = window.max(1);
        let workers = self.workers.min(n);
        if workers <= 1 || n <= 1 {
            for i in 0..n {
                let item = produce(i);
                consume(i, item);
            }
            return;
        }

        // Ring of `window` slots. A producer may claim index `i` only while
        // `i < consumed + window`; because claims are handed out in order
        // from `next_claim`, at most `window` in-flight indices exist at any
        // time and they occupy distinct `i % window` slots — a produced item
        // is never overwritten before the consumer takes it.
        struct Shared<T> {
            slots: Vec<Option<T>>,
            consumed: usize,
            next_claim: usize,
        }
        let shared = Mutex::new(Shared::<T> {
            slots: (0..window).map(|_| None).collect(),
            consumed: 0,
            next_claim: 0,
        });
        let space = Condvar::new(); // signalled when `consumed` advances
        let ready = Condvar::new(); // signalled when a slot is filled
        let produce = &produce;
        let shared_ref = &shared;
        let space_ref = &space;
        let ready_ref = &ready;

        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(move || loop {
                    // Claim the next index, waiting for window space.
                    let i = {
                        let mut s = shared_ref.lock().expect("pipeline state poisoned");
                        loop {
                            if s.next_claim >= n {
                                return;
                            }
                            if s.next_claim < s.consumed + window {
                                let i = s.next_claim;
                                s.next_claim += 1;
                                break i;
                            }
                            s = space_ref.wait(s).expect("pipeline state poisoned");
                        }
                    };
                    let item = produce(i);
                    let mut s = shared_ref.lock().expect("pipeline state poisoned");
                    debug_assert!(s.slots[i % window].is_none(), "pipeline slot clobbered");
                    s.slots[i % window] = Some(item);
                    drop(s);
                    ready_ref.notify_all();
                });
            }

            // Consumer: the calling thread drains indices in order.
            for i in 0..n {
                let item = {
                    let mut s = shared.lock().expect("pipeline state poisoned");
                    loop {
                        if let Some(item) = s.slots[i % window].take() {
                            s.consumed = i + 1;
                            break item;
                        }
                        s = ready.wait(s).expect("pipeline state poisoned");
                    }
                };
                space.notify_all();
                consume(i, item);
            }
        });
    }
}

impl Default for WorkerPool {
    fn default() -> Self {
        WorkerPool::from_env()
    }
}

/// The contiguous near-equal decomposition behind
/// [`WorkerPool::map_chunks`]: `chunks` ranges covering `0..n` in order,
/// the first `n % chunks` one element longer. Empty when `n == 0`.
pub fn chunk_ranges(n: usize, chunks: usize) -> Vec<std::ops::Range<usize>> {
    if n == 0 {
        return Vec::new();
    }
    let chunks = chunks.clamp(1, n);
    let base = n / chunks;
    let extra = n % chunks;
    let mut ranges = Vec::with_capacity(chunks);
    let mut start = 0;
    for c in 0..chunks {
        let len = base + usize::from(c < extra);
        ranges.push(start..start + len);
        start += len;
    }
    debug_assert_eq!(start, n);
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;

    #[test]
    fn results_in_input_order_any_worker_count() {
        let inputs: Vec<u64> = (0..97).collect();
        let expected: Vec<u64> = inputs.iter().map(|x| x.wrapping_mul(0x9e37)).collect();
        for workers in [1, 2, 3, 4, 8, 16, 64, 200] {
            let pool = WorkerPool::new(workers);
            let batch = pool.map(inputs.clone(), |x| x.wrapping_mul(0x9e37));
            assert_eq!(batch.results, expected, "workers={workers}");
            assert!(batch.workers <= workers.max(1));
        }
    }

    #[test]
    fn deterministic_with_jittered_task_durations() {
        // Tasks finish out of order on purpose; results must not.
        let mut rng = SimRng::new(0xabcd);
        let delays: Vec<u64> = (0..32).map(|_| rng.gen_range(400)).collect();
        let pool = WorkerPool::new(8);
        let batch = pool.map(delays.clone(), |d| {
            std::thread::sleep(Duration::from_micros(d));
            d
        });
        assert_eq!(batch.results, delays);
    }

    #[test]
    fn empty_batch_is_fine() {
        let pool = WorkerPool::new(4);
        let batch: Batch<u32> = pool.run(Vec::<fn() -> u32>::new());
        assert!(batch.results.is_empty());
        assert_eq!(batch.workers, 1);
    }

    #[test]
    fn serial_pool_spawns_no_threads() {
        // Tasks observing their thread id should all see the caller's.
        let caller = std::thread::current().id();
        let pool = WorkerPool::serial();
        let batch = pool.map_indices(16, |_| std::thread::current().id());
        assert!(batch.results.iter().all(|&id| id == caller));
    }

    #[test]
    fn parallel_pool_uses_multiple_threads() {
        if std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            < 2
        {
            return; // single-core CI runner; nothing to assert
        }
        let pool = WorkerPool::new(4);
        let batch = pool.map_indices(64, |_| {
            std::thread::sleep(Duration::from_millis(1));
            std::thread::current().id()
        });
        // ThreadId is not Ord on stable; dedup via Debug strings.
        let mut ids: Vec<String> = batch.results.iter().map(|id| format!("{id:?}")).collect();
        ids.sort();
        ids.dedup();
        assert!(ids.len() > 1, "expected multiple worker threads");
    }

    #[test]
    fn tasks_can_borrow_environment() {
        let data: Vec<u64> = (0..1000).collect();
        let pool = WorkerPool::new(4);
        let batch = pool.map_indices(10, |i| data[i * 100]);
        assert_eq!(
            batch.results,
            vec![0, 100, 200, 300, 400, 500, 600, 700, 800, 900]
        );
    }

    #[test]
    fn workers_clamped_to_at_least_one() {
        assert_eq!(WorkerPool::new(0).workers(), 1);
    }

    #[test]
    fn recovering_map_rebuilds_lost_results() {
        let expected: Vec<u64> = (0..40).map(|i: u64| i * 3).collect();
        for workers in [1, 4, 16] {
            let pool = WorkerPool::new(workers);
            let doomed = vec![0, 7, 39];
            let (batch, retried) = pool.map_indices_recovering(40, &doomed, |i| (i as u64) * 3);
            assert_eq!(batch.results, expected, "workers={workers}");
            assert_eq!(retried, doomed, "workers={workers}");
        }
    }

    #[test]
    fn recovering_map_with_no_doomed_matches_plain_map() {
        let pool = WorkerPool::new(4);
        let plain = pool.map_indices(25, |i| i * i);
        let (rec, retried) = pool.map_indices_recovering(25, &[], |i| i * i);
        assert_eq!(plain.results, rec.results);
        assert!(retried.is_empty());
    }

    #[test]
    fn recovering_map_ignores_out_of_range_doomed() {
        let pool = WorkerPool::new(2);
        let (batch, retried) = pool.map_indices_recovering(5, &[3, 99], |i| i + 1);
        assert_eq!(batch.results, vec![1, 2, 3, 4, 5]);
        assert_eq!(retried, vec![3]);
    }

    #[test]
    fn pipeline_consumes_in_order_any_worker_count() {
        for workers in [1, 2, 3, 8] {
            for window in [1, 2, 7, 64] {
                let pool = WorkerPool::new(workers);
                let mut seen = Vec::new();
                pool.pipeline(
                    33,
                    window,
                    |i| (i as u64).wrapping_mul(0x9e37),
                    |i, v| seen.push((i, v)),
                );
                let expected: Vec<(usize, u64)> = (0..33)
                    .map(|i| (i, (i as u64).wrapping_mul(0x9e37)))
                    .collect();
                assert_eq!(seen, expected, "workers={workers} window={window}");
            }
        }
    }

    #[test]
    fn pipeline_in_order_with_jittered_producers() {
        // Producers finish out of order on purpose; consumption must not.
        let mut rng = SimRng::new(0x91e1);
        let delays: Vec<u64> = (0..48).map(|_| rng.gen_range(300)).collect();
        let pool = WorkerPool::new(6);
        let mut order = Vec::new();
        pool.pipeline(
            delays.len(),
            4,
            |i| {
                std::thread::sleep(Duration::from_micros(delays[i]));
                i
            },
            |i, v| {
                assert_eq!(i, v);
                order.push(i);
            },
        );
        assert_eq!(order, (0..delays.len()).collect::<Vec<_>>());
    }

    #[test]
    fn pipeline_consumer_runs_on_caller_thread() {
        let caller = std::thread::current().id();
        let pool = WorkerPool::new(4);
        let mut consumer_threads = Vec::new();
        pool.pipeline(
            16,
            3,
            |i| i,
            |_, _| consumer_threads.push(std::thread::current().id()),
        );
        assert!(consumer_threads.iter().all(|&id| id == caller));
    }

    #[test]
    fn pipeline_respects_window_bound() {
        // Track the max number of produced-but-unconsumed items.
        let produced = AtomicUsize::new(0);
        let consumed = AtomicUsize::new(0);
        let max_lead = AtomicUsize::new(0);
        let pool = WorkerPool::new(8);
        let window = 3usize;
        pool.pipeline(
            64,
            window,
            |i| {
                let p = produced.fetch_add(1, Ordering::SeqCst) + 1;
                let c = consumed.load(Ordering::SeqCst);
                let lead = p.saturating_sub(c);
                max_lead.fetch_max(lead, Ordering::SeqCst);
                i
            },
            |_, _| {
                consumed.fetch_add(1, Ordering::SeqCst);
            },
        );
        // A claim is only handed out while `claim < consumed + window`, so
        // at most `window` items are in flight by the internal counter. The
        // external counter observed here lags by one (the internal consumed
        // index advances before the consume callback runs), hence `+ 1`.
        assert!(
            max_lead.load(Ordering::SeqCst) <= window + 1,
            "lead {} exceeded window {window} + 1",
            max_lead.load(Ordering::SeqCst)
        );
    }

    #[test]
    fn pipeline_empty_and_single() {
        let pool = WorkerPool::new(4);
        let mut calls = 0;
        pool.pipeline(0, 4, |i| i, |_, _| calls += 1);
        assert_eq!(calls, 0);
        pool.pipeline(
            1,
            4,
            |i| i * 7,
            |i, v| {
                assert_eq!((i, v), (0, 0));
                calls += 1;
            },
        );
        assert_eq!(calls, 1);
    }

    #[test]
    fn chunk_ranges_cover_exactly_in_order() {
        for n in [0usize, 1, 2, 7, 16, 100] {
            for chunks in [1usize, 2, 3, 5, 16, 99] {
                let ranges = chunk_ranges(n, chunks);
                let flat: Vec<usize> = ranges.iter().cloned().flatten().collect();
                assert_eq!(flat, (0..n).collect::<Vec<_>>(), "n={n} chunks={chunks}");
                if n > 0 {
                    assert_eq!(ranges.len(), chunks.clamp(1, n));
                    let lens: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
                    let (lo, hi) = (lens.iter().min().unwrap(), lens.iter().max().unwrap());
                    assert!(hi - lo <= 1, "n={n} chunks={chunks} lens={lens:?}");
                }
            }
        }
    }

    #[test]
    fn map_chunks_deterministic_across_worker_counts() {
        let expected: Vec<Vec<usize>> = chunk_ranges(37, 5)
            .into_iter()
            .map(|r| r.collect())
            .collect();
        for workers in [1, 2, 4, 16] {
            let pool = WorkerPool::new(workers);
            let batch = pool.map_chunks(37, 5, |r| r.collect::<Vec<usize>>());
            assert_eq!(batch.results, expected, "workers={workers}");
        }
    }

    #[test]
    fn map_chunks_handles_degenerate_shapes() {
        let pool = WorkerPool::new(3);
        assert!(pool.map_chunks(0, 4, |r| r.len()).results.is_empty());
        // More chunks than items: clamped to one item per chunk.
        assert_eq!(pool.map_chunks(3, 10, |r| r.len()).results, vec![1, 1, 1]);
        assert_eq!(pool.map_chunks(5, 0, |r| r.len()).results, vec![5]);
    }

    #[test]
    fn real_scaling_consistent_with_lpt_model() {
        // Real makespan with W workers should not exceed the serial time;
        // we only assert the weak direction to stay robust on loaded CI.
        let n = 16usize;
        let work = |_: usize| {
            // ~1 ms of spinning, deterministic.
            let mut acc = 0u64;
            for i in 0..200_000u64 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
            }
            acc
        };
        let serial = WorkerPool::serial().map_indices(n, work);
        let par = WorkerPool::from_env().map_indices(n, work);
        assert_eq!(serial.results, par.results);
        if par.workers >= 4 {
            // Generous bound: parallel should beat serial clearly.
            assert!(
                par.makespan < serial.makespan,
                "parallel {:?} not faster than serial {:?}",
                par.makespan,
                serial.makespan
            );
        }
    }
}
