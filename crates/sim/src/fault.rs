//! Deterministic fault injection for chaos testing.
//!
//! HyperTP shrinks the vulnerability window only if a transplant that
//! *fails partway* degrades gracefully instead of losing VMs. ReHype-style
//! microreboot recovery is viable precisely when the failure paths are
//! exercised deterministically — so this module provides a seeded
//! [`FaultPlan`] that the transplant stack consults at named
//! [`InjectionPoint`]s, and a structured [`FaultLog`] that records every
//! injected fault and every recovery action so tests can assert *exactly*
//! which recovery path fired.
//!
//! Design rules that make the chaos matrix reproducible:
//!
//! * **Per-point RNG streams.** Each injection point draws from its own
//!   [`SimRng`] stream derived from `seed ^ point tag`, so adding a probe
//!   at one point never perturbs the decisions at another.
//! * **Orchestrator-only decisions.** `should_inject` must be called from
//!   the single orchestrating thread (the transplant engine), never from
//!   inside pool workers; worker faults are *decided before dispatch* (see
//!   [`FaultPlan::pick_doomed_tasks`]) so the log order is deterministic.
//! * **Canonical log rendering.** [`FaultLog::render`] produces one line
//!   per event with a global sequence number; running the same seed twice
//!   yields byte-identical output, which the chaos matrix asserts.
//!
//! A disarmed plan (no rates, no armed occurrences) never injects and
//! records nothing, so production paths can consult an `Option<&FaultPlan>`
//! — or a default plan — at zero behavioural cost.

use std::fmt;
use std::sync::{Arc, Mutex};

use crate::rng::SimRng;

/// Named places in the transplant stack where faults can be injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum InjectionPoint {
    /// Migration link drops mid-round (socket reset). Recovery: retry the
    /// round with exponential backoff, resuming from the last acked round.
    LinkDrop,
    /// Migration link latency spike (congestion). Recovery: absorb the
    /// extra latency into the round's simulated time and carry on.
    LinkLatencySpike,
    /// A page arrives truncated/corrupted on the destination. Recovery:
    /// content verification detects the bad page and the round is re-sent.
    TruncatedPage,
    /// The UISR blob is corrupted in flight (decode fails on the
    /// destination). Recovery: re-encode and re-send the device state.
    UisrCorruption,
    /// A PRAM file-info page checksum mismatch is discovered before kexec.
    /// Recovery: release the metadata pages and rebuild the PRAM image.
    PramChecksum,
    /// A worker thread dies mid-task in the parallel translate phase.
    /// Recovery: the orchestrator detects the missing result and re-runs
    /// the task inline.
    WorkerPanic,
    /// A host fails mid-campaign (crash, power loss). Recovery: requeue
    /// the host with backoff; after exhausting retries, exclude it and
    /// account its VMs as residual exposure.
    HostFailure,
    /// The running hypervisor itself crashes (panic, compromise) while VMs
    /// are live. Recovery: ReHype-style unplanned transplant — micro-reboot
    /// into the *other* hypervisor via kexec+PRAM and restore every VM from
    /// its freshest warm UISR checkpoint (`core::unplanned`).
    HypervisorCrash,
}

impl InjectionPoint {
    /// Every registered injection point, in canonical order.
    pub const ALL: [InjectionPoint; 8] = [
        InjectionPoint::LinkDrop,
        InjectionPoint::LinkLatencySpike,
        InjectionPoint::TruncatedPage,
        InjectionPoint::UisrCorruption,
        InjectionPoint::PramChecksum,
        InjectionPoint::WorkerPanic,
        InjectionPoint::HostFailure,
        InjectionPoint::HypervisorCrash,
    ];

    /// Stable short name used in logs and JSON.
    pub fn name(self) -> &'static str {
        match self {
            InjectionPoint::LinkDrop => "link_drop",
            InjectionPoint::LinkLatencySpike => "link_latency_spike",
            InjectionPoint::TruncatedPage => "truncated_page",
            InjectionPoint::UisrCorruption => "uisr_corruption",
            InjectionPoint::PramChecksum => "pram_checksum",
            InjectionPoint::WorkerPanic => "worker_panic",
            InjectionPoint::HostFailure => "host_failure",
            InjectionPoint::HypervisorCrash => "hypervisor_crash",
        }
    }

    /// Stable index into per-point tables (also the RNG stream tag).
    pub fn index(self) -> usize {
        match self {
            InjectionPoint::LinkDrop => 0,
            InjectionPoint::LinkLatencySpike => 1,
            InjectionPoint::TruncatedPage => 2,
            InjectionPoint::UisrCorruption => 3,
            InjectionPoint::PramChecksum => 4,
            InjectionPoint::WorkerPanic => 5,
            InjectionPoint::HostFailure => 6,
            InjectionPoint::HypervisorCrash => 7,
        }
    }
}

impl fmt::Display for InjectionPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The recovery path a component took after a fault fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RecoveryAction {
    /// The operation was retried after an exponential-backoff delay.
    RetriedWithBackoff,
    /// The migration resumed from the last acknowledged round instead of
    /// restarting from scratch.
    ResumedFromRound,
    /// A round's pages were re-sent after content verification failed.
    ResentPages,
    /// The UISR blob was re-encoded and re-sent after decode failure.
    ResentUisr,
    /// The PRAM metadata pages were released and the image rebuilt.
    RebuiltPram,
    /// A pool task whose worker died was re-run inline by the caller.
    TaskRetriedInline,
    /// The migration path was abandoned and the VM was transplanted
    /// in place instead (MigrationTP → InPlaceTP fallback).
    FellBackToInPlace,
    /// The incremental warm-translate phase was abandoned after a fault
    /// and the transplant completed via the full pause-time translation
    /// path instead (InPlaceTP incremental → full fallback).
    FellBackToFullTranslate,
    /// A failed host was put back on the campaign queue for another try.
    RequeuedHost,
    /// A host exhausted its retries and was excluded from the campaign;
    /// its VMs count as residual exposure.
    ExcludedHost,
    /// A latency spike was absorbed into the round time without retrying.
    AbsorbedLatency,
    /// The wire path's dedup/delta cache entries journalled in the failed
    /// round were rolled back (the destination never acked them) and the
    /// round was re-encoded against the last committed state.
    InvalidatedWireCache,
    /// The adaptive pre-copy controller's estimators were reset after a
    /// link fault: the samples they held measured a link state that no
    /// longer exists, so the controller re-warms from the retried round.
    ResetController,
    /// The crashed hypervisor was replaced by micro-rebooting into the
    /// other hypervisor over the kexec+PRAM path (unplanned transplant).
    MicroRebooted,
    /// A VM lost with the crashed hypervisor was restored from its
    /// freshest warm UISR checkpoint in PRAM.
    RestoredFromCheckpoint,
    /// The fault was fatal at this layer; the error propagated to the
    /// caller (which may itself recover — e.g. fall back to InPlaceTP).
    GaveUp,
}

impl RecoveryAction {
    /// Stable short name used in logs and JSON.
    pub fn name(self) -> &'static str {
        match self {
            RecoveryAction::RetriedWithBackoff => "retried_with_backoff",
            RecoveryAction::ResumedFromRound => "resumed_from_round",
            RecoveryAction::ResentPages => "resent_pages",
            RecoveryAction::ResentUisr => "resent_uisr",
            RecoveryAction::RebuiltPram => "rebuilt_pram",
            RecoveryAction::TaskRetriedInline => "task_retried_inline",
            RecoveryAction::FellBackToInPlace => "fell_back_to_inplace",
            RecoveryAction::FellBackToFullTranslate => "fell_back_to_full_translate",
            RecoveryAction::RequeuedHost => "requeued_host",
            RecoveryAction::ExcludedHost => "excluded_host",
            RecoveryAction::AbsorbedLatency => "absorbed_latency",
            RecoveryAction::InvalidatedWireCache => "invalidated_wire_cache",
            RecoveryAction::ResetController => "reset_controller",
            RecoveryAction::MicroRebooted => "micro_rebooted",
            RecoveryAction::RestoredFromCheckpoint => "restored_from_checkpoint",
            RecoveryAction::GaveUp => "gave_up",
        }
    }
}

impl fmt::Display for RecoveryAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One entry in the [`FaultLog`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultEvent {
    /// A fault fired at `point`; `site` identifies where (VM name, host
    /// name, round number — whatever the caller finds useful), and
    /// `occurrence` is the per-point 1-based count of injections so far.
    Injected {
        seq: u64,
        point: InjectionPoint,
        site: String,
        occurrence: u64,
    },
    /// A component recovered from a fault at `point` via `action`.
    Recovered {
        seq: u64,
        point: InjectionPoint,
        action: RecoveryAction,
        detail: String,
    },
}

impl FaultEvent {
    /// Global sequence number (order of occurrence across all points).
    pub fn seq(&self) -> u64 {
        match self {
            FaultEvent::Injected { seq, .. } | FaultEvent::Recovered { seq, .. } => *seq,
        }
    }

    /// The injection point this event concerns.
    pub fn point(&self) -> InjectionPoint {
        match self {
            FaultEvent::Injected { point, .. } | FaultEvent::Recovered { point, .. } => *point,
        }
    }
}

/// A structured, ordered record of every injected fault and recovery.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultLog {
    events: Vec<FaultEvent>,
}

impl FaultLog {
    /// All events in injection order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of events (injections + recoveries).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing was injected or recovered.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Count of injections at `point`.
    pub fn injections_at(&self, point: InjectionPoint) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, FaultEvent::Injected { .. }) && e.point() == point)
            .count()
    }

    /// Count of recoveries at `point` via `action`.
    pub fn recoveries(&self, point: InjectionPoint, action: RecoveryAction) -> usize {
        self.events
            .iter()
            .filter(|e| match e {
                FaultEvent::Recovered {
                    point: p,
                    action: a,
                    ..
                } => *p == point && *a == action,
                _ => false,
            })
            .count()
    }

    /// True if at least one recovery at `point` used `action`.
    pub fn recovered_via(&self, point: InjectionPoint, action: RecoveryAction) -> bool {
        self.recoveries(point, action) > 0
    }

    /// Canonical one-line-per-event rendering. Running the same seed twice
    /// must yield byte-identical output; the chaos matrix asserts this.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            match e {
                FaultEvent::Injected {
                    seq,
                    point,
                    site,
                    occurrence,
                } => {
                    out.push_str(&format!(
                        "{seq:04} INJECT  {point} #{occurrence} @ {site}\n"
                    ));
                }
                FaultEvent::Recovered {
                    seq,
                    point,
                    action,
                    detail,
                } => {
                    out.push_str(&format!(
                        "{seq:04} RECOVER {point} -> {action} ({detail})\n"
                    ));
                }
            }
        }
        out
    }
}

/// Per-point arming configuration.
#[derive(Debug, Clone, Default)]
struct PointState {
    /// Probability in [0, 1] that a `should_inject` call fires.
    rate: f64,
    /// Explicit 1-based call ordinals that must fire regardless of rate.
    armed_calls: Vec<u64>,
    /// Cap on total injections at this point (None = unlimited).
    max_injections: Option<u64>,
    /// `should_inject` calls seen so far.
    calls: u64,
    /// Injections fired so far.
    injections: u64,
}

#[derive(Debug)]
struct Inner {
    seed: u64,
    points: [PointState; 8],
    streams: [SimRng; 8],
    log: FaultLog,
    next_seq: u64,
}

/// A seeded, deterministic fault plan shared across the transplant stack.
///
/// Cloning is cheap (an [`Arc`]); all clones observe and append to the same
/// [`FaultLog`]. A `FaultPlan::disarmed()` plan never injects, so
/// production code paths can unconditionally consult one.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    inner: Arc<Mutex<Inner>>,
}

impl FaultPlan {
    /// A plan seeded for deterministic injection decisions. Nothing fires
    /// until a point is armed via [`FaultPlan::arm`],
    /// [`FaultPlan::arm_calls`], or [`FaultPlan::arm_once`].
    pub fn new(seed: u64) -> Self {
        let streams = std::array::from_fn(|i| {
            // Distinct stream per point: tag the seed with the point index
            // using odd multipliers so streams never collide or correlate.
            SimRng::new(seed ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(i as u64 + 1)))
        });
        FaultPlan {
            inner: Arc::new(Mutex::new(Inner {
                seed,
                points: Default::default(),
                streams,
                log: FaultLog::default(),
                next_seq: 0,
            })),
        }
    }

    /// A plan that never injects anything. Useful as a default.
    pub fn disarmed() -> Self {
        FaultPlan::new(0)
    }

    /// The seed this plan was built with.
    pub fn seed(&self) -> u64 {
        self.inner.lock().expect("fault plan poisoned").seed
    }

    /// Arms `point` to fire with probability `rate` per `should_inject`
    /// call, with at most `max_injections` total firings.
    pub fn arm(&self, point: InjectionPoint, rate: f64, max_injections: u64) -> &Self {
        let mut inner = self.inner.lock().expect("fault plan poisoned");
        let st = &mut inner.points[point.index()];
        st.rate = rate.clamp(0.0, 1.0);
        st.max_injections = Some(max_injections);
        self
    }

    /// Arms `point` to fire on the given 1-based `should_inject` call
    /// ordinals (e.g. `&[1]` fires on the first consultation only).
    pub fn arm_calls(&self, point: InjectionPoint, ordinals: &[u64]) -> &Self {
        let mut inner = self.inner.lock().expect("fault plan poisoned");
        inner.points[point.index()]
            .armed_calls
            .extend_from_slice(ordinals);
        self
    }

    /// Arms `point` to fire exactly once, on the first consultation.
    pub fn arm_once(&self, point: InjectionPoint) -> &Self {
        self.arm_calls(point, &[1])
    }

    /// Arms every registered point to fire exactly once. Convenience for
    /// the chaos matrix's "exercise every point" requirement.
    pub fn arm_all_once(&self) -> &Self {
        for p in InjectionPoint::ALL {
            self.arm_once(p);
        }
        self
    }

    /// Whether *any* injection point is armed (non-zero rate or pending
    /// call ordinals). Orchestrators that parallelize fault-free work use
    /// this to decide between the parallel path and the sequential path
    /// that preserves `should_inject` consultation order.
    pub fn armed(&self) -> bool {
        let inner = self.inner.lock().expect("fault plan poisoned");
        inner
            .points
            .iter()
            .any(|st| st.rate > 0.0 || !st.armed_calls.is_empty())
    }

    /// Decides — deterministically — whether a fault fires at `point` for
    /// this consultation, and if so records it against `site`.
    ///
    /// Must be called from the orchestrating thread only (never inside a
    /// pool worker), so the log's event order is reproducible.
    pub fn should_inject(&self, point: InjectionPoint, site: &str) -> bool {
        let mut inner = self.inner.lock().expect("fault plan poisoned");
        let idx = point.index();
        inner.points[idx].calls += 1;
        let call = inner.points[idx].calls;

        // Draw even when the outcome is forced so armed/unarmed runs of
        // the same seed keep the stream positions aligned per call.
        let roll = inner.streams[idx].gen_f64();

        let st = &inner.points[idx];
        let armed_hit = st.armed_calls.contains(&call);
        let capped = st.max_injections.is_some_and(|cap| st.injections >= cap);
        let rate_hit = !capped && st.rate > 0.0 && roll < st.rate;
        if !(armed_hit || rate_hit) {
            return false;
        }

        inner.points[idx].injections += 1;
        let occurrence = inner.points[idx].injections;
        let seq = inner.next_seq;
        inner.next_seq += 1;
        inner.log.events.push(FaultEvent::Injected {
            seq,
            point,
            site: site.to_string(),
            occurrence,
        });
        true
    }

    /// Records that a component recovered from a fault at `point`.
    pub fn record_recovery(&self, point: InjectionPoint, action: RecoveryAction, detail: &str) {
        let mut inner = self.inner.lock().expect("fault plan poisoned");
        let seq = inner.next_seq;
        inner.next_seq += 1;
        inner.log.events.push(FaultEvent::Recovered {
            seq,
            point,
            action,
            detail: detail.to_string(),
        });
    }

    /// Picks which of `n` pool tasks are doomed (their worker "dies"),
    /// consuming one `should_inject` consultation per task. Decisions are
    /// made here, before dispatch, so parallel execution cannot perturb
    /// the log. Returns the doomed indices in ascending order.
    pub fn pick_doomed_tasks(&self, n: usize, site: &str) -> Vec<usize> {
        (0..n)
            .filter(|i| {
                self.should_inject(InjectionPoint::WorkerPanic, &format!("{site}[task {i}]"))
            })
            .collect()
    }

    /// Total injections fired at `point` so far.
    pub fn injections_fired(&self, point: InjectionPoint) -> u64 {
        self.inner.lock().expect("fault plan poisoned").points[point.index()].injections
    }

    /// A snapshot of the fault log.
    pub fn log(&self) -> FaultLog {
        self.inner.lock().expect("fault plan poisoned").log.clone()
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::disarmed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_plan_never_injects() {
        let plan = FaultPlan::disarmed();
        for p in InjectionPoint::ALL {
            for i in 0..50 {
                assert!(!plan.should_inject(p, &format!("call {i}")));
            }
        }
        assert!(plan.log().is_empty());
    }

    #[test]
    fn armed_reflects_arming_state() {
        let plan = FaultPlan::disarmed();
        assert!(!plan.armed());
        plan.arm(InjectionPoint::HostFailure, 0.5, 10);
        assert!(plan.armed());
        let once = FaultPlan::new(3);
        once.arm_once(InjectionPoint::LinkDrop);
        assert!(once.armed());
        // A zero rate does not count as armed.
        let zero = FaultPlan::new(4);
        zero.arm(InjectionPoint::HostFailure, 0.0, 10);
        assert!(!zero.armed());
    }

    #[test]
    fn arm_once_fires_exactly_on_first_call() {
        let plan = FaultPlan::new(7);
        plan.arm_once(InjectionPoint::LinkDrop);
        assert!(plan.should_inject(InjectionPoint::LinkDrop, "round 0"));
        for i in 1..20 {
            assert!(!plan.should_inject(InjectionPoint::LinkDrop, &format!("round {i}")));
        }
        assert_eq!(plan.log().injections_at(InjectionPoint::LinkDrop), 1);
    }

    #[test]
    fn arm_calls_fires_on_exact_ordinals() {
        let plan = FaultPlan::new(7);
        plan.arm_calls(InjectionPoint::TruncatedPage, &[2, 5]);
        let fired: Vec<bool> = (1..=6)
            .map(|i| plan.should_inject(InjectionPoint::TruncatedPage, &format!("call {i}")))
            .collect();
        assert_eq!(fired, vec![false, true, false, false, true, false]);
    }

    #[test]
    fn rate_respects_max_injections_cap() {
        let plan = FaultPlan::new(99);
        plan.arm(InjectionPoint::HostFailure, 1.0, 3);
        let fired = (0..10)
            .filter(|i| plan.should_inject(InjectionPoint::HostFailure, &format!("host {i}")))
            .count();
        assert_eq!(fired, 3);
    }

    #[test]
    fn same_seed_same_decisions_and_byte_identical_log() {
        let run = |seed: u64| {
            let plan = FaultPlan::new(seed);
            plan.arm(InjectionPoint::LinkDrop, 0.3, u64::MAX);
            plan.arm(InjectionPoint::UisrCorruption, 0.2, u64::MAX);
            for i in 0..40 {
                if plan.should_inject(InjectionPoint::LinkDrop, &format!("round {i}")) {
                    plan.record_recovery(
                        InjectionPoint::LinkDrop,
                        RecoveryAction::RetriedWithBackoff,
                        &format!("attempt {i}"),
                    );
                }
                let _ = plan.should_inject(InjectionPoint::UisrCorruption, &format!("vm {i}"));
            }
            plan.log().render()
        };
        let a = run(0xdead_beef);
        let b = run(0xdead_beef);
        assert_eq!(a, b, "same seed must yield byte-identical FaultLogs");
        let c = run(0xfeed_f00d);
        assert_ne!(a, c, "different seeds should (almost surely) differ");
    }

    #[test]
    fn streams_are_independent_per_point() {
        // Consulting point A must not change point B's decisions.
        let decisions = |with_noise: bool| {
            let plan = FaultPlan::new(42);
            plan.arm(InjectionPoint::TruncatedPage, 0.5, u64::MAX);
            plan.arm(InjectionPoint::LinkDrop, 0.5, u64::MAX);
            (0..30)
                .map(|i| {
                    if with_noise {
                        let _ = plan.should_inject(InjectionPoint::LinkDrop, "noise");
                    }
                    plan.should_inject(InjectionPoint::TruncatedPage, &format!("page {i}"))
                })
                .collect::<Vec<bool>>()
        };
        assert_eq!(decisions(false), decisions(true));
    }

    #[test]
    fn pick_doomed_tasks_is_deterministic_and_ordered() {
        let pick = || {
            let plan = FaultPlan::new(0x5eed);
            plan.arm(InjectionPoint::WorkerPanic, 0.25, u64::MAX);
            plan.pick_doomed_tasks(32, "translate")
        };
        let a = pick();
        let b = pick();
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0] < w[1]), "ascending order");
        assert!(!a.is_empty(), "rate 0.25 over 32 tasks should doom some");
    }

    #[test]
    fn log_counters_and_queries() {
        let plan = FaultPlan::new(1);
        plan.arm_once(InjectionPoint::PramChecksum);
        assert!(plan.should_inject(InjectionPoint::PramChecksum, "pre-kexec verify"));
        plan.record_recovery(
            InjectionPoint::PramChecksum,
            RecoveryAction::RebuiltPram,
            "released 12 metadata pages",
        );
        let log = plan.log();
        assert_eq!(log.len(), 2);
        assert_eq!(log.injections_at(InjectionPoint::PramChecksum), 1);
        assert!(log.recovered_via(InjectionPoint::PramChecksum, RecoveryAction::RebuiltPram));
        assert!(!log.recovered_via(InjectionPoint::PramChecksum, RecoveryAction::GaveUp));
        let rendered = log.render();
        assert!(rendered.contains("INJECT  pram_checksum #1 @ pre-kexec verify"));
        assert!(rendered.contains("RECOVER pram_checksum -> rebuilt_pram"));
    }

    #[test]
    fn clones_share_one_log() {
        let plan = FaultPlan::new(3);
        plan.arm_once(InjectionPoint::HostFailure);
        let clone = plan.clone();
        assert!(clone.should_inject(InjectionPoint::HostFailure, "host h3"));
        assert_eq!(plan.log().injections_at(InjectionPoint::HostFailure), 1);
    }

    #[test]
    fn all_points_have_distinct_names_and_indices() {
        let mut names: Vec<&str> = InjectionPoint::ALL.iter().map(|p| p.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), InjectionPoint::ALL.len());
        for (i, p) in InjectionPoint::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
        }
    }
}
