//! A model of parallel work execution.
//!
//! The paper's §4.2.5 "Parallelization" optimization translates each VM's
//! state on a separate thread. On the simulated machine we model the elapsed
//! time of such a pool as the makespan of a longest-processing-time (LPT)
//! greedy schedule over the available worker cores: each task is assigned to
//! the currently least-loaded worker, in decreasing task-size order. LPT is
//! within 4/3 of the optimal makespan and matches how a work-stealing pool
//! behaves on coarse tasks, which is what the prototype uses.

use crate::time::SimDuration;

/// Computes the elapsed (makespan) time of running `tasks` on `workers`
/// parallel workers using an LPT greedy schedule.
///
/// With a single worker this degenerates to the sum of all task durations;
/// with at least as many workers as tasks it is the maximum task duration.
///
/// # Panics
///
/// Panics if `workers` is zero.
///
/// # Examples
///
/// ```
/// use hypertp_sim::{makespan, SimDuration};
///
/// let tasks = vec![SimDuration::from_secs(3), SimDuration::from_secs(1)];
/// assert_eq!(makespan(&tasks, 1), SimDuration::from_secs(4));
/// assert_eq!(makespan(&tasks, 2), SimDuration::from_secs(3));
/// ```
pub fn makespan(tasks: &[SimDuration], workers: usize) -> SimDuration {
    lpt_loads(tasks, workers)
        .into_iter()
        .max()
        .unwrap_or(SimDuration::ZERO)
}

/// Computes the per-worker loads of the LPT schedule used by [`makespan`],
/// in worker order.
///
/// Ties are broken deterministically towards the lowest-numbered worker:
/// when several workers share the minimum load, the task goes to the first
/// of them. (A bare `Iterator::min` over the loads would hand ties to the
/// *last* minimal element, which made the schedule — though not the
/// makespan value — depend on an implementation detail of the standard
/// library.)
///
/// # Panics
///
/// Panics if `workers` is zero.
pub fn lpt_loads(tasks: &[SimDuration], workers: usize) -> Vec<SimDuration> {
    assert!(workers > 0, "makespan requires at least one worker");
    if tasks.is_empty() {
        return Vec::new();
    }
    let mut sorted: Vec<SimDuration> = tasks.to_vec();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    let mut loads = vec![SimDuration::ZERO; workers.min(sorted.len())];
    for t in sorted {
        // Assign to the least-loaded worker; first index wins ties.
        let (idx, _) = loads
            .iter()
            .enumerate()
            .min_by_key(|&(i, load)| (*load, i))
            .expect("loads is non-empty because tasks is non-empty");
        loads[idx] += t;
    }
    loads
}

/// Computes the makespan of `n` identical tasks of duration `each` over
/// `workers` workers: `ceil(n / workers) * each`.
pub fn makespan_uniform(n: usize, each: SimDuration, workers: usize) -> SimDuration {
    assert!(workers > 0, "makespan requires at least one worker");
    let rounds = n.div_ceil(workers) as u64;
    each * rounds
}

/// Models the speedup of a partially parallel job (Amdahl's law): a fraction
/// `serial` of `total` cannot be parallelized, the rest divides over
/// `workers` workers.
pub fn amdahl(total: SimDuration, serial: f64, workers: usize) -> SimDuration {
    assert!(workers > 0, "amdahl requires at least one worker");
    let serial = serial.clamp(0.0, 1.0);
    let s = total.as_secs_f64() * serial;
    let p = total.as_secs_f64() * (1.0 - serial) / workers as f64;
    SimDuration::from_secs_f64(s + p)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(xs: &[u64]) -> Vec<SimDuration> {
        xs.iter().copied().map(SimDuration::from_secs).collect()
    }

    #[test]
    fn single_worker_sums() {
        assert_eq!(makespan(&secs(&[1, 2, 3]), 1), SimDuration::from_secs(6));
    }

    #[test]
    fn many_workers_take_max() {
        assert_eq!(makespan(&secs(&[1, 2, 3]), 8), SimDuration::from_secs(3));
    }

    #[test]
    fn lpt_balances() {
        // Tasks 4,3,3,2 on 2 workers: LPT gives {4,2} and {3,3} -> 6.
        assert_eq!(makespan(&secs(&[4, 3, 3, 2]), 2), SimDuration::from_secs(6));
    }

    #[test]
    fn empty_tasks_zero() {
        assert_eq!(makespan(&[], 4), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_panics() {
        makespan(&secs(&[1]), 0);
    }

    #[test]
    fn makespan_never_below_max_or_average() {
        let tasks = secs(&[5, 1, 1, 1, 1, 1]);
        for w in 1..=8 {
            let m = makespan(&tasks, w);
            assert!(m >= SimDuration::from_secs(5));
            let total = SimDuration::from_secs(10);
            assert!(m.as_secs_f64() >= total.as_secs_f64() / w as f64 - 1e-9);
        }
    }

    #[test]
    fn lpt_ties_go_to_the_lowest_numbered_worker() {
        // Regression: with `Iterator::min`'s last-wins tie-break, [3,1,1]
        // on three idle workers scheduled as [1,1,3]; the documented
        // schedule fills from worker 0: [3,1,1].
        assert_eq!(
            lpt_loads(&secs(&[3, 1, 1]), 3),
            secs(&[3, 1, 1]),
            "largest task lands on worker 0, ties fill upward"
        );
        // A longer all-equal stream round-robins from worker 0 upward.
        assert_eq!(
            lpt_loads(&secs(&[1, 1, 1, 1, 1]), 3),
            vec![
                SimDuration::from_secs(2),
                SimDuration::from_secs(2),
                SimDuration::from_secs(1)
            ],
        );
        // The makespan value itself is unchanged by the tie-break.
        assert_eq!(makespan(&secs(&[3, 1, 1]), 3), SimDuration::from_secs(3));
    }

    #[test]
    fn lpt_loads_sum_to_total_and_match_makespan() {
        let tasks = secs(&[7, 3, 3, 2, 1, 1]);
        for w in 1..=8 {
            let loads = lpt_loads(&tasks, w);
            assert!(loads.len() <= w);
            let sum: SimDuration = loads.iter().copied().sum();
            assert_eq!(sum, SimDuration::from_secs(17));
            assert_eq!(loads.iter().copied().max(), Some(makespan(&tasks, w)));
        }
    }

    #[test]
    fn uniform_rounds() {
        assert_eq!(
            makespan_uniform(10, SimDuration::from_secs(1), 4),
            SimDuration::from_secs(3)
        );
        assert_eq!(
            makespan_uniform(0, SimDuration::from_secs(1), 4),
            SimDuration::ZERO
        );
    }

    #[test]
    fn amdahl_limits() {
        let t = SimDuration::from_secs(10);
        assert_eq!(amdahl(t, 0.0, 1), t);
        assert_eq!(amdahl(t, 1.0, 64), t);
        // 20% serial, 8 workers: 2 + 1 = 3s.
        assert_eq!(amdahl(t, 0.2, 8), SimDuration::from_secs(3));
    }
}
