//! Dependency-free JSON encoding and decoding.
//!
//! The workspace builds fully offline, so instead of `serde`/`serde_json`
//! this small module provides the only two JSON features the repo needs:
//! a debug codec for [`UisrVm`]-like structures and experiment output files
//! (`BENCH_*.json`, figure data).
//!
//! Design notes:
//!
//! * Objects preserve insertion order (`Vec<(String, Json)>`), so encoded
//!   output is deterministic — important because experiment files are
//!   diffed across runs.
//! * Numbers keep their integer identity: `u64`/`i64` survive a round trip
//!   bit-for-bit (registers are full-width 64-bit values; an `f64`-only
//!   representation would silently corrupt them above 2^53).
//! * The parser is a strict recursive-descent parser over UTF-8 with a
//!   depth limit, and is total: any byte string either parses or returns
//!   [`JsonError`], never panics.

use std::fmt;

/// Maximum nesting depth accepted by the parser. JSON emitted by this repo
/// is at most ~6 levels deep; 128 leaves plenty of headroom while keeping
/// recursion bounded on untrusted input.
const MAX_DEPTH: u32 = 128;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// Non-negative integer literal (no sign, no fraction, no exponent).
    U64(u64),
    /// Negative integer literal.
    I64(i64),
    /// Any other numeric literal.
    F64(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Object as an order-preserving association list.
    Obj(Vec<(String, Json)>),
}

/// Error produced by [`Json::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset in the input where the error was detected.
    pub at: usize,
    /// Human-readable description.
    pub msg: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Empty object builder.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Append a key/value pair (builder style; only meaningful on `Obj`).
    pub fn push(&mut self, key: &str, value: Json) -> &mut Json {
        if let Json::Obj(pairs) = self {
            pairs.push((key.to_string(), value));
        }
        self
    }

    /// Chainable object-literal helper.
    pub fn with(mut self, key: &str, value: Json) -> Json {
        self.push(key, value);
        self
    }

    /// Look a key up in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Index into an array.
    pub fn idx(&self, i: usize) -> Option<&Json> {
        match self {
            Json::Arr(items) => items.get(i),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(v) => Some(*v),
            Json::I64(v) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::I64(v) => Some(*v),
            Json::U64(v) if *v <= i64::MAX as u64 => Some(*v as i64),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::F64(v) => Some(*v),
            Json::U64(v) => Some(*v as f64),
            Json::I64(v) => Some(*v as f64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Compact single-line encoding.
    pub fn encode(&self) -> String {
        let mut out = String::with_capacity(64);
        self.write(&mut out, None, 0);
        out
    }

    /// Human-oriented encoding with two-space indentation.
    pub fn encode_pretty(&self) -> String {
        let mut out = String::with_capacity(256);
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, level: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::U64(v) => {
                let buf = itoa_u64(*v);
                out.push_str(&buf);
            }
            Json::I64(v) => out.push_str(&v.to_string()),
            Json::F64(v) => {
                if v.is_finite() {
                    // `{}` on f64 is the shortest representation that
                    // round-trips, matching what serde_json printed.
                    let s = format!("{v}");
                    out.push_str(&s);
                    // Keep a trailing marker so `1.0` doesn't re-parse as
                    // an integer and change variants on a round trip.
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, level + 1);
                    item.write(out, indent, level + 1);
                }
                if !items.is_empty() {
                    newline_indent(out, indent, level);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, level + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, level + 1);
                }
                if !pairs.is_empty() {
                    newline_indent(out, indent, level);
                }
                out.push('}');
            }
        }
    }

    /// Parse a JSON document. Total: never panics on any input.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..level * width {
            out.push(' ');
        }
    }
}

fn itoa_u64(v: u64) -> String {
    v.to_string()
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &'static str) -> JsonError {
        JsonError { at: self.pos, msg }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.peek() {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn expect(&mut self, b: u8, msg: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(msg))
        }
    }

    fn literal(&mut self, lit: &'static str, msg: &'static str) -> Result<(), JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(msg))
        }
    }

    fn value(&mut self, depth: u32) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("maximum nesting depth exceeded"));
        }
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.literal("null", "expected 'null'").map(|_| Json::Null),
            Some(b't') => self
                .literal("true", "expected 'true'")
                .map(|_| Json::Bool(true)),
            Some(b'f') => self
                .literal("false", "expected 'false'")
                .map(|_| Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
        }
    }

    fn array(&mut self, depth: u32) -> Result<Json, JsonError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: u32) -> Result<Json, JsonError> {
        self.expect(b'{', "expected '{'")?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':' after object key")?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a run of plain bytes at once.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                // Input is &str, so this slice is valid UTF-8.
                out.push_str(
                    std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| JsonError {
                        at: start,
                        msg: "invalid UTF-8 in string",
                    })?,
                );
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pair handling.
                            let ch = if (0xd800..0xdc00).contains(&cp) {
                                self.literal("\\u", "expected low surrogate")?;
                                let lo = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let c = 0x10000 + ((cp - 0xd800) << 10) + (lo - 0xdc00);
                                char::from_u32(c).ok_or_else(|| self.err("invalid code point"))?
                            } else {
                                char::from_u32(cp).ok_or_else(|| self.err("invalid code point"))?
                            };
                            out.push(ch);
                        }
                        _ => return Err(self.err("unknown escape sequence")),
                    }
                }
                Some(_) => return Err(self.err("control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = match b {
                b'0'..=b'9' => (b - b'0') as u32,
                b'a'..=b'f' => (b - b'a') as u32 + 10,
                b'A'..=b'F' => (b - b'A') as u32 + 10,
                _ => return Err(self.err("invalid hex digit in \\u escape")),
            };
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        let neg = self.peek() == Some(b'-');
        if neg {
            self.pos += 1;
        }
        if !matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            return Err(self.err("expected digit"));
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                return Err(self.err("expected digit after '.'"));
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                return Err(self.err("expected digit in exponent"));
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        // The scanned range is ASCII by construction.
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| JsonError {
            at: start,
            msg: "invalid number",
        })?;
        if !is_float {
            if neg {
                if let Ok(v) = text.parse::<i64>() {
                    return Ok(Json::I64(v));
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::U64(v));
            }
        }
        text.parse::<f64>().map(Json::F64).map_err(|_| JsonError {
            at: start,
            msg: "invalid number",
        })
    }
}

/// Convenience: build a `Json::Str`.
pub fn s(v: impl Into<String>) -> Json {
    Json::Str(v.into())
}

/// Convenience: build a `Json::U64`.
pub fn u(v: u64) -> Json {
    Json::U64(v)
}

/// Convenience: build a `Json::F64`.
pub fn f(v: f64) -> Json {
    Json::F64(v)
}

/// Convenience: build a `Json::Arr` from an iterator.
pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
    Json::Arr(items.into_iter().collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "0", "-7", "12.5", "\"hi\""] {
            let v = Json::parse(text).unwrap();
            assert_eq!(Json::parse(&v.encode()).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn u64_identity_preserved() {
        for v in [0, 1, u64::MAX, u64::MAX - 1, 1 << 53, (1 << 53) + 1] {
            let text = Json::U64(v).encode();
            assert_eq!(Json::parse(&text).unwrap().as_u64(), Some(v));
        }
    }

    #[test]
    fn object_order_is_preserved() {
        let v = Json::obj()
            .with("zeta", u(1))
            .with("alpha", u(2))
            .with("mid", s("x"));
        assert_eq!(v.encode(), r#"{"zeta":1,"alpha":2,"mid":"x"}"#);
        assert_eq!(Json::parse(&v.encode()).unwrap(), v);
    }

    #[test]
    fn string_escapes_round_trip() {
        let input = "line1\nline2\t\"quoted\" \\ back \u{1} é 漢 🦀";
        let v = Json::Str(input.to_string());
        assert_eq!(Json::parse(&v.encode()).unwrap().as_str(), Some(input));
    }

    #[test]
    fn surrogate_pair_parses() {
        let v = Json::parse("\"\\ud83e\\udd80\"").unwrap();
        assert_eq!(v.as_str(), Some("🦀"));
    }

    #[test]
    fn float_round_trip_keeps_variant() {
        let v = Json::F64(1.0);
        assert_eq!(Json::parse(&v.encode()).unwrap(), v);
        let v = Json::F64(0.25);
        assert_eq!(Json::parse(&v.encode()).unwrap(), v);
    }

    #[test]
    fn rejects_malformed_documents() {
        for text in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "01x",
            "\"\\q\"",
            "nul",
            "truex",
            "1 2",
            "{\"a\":}",
            "\"\\ud800\"",
        ] {
            assert!(Json::parse(text).is_err(), "{text:?} should fail");
        }
    }

    #[test]
    fn deep_nesting_is_bounded() {
        let deep = "[".repeat(4096) + &"]".repeat(4096);
        assert!(Json::parse(&deep).is_err());
        let ok = "[".repeat(64) + &"]".repeat(64);
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn parse_is_total_on_random_garbage() {
        let mut rng = SimRng::new(0x1ee7_c0de);
        for _ in 0..2000 {
            let len = rng.gen_range(64) as usize;
            let bytes: Vec<u8> = (0..len).map(|_| (rng.next_u64() & 0x7f) as u8).collect();
            if let Ok(text) = std::str::from_utf8(&bytes) {
                let _ = Json::parse(text); // must not panic
            }
        }
    }

    #[test]
    fn random_values_round_trip() {
        let mut rng = SimRng::new(0xfeed_beef);
        for _ in 0..200 {
            let v = random_json(&mut rng, 0);
            let text = v.encode();
            assert_eq!(Json::parse(&text).unwrap(), v, "{text}");
            let pretty = v.encode_pretty();
            assert_eq!(Json::parse(&pretty).unwrap(), v, "{pretty}");
        }
    }

    fn random_json(rng: &mut SimRng, depth: u32) -> Json {
        let pick = if depth > 3 {
            rng.gen_range(5)
        } else {
            rng.gen_range(7)
        };
        match pick {
            0 => Json::Null,
            1 => Json::Bool(rng.gen_bool(0.5)),
            2 => Json::U64(rng.next_u64()),
            3 => Json::I64(-((rng.next_u64() >> 1) as i64)),
            4 => Json::Str(format!("k{}", rng.next_u64() % 1000)),
            5 => {
                let n = rng.gen_range(4) as usize;
                Json::Arr((0..n).map(|_| random_json(rng, depth + 1)).collect())
            }
            _ => {
                let n = rng.gen_range(4) as usize;
                Json::Obj(
                    (0..n)
                        .map(|i| (format!("f{i}"), random_json(rng, depth + 1)))
                        .collect(),
                )
            }
        }
    }
}
