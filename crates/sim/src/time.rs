//! Simulated instants and durations with nanosecond resolution.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A point in simulated time, measured in nanoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, measured in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant from nanoseconds since the simulation epoch.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Returns the instant as nanoseconds since the simulation epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the instant as (fractional) seconds since the epoch.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns the duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        assert!(
            earlier.0 <= self.0,
            "duration_since: earlier ({earlier}) is after self ({self})"
        );
        SimDuration(self.0 - earlier.0)
    }

    /// Saturating variant of [`SimTime::duration_since`].
    pub fn saturating_duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Creates a duration from fractional seconds.
    ///
    /// Negative and non-finite inputs are clamped to zero; this keeps cost
    /// arithmetic total even when a calibration formula underflows.
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return SimDuration(0);
        }
        SimDuration((s * 1e9).round() as u64)
    }

    /// Returns the duration in nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the duration in (fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Returns the duration in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns true if the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Returns the larger of two durations.
    pub fn max(self, rhs: SimDuration) -> SimDuration {
        if self.0 >= rhs.0 {
            self
        } else {
            rhs
        }
    }

    /// Returns the smaller of two durations.
    pub fn min(self, rhs: SimDuration) -> SimDuration {
        if self.0 <= rhs.0 {
            self
        } else {
            rhs
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;

    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;

    fn sub(self, rhs: SimDuration) -> SimDuration {
        assert!(rhs.0 <= self.0, "SimDuration subtraction underflow");
        SimDuration(self.0 - rhs.0)
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;

    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;

    fn mul(self, rhs: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;

    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl std::iter::Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_conversion() {
        assert_eq!(SimDuration::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(SimDuration::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(SimDuration::from_micros(5).as_nanos(), 5_000);
        assert_eq!(SimDuration::from_secs_f64(1.5).as_nanos(), 1_500_000_000);
    }

    #[test]
    fn negative_and_nan_seconds_clamp_to_zero() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::ZERO);
    }

    #[test]
    fn arithmetic() {
        let t0 = SimTime::ZERO;
        let t1 = t0 + SimDuration::from_secs(1);
        assert_eq!((t1 - t0).as_secs_f64(), 1.0);
        assert_eq!(t1.duration_since(t0), SimDuration::from_secs(1));
        let d = SimDuration::from_millis(100) * 3;
        assert_eq!(d, SimDuration::from_millis(300));
        assert_eq!(d / 3, SimDuration::from_millis(100));
    }

    #[test]
    #[should_panic(expected = "duration_since")]
    fn duration_since_panics_when_reversed() {
        let t1 = SimTime::from_nanos(5);
        let _ = SimTime::ZERO.duration_since(t1);
    }

    #[test]
    fn saturating_ops() {
        let t1 = SimTime::from_nanos(5);
        assert_eq!(
            SimTime::ZERO.saturating_duration_since(t1),
            SimDuration::ZERO
        );
        assert_eq!(
            SimDuration::from_nanos(3).saturating_sub(SimDuration::from_nanos(7)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000s");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimDuration::from_micros(7).to_string(), "7.000us");
        assert_eq!(SimDuration::from_nanos(9).to_string(), "9ns");
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_secs).sum();
        assert_eq!(total, SimDuration::from_secs(10));
    }
}
