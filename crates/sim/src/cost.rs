//! The calibrated cost model mapping simulated operations to simulated time.
//!
//! The paper evaluates HyperTP on two machines (Table 3): M1 (Intel i5-8400H,
//! 4C/8T @ 2.5 GHz, 16 GB RAM) and M2 (2× Xeon E5-2650L v4, 14C/28T @
//! 1.7 GHz, 64 GB RAM). Every cost below is expressed in one of three
//! machine-independent units and scaled by a [`MachinePerf`] description:
//!
//! * **GHz-seconds** (`*_ghz_s`): CPU-bound work; elapsed = cost / freq_ghz.
//! * **seconds** (`*_s`): memory- or device-bound work, frequency-invariant.
//! * **per host GB** (`*_s_per_host_gb`): work proportional to the host's
//!   total physical RAM (boot-time RAM init, Xen boot scrubbing, P2M sweep).
//!
//! The constants are calibrated against the paper's Fig. 6 (time breakdown),
//! Fig. 7/10 (scalability), and Table 4 (migration), by solving the linear
//! system induced by the two machines' frequencies and RAM sizes. Each field
//! documents the targets it reproduces.

use crate::par;
use crate::time::SimDuration;

/// Performance-relevant description of a physical machine.
///
/// The full machine model (frames, kexec, NIC) lives in `hypertp-machine`;
/// this struct is the subset the cost model needs and is constructed from a
/// machine spec.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachinePerf {
    /// Core clock frequency in GHz (M1: 2.5, M2: 1.7).
    pub freq_ghz: f64,
    /// Total hardware threads (M1: 8, M2: 28).
    pub threads: usize,
    /// Threads reserved for the administration OS (§5.1 reserves 2).
    pub reserved_threads: usize,
    /// Total physical RAM in GiB (M1: 16, M2: 64).
    pub host_ram_gb: f64,
    /// NIC line rate in Gbit/s.
    pub nic_gbps: f64,
    /// NIC bring-up time after reboot (M1: 6.6 s, M2: 2.3 s — §5.2.1).
    pub nic_init: SimDuration,
}

impl MachinePerf {
    /// Threads available to HyperTP worker pools.
    pub fn worker_threads(&self) -> usize {
        self.threads.saturating_sub(self.reserved_threads).max(1)
    }

    /// Converts a CPU-bound cost in GHz-seconds to elapsed time.
    pub fn cpu(&self, ghz_s: f64) -> SimDuration {
        SimDuration::from_secs_f64(ghz_s / self.freq_ghz)
    }
}

/// Which hypervisor kernel a micro-reboot boots into.
///
/// A type-1 target (Xen) boots two kernels — the hypervisor and the dom0
/// Linux — and scrubs free host memory, which is why KVM→Xen transplants are
/// ~5× slower than Xen→KVM (§5.2.2, Fig. 10).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BootTarget {
    /// Linux/KVM (type-2): one kernel.
    LinuxKvm,
    /// Xen + dom0 (type-1): hypervisor kernel plus dom0 kernel, with boot
    /// scrubbing of free memory.
    XenDom0,
}

/// Calibrated per-operation costs.
///
/// Use [`CostModel::paper_calibrated`] for the constants matching the
/// paper's testbed; construct a custom instance for sensitivity studies.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    // --- PRAM construction (pre-pause; Fig. 6 "PRAM") ---
    /// Memory-bound PRAM build cost per guest GB (frequency-invariant part).
    /// Calibrated with `pram_build_ghz_s_per_gb` to 0.45 s (M1) / 0.50 s
    /// (M2) per 1 GB VM.
    pub pram_build_s_per_gb: f64,
    /// CPU-bound PRAM build cost per guest GB.
    pub pram_build_ghz_s_per_gb: f64,
    /// CPU-bound PRAM build cost per page entry (dominates when huge pages
    /// are disabled: 262 144 4-KiB entries per GB instead of 512).
    pub pram_build_ghz_s_per_entry: f64,

    // --- UISR translation (pause → kexec; Fig. 6 "Translation") ---
    /// CPU-bound base translation cost per host. Calibrated with
    /// `translate_s_per_host_gb` to 0.08 s (M1) / 0.24 s (M2).
    pub translate_base_ghz_s: f64,
    /// Host-RAM-proportional translation cost (final P2M sweep).
    pub translate_s_per_host_gb: f64,
    /// CPU-bound translation cost per vCPU (platform state serialization).
    pub translate_ghz_s_per_vcpu: f64,
    /// CPU-bound PRAM finalization cost per guest GB (the slight growth of
    /// Translation with VM size in Fig. 7b).
    pub translate_ghz_s_per_gb: f64,
    /// CPU-bound finalization cost per PRAM entry.
    pub translate_ghz_s_per_entry: f64,

    // --- Micro-reboot (Fig. 6 "Reboot") ---
    /// CPU-bound kexec shutdown + purgatory cost.
    pub kexec_ghz_s: f64,
    /// CPU-bound Linux/KVM kernel boot cost. Calibrated with
    /// `boot_s_per_host_gb` to reboot = 1.52 s (M1) / 2.40 s (M2).
    pub linux_boot_ghz_s: f64,
    /// Host-RAM-proportional Linux boot cost (memmap init).
    pub boot_s_per_host_gb: f64,
    /// CPU-bound Xen+dom0 boot cost. Calibrated with
    /// `xen_scrub_s_per_host_gb` to KVM→Xen totals of ≈7.6 s (M1) /
    /// ≈17.8 s (M2) — Fig. 10.
    pub xen_boot_ghz_s: f64,
    /// Host-RAM-proportional Xen boot scrubbing cost.
    pub xen_scrub_s_per_host_gb: f64,
    /// CPU-bound early-boot PRAM parse cost per entry (sequential; the
    /// growth of Reboot with memory size and #VMs in Fig. 7b/7c).
    pub pram_parse_ghz_s_per_entry: f64,
    /// Memory-reservation cost per guest GB covered by PRAM (page-size
    /// independent part of the parse).
    pub pram_parse_s_per_gb: f64,

    // --- UISR restoration (Fig. 6 "Restoration") ---
    /// CPU-bound base restoration cost. Calibrated with
    /// `restore_s_per_host_gb` to 0.12 s (M1) / 0.34 s (M2).
    pub restore_base_ghz_s: f64,
    /// Host-RAM-proportional restoration cost (VM service init sweep).
    pub restore_s_per_host_gb: f64,
    /// CPU-bound restoration cost per vCPU (ioctl storm per vCPU).
    pub restore_ghz_s_per_vcpu: f64,
    /// CPU-bound guest-memory mapping cost per guest GB (mmap of the PRAM
    /// file into the VMM).
    pub restore_ghz_s_per_gb: f64,
    /// Extra wait when the early-restoration optimization (§4.2.5) is
    /// disabled: restoration then waits for the full host userspace boot.
    pub late_restore_wait_s: f64,

    // --- VM lifecycle ---
    /// Cost of pausing one VM.
    pub pause_ghz_s_per_vm: f64,
    /// Cost of resuming one VM.
    pub resume_ghz_s_per_vm: f64,

    // --- Migration (Table 4, Figs. 8/9) ---
    /// Fraction of NIC line rate achievable for page streaming (TCP +
    /// framing efficiency). 1 GB over 1 Gbit/s at 0.93 → ≈9.2 s of copy,
    /// matching the ≈9.6 s total of Table 4.
    pub net_efficiency: f64,
    /// Per-page CPU overhead on the sender (dirty scan + packing).
    pub migrate_ghz_s_per_page: f64,
    /// Per-round protocol overhead.
    pub migrate_round_overhead_s: f64,
    /// Destination activation cost when the receiving VMM is kvmtool
    /// (Table 4: 4.96 ms downtime).
    pub kvmtool_activate_s: f64,
    /// Destination activation cost when the receiving hypervisor is Xen
    /// (Table 4: 133.59 ms downtime, 27× kvmtool).
    pub xen_activate_s: f64,
    /// Additional activation cost per vCPU (slight downtime growth with
    /// vCPUs in Fig. 8).
    pub activate_s_per_vcpu: f64,
}

impl CostModel {
    /// Returns the cost model calibrated against the paper's testbed.
    pub fn paper_calibrated() -> Self {
        CostModel {
            pram_build_s_per_gb: 0.344,
            pram_build_ghz_s_per_gb: 0.265,
            pram_build_ghz_s_per_entry: 1.2e-6,

            translate_base_ghz_s: 0.079,
            translate_s_per_host_gb: 0.003,
            translate_ghz_s_per_vcpu: 0.002,
            translate_ghz_s_per_gb: 0.02,
            translate_ghz_s_per_entry: 0.4e-6,

            kexec_ghz_s: 0.25,
            linux_boot_ghz_s: 3.18,
            boot_s_per_host_gb: 0.0044,
            xen_boot_ghz_s: 11.84,
            xen_scrub_s_per_host_gb: 0.156,
            pram_parse_ghz_s_per_entry: 4.0e-6,
            pram_parse_s_per_gb: 0.075,

            restore_base_ghz_s: 0.138,
            restore_s_per_host_gb: 0.004,
            restore_ghz_s_per_vcpu: 0.003,
            restore_ghz_s_per_gb: 0.01,
            late_restore_wait_s: 2.1,

            pause_ghz_s_per_vm: 0.01,
            resume_ghz_s_per_vm: 0.02,

            net_efficiency: 0.93,
            migrate_ghz_s_per_page: 1.0e-6,
            migrate_round_overhead_s: 0.05,
            kvmtool_activate_s: 0.003,
            xen_activate_s: 0.128,
            activate_s_per_vcpu: 0.002,
        }
    }

    /// Elapsed time to build PRAM structures for a set of VMs, run on the
    /// machine's worker pool (one task per VM — the §4.2.5 parallelization).
    ///
    /// `vms` is a list of `(guest_gb, entries)` pairs; `entries` is the
    /// actual number of 8-byte page entries the PRAM encoder produced.
    pub fn pram_build(&self, perf: &MachinePerf, vms: &[(f64, u64)]) -> SimDuration {
        let tasks: Vec<SimDuration> = vms
            .iter()
            .map(|&(gb, entries)| self.pram_build_one(perf, gb, entries))
            .collect();
        par::makespan(&tasks, perf.worker_threads())
    }

    /// Cost of building one VM's PRAM structure on one core.
    pub fn pram_build_one(&self, perf: &MachinePerf, gb: f64, entries: u64) -> SimDuration {
        let mem = SimDuration::from_secs_f64(self.pram_build_s_per_gb * gb);
        let cpu = perf.cpu(
            self.pram_build_ghz_s_per_gb * gb + self.pram_build_ghz_s_per_entry * entries as f64,
        );
        mem + cpu
    }

    /// Elapsed time of the UISR translation phase (VMs paused).
    ///
    /// Per-VM translation tasks run on the worker pool; the host-wide sweep
    /// is serial.
    pub fn translate(
        &self,
        perf: &MachinePerf,
        vms: &[(f64, u32, u64)], // (guest_gb, vcpus, entries)
    ) -> SimDuration {
        let tasks: Vec<SimDuration> = vms
            .iter()
            .map(|&(gb, vcpus, entries)| {
                perf.cpu(
                    self.translate_ghz_s_per_vcpu * vcpus as f64
                        + self.translate_ghz_s_per_gb * gb
                        + self.translate_ghz_s_per_entry * entries as f64,
                )
            })
            .collect();
        let parallel = par::makespan(&tasks, perf.worker_threads());
        let serial = perf.cpu(self.translate_base_ghz_s)
            + SimDuration::from_secs_f64(self.translate_s_per_host_gb * perf.host_ram_gb);
        serial + parallel
    }

    /// Elapsed time of one *warm* translation pass over a set of VMs while
    /// they keep running (the incremental-translate pre-pause phase).
    ///
    /// `vms` is `(guest_gb, vcpus, entries, fraction)` where `fraction` is
    /// the share of the VM's state this pass re-translates (1.0 for the
    /// initial snapshot, the redirty ratio for refresh rounds). The work is
    /// the same per-VM translation task as [`CostModel::translate`] scaled
    /// by `fraction` — but it runs *below the time axis*: no host-wide
    /// serial sweep (that only happens once, at pause) and no guest pause.
    pub fn warm_translate(&self, perf: &MachinePerf, vms: &[(f64, u32, u64, f64)]) -> SimDuration {
        let tasks: Vec<SimDuration> = vms
            .iter()
            .map(|&(gb, vcpus, entries, fraction)| {
                perf.cpu(
                    self.translate_ghz_s_per_vcpu * vcpus as f64
                        + (self.translate_ghz_s_per_gb * gb
                            + self.translate_ghz_s_per_entry * entries as f64)
                            * fraction.clamp(0.0, 1.0),
                )
            })
            .collect();
        par::makespan(&tasks, perf.worker_threads())
    }

    /// Elapsed time of the *delta* translation phase (VMs paused) after an
    /// incremental warm phase left per-VM UISR snapshots and per-extent
    /// checksum partials behind.
    ///
    /// `vms` is `(guest_gb, vcpus, entries, dirty_fraction)`: only the
    /// dirtied fraction of the per-GB and per-entry work is redone inside
    /// the blackout, and the host-wide serial sweep (final P2M pass)
    /// skips clean ranges whose warm-cached translations are still valid,
    /// so it scales with the memory-weighted mean dirty share. Only the
    /// per-vCPU platform serialization and the fixed base cost are
    /// irreducible. With `dirty_fraction = 1.0` for every VM this equals
    /// [`CostModel::translate`] exactly — the fallback path.
    pub fn delta_translate(&self, perf: &MachinePerf, vms: &[(f64, u32, u64, f64)]) -> SimDuration {
        let tasks: Vec<SimDuration> = vms
            .iter()
            .map(|&(gb, vcpus, entries, dirty)| {
                perf.cpu(
                    self.translate_ghz_s_per_vcpu * vcpus as f64
                        + (self.translate_ghz_s_per_gb * gb
                            + self.translate_ghz_s_per_entry * entries as f64)
                            * dirty.clamp(0.0, 1.0),
                )
            })
            .collect();
        let parallel = par::makespan(&tasks, perf.worker_threads());
        // The sweep walks per-frame metadata; dirty logging lets it skip
        // every clean frame, so it scales with the overall dirty share of
        // guest memory (gb-weighted across VMs).
        let total_gb: f64 = vms.iter().map(|v| v.0).sum();
        let mean_dirty = if total_gb > 0.0 {
            vms.iter()
                .map(|&(gb, _, _, d)| gb * d.clamp(0.0, 1.0))
                .sum::<f64>()
                / total_gb
        } else {
            1.0
        };
        let serial = perf.cpu(self.translate_base_ghz_s)
            + SimDuration::from_secs_f64(
                self.translate_s_per_host_gb * perf.host_ram_gb * mean_dirty,
            );
        serial + parallel
    }

    /// Elapsed time of the micro-reboot into `target`, including the
    /// sequential early-boot PRAM parse over `total_entries` entries
    /// covering `total_guest_gb` of guest memory.
    pub fn reboot(
        &self,
        perf: &MachinePerf,
        target: BootTarget,
        total_guest_gb: f64,
        total_entries: u64,
    ) -> SimDuration {
        let kexec = perf.cpu(self.kexec_ghz_s);
        let boot = match target {
            BootTarget::LinuxKvm => {
                perf.cpu(self.linux_boot_ghz_s)
                    + SimDuration::from_secs_f64(self.boot_s_per_host_gb * perf.host_ram_gb)
            }
            BootTarget::XenDom0 => {
                perf.cpu(self.xen_boot_ghz_s)
                    + SimDuration::from_secs_f64(self.xen_scrub_s_per_host_gb * perf.host_ram_gb)
            }
        };
        let parse = perf.cpu(self.pram_parse_ghz_s_per_entry * total_entries as f64)
            + SimDuration::from_secs_f64(self.pram_parse_s_per_gb * total_guest_gb);
        kexec + boot + parse
    }

    /// Elapsed time of the UISR restoration phase.
    pub fn restore(
        &self,
        perf: &MachinePerf,
        vms: &[(f64, u32)], // (guest_gb, vcpus)
        early_restoration: bool,
    ) -> SimDuration {
        let tasks: Vec<SimDuration> = vms
            .iter()
            .map(|&(gb, vcpus)| {
                perf.cpu(
                    self.restore_ghz_s_per_vcpu * vcpus as f64 + self.restore_ghz_s_per_gb * gb,
                )
            })
            .collect();
        let parallel = par::makespan(&tasks, perf.worker_threads());
        let serial = perf.cpu(self.restore_base_ghz_s)
            + SimDuration::from_secs_f64(self.restore_s_per_host_gb * perf.host_ram_gb);
        let wait = if early_restoration {
            SimDuration::ZERO
        } else {
            SimDuration::from_secs_f64(self.late_restore_wait_s)
        };
        wait + serial + parallel
    }

    /// Time to transfer `bytes` over the machine's NIC at streaming
    /// efficiency.
    pub fn net_transfer(&self, perf: &MachinePerf, bytes: u64) -> SimDuration {
        let gbps = perf.nic_gbps * self.net_efficiency;
        SimDuration::from_secs_f64(bytes as f64 * 8.0 / (gbps * 1e9))
    }

    /// Destination activation cost for a migration, by receiving VMM kind.
    pub fn activate(&self, dest: BootTarget, vcpus: u32) -> SimDuration {
        let base = match dest {
            BootTarget::LinuxKvm => self.kvmtool_activate_s,
            BootTarget::XenDom0 => self.xen_activate_s,
        };
        SimDuration::from_secs_f64(base + self.activate_s_per_vcpu * vcpus as f64)
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::paper_calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// M1 from Table 3: i5-8400H, 4C/8T @2.5 GHz, 16 GB, 1 Gbps.
    fn m1() -> MachinePerf {
        MachinePerf {
            freq_ghz: 2.5,
            threads: 8,
            reserved_threads: 2,
            host_ram_gb: 16.0,
            nic_gbps: 1.0,
            nic_init: SimDuration::from_secs_f64(6.6),
        }
    }

    /// M2 from Table 3: 2× E5-2650L v4, 14C/28T @1.7 GHz, 64 GB, 1 Gbps.
    fn m2() -> MachinePerf {
        MachinePerf {
            freq_ghz: 1.7,
            threads: 28,
            reserved_threads: 2,
            host_ram_gb: 64.0,
            nic_gbps: 1.0,
            nic_init: SimDuration::from_secs_f64(2.3),
        }
    }

    /// 1 GB VM with 2 MiB pages -> 512 PRAM entries.
    const ENTRIES_1GB: u64 = 512;

    fn close(d: SimDuration, target: f64, tol: f64) -> bool {
        (d.as_secs_f64() - target).abs() <= tol
    }

    #[test]
    fn fig6_m1_pram_phase() {
        let m = CostModel::paper_calibrated();
        let d = m.pram_build(&m1(), &[(1.0, ENTRIES_1GB)]);
        assert!(close(d, 0.45, 0.03), "PRAM M1 = {d}");
    }

    #[test]
    fn fig6_m2_pram_phase() {
        let m = CostModel::paper_calibrated();
        let d = m.pram_build(&m2(), &[(1.0, ENTRIES_1GB)]);
        assert!(close(d, 0.50, 0.03), "PRAM M2 = {d}");
    }

    #[test]
    fn fig6_translation() {
        let m = CostModel::paper_calibrated();
        let d1 = m.translate(&m1(), &[(1.0, 1, ENTRIES_1GB)]);
        let d2 = m.translate(&m2(), &[(1.0, 1, ENTRIES_1GB)]);
        assert!(close(d1, 0.08, 0.02), "Translation M1 = {d1}");
        assert!(close(d2, 0.24, 0.04), "Translation M2 = {d2}");
    }

    #[test]
    fn fig6_reboot_kvm() {
        let m = CostModel::paper_calibrated();
        let d1 = m.reboot(&m1(), BootTarget::LinuxKvm, 1.0, ENTRIES_1GB);
        let d2 = m.reboot(&m2(), BootTarget::LinuxKvm, 1.0, ENTRIES_1GB);
        assert!(close(d1, 1.52, 0.08), "Reboot M1 = {d1}");
        assert!(close(d2, 2.40, 0.12), "Reboot M2 = {d2}");
    }

    #[test]
    fn fig6_restoration() {
        let m = CostModel::paper_calibrated();
        let d1 = m.restore(&m1(), &[(1.0, 1)], true);
        let d2 = m.restore(&m2(), &[(1.0, 1)], true);
        assert!(close(d1, 0.12, 0.03), "Restoration M1 = {d1}");
        assert!(close(d2, 0.34, 0.05), "Restoration M2 = {d2}");
    }

    #[test]
    fn fig6_downtime_totals() {
        // Downtime = Translation + Reboot + Restoration: 1.7 s (M1),
        // 3.01 s (M2).
        let m = CostModel::paper_calibrated();
        for (perf, target, tol) in [(m1(), 1.7, 0.12), (m2(), 3.01, 0.2)] {
            let d = m.translate(&perf, &[(1.0, 1, ENTRIES_1GB)])
                + m.reboot(&perf, BootTarget::LinuxKvm, 1.0, ENTRIES_1GB)
                + m.restore(&perf, &[(1.0, 1)], true);
            assert!(close(d, target, tol), "downtime = {d}, want {target}");
        }
    }

    #[test]
    fn delta_translate_full_dirty_equals_translate() {
        let m = CostModel::paper_calibrated();
        let full = m.translate(&m1(), &[(1.0, 1, ENTRIES_1GB)]);
        let delta = m.delta_translate(&m1(), &[(1.0, 1, ENTRIES_1GB, 1.0)]);
        assert_eq!(full, delta);
    }

    #[test]
    fn delta_translate_scales_with_dirty_fraction() {
        let m = CostModel::paper_calibrated();
        // A large VM with a small dirty set must translate much faster than
        // from scratch, but never below the irreducible base + vCPU terms.
        let full = m.delta_translate(&m1(), &[(12.0, 4, 512 * 12, 1.0)]);
        let dirty10 = m.delta_translate(&m1(), &[(12.0, 4, 512 * 12, 0.1)]);
        let clean = m.delta_translate(&m1(), &[(12.0, 4, 512 * 12, 0.0)]);
        assert!(dirty10 < full, "10% dirty {dirty10} vs full {full}");
        assert!(clean < dirty10);
        // The host-wide sweep skips clean frames, but the base cost and
        // the per-vCPU serialization never go away.
        let floor = m1()
            .cpu(m.translate_base_ghz_s + m.translate_ghz_s_per_vcpu * 4.0)
            .as_secs_f64();
        assert!(clean.as_secs_f64() >= floor - 1e-12);
        // At 10% dirty the sweep contributes 10% of its full cost.
        let sweep = m.translate_s_per_host_gb * m1().host_ram_gb;
        let expected_sweep_cut = sweep * 0.9;
        let modeled_cut = full.as_secs_f64() - dirty10.as_secs_f64();
        assert!(
            modeled_cut > expected_sweep_cut,
            "cut {modeled_cut} must include 90% of the {sweep} sweep"
        );
    }

    #[test]
    fn warm_translate_has_no_serial_sweep() {
        let m = CostModel::paper_calibrated();
        // A warm pass at the same fraction is strictly cheaper than the
        // paused delta pass: it skips the host-wide serial term.
        let warm = m.warm_translate(&m1(), &[(1.0, 1, ENTRIES_1GB, 1.0)]);
        let paused = m.delta_translate(&m1(), &[(1.0, 1, ENTRIES_1GB, 1.0)]);
        assert!(warm < paused);
        assert_eq!(
            paused - warm,
            m1().cpu(m.translate_base_ghz_s)
                + SimDuration::from_secs_f64(m.translate_s_per_host_gb * m1().host_ram_gb)
        );
    }

    #[test]
    fn fig10_xen_reboot_dominates() {
        // KVM→Xen reboot ≈ 7.4 s on M1, and the M2/M1 ratio exceeds the
        // frequency ratio because of boot scrubbing of the larger RAM.
        let m = CostModel::paper_calibrated();
        let d1 = m.reboot(&m1(), BootTarget::XenDom0, 1.0, ENTRIES_1GB);
        let d2 = m.reboot(&m2(), BootTarget::XenDom0, 1.0, ENTRIES_1GB);
        assert!(close(d1, 7.4, 0.4), "Xen reboot M1 = {d1}");
        assert!(close(d2, 17.1, 0.8), "Xen reboot M2 = {d2}");
        assert!(d2.as_secs_f64() / d1.as_secs_f64() > 2.0);
    }

    #[test]
    fn fig7b_reboot_slope_with_memory() {
        // Reboot grows from ≈1.55 s (1 GB) to ≈2.46 s (12 GB) on M1.
        let m = CostModel::paper_calibrated();
        let d1 = m.reboot(&m1(), BootTarget::LinuxKvm, 1.0, 512);
        let d12 = m.reboot(&m1(), BootTarget::LinuxKvm, 12.0, 512 * 12);
        assert!(close(d12 - d1, 0.91, 0.15), "slope = {}", d12 - d1);
    }

    #[test]
    fn fig7a_vcpus_have_negligible_impact() {
        let m = CostModel::paper_calibrated();
        let d1 = m.translate(&m1(), &[(1.0, 1, 512)]) + m.restore(&m1(), &[(1.0, 1)], true);
        let d10 = m.translate(&m1(), &[(1.0, 10, 512)]) + m.restore(&m1(), &[(1.0, 10)], true);
        assert!((d10.as_secs_f64() - d1.as_secs_f64()) < 0.05);
    }

    #[test]
    fn fig7cf_pram_parallelizes_better_on_m2() {
        // 12 VMs: M1 has 6 workers, M2 has 26, so M1's PRAM phase grows
        // much faster than M2's (§5.2.2).
        let m = CostModel::paper_calibrated();
        let vms: Vec<(f64, u64)> = (0..12).map(|_| (1.0, ENTRIES_1GB)).collect();
        let one = m.pram_build(&m1(), &vms[..1]);
        let m1_12 = m.pram_build(&m1(), &vms);
        let m2_12 = m.pram_build(&m2(), &vms);
        let m1_growth = m1_12.as_secs_f64() / one.as_secs_f64();
        let m2_growth = m2_12.as_secs_f64() / m.pram_build(&m2(), &vms[..1]).as_secs_f64();
        assert!(m1_growth > 1.8, "M1 growth {m1_growth}");
        assert!(m2_growth < 1.2, "M2 growth {m2_growth}");
    }

    #[test]
    fn table4_migration_costs() {
        let m = CostModel::paper_calibrated();
        // 1 GB over 1 Gbps: ≈9.2 s of raw copy.
        let copy = m.net_transfer(&m1(), 1 << 30);
        assert!(close(copy, 9.24, 0.2), "copy = {copy}");
        // Downtime gap: Xen activation ≈ 27× kvmtool.
        let xen = m.activate(BootTarget::XenDom0, 1);
        let kvm = m.activate(BootTarget::LinuxKvm, 1);
        let ratio = xen.as_secs_f64() / kvm.as_secs_f64();
        assert!(ratio > 20.0 && ratio < 35.0, "ratio = {ratio}");
    }

    #[test]
    fn hugepage_ablation_is_visible() {
        // Without huge pages a 1 GB VM has 262 144 entries instead of 512;
        // build and parse must get measurably slower.
        let m = CostModel::paper_calibrated();
        let small = m.pram_build_one(&m1(), 1.0, 512);
        let large = m.pram_build_one(&m1(), 1.0, 262_144);
        assert!(large.as_secs_f64() > small.as_secs_f64() + 0.1);
        let p_small = m.reboot(&m1(), BootTarget::LinuxKvm, 1.0, 512);
        let p_large = m.reboot(&m1(), BootTarget::LinuxKvm, 1.0, 262_144);
        assert!(p_large.as_secs_f64() > p_small.as_secs_f64() + 0.3);
    }

    #[test]
    fn late_restoration_penalty() {
        let m = CostModel::paper_calibrated();
        let early = m.restore(&m1(), &[(1.0, 1)], true);
        let late = m.restore(&m1(), &[(1.0, 1)], false);
        assert!(close(late - early, m.late_restore_wait_s, 1e-9));
    }

    #[test]
    fn worker_threads_floor() {
        let mut p = m1();
        p.threads = 1;
        p.reserved_threads = 2;
        assert_eq!(p.worker_threads(), 1);
    }
}
