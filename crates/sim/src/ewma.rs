//! Exponentially weighted moving averages for the adaptive control plane.
//!
//! The migration engine's per-round observers (dirty rate, effective link
//! throughput, wire compression) all need the same primitive: a smoothed
//! estimate that tracks a noisy per-round signal without keeping history.
//! [`Ewma`] is that primitive — deterministic, allocation-free, and
//! resettable (the chaos path resets estimators when a link drop
//! invalidates what the observations were measuring).

/// An exponentially weighted moving average.
///
/// `observe(x)` folds a new sample in as `v ← α·x + (1−α)·v`; the first
/// sample initialises the estimate directly (no bias toward zero). The
/// struct is plain `Copy` data so controllers embedding several estimators
/// stay trivially cloneable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// Creates an estimator with smoothing factor `alpha` ∈ (0, 1].
    /// Higher alpha weights recent samples more. Out-of-range values are
    /// clamped so arithmetic stays total.
    pub fn new(alpha: f64) -> Self {
        let alpha = if alpha.is_finite() {
            alpha.clamp(f64::EPSILON, 1.0)
        } else {
            1.0
        };
        Ewma { alpha, value: None }
    }

    /// The smoothing factor.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Folds one sample into the estimate and returns the new value.
    /// Non-finite samples are ignored (the estimate is unchanged) so a
    /// degenerate observation cannot poison the controller.
    pub fn observe(&mut self, sample: f64) -> f64 {
        if sample.is_finite() {
            self.value = Some(match self.value {
                None => sample,
                Some(v) => self.alpha * sample + (1.0 - self.alpha) * v,
            });
        }
        self.value.unwrap_or(0.0)
    }

    /// The current estimate, or `None` before the first sample.
    pub fn value(&self) -> Option<f64> {
        self.value
    }

    /// The current estimate, or `default` before the first sample.
    pub fn get_or(&self, default: f64) -> f64 {
        self.value.unwrap_or(default)
    }

    /// True once at least one sample has been observed.
    pub fn is_warm(&self) -> bool {
        self.value.is_some()
    }

    /// Discards the estimate (keeps alpha). Used when the underlying
    /// signal changed regime — e.g. a link drop invalidated what the
    /// samples were measuring.
    pub fn reset(&mut self) {
        self.value = None;
    }
}

impl Default for Ewma {
    /// A balanced estimator (α = 0.5): responsive over the handful of
    /// rounds a pre-copy migration actually runs.
    fn default() -> Self {
        Ewma::new(0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_sample_initialises_directly() {
        let mut e = Ewma::new(0.25);
        assert!(!e.is_warm());
        assert_eq!(e.value(), None);
        assert_eq!(e.get_or(7.0), 7.0);
        assert_eq!(e.observe(100.0), 100.0);
        assert!(e.is_warm());
        assert_eq!(e.value(), Some(100.0));
    }

    #[test]
    fn smoothing_follows_alpha() {
        let mut e = Ewma::new(0.5);
        e.observe(0.0);
        assert_eq!(e.observe(100.0), 50.0);
        assert_eq!(e.observe(100.0), 75.0);
        // Alpha 1.0 tracks the last sample exactly.
        let mut tracker = Ewma::new(1.0);
        tracker.observe(3.0);
        assert_eq!(tracker.observe(9.0), 9.0);
    }

    #[test]
    fn converges_toward_constant_signal() {
        let mut e = Ewma::new(0.3);
        for _ in 0..100 {
            e.observe(42.0);
        }
        assert!((e.value().unwrap() - 42.0).abs() < 1e-9);
    }

    #[test]
    fn non_finite_samples_are_ignored() {
        let mut e = Ewma::new(0.5);
        e.observe(10.0);
        assert_eq!(e.observe(f64::NAN), 10.0);
        assert_eq!(e.observe(f64::INFINITY), 10.0);
        assert_eq!(e.value(), Some(10.0));
        // Even as the first sample.
        let mut f = Ewma::new(0.5);
        f.observe(f64::NAN);
        assert!(!f.is_warm());
    }

    #[test]
    fn reset_discards_estimate_but_keeps_alpha() {
        let mut e = Ewma::new(0.125);
        e.observe(5.0);
        e.reset();
        assert!(!e.is_warm());
        assert_eq!(e.alpha(), 0.125);
        assert_eq!(e.observe(11.0), 11.0, "re-initialises directly");
    }

    #[test]
    fn alpha_is_clamped() {
        assert_eq!(Ewma::new(2.0).alpha(), 1.0);
        assert!(Ewma::new(-1.0).alpha() > 0.0);
        assert_eq!(Ewma::new(f64::NAN).alpha(), 1.0);
    }

    #[test]
    fn determinism_same_inputs_same_estimate() {
        let run = || {
            let mut e = Ewma::default();
            let mut rng = crate::SimRng::new(0xe13a);
            for _ in 0..64 {
                e.observe(rng.gen_f64() * 1e6);
            }
            e.value().unwrap().to_bits()
        };
        assert_eq!(run(), run());
    }
}
