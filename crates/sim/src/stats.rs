//! Summary statistics for experiment results.
//!
//! The paper reports averages when standard deviation is low and box plots
//! otherwise (§5.2.1); [`Summary`] and [`BoxPlot`] implement both reductions.

use crate::time::SimDuration;

/// Mean / standard deviation / min / max of a sample set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub stddev: f64,
    /// Minimum sample.
    pub min: f64,
    /// Maximum sample.
    pub max: f64,
    /// Number of samples.
    pub n: usize,
}

impl Summary {
    /// Computes a summary of `xs`. Returns `None` for an empty slice.
    pub fn of(xs: &[f64]) -> Option<Summary> {
        if xs.is_empty() {
            return None;
        }
        let n = xs.len();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Some(Summary {
            mean,
            stddev: var.sqrt(),
            min,
            max,
            n,
        })
    }

    /// Computes a summary of durations, in seconds.
    pub fn of_durations(ds: &[SimDuration]) -> Option<Summary> {
        let xs: Vec<f64> = ds.iter().map(|d| d.as_secs_f64()).collect();
        Summary::of(&xs)
    }

    /// Returns the coefficient of variation (stddev / mean), or 0 when the
    /// mean is 0.
    pub fn cv(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.stddev / self.mean
        }
    }
}

/// Five-number summary for box plots (min, q1, median, q3, max).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoxPlot {
    /// Minimum sample.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Maximum sample.
    pub max: f64,
}

impl BoxPlot {
    /// Computes a box plot of `xs`. Returns `None` for an empty slice.
    pub fn of(xs: &[f64]) -> Option<BoxPlot> {
        if xs.is_empty() {
            return None;
        }
        let mut v = xs.to_vec();
        v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in samples"));
        Some(BoxPlot {
            min: v[0],
            q1: percentile_sorted(&v, 25.0),
            median: percentile_sorted(&v, 50.0),
            q3: percentile_sorted(&v, 75.0),
            max: v[v.len() - 1],
        })
    }

    /// Interquartile range.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }
}

/// Returns the `p`-th percentile (0..=100) of an already-sorted slice using
/// linear interpolation between closest ranks.
///
/// # Panics
///
/// Panics if `xs` is empty or `p` is outside `[0, 100]`.
pub fn percentile_sorted(xs: &[f64], p: f64) -> f64 {
    assert!(!xs.is_empty(), "percentile of empty slice");
    assert!((0.0..=100.0).contains(&p), "percentile p out of range");
    if xs.len() == 1 {
        return xs[0];
    }
    let rank = p / 100.0 * (xs.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    xs[lo] + (xs[hi] - xs[lo]) * frac
}

/// Returns the `p`-th percentile of an unsorted slice.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in samples"));
    percentile_sorted(&v, p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.n, 4);
        assert!((s.stddev - 1.118033988749895).abs() < 1e-12);
    }

    #[test]
    fn summary_empty_is_none() {
        assert!(Summary::of(&[]).is_none());
        assert!(BoxPlot::of(&[]).is_none());
    }

    #[test]
    fn summary_of_durations() {
        let ds = [SimDuration::from_secs(1), SimDuration::from_secs(3)];
        let s = Summary::of_durations(&ds).unwrap();
        assert_eq!(s.mean, 2.0);
    }

    #[test]
    fn cv_handles_zero_mean() {
        let s = Summary::of(&[0.0, 0.0]).unwrap();
        assert_eq!(s.cv(), 0.0);
    }

    #[test]
    fn boxplot_quartiles() {
        let b = BoxPlot::of(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(b.min, 1.0);
        assert_eq!(b.q1, 2.0);
        assert_eq!(b.median, 3.0);
        assert_eq!(b.q3, 4.0);
        assert_eq!(b.max, 5.0);
        assert_eq!(b.iqr(), 2.0);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [10.0, 20.0];
        assert_eq!(percentile(&xs, 0.0), 10.0);
        assert_eq!(percentile(&xs, 50.0), 15.0);
        assert_eq!(percentile(&xs, 100.0), 20.0);
    }

    #[test]
    fn percentile_single_element() {
        assert_eq!(percentile(&[7.0], 99.0), 7.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn percentile_empty_panics() {
        percentile(&[], 50.0);
    }
}
