//! Summary statistics for experiment results.
//!
//! The paper reports averages when standard deviation is low and box plots
//! otherwise (§5.2.1); [`Summary`] and [`BoxPlot`] implement both reductions.

use crate::time::SimDuration;

/// Mean / standard deviation / min / max of a sample set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub stddev: f64,
    /// Minimum sample.
    pub min: f64,
    /// Maximum sample.
    pub max: f64,
    /// Number of samples.
    pub n: usize,
}

impl Summary {
    /// Computes a summary of `xs`. Returns `None` for an empty slice.
    pub fn of(xs: &[f64]) -> Option<Summary> {
        if xs.is_empty() {
            return None;
        }
        let n = xs.len();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Some(Summary {
            mean,
            stddev: var.sqrt(),
            min,
            max,
            n,
        })
    }

    /// Computes a summary of durations, in seconds.
    pub fn of_durations(ds: &[SimDuration]) -> Option<Summary> {
        let xs: Vec<f64> = ds.iter().map(|d| d.as_secs_f64()).collect();
        Summary::of(&xs)
    }

    /// Returns the coefficient of variation (stddev / mean), or 0 when the
    /// mean is 0.
    pub fn cv(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.stddev / self.mean
        }
    }
}

/// Bounded-memory running aggregate: count / sum / min / max.
///
/// Campaign-scale reports cannot afford one `Vec` entry per VM, so exec
/// and campaign telemetry stream samples through this instead. Two rules
/// keep results byte-identical across shard counts:
///
/// * every producer accumulates its own shard-local `Streaming` with
///   [`push`](Streaming::push), and
/// * the orchestrator folds shard aggregates in canonical (shard-index)
///   order with [`merge`](Streaming::merge).
///
/// `merge` adds shard subsums, which rounds differently from pushing every
/// sample into one accumulator — so the *sequential* path must fold
/// per-shard aggregates too, never push across shard boundaries.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Streaming {
    /// Number of samples recorded.
    pub count: u64,
    /// Sum of samples.
    pub sum: f64,
    /// Smallest sample (0.0 when empty).
    pub min: f64,
    /// Largest sample (0.0 when empty).
    pub max: f64,
}

impl Streaming {
    /// An empty aggregate.
    pub fn new() -> Streaming {
        Streaming::default()
    }

    /// Records one sample.
    pub fn push(&mut self, x: f64) {
        if self.count == 0 {
            self.min = x;
            self.max = x;
        } else {
            self.min = self.min.min(x);
            self.max = self.max.max(x);
        }
        self.count += 1;
        self.sum += x;
    }

    /// Folds another aggregate into this one. Callers must merge in a
    /// canonical order (f64 addition is not associative).
    pub fn merge(&mut self, other: &Streaming) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Arithmetic mean, or 0.0 when empty (never NaN).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Canonical single-line rendering (`{:?}` floats round-trip, so two
    /// renders match iff the aggregates are bit-identical).
    pub fn render(&self) -> String {
        format!(
            "n={} sum={:?} min={:?} max={:?}",
            self.count, self.sum, self.min, self.max
        )
    }
}

/// Fixed-bucket histogram over `[lo, hi)` with out-of-range counters —
/// the bounded-memory replacement for per-sample vectors in campaign
/// telemetry. Bucket counts are `u64` sums, so merging is order-
/// independent and shard-count invariant.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    buckets: Vec<u64>,
    /// Samples below `lo`.
    pub underflow: u64,
    /// Samples at or above `hi`.
    pub overflow: u64,
}

impl Histogram {
    /// Creates a histogram of `buckets` equal-width bins over `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `buckets == 0` or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, buckets: usize) -> Histogram {
        assert!(buckets > 0, "histogram needs at least one bucket");
        assert!(hi > lo, "histogram range must be non-empty");
        Histogram {
            lo,
            hi,
            buckets: vec![0; buckets],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let idx = ((x - self.lo) / (self.hi - self.lo) * self.buckets.len() as f64) as usize;
            // Guard the edge where float rounding lands exactly on len().
            let idx = idx.min(self.buckets.len() - 1);
            self.buckets[idx] += 1;
        }
    }

    /// Per-bucket counts.
    pub fn counts(&self) -> &[u64] {
        &self.buckets
    }

    /// Total samples recorded, including out-of-range ones.
    pub fn total(&self) -> u64 {
        self.underflow + self.overflow + self.buckets.iter().sum::<u64>()
    }

    /// Folds another histogram into this one (order-independent).
    ///
    /// # Panics
    ///
    /// Panics if the bucket configurations differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert!(
            self.lo == other.lo && self.hi == other.hi && self.buckets.len() == other.buckets.len(),
            "merging histograms with different bucket configurations"
        );
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
    }

    /// Canonical single-line rendering: range, then comma-separated counts
    /// with under/overflow sentinels.
    pub fn render(&self) -> String {
        let counts: Vec<String> = self.buckets.iter().map(|c| c.to_string()).collect();
        format!(
            "[{:?},{:?})x{} <{} [{}] >{}",
            self.lo,
            self.hi,
            self.buckets.len(),
            self.underflow,
            counts.join(","),
            self.overflow
        )
    }
}

/// Five-number summary for box plots (min, q1, median, q3, max).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoxPlot {
    /// Minimum sample.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Maximum sample.
    pub max: f64,
}

impl BoxPlot {
    /// Computes a box plot of `xs`. Returns `None` for an empty slice.
    pub fn of(xs: &[f64]) -> Option<BoxPlot> {
        if xs.is_empty() {
            return None;
        }
        let mut v = xs.to_vec();
        v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in samples"));
        Some(BoxPlot {
            min: v[0],
            q1: percentile_sorted(&v, 25.0),
            median: percentile_sorted(&v, 50.0),
            q3: percentile_sorted(&v, 75.0),
            max: v[v.len() - 1],
        })
    }

    /// Interquartile range.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }
}

/// Returns the `p`-th percentile (0..=100) of an already-sorted slice using
/// linear interpolation between closest ranks.
///
/// # Panics
///
/// Panics if `xs` is empty or `p` is outside `[0, 100]`.
pub fn percentile_sorted(xs: &[f64], p: f64) -> f64 {
    assert!(!xs.is_empty(), "percentile of empty slice");
    assert!((0.0..=100.0).contains(&p), "percentile p out of range");
    if xs.len() == 1 {
        return xs[0];
    }
    let rank = p / 100.0 * (xs.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    xs[lo] + (xs[hi] - xs[lo]) * frac
}

/// Returns the `p`-th percentile of an unsorted slice.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in samples"));
    percentile_sorted(&v, p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.n, 4);
        assert!((s.stddev - 1.118033988749895).abs() < 1e-12);
    }

    #[test]
    fn summary_empty_is_none() {
        assert!(Summary::of(&[]).is_none());
        assert!(BoxPlot::of(&[]).is_none());
    }

    #[test]
    fn summary_of_durations() {
        let ds = [SimDuration::from_secs(1), SimDuration::from_secs(3)];
        let s = Summary::of_durations(&ds).unwrap();
        assert_eq!(s.mean, 2.0);
    }

    #[test]
    fn cv_handles_zero_mean() {
        let s = Summary::of(&[0.0, 0.0]).unwrap();
        assert_eq!(s.cv(), 0.0);
    }

    #[test]
    fn boxplot_quartiles() {
        let b = BoxPlot::of(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(b.min, 1.0);
        assert_eq!(b.q1, 2.0);
        assert_eq!(b.median, 3.0);
        assert_eq!(b.q3, 4.0);
        assert_eq!(b.max, 5.0);
        assert_eq!(b.iqr(), 2.0);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [10.0, 20.0];
        assert_eq!(percentile(&xs, 0.0), 10.0);
        assert_eq!(percentile(&xs, 50.0), 15.0);
        assert_eq!(percentile(&xs, 100.0), 20.0);
    }

    #[test]
    fn percentile_single_element() {
        assert_eq!(percentile(&[7.0], 99.0), 7.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn percentile_empty_panics() {
        percentile(&[], 50.0);
    }

    #[test]
    fn streaming_basics() {
        let mut s = Streaming::new();
        assert_eq!(s.mean(), 0.0); // empty: 0.0, never NaN
        s.push(3.0);
        s.push(1.0);
        s.push(2.0);
        assert_eq!(s.count, 3);
        assert_eq!(s.sum, 6.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.mean(), 2.0);
    }

    #[test]
    fn streaming_merge_matches_groupwise_fold() {
        // Shard-identity contract: folding per-group aggregates in group
        // order gives the same bits regardless of which pool ran them.
        let groups = [vec![1.5, 2.5], vec![0.5], vec![4.0, 0.25, 8.0]];
        let mut folded = Streaming::new();
        for g in &groups {
            let mut local = Streaming::new();
            for &x in g {
                local.push(x);
            }
            folded.merge(&local);
        }
        let mut again = Streaming::new();
        for g in &groups {
            let mut local = Streaming::new();
            for &x in g {
                local.push(x);
            }
            again.merge(&local);
        }
        assert_eq!(folded, again);
        assert_eq!(folded.render(), again.render());
        assert_eq!(folded.count, 6);
        assert_eq!(folded.min, 0.25);
        assert_eq!(folded.max, 8.0);
    }

    #[test]
    fn streaming_merge_empty_sides() {
        let mut a = Streaming::new();
        let mut b = Streaming::new();
        b.push(5.0);
        a.merge(&b);
        assert_eq!(a, b);
        let empty = Streaming::new();
        a.merge(&empty);
        assert_eq!(a, b);
    }

    #[test]
    fn histogram_buckets_and_edges() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.record(-0.1); // underflow
        h.record(0.0); // bucket 0
        h.record(1.9); // bucket 0
        h.record(2.0); // bucket 1
        h.record(9.99); // bucket 4
        h.record(10.0); // overflow
        assert_eq!(h.counts(), &[2, 1, 0, 0, 1]);
        assert_eq!(h.underflow, 1);
        assert_eq!(h.overflow, 1);
        assert_eq!(h.total(), 6);
    }

    #[test]
    fn histogram_merge_is_order_independent() {
        let mut a = Histogram::new(0.0, 4.0, 4);
        let mut b = Histogram::new(0.0, 4.0, 4);
        a.record(0.5);
        a.record(3.5);
        b.record(1.5);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.render(), ba.render());
    }

    #[test]
    #[should_panic(expected = "different bucket configurations")]
    fn histogram_merge_rejects_mismatch() {
        let mut a = Histogram::new(0.0, 4.0, 4);
        let b = Histogram::new(0.0, 8.0, 4);
        a.merge(&b);
    }
}
