//! Deterministic simulation kernel for the HyperTP reproduction.
//!
//! The original HyperTP artifact measures wall-clock time on bare-metal
//! servers. This reproduction replaces the hardware with a deterministic
//! discrete-event simulation: every operation performed by the hypervisor
//! models, the PRAM encoder, the transplant engine and the migration engine
//! reports its cost to a [`clock::SimClock`], and experiments read elapsed
//! simulated time instead of wall-clock time.
//!
//! The crate provides:
//!
//! * [`time`] — nanosecond-resolution simulated instants and durations.
//! * [`clock`] — a shareable monotonic simulated clock.
//! * [`events`] — a deterministic discrete-event queue.
//! * [`rng`] — a small deterministic random number generator (SplitMix64)
//!   so experiments are reproducible without external crates.
//! * [`par`] — a model of parallel work execution (LPT makespan) used to
//!   simulate the worker pools of the paper's "Parallelization" optimization.
//! * [`cost`] — the calibrated cost model mapping operations to simulated
//!   time (constants documented against the paper's reported numbers).
//! * [`series`] — time-series recording for workload metrics (QPS, latency).
//! * [`stats`] — summary statistics (mean, stddev, percentiles, box plots).
//! * [`json`] — a dependency-free JSON encoder/decoder used for the UISR
//!   debug codec and experiment output files.
//! * [`pool`] — a real scoped worker pool executing batches of closures on
//!   OS threads; the wall-clock counterpart of the [`par`] model.
//! * [`fault`] — seeded deterministic fault injection ([`fault::FaultPlan`])
//!   with a structured [`fault::FaultLog`], used by the chaos test matrix
//!   to exercise every recovery path in the transplant stack.
//! * [`hash`] — 128-bit page-content fingerprints ([`hash::Digest128`])
//!   built from two independent word-at-a-time FNV-1a lanes; keys the
//!   migration wire path's destination-synchronised dedup cache.

pub mod clock;
pub mod cost;
pub mod events;
pub mod ewma;
pub mod fault;
pub mod hash;
pub mod json;
pub mod par;
pub mod pool;
pub mod rng;
pub mod series;
pub mod stats;
pub mod time;

pub use clock::SimClock;
pub use cost::CostModel;
pub use events::EventQueue;
pub use ewma::Ewma;
pub use fault::{FaultEvent, FaultLog, FaultPlan, InjectionPoint, RecoveryAction};
pub use hash::{digest_bytes, digest_pages_into, digest_pages_with_pool, digest_words, Digest128};
pub use json::Json;
pub use par::{lpt_loads, makespan};
pub use pool::WorkerPool;
pub use rng::SimRng;
pub use series::TimeSeries;
pub use time::{SimDuration, SimTime};
