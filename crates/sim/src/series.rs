//! Time-series recording for workload metrics.
//!
//! The application-impact experiments (Figs. 11 and 12) plot a metric (QPS,
//! latency) sampled once per second against the simulated clock, with the
//! transplant event somewhere in the middle. [`TimeSeries`] is the recording
//! half; rendering is left to the experiment binaries.

use crate::time::{SimDuration, SimTime};

/// A named series of `(time, value)` samples in simulated time.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TimeSeries {
    name: String,
    samples: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// Creates an empty series with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        TimeSeries {
            name: name.into(),
            samples: Vec::new(),
        }
    }

    /// Returns the series name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends a sample.
    ///
    /// # Panics
    ///
    /// Panics if `t` is earlier than the previous sample's time.
    pub fn push(&mut self, t: SimTime, value: f64) {
        if let Some(&(last, _)) = self.samples.last() {
            assert!(t >= last, "samples must be pushed in time order");
        }
        self.samples.push((t, value));
    }

    /// Returns all samples.
    pub fn samples(&self) -> &[(SimTime, f64)] {
        &self.samples
    }

    /// Returns the number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Returns true if the series has no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Returns the mean value over samples in `[from, to)`, or `None` if the
    /// window contains no samples.
    pub fn mean_in(&self, from: SimTime, to: SimTime) -> Option<f64> {
        let vals: Vec<f64> = self
            .samples
            .iter()
            .filter(|(t, _)| *t >= from && *t < to)
            .map(|&(_, v)| v)
            .collect();
        if vals.is_empty() {
            None
        } else {
            Some(vals.iter().sum::<f64>() / vals.len() as f64)
        }
    }

    /// Returns the longest contiguous run of samples with `value <= thresh`,
    /// as a duration between the first and last sample of the run.
    ///
    /// This is how the experiments measure a workload's observed service
    /// interruption: Redis QPS dropping to zero during InPlaceTP, for
    /// example.
    pub fn longest_run_below(&self, thresh: f64) -> SimDuration {
        let mut best = SimDuration::ZERO;
        let mut run_start: Option<SimTime> = None;
        let mut run_end: Option<SimTime> = None;
        for &(t, v) in &self.samples {
            if v <= thresh {
                if run_start.is_none() {
                    run_start = Some(t);
                }
                run_end = Some(t);
            } else {
                if let (Some(s), Some(e)) = (run_start, run_end) {
                    best = best.max(e.saturating_duration_since(s));
                }
                run_start = None;
                run_end = None;
            }
        }
        if let (Some(s), Some(e)) = (run_start, run_end) {
            best = best.max(e.saturating_duration_since(s));
        }
        best
    }

    /// Renders the series as `time_s value` lines (gnuplot-friendly).
    pub fn to_rows(&self) -> String {
        let mut out = String::new();
        for &(t, v) in &self.samples {
            out.push_str(&format!("{:.3} {:.4}\n", t.as_secs_f64(), v));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_nanos(s * 1_000_000_000)
    }

    #[test]
    fn push_and_query() {
        let mut s = TimeSeries::new("qps");
        s.push(t(0), 10.0);
        s.push(t(1), 20.0);
        s.push(t(2), 30.0);
        assert_eq!(s.len(), 3);
        assert_eq!(s.name(), "qps");
        assert_eq!(s.mean_in(t(0), t(2)), Some(15.0));
        assert_eq!(s.mean_in(t(5), t(9)), None);
    }

    #[test]
    #[should_panic(expected = "time order")]
    fn out_of_order_push_panics() {
        let mut s = TimeSeries::new("x");
        s.push(t(2), 1.0);
        s.push(t(1), 1.0);
    }

    #[test]
    fn longest_run_below_finds_gap() {
        let mut s = TimeSeries::new("qps");
        for i in 0..10 {
            let v = if (3..=5).contains(&i) { 0.0 } else { 100.0 };
            s.push(t(i), v);
        }
        assert_eq!(s.longest_run_below(0.5), SimDuration::from_secs(2));
    }

    #[test]
    fn longest_run_below_at_tail() {
        let mut s = TimeSeries::new("qps");
        s.push(t(0), 5.0);
        s.push(t(1), 0.0);
        s.push(t(4), 0.0);
        assert_eq!(s.longest_run_below(0.5), SimDuration::from_secs(3));
    }

    #[test]
    fn rows_format() {
        let mut s = TimeSeries::new("x");
        s.push(t(1), 2.5);
        assert_eq!(s.to_rows(), "1.000 2.5000\n");
    }
}
