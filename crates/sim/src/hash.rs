//! Content fingerprints for the wire path.
//!
//! The content-aware migration wire path (PR 3) identifies pages by a
//! 128-bit digest so the destination-synchronised dedup cache can suppress
//! re-sending content the destination already holds — across pre-copy
//! rounds and across VMs sharing template pages. 64 bits is not enough for
//! a cache keyed purely by content (a silent collision would materialise
//! the *wrong* page on the destination), so we run two independent
//! FNV-1a-style lanes over the same words: a collision now requires both
//! 64-bit lanes to collide simultaneously.
//!
//! The kernel reuses the word-at-a-time fold introduced for
//! `PhysicalMemory::fnv1a` in PR 1 (one XOR + one multiply per 64-bit
//! word), so hashing stays cheap on the gather hot path: the second lane
//! pre-rotates the word and uses a different offset basis and prime, which
//! is enough to decorrelate the lanes without a second pass.

/// FNV-1a 64-bit offset basis (lane A).
const FNV_OFFSET_A: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime (lane A).
const FNV_PRIME_A: u64 = 0x100_0000_01b3;
/// Lane B offset basis: the FNV basis mixed with an arbitrary odd
/// constant so the lanes start from unrelated states.
const FNV_OFFSET_B: u64 = 0xcbf2_9ce4_8422_2325 ^ 0x9e37_79b9_7f4a_7c15;
/// Lane B prime: a different 64-bit prime (from splitmix64's finaliser
/// family) so the lanes' multiplicative structures differ.
const FNV_PRIME_B: u64 = 0x9e37_79b9_7f4a_7c15 | 1;

/// A 128-bit page-content fingerprint: two independent 64-bit FNV-1a
/// lanes over the page's content words.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Digest128 {
    /// Lane A (classic word-at-a-time FNV-1a).
    pub hi: u64,
    /// Lane B (rotated input, distinct basis and prime).
    pub lo: u64,
}

impl Digest128 {
    /// The digest as a single `u128` (cache-key form).
    pub fn as_u128(self) -> u128 {
        (u128::from(self.hi) << 64) | u128::from(self.lo)
    }

    /// Short hex rendering for logs (`hi:lo`).
    pub fn hex(self) -> String {
        format!("{:016x}{:016x}", self.hi, self.lo)
    }
}

/// Digests a page given as 64-bit content words (word-at-a-time kernel,
/// both lanes in one pass).
pub fn digest_words(words: &[u64]) -> Digest128 {
    let mut a = FNV_OFFSET_A;
    let mut b = FNV_OFFSET_B;
    for &w in words {
        a ^= w;
        a = a.wrapping_mul(FNV_PRIME_A);
        b ^= w.rotate_left(23);
        b = b.wrapping_mul(FNV_PRIME_B);
    }
    Digest128 { hi: a, lo: b }
}

/// Fingerprints a whole extent of one-word pages in a single pass:
/// `out[i]` equals `digest_words(&[words[i]])` for every `i`, but the
/// constants load once and the loop never re-enters the slice kernel, so
/// the migration gather digests an extent per call instead of a page per
/// call. Reuses `out`'s capacity — zero allocations once warmed.
pub fn digest_pages_into(words: &[u64], out: &mut Vec<Digest128>) {
    out.clear();
    out.reserve(words.len());
    for &w in words {
        let a = (FNV_OFFSET_A ^ w).wrapping_mul(FNV_PRIME_A);
        let b = (FNV_OFFSET_B ^ w.rotate_left(23)).wrapping_mul(FNV_PRIME_B);
        out.push(Digest128 { hi: a, lo: b });
    }
}

/// [`digest_pages_into`] fanned word-parallel over a worker pool: the
/// output is resized to `words.len()` and disjoint chunks are filled on
/// pool workers. Results are byte-identical to the serial pass for any
/// worker count. Small batches (or a serial pool) run inline — same
/// threshold reasoning as the migration gather paths.
pub fn digest_pages_with_pool(
    words: &[u64],
    out: &mut Vec<Digest128>,
    pool: &crate::WorkerPool,
    par_threshold: usize,
) {
    if pool.workers() <= 1 || words.len() < par_threshold.max(1) {
        digest_pages_into(words, out);
        return;
    }
    out.clear();
    out.resize(words.len(), Digest128 { hi: 0, lo: 0 });
    let chunk = words.len().div_ceil(pool.workers() * 4).max(1);
    let tasks: Vec<_> = out
        .chunks_mut(chunk)
        .zip(words.chunks(chunk))
        .map(|(o, w)| {
            move || {
                for (d, &word) in o.iter_mut().zip(w) {
                    let a = (FNV_OFFSET_A ^ word).wrapping_mul(FNV_PRIME_A);
                    let b = (FNV_OFFSET_B ^ word.rotate_left(23)).wrapping_mul(FNV_PRIME_B);
                    *d = Digest128 { hi: a, lo: b };
                }
            }
        })
        .collect();
    pool.run(tasks);
}

/// Digests raw page bytes. Whole 8-byte words go through the
/// word-at-a-time kernel; a trailing partial word (len % 8) is
/// zero-padded, with the true length folded in so `[1]` and `[1, 0]`
/// digest differently.
pub fn digest_bytes(bytes: &[u8]) -> Digest128 {
    let mut chunks = bytes.chunks_exact(8);
    let mut words: Vec<u64> = (&mut chunks)
        .map(|c| u64::from_le_bytes(c.try_into().expect("chunks_exact(8)")))
        .collect();
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut tail = [0u8; 8];
        tail[..rem.len()].copy_from_slice(rem);
        words.push(u64::from_le_bytes(tail));
        words.push(bytes.len() as u64);
    }
    digest_words(&words)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;
    use std::collections::HashSet;

    #[test]
    fn deterministic_and_word_sensitive() {
        let d1 = digest_words(&[1, 2, 3]);
        assert_eq!(d1, digest_words(&[1, 2, 3]));
        assert_ne!(d1, digest_words(&[1, 2, 4]));
        assert_ne!(d1, digest_words(&[3, 2, 1]), "order must matter");
        assert_ne!(d1, digest_words(&[1, 2]), "length must matter");
    }

    #[test]
    fn lanes_are_decorrelated() {
        // Flipping one input bit must disturb both lanes (with overwhelming
        // probability); equal lanes would mean the 128-bit claim is fake.
        let mut rng = SimRng::new(0x1a7e);
        for _ in 0..200 {
            let w = rng.next_u64();
            let bit = 1u64 << rng.gen_range(64);
            let d0 = digest_words(&[w]);
            let d1 = digest_words(&[w ^ bit]);
            assert_ne!(d0.hi, d1.hi);
            assert_ne!(d0.lo, d1.lo);
            assert_ne!(d0.hi, d0.lo, "lanes must not shadow each other");
        }
    }

    #[test]
    fn no_collisions_over_many_random_pages() {
        let mut rng = SimRng::new(0x00d1_6e57);
        let mut seen = HashSet::new();
        for _ in 0..20_000 {
            let w = rng.next_u64();
            assert!(seen.insert(digest_words(&[w]).as_u128()), "collision");
        }
    }

    #[test]
    fn bytes_and_words_agree_on_aligned_input() {
        let words = [0xdead_beef_u64, 0x1234_5678_9abc_def0, 0];
        let mut bytes = Vec::new();
        for w in words {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        assert_eq!(digest_bytes(&bytes), digest_words(&words));
    }

    #[test]
    fn byte_tail_is_length_aware() {
        assert_ne!(digest_bytes(&[1]), digest_bytes(&[1, 0]));
        assert_ne!(digest_bytes(&[]), digest_bytes(&[0]));
    }

    #[test]
    fn batched_digests_match_per_page_calls() {
        let mut rng = SimRng::new(0x0ba7_c4ed);
        let words: Vec<u64> = (0..4096).map(|_| rng.next_u64()).collect();
        let mut out = Vec::new();
        digest_pages_into(&words, &mut out);
        assert_eq!(out.len(), words.len());
        for (i, &w) in words.iter().enumerate() {
            assert_eq!(out[i], digest_words(&[w]), "page {i}");
        }
    }

    #[test]
    fn pooled_digests_are_worker_count_invariant() {
        let mut rng = SimRng::new(0x9001);
        let words: Vec<u64> = (0..10_000).map(|_| rng.next_u64()).collect();
        let mut serial = Vec::new();
        digest_pages_into(&words, &mut serial);
        for workers in [1, 2, 3, 7] {
            let pool = crate::WorkerPool::new(workers);
            let mut out = Vec::new();
            digest_pages_with_pool(&words, &mut out, &pool, 64);
            assert_eq!(out, serial, "workers={workers}");
        }
        // Below the threshold the pooled call must fall back inline.
        let pool = crate::WorkerPool::new(4);
        let mut out = Vec::new();
        digest_pages_with_pool(&words[..16], &mut out, &pool, 64);
        assert_eq!(out, serial[..16]);
    }

    #[test]
    fn batched_digest_reuses_capacity() {
        let words = vec![7u64; 512];
        let mut out = Vec::new();
        digest_pages_into(&words, &mut out);
        let cap = out.capacity();
        for _ in 0..8 {
            digest_pages_into(&words, &mut out);
        }
        assert_eq!(out.capacity(), cap, "steady-state calls must not regrow");
    }

    #[test]
    fn hex_and_u128_roundtrip_shape() {
        let d = digest_words(&[42]);
        assert_eq!(d.hex().len(), 32);
        assert_eq!((d.as_u128() >> 64) as u64, d.hi);
        assert_eq!(d.as_u128() as u64, d.lo);
    }
}
