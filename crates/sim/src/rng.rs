//! Deterministic random number generation for reproducible experiments.
//!
//! The simulation must be bit-reproducible across runs and platforms, so we
//! implement a small, well-known generator (SplitMix64) rather than depending
//! on platform entropy. Workload models use it for request jitter and dirty
//! page selection.

/// A deterministic pseudo-random number generator (SplitMix64).
///
/// SplitMix64 passes BigCrush and is the generator recommended for seeding
/// xoshiro-family generators; its state transition is a single 64-bit add,
/// which makes it fully portable and extremely cheap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    state: u64,
}

impl SimRng {
    /// Creates a generator from a seed.
    pub const fn new(seed: u64) -> Self {
        SimRng { state: seed }
    }

    /// Returns the next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a value uniformly distributed in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range bound must be non-zero");
        // Lemire's multiply-shift rejection method for an unbiased result.
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let low = m as u64;
            if low >= bound || low >= low.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Returns a uniformly distributed `f64` in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a standard normal sample (Box–Muller transform).
    pub fn gen_normal(&mut self) -> f64 {
        // Avoid ln(0) by nudging u1 away from zero.
        let u1 = self.gen_f64().max(f64::MIN_POSITIVE);
        let u2 = self.gen_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Returns a normal sample with the given mean and standard deviation.
    pub fn gen_normal_with(&mut self, mean: f64, stddev: f64) -> f64 {
        mean + stddev * self.gen_normal()
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p.clamp(0.0, 1.0)
    }

    /// Splits off an independent generator (for per-VM streams).
    pub fn split(&mut self) -> SimRng {
        SimRng::new(self.next_u64())
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.gen_range(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// Samples `k` distinct indices from `0..n` (floyd's algorithm order is
    /// not needed here; we shuffle a prefix for simplicity).
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        let k = k.min(n);
        let mut idx: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = i + self.gen_range((n - i) as u64) as usize;
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn known_splitmix_vector() {
        // Reference values for seed 1234567 from the canonical SplitMix64.
        let mut r = SimRng::new(1234567);
        assert_eq!(r.next_u64(), 6457827717110365317);
        assert_eq!(r.next_u64(), 3203168211198807973);
    }

    #[test]
    fn gen_range_bounds() {
        let mut r = SimRng::new(7);
        for _ in 0..10_000 {
            assert!(r.gen_range(13) < 13);
        }
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn gen_range_zero_panics() {
        SimRng::new(0).gen_range(0);
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut r = SimRng::new(99);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[r.gen_range(8) as usize] += 1;
        }
        for c in counts {
            assert!(
                (9_000..11_000).contains(&c),
                "bucket count {c} out of range"
            );
        }
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut r = SimRng::new(3);
        for _ in 0..10_000 {
            let x = r.gen_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn normal_moments() {
        let mut r = SimRng::new(11);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| r.gen_normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "variance {var}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::new(5);
        let mut xs: Vec<u32> = (0..64).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<_>>());
        assert_ne!(xs, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_distinct() {
        let mut r = SimRng::new(8);
        let s = r.sample_indices(100, 20);
        assert_eq!(s.len(), 20);
        let mut t = s.clone();
        t.sort_unstable();
        t.dedup();
        assert_eq!(t.len(), 20);
        assert!(t.iter().all(|&i| i < 100));
    }

    #[test]
    fn split_streams_diverge() {
        let mut a = SimRng::new(1);
        let mut b = a.split();
        let mut c = a.split();
        assert_ne!(b.next_u64(), c.next_u64());
    }
}
