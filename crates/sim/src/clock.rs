//! A shareable, monotonic simulated clock.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::time::{SimDuration, SimTime};

/// A monotonic simulated clock shared between the machine, the hypervisor
/// models and the transplant engine.
///
/// The clock only moves forward when a component reports the cost of an
/// operation via [`SimClock::advance`]. Cloning a `SimClock` produces a
/// handle to the same underlying instant, which is how a machine and the
/// engine driving it observe a common notion of time.
///
/// # Examples
///
/// ```
/// use hypertp_sim::{SimClock, SimDuration};
///
/// let clock = SimClock::new();
/// let handle = clock.clone();
/// clock.advance(SimDuration::from_millis(250));
/// assert_eq!(handle.now().as_nanos(), 250_000_000);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    now_ns: Arc<AtomicU64>,
}

impl SimClock {
    /// Creates a clock starting at the simulation epoch.
    pub fn new() -> Self {
        SimClock::default()
    }

    /// Returns the current simulated instant.
    pub fn now(&self) -> SimTime {
        SimTime::from_nanos(self.now_ns.load(Ordering::SeqCst))
    }

    /// Advances the clock by `d` and returns the new instant.
    pub fn advance(&self, d: SimDuration) -> SimTime {
        let prev = self.now_ns.fetch_add(d.as_nanos(), Ordering::SeqCst);
        SimTime::from_nanos(prev + d.as_nanos())
    }

    /// Advances the clock to `t` if `t` is in the future; otherwise leaves
    /// the clock unchanged. Returns the (possibly unchanged) current instant.
    pub fn advance_to(&self, t: SimTime) -> SimTime {
        let target = t.as_nanos();
        let cur = self.now_ns.fetch_max(target, Ordering::SeqCst);
        SimTime::from_nanos(cur.max(target))
    }

    /// Runs `f` and returns its result together with the simulated time the
    /// clock advanced while `f` ran.
    pub fn measure<T>(&self, f: impl FnOnce() -> T) -> (T, SimDuration) {
        let start = self.now();
        let out = f();
        (out, self.now().duration_since(start))
    }

    /// Returns true if both handles reference the same underlying clock.
    pub fn same_clock(&self, other: &SimClock) -> bool {
        Arc::ptr_eq(&self.now_ns, &other.now_ns)
    }
}

/// A named span of simulated time, used to report phase breakdowns
/// (e.g. the PRAM / Translation / Reboot / Restoration phases of Fig. 6).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Phase label.
    pub name: String,
    /// Instant the phase began.
    pub start: SimTime,
    /// Instant the phase ended.
    pub end: SimTime,
}

impl Span {
    /// Returns the duration of the span.
    pub fn duration(&self) -> SimDuration {
        self.end.duration_since(self.start)
    }
}

/// Records a sequence of named spans against a clock.
#[derive(Debug, Clone, Default)]
pub struct SpanRecorder {
    spans: Vec<Span>,
}

impl SpanRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        SpanRecorder::default()
    }

    /// Runs `f`, recording the clock time it spans under `name`.
    pub fn record<T>(&mut self, clock: &SimClock, name: &str, f: impl FnOnce() -> T) -> T {
        let start = clock.now();
        let out = f();
        self.spans.push(Span {
            name: name.to_string(),
            start,
            end: clock.now(),
        });
        out
    }

    /// Pushes an explicit span.
    pub fn push(&mut self, name: &str, start: SimTime, end: SimTime) {
        self.spans.push(Span {
            name: name.to_string(),
            start,
            end,
        });
    }

    /// Returns the recorded spans in recording order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Returns the total duration of all spans named `name`.
    pub fn total(&self, name: &str) -> SimDuration {
        self.spans
            .iter()
            .filter(|s| s.name == name)
            .map(Span::duration)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_time() {
        let a = SimClock::new();
        let b = a.clone();
        a.advance(SimDuration::from_secs(1));
        assert_eq!(b.now(), SimTime::from_nanos(1_000_000_000));
        assert!(a.same_clock(&b));
        assert!(!a.same_clock(&SimClock::new()));
    }

    #[test]
    fn advance_to_is_monotonic() {
        let c = SimClock::new();
        c.advance_to(SimTime::from_nanos(100));
        assert_eq!(c.now().as_nanos(), 100);
        // Moving "backwards" is a no-op.
        c.advance_to(SimTime::from_nanos(50));
        assert_eq!(c.now().as_nanos(), 100);
    }

    #[test]
    fn measure_captures_elapsed() {
        let c = SimClock::new();
        let (v, d) = c.measure(|| {
            c.advance(SimDuration::from_millis(10));
            42
        });
        assert_eq!(v, 42);
        assert_eq!(d, SimDuration::from_millis(10));
    }

    #[test]
    fn span_recorder_totals() {
        let c = SimClock::new();
        let mut r = SpanRecorder::new();
        r.record(&c, "reboot", || {
            c.advance(SimDuration::from_millis(5));
        });
        r.record(&c, "reboot", || {
            c.advance(SimDuration::from_millis(7));
        });
        r.record(&c, "restore", || {
            c.advance(SimDuration::from_millis(3));
        });
        assert_eq!(r.total("reboot"), SimDuration::from_millis(12));
        assert_eq!(r.total("restore"), SimDuration::from_millis(3));
        assert_eq!(r.spans().len(), 3);
        assert_eq!(r.spans()[0].duration(), SimDuration::from_millis(5));
    }
}
