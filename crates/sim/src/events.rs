//! A deterministic discrete-event queue.
//!
//! Events are ordered by simulated time; ties are broken by insertion order
//! so that runs are reproducible regardless of payload contents.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A scheduled event carrying a payload of type `E`.
#[derive(Debug)]
struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse so the earliest event pops first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic discrete-event queue.
///
/// # Examples
///
/// ```
/// use hypertp_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_nanos(20), "late");
/// q.schedule(SimTime::from_nanos(10), "early");
/// let (t, e) = q.pop().unwrap();
/// assert_eq!((t.as_nanos(), e), (10, "early"));
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Creates an empty queue with room for `capacity` pending events —
    /// avoids heap regrowth in tight per-group simulation loops.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            next_seq: 0,
        }
    }

    /// Schedules `payload` to fire at instant `at`.
    pub fn schedule(&mut self, at: SimTime, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, payload });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|s| (s.at, s.payload))
    }

    /// Returns the instant of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }

    /// Returns the number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns true if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drains all events scheduled at or before `t`, in order.
    pub fn pop_until(&mut self, t: SimTime) -> Vec<(SimTime, E)> {
        let mut out = Vec::new();
        while self.peek_time().is_some_and(|at| at <= t) {
            out.push(self.pop().expect("peeked event must pop"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(30), 3);
        q.schedule(SimTime::from_nanos(10), 1);
        q.schedule(SimTime::from_nanos(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn pop_until_respects_bound() {
        let mut q = EventQueue::new();
        for i in 1..=10u64 {
            q.schedule(SimTime::from_nanos(i * 10), i);
        }
        let drained = q.pop_until(SimTime::from_nanos(50));
        assert_eq!(drained.len(), 5);
        assert_eq!(q.len(), 5);
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(60)));
    }

    #[test]
    fn empty_queue_behaviour() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
        assert_eq!(q.peek_time(), None);
    }
}
