//! `KvmHypervisor`: the host-Linux + kvmtool view of the KVM host.

use std::collections::BTreeMap;

use hypertp_core::{
    HtpError, Hypervisor, HypervisorKind, MemSepReport, RestoredVm, VmConfig, VmId, VmState,
};
use hypertp_machine::{Extent, Gfn, Machine, PageOrder};
use hypertp_uisr::UisrVm;

use crate::kvm::Kvm;
use crate::kvmtool::{self, ioctl_err, GuestVm};

/// The KVM hypervisor model: the kernel module plus one kvmtool process
/// per guest.
pub struct KvmHypervisor {
    version: String,
    kvm: Kvm,
    guests: BTreeMap<u32, GuestVm>, // keyed by vm_fd.
    /// Host kernel heap: HV State, dies with the micro-reboot.
    heap: Vec<Extent>,
}

impl KvmHypervisor {
    /// Boots host Linux + the KVM module on a machine.
    pub fn new(machine: &mut Machine) -> Self {
        let mut heap = Vec::new();
        // Host Linux working set model: 24 MiB of kernel allocations.
        for _ in 0..12 {
            if let Ok(e) = machine.ram_mut().alloc(PageOrder(9)) {
                let _ = machine.ram_mut().write(e.base, 0x11_1b_05);
                heap.push(e);
            }
        }
        KvmHypervisor {
            version: "5.3.1+kvmtool".to_string(),
            kvm: Kvm::new(),
            guests: BTreeMap::new(),
            heap,
        }
    }

    fn guest(&self, id: VmId) -> Result<&GuestVm, HtpError> {
        self.guests.get(&id.0).ok_or(HtpError::UnknownVm(id))
    }

    fn guest_mut(&mut self, id: VmId) -> Result<&mut GuestVm, HtpError> {
        self.guests.get_mut(&id.0).ok_or(HtpError::UnknownVm(id))
    }

    /// Access to the kernel module (tests).
    pub fn kvm(&self) -> &Kvm {
        &self.kvm
    }
}

impl Hypervisor for KvmHypervisor {
    fn kind(&self) -> HypervisorKind {
        HypervisorKind::Kvm
    }

    fn version(&self) -> &str {
        &self.version
    }

    fn create_vm(&mut self, machine: &mut Machine, config: &VmConfig) -> Result<VmId, HtpError> {
        let g = kvmtool::create_guest(&mut self.kvm, machine, config, true)?;
        let id = VmId(g.vm_fd);
        self.guests.insert(g.vm_fd, g);
        Ok(id)
    }

    fn destroy_vm(&mut self, machine: &mut Machine, id: VmId) -> Result<(), HtpError> {
        self.guests.remove(&id.0).ok_or(HtpError::UnknownVm(id))?;
        let backing = self.kvm.destroy_vm(id.0).map_err(ioctl_err)?;
        for e in backing {
            machine.ram_mut().free(e)?;
        }
        Ok(())
    }

    fn pause_vm(&mut self, id: VmId) -> Result<(), HtpError> {
        self.guest_mut(id)?.state = VmState::Paused;
        Ok(())
    }

    fn resume_vm(&mut self, id: VmId) -> Result<(), HtpError> {
        self.guest_mut(id)?.state = VmState::Running;
        Ok(())
    }

    fn vm_state(&self, id: VmId) -> Result<VmState, HtpError> {
        Ok(self.guest(id)?.state)
    }

    fn vm_ids(&self) -> Vec<VmId> {
        self.guests.keys().map(|&k| VmId(k)).collect()
    }

    fn vm_config(&self, id: VmId) -> Result<&VmConfig, HtpError> {
        Ok(&self.guest(id)?.config)
    }

    fn find_vm(&self, name: &str) -> Option<VmId> {
        self.guests
            .iter()
            .find(|(_, g)| g.config.name == name)
            .map(|(&k, _)| VmId(k))
    }

    fn guest_memory_map(&self, id: VmId) -> Result<Vec<(Gfn, Extent)>, HtpError> {
        let g = self.guest(id)?;
        let mut out = Vec::new();
        for slot in self.kvm.slots(g.vm_fd).map_err(ioctl_err)? {
            let mut gfn = slot.guest_phys_addr / 4096;
            for e in &slot.backing {
                out.push((Gfn(gfn), *e));
                gfn += e.pages();
            }
        }
        Ok(out)
    }

    fn read_guest(&self, machine: &Machine, id: VmId, gfn: Gfn) -> Result<u64, HtpError> {
        let g = self.guest(id)?;
        let mfn = self.kvm.gfn_to_mfn(g.vm_fd, gfn).map_err(ioctl_err)?;
        Ok(machine.ram().read(mfn)?)
    }

    fn read_guest_many(
        &self,
        machine: &Machine,
        id: VmId,
        gfns: &[Gfn],
    ) -> Result<Vec<u64>, HtpError> {
        // One guest lookup and one batched NPT walk per call (see
        // `Kvm::gfn_to_mfn_many`) instead of a slot scan per page.
        let g = self.guest(id)?;
        let mfns = self.kvm.gfn_to_mfn_many(g.vm_fd, gfns).map_err(ioctl_err)?;
        let ram = machine.ram();
        let mut out = Vec::with_capacity(mfns.len());
        for mfn in mfns {
            out.push(ram.read(mfn)?);
        }
        Ok(out)
    }

    fn read_guest_into(
        &self,
        machine: &Machine,
        id: VmId,
        gfns: &[Gfn],
        out: &mut Vec<u64>,
    ) -> Result<(), HtpError> {
        // Zero-copy gather: the NPT walk delivers physically-contiguous
        // (MFN, pages) runs and each run is borrowed straight from the
        // RAM extent backing (see `Kvm::gfn_runs`).
        let g = self.guest(id)?;
        let ram = machine.ram();
        out.clear();
        out.reserve(gfns.len());
        let mut mem_err: Option<hypertp_machine::MemError> = None;
        self.kvm
            .gfn_runs(g.vm_fd, gfns, &mut |mfn, pages| {
                if mem_err.is_some() {
                    return;
                }
                match ram.content_slice(mfn, pages) {
                    Ok(s) => out.extend_from_slice(s),
                    Err(e) => mem_err = Some(e),
                }
            })
            .map_err(ioctl_err)?;
        match mem_err {
            Some(e) => Err(e.into()),
            None => Ok(()),
        }
    }

    fn write_guest(
        &mut self,
        machine: &mut Machine,
        id: VmId,
        gfn: Gfn,
        content: u64,
    ) -> Result<(), HtpError> {
        let g = self.guest(id)?;
        let vm_fd = g.vm_fd;
        let mfn = self.kvm.gfn_to_mfn(vm_fd, gfn).map_err(ioctl_err)?;
        machine.ram_mut().write(mfn, content)?;
        self.kvm.mark_dirty(vm_fd, gfn).map_err(ioctl_err)?;
        Ok(())
    }

    fn guest_tick(
        &mut self,
        machine: &mut Machine,
        id: VmId,
        dirty_pages: u64,
    ) -> Result<(), HtpError> {
        let (vm_fd, total, writes) = {
            let g = self.guest_mut(id)?;
            if g.state != VmState::Running {
                return Err(HtpError::WrongVmState {
                    vm: id,
                    expected: "running",
                    found: g.state.name(),
                });
            }
            let total = g.config.pages();
            let writes: Vec<(u64, u64)> = (0..dirty_pages)
                .map(|_| (g.rng.gen_range(total), g.rng.next_u64()))
                .collect();
            (g.vm_fd, total, writes)
        };
        let _ = total;
        // Advance vCPU architectural state through the ioctl interface,
        // like a real vcpu_run exit/entry cycle would.
        for fd in self.kvm.vcpu_fds(vm_fd).map_err(ioctl_err)? {
            let mut regs = self.kvm.get_regs(vm_fd, fd).map_err(ioctl_err)?;
            regs.rip = regs.rip.wrapping_add(16 * dirty_pages + 4);
            regs.gprs[0] = regs.gprs[0].wrapping_add(1);
            self.kvm.set_regs(vm_fd, fd, regs).map_err(ioctl_err)?;
        }
        for (gfn, val) in writes {
            self.write_guest(machine, id, Gfn(gfn), val)?;
        }
        Ok(())
    }

    fn enable_dirty_log(&mut self, id: VmId) -> Result<(), HtpError> {
        let vm_fd = self.guest(id)?.vm_fd;
        self.kvm.enable_dirty_log(vm_fd).map_err(ioctl_err)
    }

    fn collect_dirty(&mut self, id: VmId) -> Result<Vec<Gfn>, HtpError> {
        let vm_fd = self.guest(id)?.vm_fd;
        self.kvm.get_dirty_log(vm_fd).map_err(ioctl_err)
    }

    fn notify_prepare_transplant(
        &mut self,
        _machine: &mut Machine,
        id: VmId,
    ) -> Result<hypertp_sim::SimDuration, HtpError> {
        let g = self.guest_mut(id)?;
        Ok(hypertp_core::devices::quiesce(&mut g.devices))
    }

    fn save_uisr(&self, _machine: &Machine, id: VmId) -> Result<UisrVm, HtpError> {
        let g = self.guest(id)?;
        if g.state != VmState::Paused {
            return Err(HtpError::WrongVmState {
                vm: id,
                expected: "paused",
                found: g.state.name(),
            });
        }
        kvmtool::save_uisr(&self.kvm, g)
    }

    fn prepare_incoming(
        &mut self,
        machine: &mut Machine,
        config: &VmConfig,
    ) -> Result<VmId, HtpError> {
        let mut g = kvmtool::create_guest(&mut self.kvm, machine, config, false)?;
        g.state = VmState::Paused;
        let id = VmId(g.vm_fd);
        self.guests.insert(g.vm_fd, g);
        Ok(id)
    }

    fn restore_uisr(
        &mut self,
        _machine: &mut Machine,
        id: VmId,
        uisr: &UisrVm,
    ) -> Result<RestoredVm, HtpError> {
        let g = self.guests.get(&id.0).ok_or(HtpError::UnknownVm(id))?;
        let warnings = kvmtool::restore_uisr(&mut self.kvm, g, uisr)?;
        let g = self.guest_mut(id)?;
        g.devices = uisr.devices.clone();
        for d in &mut g.devices {
            if let hypertp_uisr::DeviceState::Network { unplugged, .. } = d {
                *unplugged = false;
            }
        }
        Ok(RestoredVm { id, warnings })
    }

    fn adopt_vm(
        &mut self,
        machine: &mut Machine,
        uisr: &UisrVm,
        mappings: &[(Gfn, Extent)],
    ) -> Result<RestoredVm, HtpError> {
        let (g, warnings) = kvmtool::adopt_guest(&mut self.kvm, machine, uisr, mappings)?;
        let id = VmId(g.vm_fd);
        self.guests.insert(g.vm_fd, g);
        Ok(RestoredVm { id, warnings })
    }

    fn memsep_report(&self, _machine: &Machine) -> MemSepReport {
        let mut guest_state = 0u64;
        let mut vmi_state = 0u64;
        for g in self.guests.values() {
            if let Ok(slots) = self.kvm.slots(g.vm_fd) {
                for s in slots {
                    guest_state += s.memory_size;
                    // Slot struct + dirty bitmap + per-extent spte model.
                    vmi_state += 64
                        + s.backing.len() as u64 * 8
                        + s.dirty_bitmap
                            .as_ref()
                            .map(|b| b.len() as u64 * 8)
                            .unwrap_or(0);
                }
            }
            if let Ok(fds) = self.kvm.vcpu_fds(g.vm_fd) {
                // kvm_vcpu + lapic page + xsave + msr store per vCPU.
                vmi_state += fds.len() as u64 * (4096 + 1024 + 1344 + 512);
            }
            vmi_state += 512; // virtio device models.
        }
        // Task structs and CFS runqueue entries per vCPU thread.
        let vm_mgmt_state = self
            .guests
            .values()
            .map(|g| 1024 + g.vcpu_fds.len() as u64 * 8192)
            .sum::<u64>()
            + 4096;
        MemSepReport {
            guest_state,
            vmi_state,
            vm_mgmt_state,
            hv_state: self.heap.iter().map(|e| e.bytes()).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypertp_machine::MachineSpec;

    fn machine() -> Machine {
        let mut spec = MachineSpec::m1();
        spec.ram_gb = 4;
        Machine::new(spec)
    }

    #[test]
    fn lifecycle_and_memory() {
        let mut m = machine();
        let mut hv = KvmHypervisor::new(&mut m);
        let id = hv.create_vm(&mut m, &VmConfig::small("vm0")).unwrap();
        hv.write_guest(&mut m, id, Gfn(1000), 0xbeef).unwrap();
        assert_eq!(hv.read_guest(&m, id, Gfn(1000)).unwrap(), 0xbeef);
        let map = hv.guest_memory_map(id).unwrap();
        assert_eq!(map.iter().map(|(_, e)| e.pages()).sum::<u64>(), 262_144);
        hv.destroy_vm(&mut m, id).unwrap();
        assert!(hv.vm_ids().is_empty());
    }

    #[test]
    fn dirty_log_through_kvm() {
        let mut m = machine();
        let mut hv = KvmHypervisor::new(&mut m);
        let id = hv.create_vm(&mut m, &VmConfig::small("vm0")).unwrap();
        hv.enable_dirty_log(id).unwrap();
        hv.write_guest(&mut m, id, Gfn(9), 1).unwrap();
        hv.write_guest(&mut m, id, Gfn(77), 1).unwrap();
        assert_eq!(hv.collect_dirty(id).unwrap(), vec![Gfn(9), Gfn(77)]);
        assert!(hv.collect_dirty(id).unwrap().is_empty());
    }

    #[test]
    fn guest_tick_advances_rip_via_ioctls() {
        let mut m = machine();
        let mut hv = KvmHypervisor::new(&mut m);
        let id = hv.create_vm(&mut m, &VmConfig::small("vm0")).unwrap();
        let g = hv.guest(id).unwrap();
        let rip0 = hv.kvm.get_regs(g.vm_fd, g.vcpu_fds[0]).unwrap().rip;
        hv.guest_tick(&mut m, id, 5).unwrap();
        let g = hv.guest(id).unwrap();
        let rip1 = hv.kvm.get_regs(g.vm_fd, g.vcpu_fds[0]).unwrap().rip;
        assert!(rip1 > rip0);
    }

    #[test]
    fn save_uisr_shape() {
        let mut m = machine();
        let mut hv = KvmHypervisor::new(&mut m);
        let id = hv
            .create_vm(&mut m, &VmConfig::small("vm0").with_vcpus(3))
            .unwrap();
        hv.pause_vm(id).unwrap();
        let u = hv.save_uisr(&m, id).unwrap();
        assert_eq!(u.vcpus.len(), 3);
        assert_eq!(u.ioapic.pins(), 24, "KVM exports its native 24 pins");
        assert_eq!(u.memory.total_pages(), 262_144);
        // EFER present both in sregs and the MSR list.
        assert_eq!(u.vcpus[0].sregs.efer, 0xd01);
        assert_eq!(
            hypertp_uisr::msr::find(&u.vcpus[0].msrs, hypertp_uisr::msr::IA32_EFER),
            Some(0xd01)
        );
    }

    #[test]
    fn notify_quiesces_virtio_queues() {
        let mut m = machine();
        let mut hv = KvmHypervisor::new(&mut m);
        let id = hv.create_vm(&mut m, &VmConfig::small("vm0")).unwrap();
        {
            let g = hv.guests.get_mut(&id.0).unwrap();
            for dev in &mut g.devices {
                if let hypertp_uisr::DeviceState::Block {
                    pending_requests, ..
                } = dev
                {
                    *pending_requests = 7;
                }
            }
        }
        hv.pause_vm(id).unwrap();
        assert!(
            hv.save_uisr(&m, id).is_err(),
            "busy virtio queue blocks save"
        );
        hv.resume_vm(id).unwrap();
        hv.notify_prepare_transplant(&mut m, id).unwrap();
        hv.pause_vm(id).unwrap();
        assert!(hv.save_uisr(&m, id).is_ok());
    }

    #[test]
    fn memsep_guest_dominates() {
        let mut m = machine();
        let mut hv = KvmHypervisor::new(&mut m);
        hv.create_vm(&mut m, &VmConfig::small("vm0")).unwrap();
        let r = hv.memsep_report(&m);
        assert_eq!(r.guest_state, 1 << 30);
        assert!(r.translation_ratio() < 0.01);
        assert!(r.hv_state > 0);
    }
}
