//! The KVM kernel-module state and ioctl dispatch surface.
//!
//! Userspace (kvmtool) interacts with KVM exclusively through file
//! descriptors and ioctls: a system fd creates VM fds, a VM fd creates
//! vCPU fds and registers memory slots, and state moves through the
//! containers in [`crate::ioctl`]. §2.1 attributes 27% of KVM's critical
//! vulnerabilities to exactly this ioctl surface.
//!
//! Guest memory: each memory slot covers a contiguous guest-physical
//! range backed by a list of machine extents (the VMM's mmap'ed backing).
//! Dirty tracking is per-slot bitmaps with `KVM_GET_DIRTY_LOG`
//! read-and-clear semantics — a different design from Xen's P2M log-dirty,
//! though UISR never needs to know.

use std::collections::BTreeMap;

use hypertp_machine::{Extent, Gfn, Mfn};

use crate::ioctl::{
    Errno, KvmFpu, KvmIoapicState, KvmLapicState, KvmMsrEntry, KvmPitState2, KvmRegs, KvmSregs,
    KvmXcrs, KvmXsave,
};

/// A guest memory slot (`kvm_userspace_memory_region`).
#[derive(Debug, Clone)]
pub struct MemSlot {
    /// Slot number.
    pub slot: u32,
    /// First guest-physical byte address.
    pub guest_phys_addr: u64,
    /// Length in bytes.
    pub memory_size: u64,
    /// Backing machine extents, covering the slot contiguously (the model
    /// of the VMM's mmap'ed anonymous memory).
    pub backing: Vec<Extent>,
    /// Dirty bitmap (one bit per 4 KiB page), present when dirty logging
    /// is enabled for the slot.
    pub dirty_bitmap: Option<Vec<u64>>,
}

impl MemSlot {
    fn pages(&self) -> u64 {
        self.memory_size / 4096
    }

    /// Translates a page offset within the slot to a machine frame.
    fn frame_at(&self, page_offset: u64) -> Option<Mfn> {
        let mut remaining = page_offset;
        for e in &self.backing {
            if remaining < e.pages() {
                return Some(e.base + remaining);
            }
            remaining -= e.pages();
        }
        None
    }
}

/// Per-vCPU state held by the kernel module.
#[derive(Debug, Clone, Default)]
pub struct VcpuState {
    /// General-purpose registers.
    pub regs: KvmRegs,
    /// Special registers.
    pub sregs: KvmSregs,
    /// FPU state.
    pub fpu: KvmFpu,
    /// MSR store.
    pub msrs: BTreeMap<u32, u64>,
    /// XSAVE region.
    pub xsave: KvmXsave,
    /// Extended control registers.
    pub xcrs: KvmXcrs,
    /// LAPIC register page.
    pub lapic: KvmLapicState,
}

/// Per-VM state held by the kernel module.
#[derive(Debug, Default)]
pub struct VmState {
    /// Registered memory slots.
    pub slots: BTreeMap<u32, MemSlot>,
    /// vCPU states by vCPU fd.
    pub vcpus: BTreeMap<u32, VcpuState>,
    /// In-kernel IOAPIC, present after `KVM_CREATE_IRQCHIP`.
    pub irqchip: Option<KvmIoapicState>,
    /// In-kernel PIT, present after `KVM_CREATE_PIT2`.
    pub pit: Option<KvmPitState2>,
}

/// The KVM kernel module (the `/dev/kvm` side of the ioctl interface).
#[derive(Debug, Default)]
pub struct Kvm {
    vms: BTreeMap<u32, VmState>,
    next_fd: u32,
}

impl Kvm {
    /// Loads the module.
    pub fn new() -> Self {
        Kvm {
            vms: BTreeMap::new(),
            next_fd: 3, // fds 0-2 are stdio, naturally.
        }
    }

    fn vm(&self, vm_fd: u32) -> Result<&VmState, Errno> {
        self.vms.get(&vm_fd).ok_or(Errno::EBADF)
    }

    fn vm_mut(&mut self, vm_fd: u32) -> Result<&mut VmState, Errno> {
        self.vms.get_mut(&vm_fd).ok_or(Errno::EBADF)
    }

    fn vcpu(&self, vm_fd: u32, vcpu_fd: u32) -> Result<&VcpuState, Errno> {
        self.vm(vm_fd)?.vcpus.get(&vcpu_fd).ok_or(Errno::EBADF)
    }

    fn vcpu_mut(&mut self, vm_fd: u32, vcpu_fd: u32) -> Result<&mut VcpuState, Errno> {
        self.vm_mut(vm_fd)?
            .vcpus
            .get_mut(&vcpu_fd)
            .ok_or(Errno::EBADF)
    }

    /// `KVM_CREATE_VM`.
    pub fn create_vm(&mut self) -> u32 {
        let fd = self.next_fd;
        self.next_fd += 1;
        self.vms.insert(fd, VmState::default());
        fd
    }

    /// Destroys a VM (closing its fd). Returns its backing extents so the
    /// VMM can unmap them.
    pub fn destroy_vm(&mut self, vm_fd: u32) -> Result<Vec<Extent>, Errno> {
        let vm = self.vms.remove(&vm_fd).ok_or(Errno::EBADF)?;
        Ok(vm
            .slots
            .into_values()
            .flat_map(|s| s.backing.into_iter())
            .collect())
    }

    /// `KVM_CREATE_VCPU`.
    pub fn create_vcpu(&mut self, vm_fd: u32) -> Result<u32, Errno> {
        let fd = self.next_fd;
        self.next_fd += 1;
        self.vm_mut(vm_fd)?.vcpus.insert(fd, VcpuState::default());
        Ok(fd)
    }

    /// `KVM_SET_USER_MEMORY_REGION`.
    pub fn set_user_memory_region(
        &mut self,
        vm_fd: u32,
        slot: u32,
        guest_phys_addr: u64,
        backing: Vec<Extent>,
    ) -> Result<(), Errno> {
        if !guest_phys_addr.is_multiple_of(4096) {
            return Err(Errno::EINVAL);
        }
        let memory_size: u64 = backing.iter().map(|e| e.bytes()).sum();
        let vm = self.vm_mut(vm_fd)?;
        // Reject overlap with existing slots.
        for s in vm.slots.values() {
            if s.slot != slot
                && guest_phys_addr < s.guest_phys_addr + s.memory_size
                && s.guest_phys_addr < guest_phys_addr + memory_size
            {
                return Err(Errno::EEXIST);
            }
        }
        vm.slots.insert(
            slot,
            MemSlot {
                slot,
                guest_phys_addr,
                memory_size,
                backing,
                dirty_bitmap: None,
            },
        );
        Ok(())
    }

    /// Batched NPT walk: translates many guest frames in one call.
    ///
    /// [`Kvm::gfn_to_mfn`] scans the slot list and the slot's backing
    /// extents per page — fine for a stray access, quadratic for a
    /// migration gather that touches every page. This flattens the
    /// slots' backing into ascending `(first page, mfn base, pages)`
    /// runs once per batch and then walks sorted input with a monotonic
    /// cursor (out-of-order input restarts the cursor, costing a rescan
    /// but never a wrong answer). Per-page results and `EFAULT`
    /// behaviour match the single-page walk exactly.
    pub fn gfn_to_mfn_many(&self, vm_fd: u32, gfns: &[Gfn]) -> Result<Vec<Mfn>, Errno> {
        let vm = self.vm(vm_fd)?;
        let mut runs: Vec<(u64, Mfn, u64)> = Vec::new();
        for s in vm.slots.values() {
            let mut page = s.guest_phys_addr / 4096;
            for e in &s.backing {
                runs.push((page, e.base, e.pages()));
                page += e.pages();
            }
        }
        // Slots are keyed by slot number, not address — order by page.
        runs.sort_unstable_by_key(|r| r.0);
        let mut out = Vec::with_capacity(gfns.len());
        let mut idx = 0usize;
        let mut prev = 0u64;
        for &g in gfns {
            let p = g.0;
            if p < prev {
                idx = 0;
            }
            prev = p;
            while idx + 1 < runs.len() && runs[idx + 1].0 <= p {
                idx += 1;
            }
            match runs.get(idx) {
                Some(&(start, base, pages)) if p >= start && p < start + pages => {
                    out.push(base + (p - start));
                }
                _ => return Err(Errno::EFAULT),
            }
        }
        Ok(out)
    }

    /// [`Kvm::gfn_to_mfn_many`] as a run visitor: delivers coalesced
    /// physically-contiguous `(base MFN, pages)` runs instead of one MFN
    /// per page. The common single-slot layout walks the slot's backing
    /// extents directly with a monotonic cursor — no flattened run
    /// vector, no sort, no allocation — so steady-state migration
    /// gathers stay off the heap entirely; multi-slot guests fall back
    /// to the flattened walk. Per-page translations and `EFAULT`
    /// behaviour match [`Kvm::gfn_to_mfn_many`] exactly; runs before a
    /// faulting GFN may already have been delivered.
    pub fn gfn_runs(
        &self,
        vm_fd: u32,
        gfns: &[Gfn],
        visit: &mut dyn FnMut(Mfn, u64),
    ) -> Result<(), Errno> {
        let vm = self.vm(vm_fd)?;
        let mut run: Option<(Mfn, u64)> = None;
        let push =
            |m: Mfn, run: &mut Option<(Mfn, u64)>, visit: &mut dyn FnMut(Mfn, u64)| match *run {
                Some((b, n)) if b.0 + n == m.0 => *run = Some((b, n + 1)),
                Some((b, n)) => {
                    visit(b, n);
                    *run = Some((m, 1));
                }
                None => *run = Some((m, 1)),
            };
        if vm.slots.len() == 1 {
            let s = vm.slots.values().next().expect("one slot");
            let start_page = s.guest_phys_addr / 4096;
            let mut idx = 0usize;
            let mut idx_page = start_page;
            let mut prev = 0u64;
            for &g in gfns {
                let p = g.0;
                if p < prev {
                    idx = 0;
                    idx_page = start_page;
                }
                prev = p;
                while idx < s.backing.len() && idx_page + s.backing[idx].pages() <= p {
                    idx_page += s.backing[idx].pages();
                    idx += 1;
                }
                match s.backing.get(idx) {
                    Some(e) if p >= idx_page => {
                        push(e.base + (p - idx_page), &mut run, visit);
                    }
                    _ => return Err(Errno::EFAULT),
                }
            }
        } else {
            let mut runs: Vec<(u64, Mfn, u64)> = Vec::new();
            for s in vm.slots.values() {
                let mut page = s.guest_phys_addr / 4096;
                for e in &s.backing {
                    runs.push((page, e.base, e.pages()));
                    page += e.pages();
                }
            }
            runs.sort_unstable_by_key(|r| r.0);
            let mut idx = 0usize;
            let mut prev = 0u64;
            for &g in gfns {
                let p = g.0;
                if p < prev {
                    idx = 0;
                }
                prev = p;
                while idx + 1 < runs.len() && runs[idx + 1].0 <= p {
                    idx += 1;
                }
                match runs.get(idx) {
                    Some(&(start, base, pages)) if p >= start && p < start + pages => {
                        push(base + (p - start), &mut run, visit);
                    }
                    _ => return Err(Errno::EFAULT),
                }
            }
        }
        if let Some((b, n)) = run {
            visit(b, n);
        }
        Ok(())
    }

    /// Translates a guest frame to a machine frame (the NPT walk).
    pub fn gfn_to_mfn(&self, vm_fd: u32, gfn: Gfn) -> Result<Mfn, Errno> {
        let vm = self.vm(vm_fd)?;
        let addr = gfn.addr();
        for s in vm.slots.values() {
            if addr >= s.guest_phys_addr && addr < s.guest_phys_addr + s.memory_size {
                let off = (addr - s.guest_phys_addr) / 4096;
                return s.frame_at(off).ok_or(Errno::EFAULT);
            }
        }
        Err(Errno::EFAULT)
    }

    /// Marks a guest page dirty (a write fault with dirty logging on).
    pub fn mark_dirty(&mut self, vm_fd: u32, gfn: Gfn) -> Result<(), Errno> {
        let vm = self.vm_mut(vm_fd)?;
        let addr = gfn.addr();
        for s in vm.slots.values_mut() {
            if addr >= s.guest_phys_addr && addr < s.guest_phys_addr + s.memory_size {
                if let Some(bm) = &mut s.dirty_bitmap {
                    let bit = (addr - s.guest_phys_addr) / 4096;
                    bm[(bit / 64) as usize] |= 1 << (bit % 64);
                }
                return Ok(());
            }
        }
        Err(Errno::EFAULT)
    }

    /// Enables dirty logging on every slot (`KVM_MEM_LOG_DIRTY_PAGES`).
    pub fn enable_dirty_log(&mut self, vm_fd: u32) -> Result<(), Errno> {
        let vm = self.vm_mut(vm_fd)?;
        for s in vm.slots.values_mut() {
            let words = s.pages().div_ceil(64) as usize;
            s.dirty_bitmap = Some(vec![0; words]);
        }
        Ok(())
    }

    /// `KVM_GET_DIRTY_LOG` over all slots: returns dirty GFNs and clears
    /// the bitmaps.
    pub fn get_dirty_log(&mut self, vm_fd: u32) -> Result<Vec<Gfn>, Errno> {
        let vm = self.vm_mut(vm_fd)?;
        let mut out = Vec::new();
        for s in vm.slots.values_mut() {
            if let Some(bm) = &mut s.dirty_bitmap {
                for (w, word) in bm.iter_mut().enumerate() {
                    let mut v = std::mem::take(word);
                    while v != 0 {
                        let b = v.trailing_zeros() as u64;
                        v &= v - 1;
                        out.push(Gfn(s.guest_phys_addr / 4096 + w as u64 * 64 + b));
                    }
                }
            }
        }
        out.sort_unstable();
        Ok(out)
    }

    /// `KVM_CREATE_IRQCHIP`.
    pub fn create_irqchip(&mut self, vm_fd: u32) -> Result<(), Errno> {
        let vm = self.vm_mut(vm_fd)?;
        if vm.irqchip.is_some() {
            return Err(Errno::EEXIST);
        }
        vm.irqchip = Some(KvmIoapicState::default());
        Ok(())
    }

    /// `KVM_GET_IRQCHIP`.
    pub fn get_irqchip(&self, vm_fd: u32) -> Result<KvmIoapicState, Errno> {
        self.vm(vm_fd)?.irqchip.clone().ok_or(Errno::ENODEV)
    }

    /// `KVM_SET_IRQCHIP`.
    pub fn set_irqchip(&mut self, vm_fd: u32, state: KvmIoapicState) -> Result<(), Errno> {
        let vm = self.vm_mut(vm_fd)?;
        if vm.irqchip.is_none() {
            return Err(Errno::ENODEV);
        }
        vm.irqchip = Some(state);
        Ok(())
    }

    /// `KVM_CREATE_PIT2`.
    pub fn create_pit2(&mut self, vm_fd: u32) -> Result<(), Errno> {
        let vm = self.vm_mut(vm_fd)?;
        if vm.pit.is_some() {
            return Err(Errno::EEXIST);
        }
        vm.pit = Some(KvmPitState2::default());
        Ok(())
    }

    /// `KVM_GET_PIT2`.
    pub fn get_pit2(&self, vm_fd: u32) -> Result<KvmPitState2, Errno> {
        self.vm(vm_fd)?.pit.ok_or(Errno::ENODEV)
    }

    /// `KVM_SET_PIT2`.
    pub fn set_pit2(&mut self, vm_fd: u32, state: KvmPitState2) -> Result<(), Errno> {
        let vm = self.vm_mut(vm_fd)?;
        if vm.pit.is_none() {
            return Err(Errno::ENODEV);
        }
        vm.pit = Some(state);
        Ok(())
    }

    /// `KVM_GET_REGS` / `KVM_SET_REGS`.
    pub fn get_regs(&self, vm_fd: u32, vcpu_fd: u32) -> Result<KvmRegs, Errno> {
        Ok(self.vcpu(vm_fd, vcpu_fd)?.regs)
    }

    /// Sets general-purpose registers.
    pub fn set_regs(&mut self, vm_fd: u32, vcpu_fd: u32, regs: KvmRegs) -> Result<(), Errno> {
        self.vcpu_mut(vm_fd, vcpu_fd)?.regs = regs;
        Ok(())
    }

    /// `KVM_GET_SREGS` / `KVM_SET_SREGS`.
    pub fn get_sregs(&self, vm_fd: u32, vcpu_fd: u32) -> Result<KvmSregs, Errno> {
        Ok(self.vcpu(vm_fd, vcpu_fd)?.sregs)
    }

    /// Sets special registers.
    pub fn set_sregs(&mut self, vm_fd: u32, vcpu_fd: u32, sregs: KvmSregs) -> Result<(), Errno> {
        self.vcpu_mut(vm_fd, vcpu_fd)?.sregs = sregs;
        Ok(())
    }

    /// `KVM_SET_MSRS`; returns the number of MSRs set (KVM semantics).
    pub fn set_msrs(
        &mut self,
        vm_fd: u32,
        vcpu_fd: u32,
        msrs: &[KvmMsrEntry],
    ) -> Result<usize, Errno> {
        let v = self.vcpu_mut(vm_fd, vcpu_fd)?;
        for m in msrs {
            v.msrs.insert(m.index, m.data);
        }
        Ok(msrs.len())
    }

    /// `KVM_GET_MSRS` for the requested indices; unknown MSRs read as 0.
    pub fn get_msrs(
        &self,
        vm_fd: u32,
        vcpu_fd: u32,
        indices: &[u32],
    ) -> Result<Vec<KvmMsrEntry>, Errno> {
        let v = self.vcpu(vm_fd, vcpu_fd)?;
        Ok(indices
            .iter()
            .map(|&index| KvmMsrEntry {
                index,
                data: v.msrs.get(&index).copied().unwrap_or(0),
            })
            .collect())
    }

    /// `KVM_GET_FPU` / `KVM_SET_FPU`.
    pub fn get_fpu(&self, vm_fd: u32, vcpu_fd: u32) -> Result<KvmFpu, Errno> {
        Ok(self.vcpu(vm_fd, vcpu_fd)?.fpu.clone())
    }

    /// Sets FPU state.
    pub fn set_fpu(&mut self, vm_fd: u32, vcpu_fd: u32, fpu: KvmFpu) -> Result<(), Errno> {
        self.vcpu_mut(vm_fd, vcpu_fd)?.fpu = fpu;
        Ok(())
    }

    /// `KVM_GET_XSAVE` / `KVM_SET_XSAVE`.
    pub fn get_xsave(&self, vm_fd: u32, vcpu_fd: u32) -> Result<KvmXsave, Errno> {
        Ok(self.vcpu(vm_fd, vcpu_fd)?.xsave.clone())
    }

    /// Sets the XSAVE region.
    pub fn set_xsave(&mut self, vm_fd: u32, vcpu_fd: u32, x: KvmXsave) -> Result<(), Errno> {
        self.vcpu_mut(vm_fd, vcpu_fd)?.xsave = x;
        Ok(())
    }

    /// `KVM_GET_XCRS` / `KVM_SET_XCRS`.
    pub fn get_xcrs(&self, vm_fd: u32, vcpu_fd: u32) -> Result<KvmXcrs, Errno> {
        Ok(self.vcpu(vm_fd, vcpu_fd)?.xcrs.clone())
    }

    /// Sets extended control registers.
    pub fn set_xcrs(&mut self, vm_fd: u32, vcpu_fd: u32, x: KvmXcrs) -> Result<(), Errno> {
        self.vcpu_mut(vm_fd, vcpu_fd)?.xcrs = x;
        Ok(())
    }

    /// `KVM_GET_LAPIC` / `KVM_SET_LAPIC`.
    pub fn get_lapic(&self, vm_fd: u32, vcpu_fd: u32) -> Result<KvmLapicState, Errno> {
        Ok(self.vcpu(vm_fd, vcpu_fd)?.lapic.clone())
    }

    /// Sets the LAPIC register page.
    pub fn set_lapic(&mut self, vm_fd: u32, vcpu_fd: u32, l: KvmLapicState) -> Result<(), Errno> {
        if l.regs.len() != 1024 {
            return Err(Errno::EINVAL);
        }
        self.vcpu_mut(vm_fd, vcpu_fd)?.lapic = l;
        Ok(())
    }

    /// vCPU fds of a VM, in creation order.
    pub fn vcpu_fds(&self, vm_fd: u32) -> Result<Vec<u32>, Errno> {
        Ok(self.vm(vm_fd)?.vcpus.keys().copied().collect())
    }

    /// Memory-slot view (for accounting and tests).
    pub fn slots(&self, vm_fd: u32) -> Result<Vec<&MemSlot>, Errno> {
        Ok(self.vm(vm_fd)?.slots.values().collect())
    }

    /// Number of live VMs.
    pub fn vm_count(&self) -> usize {
        self.vms.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypertp_machine::PageOrder;

    fn ext(base: u64, order: u8) -> Extent {
        Extent::new(Mfn(base), PageOrder(order))
    }

    #[test]
    fn vm_and_vcpu_lifecycle() {
        let mut k = Kvm::new();
        let vm = k.create_vm();
        let v0 = k.create_vcpu(vm).unwrap();
        let v1 = k.create_vcpu(vm).unwrap();
        assert_ne!(v0, v1);
        assert_eq!(k.vcpu_fds(vm).unwrap(), vec![v0, v1]);
        assert_eq!(k.create_vcpu(999), Err(Errno::EBADF));
        k.destroy_vm(vm).unwrap();
        assert_eq!(k.get_regs(vm, v0), Err(Errno::EBADF));
    }

    #[test]
    fn memslots_translate() {
        let mut k = Kvm::new();
        let vm = k.create_vm();
        k.set_user_memory_region(vm, 0, 0, vec![ext(512, 9), ext(2048, 9)])
            .unwrap();
        assert_eq!(k.gfn_to_mfn(vm, Gfn(0)).unwrap(), Mfn(512));
        assert_eq!(k.gfn_to_mfn(vm, Gfn(511)).unwrap(), Mfn(1023));
        assert_eq!(k.gfn_to_mfn(vm, Gfn(512)).unwrap(), Mfn(2048));
        assert_eq!(k.gfn_to_mfn(vm, Gfn(1024)), Err(Errno::EFAULT));
    }

    #[test]
    fn batched_translate_matches_per_page_walk() {
        let mut k = Kvm::new();
        let vm = k.create_vm();
        // Two slots, the higher-addressed one registered first, each with
        // fragmented backing — the flatten + sort must still order runs.
        k.set_user_memory_region(vm, 1, 1024 * 4096, vec![ext(4096, 9), ext(8192, 9)])
            .unwrap();
        k.set_user_memory_region(vm, 0, 0, vec![ext(512, 9), ext(2048, 9)])
            .unwrap();
        // Sorted input across both slots and both backing extents.
        let sorted: Vec<Gfn> = [0u64, 1, 511, 512, 1023, 1024, 1536, 2047]
            .iter()
            .map(|&g| Gfn(g))
            .collect();
        let got = k.gfn_to_mfn_many(vm, &sorted).unwrap();
        for (g, m) in sorted.iter().zip(&got) {
            assert_eq!(k.gfn_to_mfn(vm, *g).unwrap(), *m, "mismatch at {g:?}");
        }
        // Out-of-order input restarts the cursor but answers identically.
        let unsorted = vec![Gfn(2047), Gfn(0), Gfn(1024), Gfn(512), Gfn(511)];
        let got = k.gfn_to_mfn_many(vm, &unsorted).unwrap();
        for (g, m) in unsorted.iter().zip(&got) {
            assert_eq!(k.gfn_to_mfn(vm, *g).unwrap(), *m, "mismatch at {g:?}");
        }
        // Unmapped GFNs fault exactly like the per-page walk (the slots
        // end at page 2048).
        assert_eq!(
            k.gfn_to_mfn_many(vm, &[Gfn(0), Gfn(2048)]),
            Err(Errno::EFAULT)
        );
        assert_eq!(k.gfn_to_mfn_many(vm, &[]), Ok(vec![]));
    }

    #[test]
    fn gfn_runs_matches_batched_walk() {
        // Both the single-slot fast path and the multi-slot fallback must
        // flatten to exactly gfn_to_mfn_many's answers, with runs
        // coalesced across backing-extent boundaries when frames abut.
        let mut single = Kvm::new();
        let vm1 = single.create_vm();
        // 2048..2560 and 2560..3072 are physically adjacent: one run.
        single
            .set_user_memory_region(vm1, 0, 0, vec![ext(2048, 9), ext(2560, 9), ext(8192, 9)])
            .unwrap();
        let mut multi = Kvm::new();
        let vm2 = multi.create_vm();
        multi
            .set_user_memory_region(vm2, 1, 1024 * 4096, vec![ext(8192, 9)])
            .unwrap();
        multi
            .set_user_memory_region(vm2, 0, 0, vec![ext(2048, 9), ext(2560, 9)])
            .unwrap();
        for (k, vm) in [(&single, vm1), (&multi, vm2)] {
            for gfns in [
                (0u64..1536).collect::<Vec<_>>(),
                vec![0, 1, 513, 1025, 1030],
                vec![1535, 0, 512, 511],
            ] {
                let gfns: Vec<Gfn> = gfns.into_iter().map(Gfn).collect();
                let mut flat = Vec::new();
                k.gfn_runs(vm, &gfns, &mut |m, n| flat.extend((0..n).map(|i| m + i)))
                    .unwrap();
                assert_eq!(flat, k.gfn_to_mfn_many(vm, &gfns).unwrap());
            }
            // The adjacent extents coalesce into a single visited run.
            let gfns: Vec<Gfn> = (0..1024).map(Gfn).collect();
            let mut visits = 0;
            k.gfn_runs(vm, &gfns, &mut |_, n| {
                assert_eq!(n, 1024);
                visits += 1;
            })
            .unwrap();
            assert_eq!(visits, 1);
            // Faults match.
            assert_eq!(
                k.gfn_runs(vm, &[Gfn(4096)], &mut |_, _| {}),
                Err(Errno::EFAULT)
            );
        }
    }

    #[test]
    fn overlapping_slots_rejected() {
        let mut k = Kvm::new();
        let vm = k.create_vm();
        k.set_user_memory_region(vm, 0, 0, vec![ext(0, 9)]).unwrap();
        assert_eq!(
            k.set_user_memory_region(vm, 1, 4096, vec![ext(512, 9)]),
            Err(Errno::EEXIST)
        );
        // Replacing the same slot is fine.
        k.set_user_memory_region(vm, 0, 0, vec![ext(1024, 9)])
            .unwrap();
    }

    #[test]
    fn unaligned_gpa_rejected() {
        let mut k = Kvm::new();
        let vm = k.create_vm();
        assert_eq!(
            k.set_user_memory_region(vm, 0, 17, vec![ext(0, 0)]),
            Err(Errno::EINVAL)
        );
    }

    #[test]
    fn dirty_log_read_and_clear() {
        let mut k = Kvm::new();
        let vm = k.create_vm();
        k.set_user_memory_region(vm, 0, 0, vec![ext(0, 9)]).unwrap();
        k.enable_dirty_log(vm).unwrap();
        k.mark_dirty(vm, Gfn(5)).unwrap();
        k.mark_dirty(vm, Gfn(200)).unwrap();
        k.mark_dirty(vm, Gfn(5)).unwrap();
        assert_eq!(k.get_dirty_log(vm).unwrap(), vec![Gfn(5), Gfn(200)]);
        assert!(k.get_dirty_log(vm).unwrap().is_empty());
    }

    #[test]
    fn irqchip_and_pit_lifecycle() {
        let mut k = Kvm::new();
        let vm = k.create_vm();
        assert_eq!(k.get_irqchip(vm), Err(Errno::ENODEV));
        k.create_irqchip(vm).unwrap();
        assert_eq!(k.create_irqchip(vm), Err(Errno::EEXIST));
        let mut io = k.get_irqchip(vm).unwrap();
        io.redirtbl[3] = 0x31;
        k.set_irqchip(vm, io.clone()).unwrap();
        assert_eq!(k.get_irqchip(vm).unwrap(), io);
        k.create_pit2(vm).unwrap();
        let mut pit = k.get_pit2(vm).unwrap();
        pit.channels[0].count = 0x1234;
        k.set_pit2(vm, pit).unwrap();
        assert_eq!(k.get_pit2(vm).unwrap().channels[0].count, 0x1234);
    }

    #[test]
    fn msr_store() {
        let mut k = Kvm::new();
        let vm = k.create_vm();
        let v = k.create_vcpu(vm).unwrap();
        let n = k
            .set_msrs(
                vm,
                v,
                &[
                    KvmMsrEntry {
                        index: 0xc000_0080,
                        data: 0xd01,
                    },
                    KvmMsrEntry {
                        index: 0x10,
                        data: 999,
                    },
                ],
            )
            .unwrap();
        assert_eq!(n, 2);
        let got = k.get_msrs(vm, v, &[0x10, 0xc000_0080, 0x1b]).unwrap();
        assert_eq!(got[0].data, 999);
        assert_eq!(got[1].data, 0xd01);
        assert_eq!(got[2].data, 0, "unknown MSR reads as zero");
    }

    #[test]
    fn lapic_size_validated() {
        let mut k = Kvm::new();
        let vm = k.create_vm();
        let v = k.create_vcpu(vm).unwrap();
        assert_eq!(
            k.set_lapic(vm, v, KvmLapicState { regs: vec![0; 100] }),
            Err(Errno::EINVAL)
        );
    }
}
