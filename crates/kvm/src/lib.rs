//! A Linux-KVM-like type-2 hypervisor model with a kvmtool-like VMM.
//!
//! The paper's KVM side runs Linux 5.3.1 with kvmtool as the userspace VMM
//! (§4.1), extended so kvmtool "understands and uses UISR states ...
//! translating each platform device's state to KVM's internal formats,
//! then calling the corresponding KVM IOCTL" (§4.2.1). The crate mirrors
//! that architecture:
//!
//! * [`ioctl`] — KVM's uapi state containers (`kvm_regs`, `kvm_sregs`,
//!   `kvm_fpu`, `kvm_lapic_state`, `kvm_irqchip`, `kvm_pit_state2`, ...)
//!   and errno-style errors. The field groupings (and even GPR order)
//!   deliberately differ from Xen's `hvm_hw_cpu`, because that difference
//!   is what UISR translation bridges.
//! * [`kvm`] — the kernel-module state: VM and vCPU file descriptors,
//!   memory slots with per-slot dirty bitmaps (`KVM_GET_DIRTY_LOG`
//!   semantics), a 24-pin in-kernel IOAPIC, and the ioctl dispatch
//!   surface.
//! * [`kvmtool`] — the userspace VMM: owns guest memory, registers
//!   memslots, models virtio devices, and implements the UISR
//!   translation by issuing ioctls.
//! * [`xlate`] — UISR ⇄ KVM conversions (Table 2's right column),
//!   including the 48→24-pin IOAPIC truncation fix of §4.2.1.
//! * [`hypervisor`] — [`KvmHypervisor`], the `hypertp_core::Hypervisor`
//!   implementation.

pub mod hypervisor;
pub mod ioctl;
pub mod kvm;
pub mod kvmtool;
pub mod xlate;

pub use hypervisor::KvmHypervisor;
