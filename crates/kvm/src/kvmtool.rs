//! The kvmtool-like userspace VMM.
//!
//! kvmtool owns guest memory (mmap → here: machine extents), registers it
//! as KVM memory slots, models virtio devices, and — per the paper's
//! extension — implements the UISR translation by issuing the
//! corresponding KVM ioctls on save and restore. "Upon restoring a VM, the
//! kvmtool process is therefore responsible for translating each platform
//! device's state to KVM's internal formats, then calling the
//! corresponding KVM IOCTL" (§4.2.1).

use hypertp_core::{hypervisor::config_from_uisr, HtpError, VmConfig, VmState};
use hypertp_machine::{Extent, Gfn, Machine, PageOrder};
use hypertp_sim::SimRng;
use hypertp_uisr::{lapic_page, msr, DeviceState, MemoryRegion, UisrVm, VcpuState as UisrVcpu};

use crate::ioctl::{Errno, KvmLapicState, KvmMsrEntry, KvmRegs};
use crate::kvm::Kvm;
use crate::xlate;

/// Converts an ioctl errno into a framework error.
pub fn ioctl_err(e: Errno) -> HtpError {
    HtpError::IncompatibleState {
        section: "ioctl",
        detail: e.to_string(),
    }
}

/// One guest as kvmtool sees it.
#[derive(Debug)]
pub struct GuestVm {
    /// Cross-hypervisor configuration.
    pub config: VmConfig,
    /// Lifecycle state.
    pub state: VmState,
    /// The VM file descriptor.
    pub vm_fd: u32,
    /// vCPU file descriptors, by vCPU index.
    pub vcpu_fds: Vec<u32>,
    /// virtio device models.
    pub devices: Vec<DeviceState>,
    /// Deterministic stream for guest activity.
    pub rng: SimRng,
}

/// Allocates backing extents for `config` and seeds initial contents when
/// `seed` is set (fresh boot) — incoming migrations receive their contents
/// over the wire instead.
fn alloc_backing(
    machine: &mut Machine,
    config: &VmConfig,
    seed: bool,
) -> Result<Vec<Extent>, HtpError> {
    let order = if config.huge_pages {
        PageOrder(9)
    } else {
        PageOrder(0)
    };
    let chunks = config.pages() / order.pages();
    let mut backing = Vec::with_capacity(chunks as usize);
    for i in 0..chunks {
        let e = machine.ram_mut().alloc(order)?;
        if seed {
            let s = config.name.bytes().fold(0x004b_564du64, |a, b| {
                a.wrapping_mul(33).wrapping_add(b as u64)
            });
            machine
                .ram_mut()
                .write(e.base, s ^ (i * order.pages()).wrapping_mul(0x517c))?;
        }
        backing.push(e);
    }
    Ok(backing)
}

/// Builds the virtio device set for a config.
fn devices_for(config: &VmConfig) -> Vec<DeviceState> {
    let mut devices = Vec::new();
    if config.has_network {
        devices.push(DeviceState::Network {
            mac: [0x52, 0x54, 0x00, 0, 0, 1], // QEMU/KVM OUI.
            unplugged: false,
        });
    }
    devices.push(DeviceState::Block {
        backend: config.storage_backend.clone(),
        sectors: config.memory_gb * (1 << 30) / 512,
        pending_requests: 0,
    });
    devices.push(DeviceState::Console { tx_buffered: 0 });
    devices
}

/// Creates a guest: VM fd, memory slot, irqchip, PIT, vCPUs with
/// architectural initial state.
pub fn create_guest(
    kvm: &mut Kvm,
    machine: &mut Machine,
    config: &VmConfig,
    seed: bool,
) -> Result<GuestVm, HtpError> {
    let vm_fd = kvm.create_vm();
    let backing = alloc_backing(machine, config, seed)?;
    kvm.set_user_memory_region(vm_fd, 0, 0, backing)
        .map_err(ioctl_err)?;
    kvm.create_irqchip(vm_fd).map_err(ioctl_err)?;
    kvm.create_pit2(vm_fd).map_err(ioctl_err)?;
    let mut vcpu_fds = Vec::new();
    for i in 0..config.vcpus {
        let fd = kvm.create_vcpu(vm_fd).map_err(ioctl_err)?;
        init_vcpu(kvm, vm_fd, fd, i)?;
        vcpu_fds.push(fd);
    }
    Ok(GuestVm {
        config: config.clone(),
        state: VmState::Running,
        vm_fd,
        vcpu_fds,
        devices: devices_for(config),
        rng: SimRng::new(vm_fd as u64 * 0x9e37 + 7),
    })
}

/// Puts a fresh vCPU in 64-bit flat state via ioctls.
// Field-by-field setup mirrors kvmtool's kvm_cpu__reset_vcpu.
#[allow(clippy::field_reassign_with_default)]
fn init_vcpu(kvm: &mut Kvm, vm_fd: u32, vcpu_fd: u32, apic_id: u32) -> Result<(), HtpError> {
    let mut regs = KvmRegs::default();
    regs.rip = 0x0010_0000;
    regs.rflags = 0x2;
    kvm.set_regs(vm_fd, vcpu_fd, regs).map_err(ioctl_err)?;
    let mut sregs = kvm.get_sregs(vm_fd, vcpu_fd).map_err(ioctl_err)?;
    sregs.cr0 = 0x8000_0031;
    sregs.cr3 = 0x1000;
    sregs.cr4 = 0x6a0;
    sregs.efer = 0xd01;
    sregs.apic_base = 0xfee0_0000 | (1 << 11) | if apic_id == 0 { 1 << 8 } else { 0 };
    for seg in [
        &mut sregs.cs,
        &mut sregs.ds,
        &mut sregs.es,
        &mut sregs.fs,
        &mut sregs.gs,
        &mut sregs.ss,
        &mut sregs.tr,
        &mut sregs.ldt,
    ] {
        seg.present = 1;
        seg.s = 1;
        seg.g = 1;
        seg.limit = 0xffff_ffff;
    }
    sregs.cs.l = 1;
    sregs.cs.type_ = 0xb;
    kvm.set_sregs(vm_fd, vcpu_fd, sregs).map_err(ioctl_err)?;
    kvm.set_msrs(
        vm_fd,
        vcpu_fd,
        &[
            KvmMsrEntry {
                index: msr::IA32_EFER,
                data: 0xd01,
            },
            KvmMsrEntry {
                index: msr::IA32_PAT,
                data: 0x0007_0406_0007_0406,
            },
            KvmMsrEntry {
                index: msr::MTRR_DEF_TYPE,
                data: 0x0c06,
            },
        ],
    )
    .map_err(ioctl_err)?;
    let mut lapic = KvmLapicState::default();
    lapic_page::set_apic_id(&mut lapic.regs, apic_id);
    lapic_page::write32(&mut lapic.regs, lapic_page::OFF_SVR, 0x1ff);
    kvm.set_lapic(vm_fd, vcpu_fd, lapic).map_err(ioctl_err)?;
    kvm.set_xcrs(
        vm_fd,
        vcpu_fd,
        crate::ioctl::KvmXcrs {
            xcrs: vec![(0, 0x7)],
        },
    )
    .map_err(ioctl_err)?;
    kvm.set_xsave(
        vm_fd,
        vcpu_fd,
        crate::ioctl::KvmXsave {
            region: vec![0; hypertp_uisr::state::XSAVE_AREA_SIZE],
        },
    )
    .map_err(ioctl_err)?;
    Ok(())
}

/// KVM → UISR: queries every state container over ioctls and assembles the
/// UISR description.
pub fn save_uisr(kvm: &Kvm, guest: &GuestVm) -> Result<UisrVm, HtpError> {
    hypertp_core::devices::check_quiesced(&guest.devices)?;
    let mut vm = UisrVm::new(guest.config.name.clone());
    let indices = xlate::saved_msr_indices();
    for (i, &fd) in guest.vcpu_fds.iter().enumerate() {
        let regs = kvm.get_regs(guest.vm_fd, fd).map_err(ioctl_err)?;
        let sregs = kvm.get_sregs(guest.vm_fd, fd).map_err(ioctl_err)?;
        let fpu = kvm.get_fpu(guest.vm_fd, fd).map_err(ioctl_err)?;
        let xsave = kvm.get_xsave(guest.vm_fd, fd).map_err(ioctl_err)?;
        let xcrs = kvm.get_xcrs(guest.vm_fd, fd).map_err(ioctl_err)?;
        let lapic = kvm.get_lapic(guest.vm_fd, fd).map_err(ioctl_err)?;
        let kvm_msrs = kvm.get_msrs(guest.vm_fd, fd, &indices).map_err(ioctl_err)?;
        let (msrs, mtrr) = xlate::msrs_from_kvm(&kvm_msrs);
        let uisr_sregs = xlate::sregs_from_kvm(&sregs);
        vm.vcpus.push(UisrVcpu {
            id: i as u32,
            regs: xlate::regs_from_kvm(&regs),
            sregs: uisr_sregs,
            fpu: xlate::fpu_from_kvm(&fpu),
            msrs,
            xsave: xlate::xsave_from_kvm(&xsave, &xcrs),
            lapic: lapic_page::summarize(&lapic.regs, sregs.apic_base),
            lapic_regs: lapic.regs,
            mtrr,
        });
    }
    let irqchip = kvm.get_irqchip(guest.vm_fd).map_err(ioctl_err)?;
    vm.ioapic = xlate::ioapic_from_kvm(&irqchip);
    vm.pit = xlate::pit_from_kvm(&kvm.get_pit2(guest.vm_fd).map_err(ioctl_err)?);
    // §4.2.3: unplug network devices before the transplant.
    vm.devices = guest
        .devices
        .iter()
        .map(|d| match d {
            DeviceState::Network { mac, .. } => DeviceState::Network {
                mac: *mac,
                unplugged: true,
            },
            other => other.clone(),
        })
        .collect();
    for slot in kvm.slots(guest.vm_fd).map_err(ioctl_err)? {
        vm.memory.regions.push(MemoryRegion {
            gfn_start: slot.guest_phys_addr / 4096,
            pages: slot.memory_size / 4096,
        });
    }
    vm.memory.pram_file = Some(guest.config.name.clone());
    Ok(vm)
}

/// UISR → KVM: translates each section and applies it through the
/// corresponding ioctl. Returns compatibility warnings.
pub fn restore_uisr(
    kvm: &mut Kvm,
    guest: &GuestVm,
    uisr: &UisrVm,
) -> Result<Vec<String>, HtpError> {
    let mut warnings = Vec::new();
    for (v, &fd) in uisr.vcpus.iter().zip(&guest.vcpu_fds) {
        kvm.set_regs(guest.vm_fd, fd, xlate::regs_to_kvm(&v.regs))
            .map_err(ioctl_err)?;
        kvm.set_sregs(guest.vm_fd, fd, xlate::sregs_to_kvm(&v.sregs))
            .map_err(ioctl_err)?;
        kvm.set_fpu(guest.vm_fd, fd, xlate::fpu_to_kvm(&v.fpu))
            .map_err(ioctl_err)?;
        let (xsave, xcrs) = xlate::xsave_to_kvm(&v.xsave);
        kvm.set_xsave(guest.vm_fd, fd, xsave).map_err(ioctl_err)?;
        kvm.set_xcrs(guest.vm_fd, fd, xcrs).map_err(ioctl_err)?;
        kvm.set_msrs(guest.vm_fd, fd, &xlate::msrs_to_kvm(&v.msrs, &v.mtrr))
            .map_err(ioctl_err)?;
        let mut lapic = KvmLapicState {
            regs: v.lapic_regs.clone(),
        };
        if lapic.regs.len() != 1024 {
            lapic.regs.resize(1024, 0);
        }
        lapic_page::apply(&mut lapic.regs, &v.lapic);
        kvm.set_lapic(guest.vm_fd, fd, lapic).map_err(ioctl_err)?;
    }
    if uisr.vcpus.len() != guest.vcpu_fds.len() {
        return Err(HtpError::IncompatibleState {
            section: "CPU",
            detail: format!(
                "UISR has {} vCPUs, shell has {}",
                uisr.vcpus.len(),
                guest.vcpu_fds.len()
            ),
        });
    }
    kvm.set_irqchip(
        guest.vm_fd,
        xlate::ioapic_to_kvm(&uisr.ioapic, &mut warnings),
    )
    .map_err(ioctl_err)?;
    kvm.set_pit2(guest.vm_fd, xlate::pit_to_kvm(&uisr.pit))
        .map_err(ioctl_err)?;
    Ok(warnings)
}

/// InPlaceTP adoption: registers the in-place PRAM frames as memory slots
/// (one per contiguous GFN run), creates the vCPU shells, and applies the
/// UISR state.
pub fn adopt_guest(
    kvm: &mut Kvm,
    machine: &mut Machine,
    uisr: &UisrVm,
    mappings: &[(Gfn, Extent)],
) -> Result<(GuestVm, Vec<String>), HtpError> {
    let huge = mappings
        .first()
        .map(|(_, e)| e.order.0 >= 9)
        .unwrap_or(true);
    let config = config_from_uisr(uisr, huge);
    let vm_fd = kvm.create_vm();
    // Group mappings into contiguous GFN runs -> one slot each. The guest
    // memory is mapped into the VMM with mmap and handed to KVM (§4.2.2).
    let mut slot = 0u32;
    let mut run_start: Option<u64> = None;
    let mut next_gfn = 0u64;
    let mut backing: Vec<Extent> = Vec::new();
    let flush = |kvm: &mut Kvm,
                 start: Option<u64>,
                 backing: &mut Vec<Extent>,
                 slot: &mut u32|
     -> Result<(), HtpError> {
        if let Some(s) = start {
            kvm.set_user_memory_region(vm_fd, *slot, s * 4096, std::mem::take(backing))
                .map_err(ioctl_err)?;
            *slot += 1;
        }
        Ok(())
    };
    for (gfn, e) in mappings {
        machine.ram_mut().adopt_reserved(e.base, e.pages())?;
        if run_start.is_none() || gfn.0 != next_gfn {
            flush(kvm, run_start.take(), &mut backing, &mut slot)?;
            run_start = Some(gfn.0);
        }
        backing.push(*e);
        next_gfn = gfn.0 + e.pages();
    }
    flush(kvm, run_start, &mut backing, &mut slot)?;
    kvm.create_irqchip(vm_fd).map_err(ioctl_err)?;
    kvm.create_pit2(vm_fd).map_err(ioctl_err)?;
    let mut vcpu_fds = Vec::new();
    for _ in 0..uisr.vcpus.len() {
        vcpu_fds.push(kvm.create_vcpu(vm_fd).map_err(ioctl_err)?);
    }
    let guest = GuestVm {
        config,
        state: VmState::Paused,
        vm_fd,
        vcpu_fds,
        devices: uisr
            .devices
            .iter()
            .map(|d| match d {
                DeviceState::Network { mac, .. } => DeviceState::Network {
                    mac: *mac,
                    unplugged: false, // Rescanned during restoration.
                },
                other => other.clone(),
            })
            .collect(),
        rng: SimRng::new(vm_fd as u64 * 0x51_7c + 3),
    };
    let warnings = restore_uisr(kvm, &guest, uisr)?;
    Ok((guest, warnings))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypertp_machine::MachineSpec;

    fn machine() -> Machine {
        let mut spec = MachineSpec::m1();
        spec.ram_gb = 4;
        Machine::new(spec)
    }

    #[test]
    fn create_guest_wires_everything() {
        let mut m = machine();
        let mut kvm = Kvm::new();
        let g = create_guest(
            &mut kvm,
            &mut m,
            &VmConfig::small("vm0").with_vcpus(2),
            true,
        )
        .unwrap();
        assert_eq!(g.vcpu_fds.len(), 2);
        assert!(kvm.get_irqchip(g.vm_fd).is_ok());
        assert!(kvm.get_pit2(g.vm_fd).is_ok());
        assert_eq!(kvm.slots(g.vm_fd).unwrap().len(), 1);
        assert_eq!(kvm.slots(g.vm_fd).unwrap()[0].memory_size, 1 << 30);
        // vCPU 0 got the BSP bit.
        let sregs = kvm.get_sregs(g.vm_fd, g.vcpu_fds[0]).unwrap();
        assert_ne!(sregs.apic_base & (1 << 8), 0);
        let sregs1 = kvm.get_sregs(g.vm_fd, g.vcpu_fds[1]).unwrap();
        assert_eq!(sregs1.apic_base & (1 << 8), 0);
    }

    #[test]
    fn save_restore_uisr_roundtrip() {
        let mut m = machine();
        let mut kvm = Kvm::new();
        let g = create_guest(&mut kvm, &mut m, &VmConfig::small("vm0"), true).unwrap();
        // Perturb state.
        let mut regs = kvm.get_regs(g.vm_fd, g.vcpu_fds[0]).unwrap();
        regs.rip = 0xffff_8000_1234_0000;
        regs.gprs[4] = 0x5151; // rsi in KVM order.
        kvm.set_regs(g.vm_fd, g.vcpu_fds[0], regs).unwrap();
        let u = save_uisr(&kvm, &g).unwrap();
        assert_eq!(u.vcpus[0].regs.rsi, 0x5151);
        assert_eq!(u.ioapic.pins(), 24);
        assert_eq!(u.memory.total_pages(), 262_144);

        // Restore into a second guest.
        let g2 = create_guest(&mut kvm, &mut m, &VmConfig::small("vm1"), false).unwrap();
        let warnings = restore_uisr(&mut kvm, &g2, &u).unwrap();
        assert!(warnings.is_empty());
        let r2 = kvm.get_regs(g2.vm_fd, g2.vcpu_fds[0]).unwrap();
        assert_eq!(r2.rip, 0xffff_8000_1234_0000);
        assert_eq!(r2.gprs[4], 0x5151);
    }

    #[test]
    fn vcpu_count_mismatch_detected() {
        let mut m = machine();
        let mut kvm = Kvm::new();
        let g = create_guest(&mut kvm, &mut m, &VmConfig::small("vm0"), true).unwrap();
        let mut u = save_uisr(&kvm, &g).unwrap();
        u.vcpus.push(u.vcpus[0].clone());
        assert!(matches!(
            restore_uisr(&mut kvm, &g, &u),
            Err(HtpError::IncompatibleState { section: "CPU", .. })
        ));
    }
}
