//! KVM's uapi state containers and errno-style errors.
//!
//! These mirror `<linux/kvm.h>`: state is exchanged as several small,
//! single-purpose structs over per-vCPU and per-VM ioctls, in contrast to
//! Xen's one-big-record design. Note `kvm_regs`' GPR order (rax rbx rcx
//! rdx **rsi rdi rsp rbp**) differs from Xen's (rax rbx rcx rdx **rbp rsi
//! rdi rsp**) — one of the small format hazards the UISR layer absorbs.

/// Errno-style ioctl errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Errno {
    /// Bad file descriptor.
    EBADF,
    /// Invalid argument.
    EINVAL,
    /// Object already exists.
    EEXIST,
    /// Resource unavailable or address fault.
    EFAULT,
    /// No such device (irqchip/PIT not created).
    ENODEV,
}

impl std::fmt::Display for Errno {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Errno::EBADF => "EBADF",
            Errno::EINVAL => "EINVAL",
            Errno::EEXIST => "EEXIST",
            Errno::EFAULT => "EFAULT",
            Errno::ENODEV => "ENODEV",
        };
        f.write_str(s)
    }
}

impl std::error::Error for Errno {}

/// `kvm_regs`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[allow(missing_docs)]
pub struct KvmRegs {
    /// GPRs in KVM order: rax rbx rcx rdx rsi rdi rsp rbp r8..r15.
    pub gprs: [u64; 16],
    pub rip: u64,
    pub rflags: u64,
}

/// `kvm_segment`: exploded attribute fields (no packed arbytes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[allow(missing_docs)]
pub struct KvmSegment {
    pub base: u64,
    pub limit: u32,
    pub selector: u16,
    pub type_: u8,
    pub present: u8,
    pub dpl: u8,
    pub db: u8,
    pub s: u8,
    pub l: u8,
    pub g: u8,
    pub avl: u8,
    pub unusable: u8,
}

/// `kvm_dtable`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[allow(missing_docs)]
pub struct KvmDtable {
    pub base: u64,
    pub limit: u16,
}

/// `kvm_sregs`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[allow(missing_docs)]
pub struct KvmSregs {
    pub cs: KvmSegment,
    pub ds: KvmSegment,
    pub es: KvmSegment,
    pub fs: KvmSegment,
    pub gs: KvmSegment,
    pub ss: KvmSegment,
    pub tr: KvmSegment,
    pub ldt: KvmSegment,
    pub gdt: KvmDtable,
    pub idt: KvmDtable,
    pub cr0: u64,
    pub cr2: u64,
    pub cr3: u64,
    pub cr4: u64,
    pub cr8: u64,
    pub efer: u64,
    pub apic_base: u64,
}

/// One `kvm_msr_entry`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KvmMsrEntry {
    /// MSR index.
    pub index: u32,
    /// MSR data.
    pub data: u64,
}

/// `kvm_fpu`.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)]
pub struct KvmFpu {
    pub fpr: [[u8; 16]; 8],
    pub fcw: u16,
    pub fsw: u16,
    pub ftwx: u8,
    pub last_opcode: u16,
    pub last_ip: u64,
    pub last_dp: u64,
    pub xmm: [[u8; 16]; 16],
    pub mxcsr: u32,
}

impl Default for KvmFpu {
    fn default() -> Self {
        KvmFpu {
            fpr: [[0; 16]; 8],
            fcw: 0x037f,
            fsw: 0,
            ftwx: 0,
            last_opcode: 0,
            last_ip: 0,
            last_dp: 0,
            xmm: [[0; 16]; 16],
            mxcsr: 0x1f80,
        }
    }
}

/// `kvm_xsave` (raw region).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct KvmXsave {
    /// Raw XSAVE region bytes.
    pub region: Vec<u8>,
}

/// `kvm_xcrs`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct KvmXcrs {
    /// (xcr index, value) pairs; index 0 is XCR0.
    pub xcrs: Vec<(u32, u64)>,
}

/// `kvm_lapic_state` (the 1 KiB register page image).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KvmLapicState {
    /// Register page image.
    pub regs: Vec<u8>,
}

impl Default for KvmLapicState {
    fn default() -> Self {
        KvmLapicState {
            regs: vec![0; 1024],
        }
    }
}

/// Number of pins on KVM's in-kernel IOAPIC.
pub const KVM_IOAPIC_NUM_PINS: usize = 24;

/// The in-kernel IOAPIC half of `kvm_irqchip`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KvmIoapicState {
    /// MMIO base.
    pub base_address: u64,
    /// IOAPIC ID.
    pub id: u8,
    /// Architecturally packed redirection entries, 24 pins.
    pub redirtbl: [u64; KVM_IOAPIC_NUM_PINS],
}

impl Default for KvmIoapicState {
    fn default() -> Self {
        KvmIoapicState {
            base_address: 0xfec0_0000,
            id: 0,
            redirtbl: [1 << 16; KVM_IOAPIC_NUM_PINS], // Masked at reset.
        }
    }
}

/// One channel of `kvm_pit_state2`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[allow(missing_docs)]
pub struct KvmPitChannelState {
    pub count: u32,
    pub latched_count: u16,
    pub count_latched: u8,
    pub status_latched: u8,
    pub status: u8,
    pub read_state: u8,
    pub write_state: u8,
    pub write_latch: u8,
    pub rw_mode: u8,
    pub mode: u8,
    pub bcd: u8,
    pub gate: u8,
}

/// `kvm_pit_state2`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KvmPitState2 {
    /// The three PIT channels.
    pub channels: [KvmPitChannelState; 3],
    /// Flags (speaker state in bit 0 for this model).
    pub flags: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_architectural() {
        assert_eq!(KvmFpu::default().fcw, 0x037f);
        assert_eq!(KvmFpu::default().mxcsr, 0x1f80);
        assert_eq!(KvmLapicState::default().regs.len(), 1024);
        let io = KvmIoapicState::default();
        assert_eq!(io.redirtbl.len(), 24);
        assert!(io.redirtbl.iter().all(|&r| r & (1 << 16) != 0));
    }

    #[test]
    fn errno_display() {
        assert_eq!(Errno::EBADF.to_string(), "EBADF");
        assert_eq!(Errno::ENODEV.to_string(), "ENODEV");
    }
}
