//! KVM's `to_uisr_*` / `from_uisr_*` translation functions.
//!
//! Per §4.2.1, kvmtool performs these translations and applies the results
//! through KVM ioctls. The notable conversions on this side:
//!
//! * GPR reorder (`kvm_regs` packs rsi/rdi/rsp/rbp differently from Xen);
//! * UISR's MTRR section dissolving into MSR-list entries (Table 2 maps
//!   MTRR → MSRS on the KVM column);
//! * XSAVE splitting into `KVM_SET_XSAVE` + `KVM_SET_XCRS`;
//! * the 48→24-pin IOAPIC truncation — the paper "simply disconnects the
//!   higher 24 IOAPIC pins during transplantation", which we reproduce
//!   with an explicit warning;
//! * `kvm_fpu` carrying no `mxcsr_mask` — restored to the architectural
//!   default, a documented lossy fix.

use hypertp_uisr::state::KVM_IOAPIC_PINS;
use hypertp_uisr::{
    msr, CpuRegisters, FpuState, IoApicState, MsrEntry, MtrrState, PitState, SegmentRegister,
    SpecialRegisters, XsaveState,
};

use crate::ioctl::{
    KvmDtable, KvmFpu, KvmIoapicState, KvmMsrEntry, KvmPitChannelState, KvmPitState2, KvmRegs,
    KvmSegment, KvmSregs, KvmXcrs, KvmXsave, KVM_IOAPIC_NUM_PINS,
};

// Packing helpers shared with the Xen model would hide the point: each
// hypervisor implements its own view of the architectural formats, and
// UISR is the only shared vocabulary. The RTE packing here is therefore
// local to this crate.

fn rte_pack(e: &hypertp_uisr::RedirectionEntry) -> u64 {
    let mut v = e.vector as u64;
    v |= ((e.delivery_mode as u64) & 0x7) << 8;
    v |= (e.dest_mode as u64) << 11;
    v |= (e.remote_irr as u64) << 14;
    v |= (e.trigger_level as u64) << 15;
    v |= (e.masked as u64) << 16;
    v |= (e.dest as u64) << 56;
    v
}

fn rte_unpack(v: u64) -> hypertp_uisr::RedirectionEntry {
    hypertp_uisr::RedirectionEntry {
        vector: (v & 0xff) as u8,
        delivery_mode: ((v >> 8) & 0x7) as u8,
        dest_mode: v & (1 << 11) != 0,
        remote_irr: v & (1 << 14) != 0,
        trigger_level: v & (1 << 15) != 0,
        masked: v & (1 << 16) != 0,
        dest: (v >> 56) as u8,
    }
}

/// UISR GPRs → `kvm_regs`.
pub fn regs_to_kvm(r: &CpuRegisters) -> KvmRegs {
    KvmRegs {
        gprs: [
            r.rax, r.rbx, r.rcx, r.rdx, r.rsi, r.rdi, r.rsp, r.rbp, r.r8, r.r9, r.r10, r.r11,
            r.r12, r.r13, r.r14, r.r15,
        ],
        rip: r.rip,
        rflags: r.rflags,
    }
}

/// `kvm_regs` → UISR GPRs.
pub fn regs_from_kvm(k: &KvmRegs) -> CpuRegisters {
    CpuRegisters {
        rax: k.gprs[0],
        rbx: k.gprs[1],
        rcx: k.gprs[2],
        rdx: k.gprs[3],
        rsi: k.gprs[4],
        rdi: k.gprs[5],
        rsp: k.gprs[6],
        rbp: k.gprs[7],
        r8: k.gprs[8],
        r9: k.gprs[9],
        r10: k.gprs[10],
        r11: k.gprs[11],
        r12: k.gprs[12],
        r13: k.gprs[13],
        r14: k.gprs[14],
        r15: k.gprs[15],
        rip: k.rip,
        rflags: k.rflags,
    }
}

fn seg_to_kvm(s: &SegmentRegister) -> KvmSegment {
    KvmSegment {
        base: s.base,
        limit: s.limit,
        selector: s.selector,
        type_: s.type_,
        present: s.present as u8,
        dpl: s.dpl,
        db: s.db as u8,
        s: s.s as u8,
        l: s.l as u8,
        g: s.g as u8,
        avl: s.avl as u8,
        unusable: (!s.present) as u8,
    }
}

fn seg_from_kvm(k: &KvmSegment) -> SegmentRegister {
    SegmentRegister {
        base: k.base,
        limit: k.limit,
        selector: k.selector,
        type_: k.type_,
        present: k.present != 0,
        dpl: k.dpl,
        db: k.db != 0,
        s: k.s != 0,
        l: k.l != 0,
        g: k.g != 0,
        avl: k.avl != 0,
    }
}

/// UISR special registers → `kvm_sregs`.
pub fn sregs_to_kvm(s: &SpecialRegisters) -> KvmSregs {
    KvmSregs {
        cs: seg_to_kvm(&s.cs),
        ds: seg_to_kvm(&s.ds),
        es: seg_to_kvm(&s.es),
        fs: seg_to_kvm(&s.fs),
        gs: seg_to_kvm(&s.gs),
        ss: seg_to_kvm(&s.ss),
        tr: seg_to_kvm(&s.tr),
        ldt: seg_to_kvm(&s.ldt),
        gdt: KvmDtable {
            base: s.gdt.base,
            limit: s.gdt.limit,
        },
        idt: KvmDtable {
            base: s.idt.base,
            limit: s.idt.limit,
        },
        cr0: s.cr0,
        cr2: s.cr2,
        cr3: s.cr3,
        cr4: s.cr4,
        cr8: s.cr8,
        efer: s.efer,
        apic_base: s.apic_base,
    }
}

/// `kvm_sregs` → UISR special registers.
pub fn sregs_from_kvm(k: &KvmSregs) -> SpecialRegisters {
    SpecialRegisters {
        cs: seg_from_kvm(&k.cs),
        ds: seg_from_kvm(&k.ds),
        es: seg_from_kvm(&k.es),
        fs: seg_from_kvm(&k.fs),
        gs: seg_from_kvm(&k.gs),
        ss: seg_from_kvm(&k.ss),
        tr: seg_from_kvm(&k.tr),
        ldt: seg_from_kvm(&k.ldt),
        gdt: hypertp_uisr::DescriptorTable {
            base: k.gdt.base,
            limit: k.gdt.limit,
        },
        idt: hypertp_uisr::DescriptorTable {
            base: k.idt.base,
            limit: k.idt.limit,
        },
        cr0: k.cr0,
        cr2: k.cr2,
        cr3: k.cr3,
        cr4: k.cr4,
        cr8: k.cr8,
        efer: k.efer,
        apic_base: k.apic_base,
    }
}

/// UISR FPU → `kvm_fpu`.
pub fn fpu_to_kvm(f: &FpuState) -> KvmFpu {
    KvmFpu {
        fpr: f.st,
        fcw: f.fcw,
        fsw: f.fsw,
        ftwx: f.ftw,
        last_opcode: f.last_opcode,
        last_ip: f.last_ip,
        last_dp: f.last_dp,
        xmm: f.xmm,
        mxcsr: f.mxcsr,
    }
}

/// `kvm_fpu` → UISR FPU. `kvm_fpu` has no `mxcsr_mask`; the architectural
/// default is restored (documented lossy fix).
pub fn fpu_from_kvm(k: &KvmFpu) -> FpuState {
    FpuState {
        fcw: k.fcw,
        fsw: k.fsw,
        ftw: k.ftwx,
        last_opcode: k.last_opcode,
        last_ip: k.last_ip,
        last_dp: k.last_dp,
        mxcsr: k.mxcsr,
        mxcsr_mask: 0xffff,
        st: k.fpr,
        xmm: k.xmm,
    }
}

/// UISR XSAVE → (`kvm_xsave`, `kvm_xcrs`) — Table 2's "XCRS, XSAVE".
pub fn xsave_to_kvm(x: &XsaveState) -> (KvmXsave, KvmXcrs) {
    (
        KvmXsave {
            region: x.area.clone(),
        },
        KvmXcrs {
            xcrs: vec![(0, x.xcr0)],
        },
    )
}

/// (`kvm_xsave`, `kvm_xcrs`) → UISR XSAVE.
pub fn xsave_from_kvm(x: &KvmXsave, xcrs: &KvmXcrs) -> XsaveState {
    XsaveState {
        xcr0: xcrs
            .xcrs
            .iter()
            .find(|(i, _)| *i == 0)
            .map(|(_, v)| *v)
            .unwrap_or(1),
        area: x.region.clone(),
    }
}

/// The MSR indices kvmtool saves on the KVM→UISR path.
pub fn saved_msr_indices() -> Vec<u32> {
    let mut v = vec![
        msr::IA32_TSC,
        msr::IA32_APIC_BASE,
        msr::IA32_SYSENTER_CS,
        msr::IA32_SYSENTER_ESP,
        msr::IA32_SYSENTER_EIP,
        msr::IA32_PAT,
        msr::IA32_EFER,
        msr::STAR,
        msr::LSTAR,
        msr::CSTAR,
        msr::SFMASK,
        msr::KERNEL_GS_BASE,
        msr::TSC_AUX,
    ];
    v.push(msr::MTRR_CAP);
    v.push(msr::MTRR_DEF_TYPE);
    for i in 0..8u32 {
        v.push(msr::MTRR_PHYS_BASE0 + 2 * i);
        v.push(msr::MTRR_PHYS_BASE0 + 2 * i + 1);
    }
    v.extend_from_slice(&msr::MTRR_FIXED);
    v
}

/// UISR (MSR list + MTRR section) → the `KVM_SET_MSRS` payload. On KVM the
/// MTRRs are just MSRs (Table 2).
pub fn msrs_to_kvm(msrs: &[MsrEntry], mtrr: &MtrrState) -> Vec<KvmMsrEntry> {
    let mut out: Vec<KvmMsrEntry> = msrs
        .iter()
        .map(|m| KvmMsrEntry {
            index: m.index,
            data: m.data,
        })
        .collect();
    out.push(KvmMsrEntry {
        index: msr::MTRR_DEF_TYPE,
        data: mtrr.def_type,
    });
    out.push(KvmMsrEntry {
        index: msr::MTRR_CAP,
        data: 0x508,
    });
    for (i, idx) in msr::MTRR_FIXED.iter().enumerate() {
        out.push(KvmMsrEntry {
            index: *idx,
            data: mtrr.fixed[i],
        });
    }
    for (i, (base, mask)) in mtrr.variable.iter().take(8).enumerate() {
        out.push(KvmMsrEntry {
            index: msr::MTRR_PHYS_BASE0 + 2 * i as u32,
            data: *base,
        });
        out.push(KvmMsrEntry {
            index: msr::MTRR_PHYS_BASE0 + 2 * i as u32 + 1,
            data: *mask,
        });
    }
    out
}

/// `KVM_GET_MSRS` result → UISR (MSR list, MTRR section): the inverse
/// split.
pub fn msrs_from_kvm(entries: &[KvmMsrEntry]) -> (Vec<MsrEntry>, MtrrState) {
    let mut msrs = Vec::new();
    let mut mtrr = MtrrState {
        def_type: 0,
        fixed: [0; 11],
        variable: vec![(0, 0); 8],
    };
    for e in entries {
        if e.index == msr::MTRR_DEF_TYPE {
            mtrr.def_type = e.data;
        } else if e.index == msr::MTRR_CAP {
            // Capability MSR is host-defined; not carried in UISR.
        } else if let Some(pos) = msr::MTRR_FIXED.iter().position(|&i| i == e.index) {
            mtrr.fixed[pos] = e.data;
        } else if (msr::MTRR_PHYS_BASE0..msr::MTRR_PHYS_BASE0 + 16).contains(&e.index) {
            let off = (e.index - msr::MTRR_PHYS_BASE0) as usize;
            if off.is_multiple_of(2) {
                mtrr.variable[off / 2].0 = e.data;
            } else {
                mtrr.variable[off / 2].1 = e.data;
            }
        } else {
            msrs.push(MsrEntry {
                index: e.index,
                data: e.data,
            });
        }
    }
    (msrs, mtrr)
}

/// UISR IOAPIC → KVM's 24-pin in-kernel IOAPIC, truncating if needed (the
/// §4.2.1 compatibility fix).
pub fn ioapic_to_kvm(io: &IoApicState, warnings: &mut Vec<String>) -> KvmIoapicState {
    let mut redirtbl = [1u64 << 16; KVM_IOAPIC_NUM_PINS];
    if io.pins() > KVM_IOAPIC_NUM_PINS {
        let dropped_active = io.redirection[KVM_IOAPIC_NUM_PINS..]
            .iter()
            .filter(|e| !e.masked)
            .count();
        warnings.push(format!(
            "IOAPIC pins {}..{} disconnected ({} were unmasked)",
            KVM_IOAPIC_NUM_PINS,
            io.pins(),
            dropped_active
        ));
    }
    for (i, e) in io.redirection.iter().take(KVM_IOAPIC_NUM_PINS).enumerate() {
        redirtbl[i] = rte_pack(e);
    }
    KvmIoapicState {
        base_address: io.base,
        id: io.id,
        redirtbl,
    }
}

/// KVM's IOAPIC → the UISR section (24 pins; Xen's `from_uisr` expands).
pub fn ioapic_from_kvm(k: &KvmIoapicState) -> IoApicState {
    IoApicState {
        id: k.id,
        base: k.base_address,
        redirection: k.redirtbl.iter().map(|&r| rte_unpack(r)).collect(),
    }
}

/// UISR PIT → `kvm_pit_state2`.
pub fn pit_to_kvm(p: &PitState) -> KvmPitState2 {
    let mut channels = [KvmPitChannelState::default(); 3];
    for (i, c) in p.channels.iter().enumerate() {
        channels[i] = KvmPitChannelState {
            count: c.count,
            latched_count: c.latched_count,
            status: c.status,
            read_state: c.read_state,
            write_state: c.write_state,
            mode: c.mode,
            bcd: c.bcd as u8,
            gate: c.gate as u8,
            ..KvmPitChannelState::default()
        };
    }
    KvmPitState2 {
        channels,
        flags: p.speaker as u32,
    }
}

/// `kvm_pit_state2` → UISR PIT.
pub fn pit_from_kvm(k: &KvmPitState2) -> PitState {
    let mut p = PitState::default();
    for (i, c) in k.channels.iter().enumerate() {
        p.channels[i] = hypertp_uisr::PitChannel {
            count: c.count,
            latched_count: c.latched_count,
            status: c.status,
            read_state: c.read_state,
            write_state: c.write_state,
            mode: c.mode,
            bcd: c.bcd != 0,
            gate: c.gate != 0,
        };
    }
    p.speaker = k.flags as u8;
    p
}

/// Pre-flight compatibility validator for KVM as a transplant target:
/// reports every translation that would be lossy *before* the source
/// commits to the micro-reboot (used by the engine's strict mode).
pub fn preflight_validate(uisr: &hypertp_uisr::UisrVm) -> Vec<String> {
    let mut issues = Vec::new();
    let active_high = uisr
        .redirection_beyond(KVM_IOAPIC_NUM_PINS)
        .filter(|e| !e.masked)
        .count();
    if active_high > 0 {
        issues.push(format!(
            "{active_high} unmasked IOAPIC pin(s) above pin {KVM_IOAPIC_NUM_PINS}              would be disconnected"
        ));
    }
    for v in &uisr.vcpus {
        if v.lapic_regs.len() > 1024 {
            issues.push(format!(
                "vCPU {} LAPIC page is {} bytes; KVM_SET_LAPIC takes 1024",
                v.id,
                v.lapic_regs.len()
            ));
        }
    }
    issues
}

/// Asserts pin-count invariant for documentation purposes.
pub const _PIN_ASSERT: () = assert!(KVM_IOAPIC_NUM_PINS == KVM_IOAPIC_PINS);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regs_roundtrip_with_reorder() {
        let u = CpuRegisters {
            rax: 1,
            rbx: 2,
            rcx: 3,
            rdx: 4,
            rsi: 5,
            rdi: 6,
            rsp: 7,
            rbp: 8,
            r8: 9,
            r15: 16,
            rip: 0x1000,
            rflags: 0x202,
            ..CpuRegisters::default()
        };
        let k = regs_to_kvm(&u);
        // KVM order: rsi at index 4, rbp at index 7.
        assert_eq!(k.gprs[4], 5);
        assert_eq!(k.gprs[7], 8);
        assert_eq!(regs_from_kvm(&k), u);
    }

    #[test]
    #[allow(clippy::field_reassign_with_default)]
    fn sregs_roundtrip() {
        let mut s = SpecialRegisters::default();
        s.cs.selector = 0x10;
        s.cs.l = true;
        s.cs.present = true;
        s.cr3 = 0xdead000;
        s.efer = 0xd01;
        s.gdt.base = 0xffff_8880_0000_0000;
        s.gdt.limit = 127;
        let back = sregs_from_kvm(&sregs_to_kvm(&s));
        assert_eq!(back, s);
    }

    #[test]
    fn unusable_tracks_present() {
        let mut s = SegmentRegister {
            present: false,
            ..SegmentRegister::default()
        };
        assert_eq!(seg_to_kvm(&s).unusable, 1);
        s.present = true;
        assert_eq!(seg_to_kvm(&s).unusable, 0);
    }

    #[test]
    fn fpu_roundtrip_modulo_mxcsr_mask() {
        let mut f = FpuState::default();
        f.st[2] = [3; 16];
        f.xmm[9] = [9; 16];
        f.mxcsr = 0x1fa0;
        f.mxcsr_mask = 0xffff; // architectural default survives
        let back = fpu_from_kvm(&fpu_to_kvm(&f));
        assert_eq!(back, f);
    }

    #[test]
    fn xsave_split_and_merge() {
        let x = XsaveState {
            xcr0: 0x7,
            area: vec![5; 256],
        };
        let (xs, xcrs) = xsave_to_kvm(&x);
        assert_eq!(xcrs.xcrs, vec![(0, 0x7)]);
        assert_eq!(xsave_from_kvm(&xs, &xcrs), x);
    }

    #[test]
    fn mtrr_dissolves_into_msrs() {
        let mut mtrr = MtrrState::default();
        mtrr.variable[0] = (0xc000_0006, 0xffff_c000_0800);
        let kvm_msrs = msrs_to_kvm(&[], &mtrr);
        assert!(kvm_msrs.iter().any(|m| m.index == msr::MTRR_DEF_TYPE));
        assert!(kvm_msrs
            .iter()
            .any(|m| m.index == 0x200 && m.data == 0xc000_0006));
        let (generic, back) = msrs_from_kvm(&kvm_msrs);
        assert!(generic.is_empty());
        assert_eq!(back.def_type, mtrr.def_type);
        assert_eq!(back.fixed, mtrr.fixed);
        assert_eq!(back.variable, mtrr.variable);
    }

    #[test]
    fn generic_msrs_pass_through() {
        let msrs = vec![
            MsrEntry {
                index: msr::LSTAR,
                data: 0x1234,
            },
            MsrEntry {
                index: msr::IA32_TSC,
                data: 999,
            },
        ];
        let kvm_msrs = msrs_to_kvm(&msrs, &MtrrState::default());
        let (generic, _) = msrs_from_kvm(&kvm_msrs);
        assert_eq!(generic, msrs);
    }

    #[test]
    fn ioapic_truncation_warns_and_counts_active() {
        let mut io = IoApicState::default(); // 48 pins.
        io.redirection[30].masked = false;
        io.redirection[30].vector = 0x44;
        io.redirection[3].vector = 0x21;
        let mut warnings = Vec::new();
        let k = ioapic_to_kvm(&io, &mut warnings);
        assert_eq!(warnings.len(), 1);
        assert!(warnings[0].contains("24..48"));
        assert!(warnings[0].contains("1 were unmasked"));
        assert_eq!(k.redirtbl.len(), 24);
        assert_eq!(rte_unpack(k.redirtbl[3]).vector, 0x21);
        // Back to UISR: 24 pins, data preserved.
        let back = ioapic_from_kvm(&k);
        assert_eq!(back.pins(), 24);
        assert_eq!(back.redirection[3].vector, 0x21);
    }

    #[test]
    fn ioapic_24_pins_no_warning() {
        let mut io = IoApicState::default();
        io.resize_pins(24);
        let mut warnings = Vec::new();
        ioapic_to_kvm(&io, &mut warnings);
        assert!(warnings.is_empty());
    }

    #[test]
    fn pit_roundtrip() {
        let mut p = PitState::default();
        p.channels[0].count = 65535;
        p.channels[1].mode = 2;
        p.speaker = 1;
        assert_eq!(pit_from_kvm(&pit_to_kvm(&p)), p);
    }
}
