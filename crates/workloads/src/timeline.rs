//! Metric timelines under transplant disruptions (Figs. 11 and 12).

use hypertp_core::HypervisorKind;
use hypertp_sim::{SimDuration, SimRng, SimTime, TimeSeries};

use crate::profiles::{MetricKind, WorkloadProfile};

/// How (and when) the workload's VM is disrupted.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Disruption {
    /// No transplant: the baseline curves of Figs. 11–12.
    None,
    /// InPlaceTP: the VM is fully down between `pause` and `resume`
    /// (network-visible downtime — for a served workload the client
    /// measures the NIC gap too).
    InPlace {
        /// Pause instant.
        pause: SimTime,
        /// Service restored instant.
        resume: SimTime,
    },
    /// MigrationTP (or homogeneous live migration): degraded between
    /// `start` and `end` with a sub-second blackout at `end`.
    Migration {
        /// Pre-copy start.
        start: SimTime,
        /// Migration end (stop-and-copy complete).
        end: SimTime,
        /// Downtime at the end of pre-copy.
        downtime: SimDuration,
    },
}

fn value_at(
    profile: &WorkloadProfile,
    t: SimTime,
    hv_before: HypervisorKind,
    hv_after: HypervisorKind,
    disruption: Disruption,
    rng: &mut SimRng,
) -> f64 {
    let jitter = 1.0 + rng.gen_normal() * profile.jitter;
    match disruption {
        Disruption::None => profile.baseline(hv_before) * jitter.max(0.0),
        Disruption::InPlace { pause, resume } => {
            if t >= pause && t < resume {
                match profile.metric {
                    MetricKind::Throughput => 0.0,
                    // Latency samples during the blackout: requests stall
                    // for the remaining downtime.
                    MetricKind::Latency => resume.saturating_duration_since(t).as_millis_f64(),
                }
            } else if t < pause {
                profile.baseline(hv_before) * jitter.max(0.0)
            } else {
                profile.baseline(hv_after) * jitter.max(0.0)
            }
        }
        Disruption::Migration {
            start,
            end,
            downtime,
        } => {
            if t < start {
                profile.baseline(hv_before) * jitter.max(0.0)
            } else if t < end {
                // Inside the pre-copy window; a sample landing in the
                // terminal blackout sees zero service.
                let in_blackout = t + downtime.min(end - start) >= end;
                if in_blackout && downtime >= SimDuration::from_millis(900) {
                    match profile.metric {
                        MetricKind::Throughput => 0.0,
                        MetricKind::Latency => downtime.as_millis_f64(),
                    }
                } else {
                    let base = profile.baseline(hv_before);
                    let v = match profile.metric {
                        MetricKind::Throughput => base * (1.0 - profile.migration_degradation),
                        MetricKind::Latency => base * (1.0 + profile.migration_degradation),
                    };
                    v * jitter.max(0.0)
                }
            } else {
                profile.baseline(hv_after) * jitter.max(0.0)
            }
        }
    }
}

fn series(
    label: &str,
    profile: &WorkloadProfile,
    hv_before: HypervisorKind,
    hv_after: HypervisorKind,
    duration: SimDuration,
    disruption: Disruption,
    seed: u64,
) -> TimeSeries {
    let mut rng = SimRng::new(seed);
    let mut s = TimeSeries::new(label);
    let seconds = duration.as_secs_f64() as u64;
    for sec in 0..=seconds {
        let t = SimTime::ZERO + SimDuration::from_secs(sec);
        s.push(
            t,
            value_at(profile, t, hv_before, hv_after, disruption, &mut rng),
        );
    }
    s
}

/// Generates a once-per-second throughput (QPS) series.
pub fn qps_series(
    profile: &WorkloadProfile,
    hv_before: HypervisorKind,
    hv_after: HypervisorKind,
    duration: SimDuration,
    disruption: Disruption,
    seed: u64,
) -> TimeSeries {
    series(
        &format!("{}-qps", profile.name),
        profile,
        hv_before,
        hv_after,
        duration,
        disruption,
        seed,
    )
}

/// Generates a once-per-second latency series (milliseconds).
pub fn latency_series(
    profile: &WorkloadProfile,
    hv_before: HypervisorKind,
    hv_after: HypervisorKind,
    duration: SimDuration,
    disruption: Disruption,
    seed: u64,
) -> TimeSeries {
    series(
        &format!("{}-latency", profile.name),
        profile,
        hv_before,
        hv_after,
        duration,
        disruption,
        seed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(s)
    }

    #[test]
    fn fig11_inplace_shape() {
        // Redis under InPlaceTP: ~9 s of zero QPS starting at t=50, then a
        // ~37% improvement on KVM.
        let p = WorkloadProfile::redis();
        let s = qps_series(
            &p,
            HypervisorKind::Xen,
            HypervisorKind::Kvm,
            SimDuration::from_secs(200),
            Disruption::InPlace {
                pause: t(50),
                resume: t(59),
            },
            1,
        );
        let gap = s.longest_run_below(1.0);
        assert_eq!(gap, SimDuration::from_secs(8)); // Samples at 50..=58.
        let before = s.mean_in(t(10), t(45)).unwrap();
        let after = s.mean_in(t(100), t(190)).unwrap();
        let gain = after / before - 1.0;
        assert!((0.25..0.50).contains(&gain), "gain = {gain}");
    }

    #[test]
    fn fig11_migration_shape() {
        // Redis under MigrationTP: degraded during the ~78 s copy phase,
        // negligible downtime, then KVM performance.
        let p = WorkloadProfile::redis();
        let s = qps_series(
            &p,
            HypervisorKind::Xen,
            HypervisorKind::Kvm,
            SimDuration::from_secs(250),
            Disruption::Migration {
                start: t(46),
                end: t(124),
                downtime: SimDuration::from_millis(5),
            },
            2,
        );
        let before = s.mean_in(t(5), t(40)).unwrap();
        let during = s.mean_in(t(60), t(115)).unwrap();
        let after = s.mean_in(t(150), t(240)).unwrap();
        assert!(
            during < 0.75 * before,
            "during = {during}, before = {before}"
        );
        assert!(s.longest_run_below(1.0) < SimDuration::from_secs(2));
        assert!(after > 1.2 * before);
    }

    #[test]
    fn fig12_mysql_latency_inflation() {
        let p = WorkloadProfile::mysql_latency();
        let s = latency_series(
            &p,
            HypervisorKind::Xen,
            HypervisorKind::Xen,
            SimDuration::from_secs(150),
            Disruption::Migration {
                start: t(40),
                end: t(116),
                downtime: SimDuration::from_millis(10),
            },
            3,
        );
        let before = s.mean_in(t(5), t(35)).unwrap();
        let during = s.mean_in(t(50), t(110)).unwrap();
        let ratio = during / before;
        assert!((3.0..4.2).contains(&ratio), "latency ratio = {ratio}");
    }

    #[test]
    fn no_disruption_is_flat() {
        let p = WorkloadProfile::mysql();
        let s = qps_series(
            &p,
            HypervisorKind::Xen,
            HypervisorKind::Xen,
            SimDuration::from_secs(100),
            Disruption::None,
            4,
        );
        let m = s.mean_in(t(0), t(100)).unwrap();
        assert!((m / p.baseline_xen - 1.0).abs() < 0.05);
        assert_eq!(s.longest_run_below(1.0), SimDuration::ZERO);
    }

    #[test]
    fn deterministic_given_seed() {
        let p = WorkloadProfile::redis();
        let a = qps_series(
            &p,
            HypervisorKind::Xen,
            HypervisorKind::Kvm,
            SimDuration::from_secs(50),
            Disruption::None,
            7,
        );
        let b = qps_series(
            &p,
            HypervisorKind::Xen,
            HypervisorKind::Kvm,
            SimDuration::from_secs(50),
            Disruption::None,
            7,
        );
        assert_eq!(a, b);
    }
}
