//! Per-VM SLOs and the deterministic diurnal traffic model (PR 9).
//!
//! The paper's evaluation (§5.1, Figs. 11–12) measures transplant harm in
//! *application* terms — QPS dips, latency spikes — but the fleet
//! scheduler used to optimize hardware-side downtime only. This module
//! supplies the missing vocabulary:
//!
//! * [`SloSpec`]: a workload's service-level objective (p99 latency
//!   target, error budget, degraded capacity while a migration streams
//!   memory), derived from the calibrated [`WorkloadProfile`]s.
//! * [`TrafficModel`]: a seeded, deterministic **diurnal mix** — every
//!   serving VM gets a raised-cosine day/night QPS curve with a
//!   per-VM peak hour, population multiplier and per-query wire cost,
//!   all drawn from one `SplitMix64` seed, summing to a million-user
//!   aggregate over a simulated 24 h day.
//!
//! The model distills to the scheduler-facing types in
//! `hypertp-migrate` ([`TrafficCurve`], [`SloVm`]): `workloads` knows
//! *why* a VM is hot (its workload class), `migrate` only needs to know
//! *when* and *how much*. Everything is pure arithmetic over the seed —
//! no wall clock, no global state — so fleets, schedules and benchmarks
//! built on it are byte-identical across runs and worker counts.

use hypertp_migrate::{SloVm, TrafficCurve};
use hypertp_sim::{SimDuration, SimRng};

use crate::profiles::{MetricKind, WorkloadProfile};

/// A workload's service-level objective, derived from its profile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloSpec {
    /// p99 latency target, milliseconds.
    pub p99_latency_ms: f64,
    /// Violation-seconds allowance per day (the error budget; 0.25% of
    /// a day ≈ 216 s for the default three-nines-ish objective).
    pub error_budget: SimDuration,
    /// Fraction of peak capacity still available while a pre-copy
    /// stream degrades the guest: offered load above this violates.
    pub degraded_capacity: f64,
}

impl SloSpec {
    /// Daily error budget of the default objective (0.25% of 24 h).
    pub const DEFAULT_BUDGET: SimDuration = SimDuration::from_secs(216);

    /// Derives the SLO a workload class would realistically sign up
    /// for. Latency-metric workloads target 3× their calibrated
    /// baseline at p99; throughput workloads get a nominal 50 ms
    /// service target. The degraded capacity is what the profile's
    /// `migration_degradation` leaves, tightened another 10% when the
    /// p99 target is strict (< 10 ms) — a latency SLO blows before the
    /// throughput knee is reached.
    pub fn for_profile(profile: &WorkloadProfile) -> Self {
        let p99 = match profile.metric {
            MetricKind::Latency => profile.baseline_xen * 3.0,
            MetricKind::Throughput => 50.0,
        };
        let degradation = profile.migration_degradation.clamp(0.0, 1.0);
        let mut capacity = (1.0 - degradation).clamp(0.0, 1.0);
        if p99 < 10.0 {
            capacity *= 0.9;
        }
        SloSpec {
            p99_latency_ms: p99,
            error_budget: SloSpec::DEFAULT_BUDGET,
            degraded_capacity: capacity,
        }
    }
}

/// Derives the deterministic diurnal curve of VM `index` serving class
/// peak `peak_qps` over a day of length `day` — the pure
/// `(seed, index)` function behind [`TrafficModel::push`], also usable
/// directly by lazy cluster views that never materialize a model. The
/// peak hour is uniform over the day (a global fleet: someone is always
/// peaking), the population multiplier scales the class baseline 1–4×,
/// the trough is 5–30% of peak and the hump is squared or cubed so the
/// peak stays a few hours wide. A non-serving class (`peak_qps <= 0`)
/// gets a flat zero curve.
pub fn derive_curve(seed: u64, index: u64, peak_qps: f64, day: SimDuration) -> TrafficCurve {
    if peak_qps <= 0.0 {
        return TrafficCurve {
            period: day,
            ..TrafficCurve::IDLE
        };
    }
    let mut rng = SimRng::new(seed ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    let multiplier = 1.0 + 3.0 * rng.gen_f64();
    let peak_offset = SimDuration::from_nanos(rng.gen_range(day.as_nanos().max(1)));
    let trough = 0.05 + 0.25 * rng.gen_f64();
    let sharpness = 2 + (rng.gen_range(2) as u32);
    TrafficCurve {
        peak_qps: peak_qps * multiplier,
        trough_fraction: trough,
        peak_offset,
        period: day,
        sharpness,
        bytes_per_query: TrafficModel::BYTES_PER_QUERY,
    }
}

/// One VM's slice of the diurnal mix.
#[derive(Debug, Clone, PartialEq)]
pub struct VmTraffic {
    /// Workload class name (profile the curve was derived from).
    pub class: String,
    /// The VM's diurnal QPS curve.
    pub curve: TrafficCurve,
    /// The VM's SLO.
    pub spec: SloSpec,
}

impl VmTraffic {
    /// Distills this VM's traffic + SLO into the scheduler-facing form
    /// consumed by `migrate_fleet`.
    pub fn slo_vm(&self) -> SloVm {
        SloVm {
            traffic: self.curve,
            degraded_capacity: self.spec.degraded_capacity,
            error_budget: self.spec.error_budget,
        }
    }

    /// True when the VM serves any traffic at all (idle-class VMs get a
    /// flat zero curve and need no SLO attachment).
    pub fn serves_traffic(&self) -> bool {
        self.curve.peak_qps > 0.0
    }
}

/// The fleet's deterministic diurnal traffic mix: one [`VmTraffic`] per
/// VM, every parameter drawn from the construction seed.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficModel {
    /// Length of the simulated day.
    pub day: SimDuration,
    /// Construction seed (for provenance in reports).
    pub seed: u64,
    /// Per-VM curves, in the order the profiles were pushed.
    pub vms: Vec<VmTraffic>,
}

impl TrafficModel {
    /// Mean wire bytes one query puts on the VM's shared NIC. 20 kB ≈ a
    /// small HTTP response with headers; at video-stream peak
    /// (≈4 kQPS × multiplier) that is an appreciable slice of a
    /// gigabit link — the contention the scheduler must respect.
    pub const BYTES_PER_QUERY: f64 = 20_000.0;

    /// An empty mix over a 24 h day.
    pub fn new(seed: u64) -> Self {
        TrafficModel {
            day: TrafficCurve::DAY,
            seed,
            vms: Vec::new(),
        }
    }

    /// Builder-style: override the day length (tests compress it).
    pub fn with_day(mut self, day: SimDuration) -> Self {
        self.day = day;
        self
    }

    /// Appends one VM running `profile`. Every curve parameter is a
    /// pure function of `(seed, index)` via [`derive_curve`];
    /// latency-metric and idle classes serve no measurable QPS and get
    /// a flat zero curve.
    pub fn push(&mut self, profile: &WorkloadProfile) -> &VmTraffic {
        let index = self.vms.len() as u64;
        let curve = derive_curve(self.seed, index, profile.peak_qps(), self.day);
        self.vms.push(VmTraffic {
            class: profile.name.clone(),
            curve,
            spec: SloSpec::for_profile(profile),
        });
        self.vms.last().expect("just pushed")
    }

    /// A ready-made fleet mix: `n` VMs cycling through the given
    /// profiles. `TrafficModel::mix(seed, n, &[redis, video, idle])`
    /// is the million-user diurnal fleet the benchmarks run.
    pub fn mix(seed: u64, n: usize, profiles: &[WorkloadProfile]) -> Self {
        let mut model = TrafficModel::new(seed);
        for i in 0..n {
            model.push(&profiles[i % profiles.len().max(1)]);
        }
        model
    }

    /// Aggregate offered load at `t`, queries/second.
    pub fn total_qps_at(&self, t: SimDuration) -> f64 {
        self.vms.iter().map(|v| v.curve.qps_at(t)).sum()
    }

    /// Aggregate peak capacity (the "million users" scale check).
    pub fn total_peak_qps(&self) -> f64 {
        self.vms.iter().map(|v| v.curve.peak_qps).sum()
    }

    /// Number of VMs serving measurable traffic.
    pub fn serving_count(&self) -> usize {
        self.vms.iter().filter(|v| v.serves_traffic()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slo_spec_follows_the_profile() {
        let redis = SloSpec::for_profile(&WorkloadProfile::redis());
        assert_eq!(redis.p99_latency_ms, 50.0);
        assert!((redis.degraded_capacity - 0.65).abs() < 1e-9);
        assert_eq!(redis.error_budget, SloSpec::DEFAULT_BUDGET);

        let mysql_lat = SloSpec::for_profile(&WorkloadProfile::mysql_latency());
        assert_eq!(mysql_lat.p99_latency_ms, 15.0);
        // Degradation 2.52 clamps to 1.0: no capacity left mid-migration.
        assert_eq!(mysql_lat.degraded_capacity, 0.0);

        // Strict p99 (< 10 ms) tightens the capacity another 10%.
        let darknet = SloSpec::for_profile(&WorkloadProfile::darknet());
        assert!(darknet.p99_latency_ms < 10.0);
        assert!((darknet.degraded_capacity - 0.92 * 0.9).abs() < 1e-9);
    }

    #[test]
    fn traffic_model_is_seed_deterministic() {
        let profiles = [
            WorkloadProfile::redis(),
            WorkloadProfile::video_stream(),
            WorkloadProfile::idle(),
        ];
        let a = TrafficModel::mix(42, 30, &profiles);
        let b = TrafficModel::mix(42, 30, &profiles);
        assert_eq!(a, b, "same seed, same mix");
        let c = TrafficModel::mix(43, 30, &profiles);
        assert_ne!(a, c, "different seed, different phases");
    }

    #[test]
    fn diurnal_mix_reaches_million_user_scale() {
        let profiles = [WorkloadProfile::redis(), WorkloadProfile::video_stream()];
        let m = TrafficModel::mix(7, 120, &profiles);
        assert_eq!(m.vms.len(), 120);
        assert_eq!(m.serving_count(), 120, "both classes serve traffic");
        // 60 redis (28k × 1–4) + 60 video (4k × 1–4): comfortably above
        // one million aggregate peak QPS.
        assert!(
            m.total_peak_qps() > 1_000_000.0,
            "peak = {}",
            m.total_peak_qps()
        );
        // The mix is phase-diverse: aggregate load never collapses to
        // the sum of troughs nor spikes to the sum of peaks.
        let noon = m.total_qps_at(SimDuration::from_secs(12 * 3600));
        assert!(noon > 0.05 * m.total_peak_qps());
        assert!(noon < 0.95 * m.total_peak_qps());
    }

    #[test]
    fn idle_and_latency_classes_serve_no_traffic() {
        let mut m = TrafficModel::new(1);
        m.push(&WorkloadProfile::idle());
        m.push(&WorkloadProfile::cpu_mem()); // latency metric
        assert_eq!(m.serving_count(), 0);
        assert_eq!(m.total_peak_qps(), 0.0);
        assert!(!m.vms[0].serves_traffic());
        // The distilled SloVm is still well-formed (zero curve).
        let slo = m.vms[0].slo_vm();
        assert_eq!(slo.traffic.peak_qps, 0.0);
    }

    #[test]
    fn slo_vm_distillation_carries_the_spec() {
        let mut m = TrafficModel::new(9);
        m.push(&WorkloadProfile::video_stream());
        let vt = &m.vms[0];
        let slo = vt.slo_vm();
        assert_eq!(slo.traffic, vt.curve);
        assert_eq!(slo.error_budget, vt.spec.error_budget);
        assert!((slo.degraded_capacity - 0.8).abs() < 1e-9);
        assert!(vt.curve.peak_qps >= 4_000.0);
        assert!(vt.curve.sharpness >= 2);
        assert!((0.05..=0.30).contains(&vt.curve.trough_fraction));
    }
}
