//! Per-workload parameters.

use hypertp_core::HypervisorKind;

/// Metric direction: whether larger values are better.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Throughput-like (QPS): larger is better; drops to 0 when the VM is
    /// down.
    Throughput,
    /// Latency-like (ms): smaller is better; spikes while disrupted.
    Latency,
}

/// A workload's observable behaviour.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadProfile {
    /// Workload name.
    pub name: String,
    /// What the primary metric measures.
    pub metric: MetricKind,
    /// Metric baseline when hosted on Xen.
    pub baseline_xen: f64,
    /// Metric baseline when hosted on KVM.
    pub baseline_kvm: f64,
    /// Relative sample jitter (standard deviation as a fraction of the
    /// baseline).
    pub jitter: f64,
    /// Pages dirtied per second of guest execution.
    pub dirty_rate_pages_per_sec: f64,
    /// Fractional throughput loss (or latency inflation) while a pre-copy
    /// migration is streaming memory.
    pub migration_degradation: f64,
    /// Whether this workload tolerates InPlaceTP's seconds-scale downtime
    /// (§5.4's cluster mix flips this per VM).
    pub inplace_compatible: bool,
}

impl WorkloadProfile {
    /// The metric baseline under a given hypervisor.
    pub fn baseline(&self, hv: HypervisorKind) -> f64 {
        match hv {
            HypervisorKind::Xen => self.baseline_xen,
            HypervisorKind::Kvm => self.baseline_kvm,
        }
    }

    /// Peak request rate this workload class serves, queries/second —
    /// the anchor of the diurnal traffic model. Throughput-metric
    /// classes serve their Xen baseline at peak; latency-metric and
    /// batch classes serve no externally measurable QPS.
    pub fn peak_qps(&self) -> f64 {
        match self.metric {
            MetricKind::Throughput => self.baseline_xen,
            MetricKind::Latency => 0.0,
        }
    }

    /// Redis + redis-benchmark (Fig. 11): ≈28 kQPS on Xen, ≈37% faster on
    /// KVM for this configuration (§5.3).
    pub fn redis() -> Self {
        WorkloadProfile {
            name: "redis".into(),
            metric: MetricKind::Throughput,
            baseline_xen: 28_000.0,
            baseline_kvm: 38_300.0,
            jitter: 0.04,
            dirty_rate_pages_per_sec: 2_500.0,
            migration_degradation: 0.35,
            inplace_compatible: true,
        }
    }

    /// MySQL + Sysbench throughput (Fig. 12): ≈1.5 kQPS, −68% during
    /// migration.
    pub fn mysql() -> Self {
        WorkloadProfile {
            name: "mysql".into(),
            metric: MetricKind::Throughput,
            baseline_xen: 1_500.0,
            baseline_kvm: 1_540.0,
            jitter: 0.05,
            dirty_rate_pages_per_sec: 3_500.0,
            migration_degradation: 0.68,
            inplace_compatible: true,
        }
    }

    /// MySQL request latency in milliseconds (Fig. 12): ≈5 ms, +252%
    /// during migration.
    pub fn mysql_latency() -> Self {
        WorkloadProfile {
            name: "mysql-latency".into(),
            metric: MetricKind::Latency,
            baseline_xen: 5.0,
            baseline_kvm: 4.9,
            jitter: 0.08,
            dirty_rate_pages_per_sec: 3_500.0,
            migration_degradation: 2.52,
            inplace_compatible: true,
        }
    }

    /// Darknet MNIST training (Table 6): ≈2.044 s per iteration,
    /// CPU-bound, modest dirty rate, ≈10% slowdown during migration.
    pub fn darknet() -> Self {
        WorkloadProfile {
            name: "darknet".into(),
            metric: MetricKind::Latency,
            baseline_xen: 2.044,
            baseline_kvm: 2.040,
            jitter: 0.01,
            dirty_rate_pages_per_sec: 1_200.0,
            migration_degradation: 0.08,
            inplace_compatible: true,
        }
    }

    /// A video streaming server (the §5.4 cluster mix): latency-sensitive,
    /// hence marked incompatible with InPlaceTP downtime by default.
    pub fn video_stream() -> Self {
        WorkloadProfile {
            name: "video-stream".into(),
            metric: MetricKind::Throughput,
            baseline_xen: 4_000.0,
            baseline_kvm: 4_100.0,
            jitter: 0.02,
            dirty_rate_pages_per_sec: 5_000.0,
            migration_degradation: 0.2,
            inplace_compatible: false,
        }
    }

    /// A CPU- and memory-intensive batch job (the §5.4 cluster mix).
    pub fn cpu_mem() -> Self {
        WorkloadProfile {
            name: "cpu-mem".into(),
            metric: MetricKind::Latency,
            baseline_xen: 100.0,
            baseline_kvm: 99.0,
            jitter: 0.02,
            dirty_rate_pages_per_sec: 8_000.0,
            migration_degradation: 0.1,
            inplace_compatible: true,
        }
    }

    /// An idle VM (§5.2 uses idle VMs for the time-breakdown runs).
    pub fn idle() -> Self {
        WorkloadProfile {
            name: "idle".into(),
            metric: MetricKind::Throughput,
            baseline_xen: 0.0,
            baseline_kvm: 0.0,
            jitter: 0.0,
            dirty_rate_pages_per_sec: 5.0,
            migration_degradation: 0.0,
            inplace_compatible: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn redis_kvm_advantage_is_37_percent() {
        let p = WorkloadProfile::redis();
        let gain = p.baseline(HypervisorKind::Kvm) / p.baseline(HypervisorKind::Xen) - 1.0;
        assert!((0.35..0.40).contains(&gain), "gain = {gain}");
    }

    #[test]
    fn idle_dirty_rate_is_negligible() {
        assert!(WorkloadProfile::idle().dirty_rate_pages_per_sec < 10.0);
    }

    #[test]
    fn video_stream_not_inplace_compatible() {
        assert!(!WorkloadProfile::video_stream().inplace_compatible);
        assert!(WorkloadProfile::cpu_mem().inplace_compatible);
    }
}
