//! Experiment runner: drives a real transplant or migration on the
//! simulated machines with a workload VM, and assembles the Fig. 11/12
//! timelines around the measured disruption window.

use hypertp_core::{
    HtpError, Hypervisor, HypervisorKind, HypervisorRegistry, InPlaceReport, InPlaceTransplant,
    VmConfig,
};
use hypertp_machine::{Machine, MachineSpec};
use hypertp_migrate::{MigrationConfig, MigrationReport, MigrationTp};
use hypertp_sim::{SimClock, SimDuration, SimTime, TimeSeries};

use crate::profiles::{MetricKind, WorkloadProfile};
use crate::timeline::{latency_series, qps_series, Disruption};

/// Result of an application-impact experiment.
#[derive(Debug, Clone)]
pub struct AppImpact {
    /// The metric timeline (QPS or latency depending on the profile).
    pub series: TimeSeries,
    /// The disruption window applied to the timeline.
    pub disruption: Disruption,
    /// Service interruption observed by the workload.
    pub interruption: SimDuration,
}

/// Advances the workload by one-second ticks for `duration`, dirtying
/// pages at the profile's rate.
fn run_workload(
    machine: &mut Machine,
    hv: &mut dyn Hypervisor,
    id: hypertp_core::VmId,
    profile: &WorkloadProfile,
    duration: SimDuration,
) -> Result<(), HtpError> {
    let seconds = duration.as_secs_f64() as u64;
    let per_tick = profile.dirty_rate_pages_per_sec as u64;
    for _ in 0..seconds {
        hv.guest_tick(machine, id, per_tick.min(hv.vm_config(id)?.pages()))?;
        machine.clock().advance(SimDuration::from_secs(1));
    }
    Ok(())
}

/// Runs the InPlaceTP application-impact experiment (§5.3): the workload
/// runs on Xen, the transplant fires after `warmup`, and the workload
/// continues on the target hypervisor.
#[allow(clippy::too_many_arguments)]
pub fn inplace_impact(
    registry: &HypervisorRegistry,
    spec: MachineSpec,
    profile: &WorkloadProfile,
    vm_config: &VmConfig,
    warmup: SimDuration,
    total: SimDuration,
    target: HypervisorKind,
    seed: u64,
) -> Result<(InPlaceReport, AppImpact), HtpError> {
    let mut machine = Machine::new(spec);
    let mut hv = registry.create(HypervisorKind::Xen, &mut machine)?;
    let id = hv.create_vm(&mut machine, vm_config)?;
    run_workload(&mut machine, hv.as_mut(), id, profile, warmup)?;

    let pause = machine.clock().now() + SimDuration::ZERO.max(SimDuration::ZERO); // Pause happens after PRAM prep.
    let engine = InPlaceTransplant::new(registry);
    let (mut new_hv, report) = engine.run(&mut machine, hv, target)?;
    // A served workload sees the network-visible downtime.
    let interruption = if vm_config.has_network {
        report.downtime_with_network()
    } else {
        report.downtime()
    };
    let pause = pause + report.pram;
    let resume = pause + interruption;

    let new_id = new_hv
        .find_vm(&vm_config.name)
        .ok_or(HtpError::UnknownVm(id))?;
    let remaining = total.saturating_sub(machine.clock().now().duration_since(SimTime::ZERO));
    run_workload(&mut machine, new_hv.as_mut(), new_id, profile, remaining)?;

    let disruption = Disruption::InPlace { pause, resume };
    let series = build_series(profile, target, total, disruption, seed);
    Ok((
        report,
        AppImpact {
            series,
            disruption,
            interruption,
        },
    ))
}

/// Runs the MigrationTP application-impact experiment: pre-copy starts
/// after `warmup`; the destination runs `target`.
#[allow(clippy::too_many_arguments)]
pub fn migration_impact(
    registry: &HypervisorRegistry,
    spec: MachineSpec,
    profile: &WorkloadProfile,
    vm_config: &VmConfig,
    warmup: SimDuration,
    total: SimDuration,
    target: HypervisorKind,
    seed: u64,
) -> Result<(MigrationReport, AppImpact), HtpError> {
    let clock = SimClock::new();
    let mut src_machine = Machine::with_clock(spec.clone(), clock.clone());
    let mut dst_machine = Machine::with_clock(spec, clock);
    let mut src = registry.create(HypervisorKind::Xen, &mut src_machine)?;
    let mut dst = registry.create(target, &mut dst_machine)?;
    let id = src.create_vm(&mut src_machine, vm_config)?;
    run_workload(&mut src_machine, src.as_mut(), id, profile, warmup)?;

    let tp = MigrationTp::new().with_config(MigrationConfig {
        dirty_rate_pages_per_sec: profile.dirty_rate_pages_per_sec,
        ..MigrationConfig::default()
    });
    let report = tp.migrate(
        &mut src_machine,
        src.as_mut(),
        id,
        &mut dst_machine,
        dst.as_mut(),
    )?;

    let new_id = dst
        .find_vm(&vm_config.name)
        .ok_or(HtpError::UnknownVm(id))?;
    let remaining = total.saturating_sub(dst_machine.clock().now().duration_since(SimTime::ZERO));
    run_workload(&mut dst_machine, dst.as_mut(), new_id, profile, remaining)?;

    let disruption = Disruption::Migration {
        start: report.start,
        end: report.start + report.total,
        downtime: report.downtime,
    };
    let interruption = report.downtime;
    let series = build_series(profile, target, total, disruption, seed);
    Ok((
        report,
        AppImpact {
            series,
            disruption,
            interruption,
        },
    ))
}

fn build_series(
    profile: &WorkloadProfile,
    target: HypervisorKind,
    total: SimDuration,
    disruption: Disruption,
    seed: u64,
) -> TimeSeries {
    match profile.metric {
        MetricKind::Throughput => qps_series(
            profile,
            HypervisorKind::Xen,
            target,
            total,
            disruption,
            seed,
        ),
        MetricKind::Latency => latency_series(
            profile,
            HypervisorKind::Xen,
            target,
            total,
            disruption,
            seed,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypertp_core::testing::SimpleHv;

    fn registry() -> HypervisorRegistry {
        let mut r = HypervisorRegistry::new();
        r.register(HypervisorKind::Xen, |_m| {
            Box::new(SimpleHv::new(HypervisorKind::Xen))
        });
        r.register(HypervisorKind::Kvm, |_m| {
            Box::new(SimpleHv::new(HypervisorKind::Kvm))
        });
        r
    }

    fn redis_vm() -> VmConfig {
        VmConfig::small("redis-vm").with_vcpus(2).with_memory_gb(8)
    }

    #[test]
    fn fig11_left_inplace_redis() {
        let (report, impact) = inplace_impact(
            &registry(),
            MachineSpec::m1(),
            &WorkloadProfile::redis(),
            &redis_vm(),
            SimDuration::from_secs(50),
            SimDuration::from_secs(200),
            HypervisorKind::Kvm,
            1,
        )
        .unwrap();
        // ≈9 s of service interruption, network included (§5.3).
        let gap = impact.interruption.as_secs_f64();
        assert!((7.0..11.0).contains(&gap), "interruption = {gap}");
        assert!(report.downtime().as_secs_f64() < 4.0);
        // The series shows the gap and the post-transplant gain.
        assert!(impact.series.longest_run_below(1.0).as_secs_f64() >= 6.0);
    }

    #[test]
    fn fig11_right_migration_redis() {
        let (report, impact) = migration_impact(
            &registry(),
            MachineSpec::m1(),
            &WorkloadProfile::redis(),
            &redis_vm(),
            SimDuration::from_secs(46),
            SimDuration::from_secs(250),
            HypervisorKind::Kvm,
            2,
        )
        .unwrap();
        // ≈78 s copy phase for an 8 GB VM over 1 Gbps.
        let copy = report.total.as_secs_f64();
        assert!((70.0..95.0).contains(&copy), "copy = {copy}");
        assert!(report.downtime.as_millis_f64() < 50.0);
        // No seconds-scale blackout in the timeline.
        assert!(impact.series.longest_run_below(1.0) < SimDuration::from_secs(3));
    }
}
