//! The Darknet training-iteration model (Table 6).
//!
//! Darknet trains a network on MNIST for 100 iterations of ≈2.044 s each.
//! A transplant or migration hits exactly one iteration: InPlaceTP extends
//! it by the whole downtime (≈4.97 s total), MigrationTP by its
//! sub-second downtime plus the pre-copy slowdown spread over the copy
//! window (longest iteration ≈2.244 s), and a homogeneous Xen→Xen
//! migration by its larger downtime (≈2.672 s).

use hypertp_sim::{SimDuration, SimRng};

use crate::profiles::WorkloadProfile;

/// Result of a 100-iteration training run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainingRun {
    /// Per-iteration durations, seconds.
    pub iterations: Vec<f64>,
}

impl TrainingRun {
    /// Mean iteration time.
    pub fn mean(&self) -> f64 {
        self.iterations.iter().sum::<f64>() / self.iterations.len() as f64
    }

    /// Longest iteration (the one the disruption hit).
    pub fn longest(&self) -> f64 {
        self.iterations.iter().cloned().fold(0.0, f64::max)
    }
}

/// How the training run is disrupted.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TrainingDisruption {
    /// Uninterrupted run (Table 6 "Default").
    None,
    /// InPlaceTP: `downtime` lands inside one iteration.
    InPlace {
        /// Transplant downtime.
        downtime: SimDuration,
    },
    /// MigrationTP or homogeneous migration: pre-copy slows `copy_secs`
    /// seconds of iterations by the profile's degradation; `downtime`
    /// lands inside one iteration.
    Migration {
        /// Stop-and-copy downtime.
        downtime: SimDuration,
        /// Pre-copy window length (s).
        copy_secs: f64,
    },
}

/// Runs the 100-iteration training model.
pub fn train(profile: &WorkloadProfile, disruption: TrainingDisruption, seed: u64) -> TrainingRun {
    let mut rng = SimRng::new(seed);
    let n = 100;
    let hit = 50usize; // Disruption triggered mid-run (§5.3).
    let base = profile.baseline_xen;
    let mut iterations = Vec::with_capacity(n);
    for i in 0..n {
        let mut t = base * (1.0 + rng.gen_normal() * profile.jitter);
        match disruption {
            TrainingDisruption::None => {}
            TrainingDisruption::InPlace { downtime } => {
                if i == hit {
                    t += downtime.as_secs_f64();
                }
            }
            TrainingDisruption::Migration {
                downtime,
                copy_secs,
            } => {
                let affected = (copy_secs / base).ceil() as usize;
                if i >= hit && i < hit + affected {
                    t *= 1.0 + profile.migration_degradation;
                }
                if i == hit + affected.saturating_sub(1) {
                    t += downtime.as_secs_f64();
                }
            }
        }
        iterations.push(t);
    }
    TrainingRun { iterations }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table6_shapes() {
        let p = WorkloadProfile::darknet();
        let default = train(&p, TrainingDisruption::None, 1);
        assert!(
            (default.mean() - 2.044).abs() < 0.02,
            "mean = {}",
            default.mean()
        );

        let inplace = train(
            &p,
            TrainingDisruption::InPlace {
                downtime: SimDuration::from_millis(2930),
            },
            1,
        );
        assert!(
            (4.6..5.4).contains(&inplace.longest()),
            "inplace longest = {}",
            inplace.longest()
        );

        let migration = train(
            &p,
            TrainingDisruption::Migration {
                downtime: SimDuration::from_millis(5),
                copy_secs: 74.0,
            },
            1,
        );
        assert!(
            (2.1..2.5).contains(&migration.longest()),
            "migrationtp longest = {}",
            migration.longest()
        );

        let xen_xen = train(
            &p,
            TrainingDisruption::Migration {
                downtime: SimDuration::from_millis(134),
                copy_secs: 74.0,
            },
            1,
        );
        // Xen→Xen's longer downtime makes its worst iteration worse than
        // MigrationTP's but far better than InPlaceTP's.
        assert!(xen_xen.longest() > migration.longest());
        assert!(xen_xen.longest() < inplace.longest());
    }

    #[test]
    fn hundred_iterations() {
        let p = WorkloadProfile::darknet();
        assert_eq!(train(&p, TrainingDisruption::None, 9).iterations.len(), 100);
    }

    #[test]
    fn only_one_iteration_absorbs_inplace_downtime() {
        let p = WorkloadProfile::darknet();
        let run = train(
            &p,
            TrainingDisruption::InPlace {
                downtime: SimDuration::from_secs(3),
            },
            5,
        );
        let slow: Vec<_> = run.iterations.iter().filter(|&&t| t > 4.0).collect();
        assert_eq!(slow.len(), 1);
    }
}
