//! Synthetic models of the paper's evaluation workloads (§5.1, Table 3).
//!
//! The paper measures HyperTP's impact on four application classes: an
//! in-memory key-value store (Redis + redis-benchmark), a relational
//! database (MySQL + Sysbench), the SPECrate 2017 suite, and neural-network
//! training (Darknet on MNIST). Real guests cannot run inside the simulated
//! machine, so each workload is modelled by the two quantities the
//! evaluation actually observes:
//!
//! 1. its **metric over time** (QPS, latency, iteration time, run time),
//!    parameterized by which hypervisor hosts it and whether a transplant
//!    or migration is disrupting it; and
//! 2. its **dirty-page rate**, which is what couples the workload to the
//!    pre-copy migration engine.
//!
//! Baselines are calibrated to the paper's reported numbers (e.g. Redis
//! ≈37% faster on KVM than Xen for the fig. 11 configuration; MySQL
//! latency +252% during migration).
//!
//! Modules: [`profiles`] (per-workload parameters), [`timeline`]
//! (QPS/latency series for Figs. 11–12), [`spec`] (Table 5),
//! [`darknet`] (Table 6), [`runner`] (drives a real transplant/migration
//! on the simulated machines and assembles the series), [`slo`] (per-VM
//! SLO specs and the deterministic diurnal traffic mix feeding the
//! SLO-aware fleet scheduler).

pub mod darknet;
pub mod profiles;
pub mod runner;
pub mod slo;
pub mod spec;
pub mod timeline;

pub use profiles::WorkloadProfile;
pub use slo::{derive_curve, SloSpec, TrafficModel, VmTraffic};
pub use timeline::{latency_series, qps_series, Disruption};
