//! Cluster-scale transplant orchestration (§4.5 and §5.4).
//!
//! The paper's cluster experiment upgrades 10 hosts × 10 VMs (1 vCPU /
//! 4 GB) with a BtrPlace-generated reconfiguration plan, varying the
//! fraction of VMs that tolerate InPlaceTP downtime: at 0% everything is
//! migration-based (154 migrations, ≈19 minutes); at 80% only 25
//! migrations remain and the total time drops by ≈80% (Fig. 13).
//!
//! * [`model`] — hosts, placed VMs, and the cluster state.
//! * [`planner`] — the BtrPlace-like planner: rolling offline groups,
//!   capacity-constrained placement, InPlaceTP/MigrationTP mixing.
//! * [`exec`] — the plan executor: serializes migrations (the operator's
//!   concurrency cap), runs in-place upgrades per group, and reports
//!   per-plan timing for Fig. 13.
//! * [`openstack`] — the Nova-like integration (§4.5.2): a
//!   `ComputeDriver` extended with HyperTP operations, a manager with the
//!   "host live upgrade" API, and the HyperTP-aware scheduler filter.
//! * [`campaign`] — the full Fig. 1(b) vulnerability-window campaign:
//!   policy decision, fleet transplant to the refuge hypervisor, window
//!   elapse, transplant home after the patch.
//! * [`exposure`] — the exposure-minimizing planner over a live
//!   vulnerability feed: per-host InPlace/Migrate/Defer choices that
//!   minimize integrated exposure ∫ affected-VMs × criticality dt, and
//!   the single [`exposure::ExposureIntegrator`] every exposure figure
//!   in the workspace accrues through.

pub mod campaign;
pub mod exec;
pub mod exposure;
pub mod model;
pub mod openstack;
pub mod planner;

pub use campaign::{run_campaign, run_campaign_with, CampaignConfig, CampaignReport, WaveReport};
pub use exec::{
    execute, execute_sharded, execute_sharded_with, execute_with_faults, ExecConfig, ExecReport,
    ExposureExecConfig, SloExecConfig,
};
pub use exposure::{
    replay_feed, EventPlan, ExposureConfig, ExposureIntegrator, ExposurePlanner, FeedReport,
    HostAction, HostCost,
};
pub use model::{Cluster, ClusterView, ClusterVm, HostState, SyntheticCluster, VmView};
pub use planner::{plan_upgrade, plan_upgrade_excluding, Action, Plan};
