//! OpenStack integration (§4.5.2): the Nova-like manager with a
//! "host live upgrade" operation.
//!
//! Following the paper's integration plan: (1) the `ComputeDriver`
//! interface grows HyperTP operations (guest state saving, loading and
//! executing the new hypervisor kernel, guest state restoring); (2) the
//! libvirt-style driver implements them on top of the transplant engine;
//! (3) the compute API gains a host-upgrade operation that first migrates
//! away VMs that do not support HyperTP, then upgrades the host with every
//! remaining VM in place and updates the manager's database; (4) the
//! scheduler gains a filter that consolidates transplantable VMs.
//! Sysadmins drive all of this through the manager — never through
//! vendor-specific hypervisor tools (§4.5.1).

use std::collections::BTreeMap;

use hypertp_core::{
    CheckpointConfig, HtpError, Hypervisor, HypervisorKind, HypervisorRegistry, InPlaceReport,
    InPlaceTransplant, RecoveryReport, UnplannedRecovery, VmConfig, VmId, WarmCheckpointer,
};
use hypertp_machine::{Machine, MachineSpec};
use hypertp_migrate::{MigrationConfig, MigrationReport, MigrationTp};
use hypertp_sim::{CostModel, FaultPlan, SimClock, WorkerPool};

/// Builds the two-hypervisor pool the drivers boot from.
pub fn pool() -> HypervisorRegistry {
    let mut registry = HypervisorRegistry::new();
    registry.register(HypervisorKind::Xen, |machine| {
        Box::new(hypertp_xen::XenHypervisor::new(machine))
    });
    registry.register(HypervisorKind::Kvm, |machine| {
        Box::new(hypertp_kvm::KvmHypervisor::new(machine))
    });
    registry.register_validator(HypervisorKind::Kvm, hypertp_kvm::xlate::preflight_validate);
    registry
}

/// A libvirt-style compute driver: one hypervisor host.
pub struct LibvirtDriver {
    /// Host name.
    pub host_name: String,
    machine: Machine,
    hv: Option<Box<dyn Hypervisor>>,
}

impl LibvirtDriver {
    /// Boots a host with the given hypervisor.
    pub fn new(
        host_name: impl Into<String>,
        spec: MachineSpec,
        clock: SimClock,
        registry: &HypervisorRegistry,
        kind: HypervisorKind,
    ) -> Result<Self, HtpError> {
        let mut machine = Machine::with_clock(spec, clock);
        let hv = registry.create(kind, &mut machine)?;
        Ok(LibvirtDriver {
            host_name: host_name.into(),
            machine,
            hv: Some(hv),
        })
    }

    fn hv(&self) -> &dyn Hypervisor {
        self.hv.as_deref().expect("hypervisor running")
    }

    /// The hypervisor currently running on the host.
    pub fn hypervisor_kind(&self) -> HypervisorKind {
        self.hv().kind()
    }

    /// Nova `spawn`.
    pub fn spawn(&mut self, config: &VmConfig) -> Result<VmId, HtpError> {
        let hv = self.hv.as_deref_mut().expect("hypervisor running");
        hv.create_vm(&mut self.machine, config)
    }

    /// Nova `suspend` (the paper likens HyperTP's guest state saving to
    /// this existing operation).
    pub fn suspend(&mut self, name: &str) -> Result<(), HtpError> {
        let hv = self.hv.as_deref_mut().expect("hypervisor running");
        let id = hv.find_vm(name).ok_or(HtpError::UnknownVm(VmId(0)))?;
        hv.pause_vm(id)
    }

    /// Nova `resume`.
    pub fn resume(&mut self, name: &str) -> Result<(), HtpError> {
        let hv = self.hv.as_deref_mut().expect("hypervisor running");
        let id = hv.find_vm(name).ok_or(HtpError::UnknownVm(VmId(0)))?;
        hv.resume_vm(id)
    }

    /// VM names on this host.
    pub fn vm_names(&self) -> Vec<String> {
        let hv = self.hv();
        hv.vm_ids()
            .into_iter()
            .filter_map(|id| hv.vm_config(id).ok().map(|c| c.name.clone()))
            .collect()
    }

    /// Whether a VM on this host supports riding through InPlaceTP.
    pub fn vm_inplace_compatible(&self, name: &str) -> Option<bool> {
        let hv = self.hv();
        let id = hv.find_vm(name)?;
        hv.vm_config(id).ok().map(|c| c.inplace_compatible)
    }

    /// The HyperTP extension: upgrade this host in place, carrying all
    /// resident VMs (the ComputeDriver's save → kexec → restore sequence).
    pub fn host_live_upgrade(
        &mut self,
        registry: &HypervisorRegistry,
        target: HypervisorKind,
    ) -> Result<InPlaceReport, HtpError> {
        let hv = self.hv.take().expect("hypervisor running");
        let engine = InPlaceTransplant::new(registry);
        match engine.run(&mut self.machine, hv, target) {
            Ok((new_hv, report)) => {
                self.hv = Some(new_hv);
                Ok(report)
            }
            Err(e) => Err(e),
        }
    }

    /// Unplanned transplant: the running hypervisor just crashed. The host
    /// was checkpointing its VMs all along (the always-on warm
    /// checkpointer is materialized here, ticked once so it has realistic
    /// dirty state, then handed the dying hypervisor), and recovery
    /// micro-reboots into `target` from the freshest persisted checkpoint.
    pub fn host_crash_recover(
        &mut self,
        registry: &HypervisorRegistry,
        target: HypervisorKind,
        faults: &FaultPlan,
    ) -> Result<RecoveryReport, HtpError> {
        let mut hv = self.hv.take().expect("hypervisor running");
        let mut ckpt = WarmCheckpointer::start_with(
            &mut self.machine,
            hv.as_mut(),
            target,
            CheckpointConfig::default(),
            CostModel::paper_calibrated(),
            faults.clone(),
            WorkerPool::from_env(),
        )?;
        // One background interval before the crash lands; if the plan
        // fires the crash gate mid-tick the checkpointer aborts at that
        // phase and recovery proceeds from the persisted image.
        ckpt.tick(&mut self.machine, hv.as_mut(), 32)?;
        let engine = UnplannedRecovery::new(registry).with_faults(faults.clone());
        let (new_hv, report) = engine.recover(&mut self.machine, hv, ckpt)?;
        self.hv = Some(new_hv);
        Ok(report)
    }
}

/// The Nova-like manager: hosts, a VM→host database, the scheduler filter
/// and the host-upgrade API.
pub struct NovaManager {
    /// The hypervisor pool.
    pub registry: HypervisorRegistry,
    computes: Vec<LibvirtDriver>,
    db: BTreeMap<String, usize>,
}

impl NovaManager {
    /// Creates a manager over a set of booted hosts.
    pub fn new(registry: HypervisorRegistry, computes: Vec<LibvirtDriver>) -> Self {
        NovaManager {
            registry,
            computes,
            db: BTreeMap::new(),
        }
    }

    /// Number of hosts.
    pub fn host_count(&self) -> usize {
        self.computes.len()
    }

    /// Access a host driver.
    pub fn compute(&self, host: usize) -> &LibvirtDriver {
        &self.computes[host]
    }

    /// The host a VM lives on, per the manager's database.
    pub fn host_of(&self, vm: &str) -> Option<usize> {
        self.db.get(vm).copied()
    }

    /// The HyperTP-aware scheduler filter (§4.5.2 step 4): among hosts
    /// with room, prefer one whose resident VMs have the same
    /// InPlaceTP-compatibility as the new VM, so transplantable VMs stay
    /// together and a host can be upgraded with a single operation.
    pub fn pick_host(&self, config: &VmConfig) -> Option<usize> {
        (0..self.computes.len()).max_by_key(|&h| {
            let names = self.computes[h].vm_names();
            let matching = names
                .iter()
                .filter(|n| {
                    self.computes[h].vm_inplace_compatible(n) == Some(config.inplace_compatible)
                })
                .count() as i64;
            let mismatching = names.len() as i64 - matching;
            matching - 2 * mismatching
        })
    }

    /// Boots a VM through the scheduler.
    pub fn boot(&mut self, config: &VmConfig) -> Result<usize, HtpError> {
        let host = self
            .pick_host(config)
            .ok_or(HtpError::Unsupported("no hosts"))?;
        self.computes[host].spawn(config)?;
        self.db.insert(config.name.clone(), host);
        Ok(host)
    }

    /// Nova's live migration between two hosts.
    pub fn live_migration(
        &mut self,
        vm: &str,
        from: usize,
        to: usize,
    ) -> Result<MigrationReport, HtpError> {
        assert_ne!(from, to, "migration needs distinct hosts");
        let (a, b) = if from < to {
            let (lo, hi) = self.computes.split_at_mut(to);
            (&mut lo[from], &mut hi[0])
        } else {
            let (lo, hi) = self.computes.split_at_mut(from);
            (&mut hi[0], &mut lo[to])
        };
        let src_hv = a.hv.as_deref_mut().expect("hypervisor running");
        let dst_hv = b.hv.as_deref_mut().expect("hypervisor running");
        let id = src_hv.find_vm(vm).ok_or(HtpError::UnknownVm(VmId(0)))?;
        let tp = MigrationTp::new().with_config(MigrationConfig {
            link: hypertp_migrate::Link::ten_gigabit(),
            ..MigrationConfig::default()
        });
        let report = tp.migrate(&mut a.machine, src_hv, id, &mut b.machine, dst_hv)?;
        self.db.insert(vm.to_string(), to);
        Ok(report)
    }

    /// The §4.5.2 "one-click" host upgrade: live-migrate away every VM
    /// that does not support HyperTP, upgrade the host with the rest in
    /// place, and update the database.
    pub fn host_live_upgrade(
        &mut self,
        host: usize,
        target: HypervisorKind,
    ) -> Result<(InPlaceReport, Vec<MigrationReport>), HtpError> {
        let names = self.computes[host].vm_names();
        let mut evacuations = Vec::new();
        for name in names {
            if self.computes[host].vm_inplace_compatible(&name) == Some(false) {
                let dest = (0..self.computes.len())
                    .find(|&h| h != host)
                    .ok_or(HtpError::Unsupported("no evacuation target"))?;
                evacuations.push(self.live_migration(&name, host, dest)?);
            }
        }
        let report = {
            // Borrow the registry and the compute separately.
            let registry = &self.registry;
            self.computes[host].host_live_upgrade(registry, target)?
        };
        Ok((report, evacuations))
    }

    /// Crash-recover a host onto `target`. Fleet policy keeps
    /// InPlaceTP-incompatible VMs off checkpoint-armed hosts (the rescue
    /// hypervisor could not adopt them), so any still resident are drained
    /// first — modeling the pre-arranged state, not a crash-time action —
    /// and the recovery itself only ever sees compatible VMs.
    pub fn host_crash_recover(
        &mut self,
        host: usize,
        target: HypervisorKind,
        faults: &FaultPlan,
    ) -> Result<(RecoveryReport, Vec<MigrationReport>), HtpError> {
        let names = self.computes[host].vm_names();
        let mut evacuations = Vec::new();
        for name in names {
            if self.computes[host].vm_inplace_compatible(&name) == Some(false) {
                let dest = (0..self.computes.len())
                    .find(|&h| h != host)
                    .ok_or(HtpError::Unsupported("no evacuation target"))?;
                evacuations.push(self.live_migration(&name, host, dest)?);
            }
        }
        let report = {
            let registry = &self.registry;
            self.computes[host].host_crash_recover(registry, target, faults)?
        };
        Ok((report, evacuations))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manager(hosts: usize) -> NovaManager {
        let registry = pool();
        let clock = SimClock::new();
        let computes = (0..hosts)
            .map(|i| {
                let mut spec = MachineSpec::m1();
                spec.ram_gb = 8;
                LibvirtDriver::new(
                    format!("compute-{i}"),
                    spec,
                    clock.clone(),
                    &registry,
                    HypervisorKind::Xen,
                )
                .unwrap()
            })
            .collect();
        NovaManager::new(registry, computes)
    }

    #[test]
    fn zero_host_manager_degrades_cleanly() {
        // A manager with no computes is a valid (if useless) control
        // plane: the scheduler finds no host, boot reports it as an
        // error, and the database answers lookups with None.
        let mut nova = manager(0);
        assert_eq!(nova.pick_host(&VmConfig::small("vm")), None);
        assert!(nova.boot(&VmConfig::small("vm")).is_err());
        assert_eq!(nova.host_of("vm"), None);
    }

    #[test]
    fn zero_vm_host_crash_recovers_through_the_api() {
        // A crashed host carrying no VMs still micro-reboots onto the
        // target: the recovery has nothing to restore but must leave the
        // host serving the rescue hypervisor.
        let mut nova = manager(1);
        let faults = hypertp_sim::fault::FaultPlan::disarmed();
        let (report, evacuations) = nova
            .host_crash_recover(0, HypervisorKind::Kvm, &faults)
            .unwrap();
        assert_eq!(report.vm_count, 0);
        assert!(evacuations.is_empty());
        assert_eq!(nova.compute(0).hypervisor_kind(), HypervisorKind::Kvm);
    }

    #[test]
    fn boot_and_database() {
        let mut nova = manager(2);
        let host = nova.boot(&VmConfig::small("web")).unwrap();
        assert_eq!(nova.host_of("web"), Some(host));
        assert!(nova.compute(host).vm_names().contains(&"web".to_string()));
    }

    #[test]
    fn scheduler_consolidates_transplantable_vms() {
        let mut nova = manager(2);
        // Seed host 0 with a compatible VM and host 1 with an incompatible
        // one.
        nova.computes[0].spawn(&VmConfig::small("a")).unwrap();
        nova.computes[1]
            .spawn(&VmConfig::small("b").with_inplace_compatible(false))
            .unwrap();
        let h_compat = nova.pick_host(&VmConfig::small("c")).unwrap();
        assert_eq!(h_compat, 0);
        let h_incompat = nova
            .pick_host(&VmConfig::small("d").with_inplace_compatible(false))
            .unwrap();
        assert_eq!(h_incompat, 1);
    }

    #[test]
    fn one_click_upgrade_mixes_migration_and_inplace() {
        let mut nova = manager(2);
        nova.boot(&VmConfig::small("stay")).unwrap();
        nova.boot(&VmConfig::small("leave").with_inplace_compatible(false))
            .unwrap();
        // Both landed on host 0 or were spread; force placement.
        let stay_host = nova.host_of("stay").unwrap();
        let (report, evacuations) = nova
            .host_live_upgrade(stay_host, HypervisorKind::Kvm)
            .unwrap();
        assert_eq!(
            nova.compute(stay_host).hypervisor_kind(),
            HypervisorKind::Kvm
        );
        // The compatible VM rode through; any incompatible one on that
        // host was evacuated first and the DB reflects it.
        assert!(report.vm_count >= 1);
        for m in &evacuations {
            let new_host = nova.host_of(&m.vm_name).unwrap();
            assert_ne!(new_host, stay_host);
        }
        assert!(nova
            .compute(stay_host)
            .vm_names()
            .contains(&"stay".to_string()));
    }

    #[test]
    fn live_migration_works_in_both_index_directions() {
        let mut nova = manager(3);
        nova.computes[2].spawn(&VmConfig::small("mv")).unwrap();
        nova.db.insert("mv".into(), 2);
        // High index -> low index exercises the reversed split_at_mut arm.
        let r = nova.live_migration("mv", 2, 0).unwrap();
        assert_eq!(nova.host_of("mv"), Some(0));
        assert!(r.total.as_secs_f64() > 0.0);
        // And back up again.
        nova.live_migration("mv", 0, 2).unwrap();
        assert_eq!(nova.host_of("mv"), Some(2));
        assert!(nova.compute(2).vm_names().contains(&"mv".to_string()));
    }

    #[test]
    fn upgrade_preserves_guest_memory_across_api() {
        let mut nova = manager(1);
        nova.boot(&VmConfig::small("db")).unwrap();
        // Touch guest memory through the driver's hypervisor.
        {
            let drv = &mut nova.computes[0];
            let hv = drv.hv.as_deref_mut().unwrap();
            let id = hv.find_vm("db").unwrap();
            hv.write_guest(&mut drv.machine, id, hypertp_machine::Gfn(5), 0x1337)
                .unwrap();
        }
        nova.host_live_upgrade(0, HypervisorKind::Kvm).unwrap();
        let drv = &nova.computes[0];
        let hv = drv.hv.as_deref().unwrap();
        let id = hv.find_vm("db").unwrap();
        assert_eq!(
            hv.read_guest(&drv.machine, id, hypertp_machine::Gfn(5))
                .unwrap(),
            0x1337
        );
    }
}
