//! The cluster model: hosts and placed VMs.

use hypertp_core::{HypervisorKind, VmConfig};
use hypertp_machine::MachineSpec;
use hypertp_sim::SimRng;
use hypertp_workloads::WorkloadProfile;

/// A VM placed somewhere in the cluster.
#[derive(Debug, Clone)]
pub struct ClusterVm {
    /// Unique name.
    pub name: String,
    /// Configuration (size, InPlaceTP compatibility).
    pub config: VmConfig,
    /// Workload profile (drives migration dirty rates).
    pub profile: WorkloadProfile,
    /// Current host index.
    pub host: usize,
}

/// One host's state.
#[derive(Debug, Clone)]
pub struct HostState {
    /// Hardware description.
    pub spec: MachineSpec,
    /// Hypervisor currently running.
    pub hypervisor: HypervisorKind,
    /// True once the host has been upgraded to the target hypervisor.
    pub upgraded: bool,
}

/// The cluster: hosts plus VM placement.
#[derive(Debug, Clone)]
pub struct Cluster {
    /// Hosts by index.
    pub hosts: Vec<HostState>,
    /// All VMs.
    pub vms: Vec<ClusterVm>,
    /// GiB reserved per host for the administration OS.
    pub host_reserve_gb: u64,
}

impl Cluster {
    /// Builds the §5.4 testbed: 10 hosts (2× E5-2630 v3, 96 GB, 10 Gbps),
    /// 10 VMs each (1 vCPU / 4 GB) with the paper's mix — 30% video
    /// streaming, 30% CPU+memory intensive, 40% idle — and
    /// `compat_percent` of the VMs marked InPlaceTP-compatible (assigned
    /// deterministically from `seed`).
    pub fn paper_testbed(compat_percent: u32, seed: u64) -> Cluster {
        let mut rng = SimRng::new(seed);
        let hosts = (0..10)
            .map(|_| HostState {
                spec: MachineSpec::cluster_node(),
                hypervisor: HypervisorKind::Xen,
                upgraded: false,
            })
            .collect();
        let mut vms = Vec::new();
        let total = 100usize;
        // Deterministic compatibility assignment: choose exactly
        // compat_percent% of the VM indices.
        let compat_count = (total as u64 * compat_percent as u64 / 100) as usize;
        let compat_idx = rng.sample_indices(total, compat_count);
        let is_compat = {
            let mut v = vec![false; total];
            for &i in &compat_idx {
                v[i] = true;
            }
            v
        };
        for host in 0..10 {
            for slot in 0..10 {
                let idx = host * 10 + slot;
                let profile = match slot % 10 {
                    0..=2 => WorkloadProfile::video_stream(),
                    3..=5 => WorkloadProfile::cpu_mem(),
                    _ => WorkloadProfile::idle(),
                };
                let config = VmConfig::small(format!("vm-{host}-{slot}"))
                    .with_memory_gb(4)
                    .with_inplace_compatible(is_compat[idx]);
                vms.push(ClusterVm {
                    name: config.name.clone(),
                    config,
                    profile,
                    host,
                });
            }
        }
        Cluster {
            hosts,
            vms,
            host_reserve_gb: 8,
        }
    }

    /// VM slots (by GiB) available on a host.
    pub fn host_capacity_gb(&self, host: usize) -> u64 {
        self.hosts[host].spec.ram_gb - self.host_reserve_gb
    }

    /// GiB currently used by VMs on a host.
    pub fn host_used_gb(&self, host: usize) -> u64 {
        self.vms
            .iter()
            .filter(|v| v.host == host)
            .map(|v| v.config.memory_gb)
            .sum()
    }

    /// Free GiB on a host.
    pub fn host_free_gb(&self, host: usize) -> u64 {
        self.host_capacity_gb(host)
            .saturating_sub(self.host_used_gb(host))
    }

    /// Indices of the VMs on a host.
    pub fn vms_on(&self, host: usize) -> Vec<usize> {
        (0..self.vms.len())
            .filter(|&i| self.vms[i].host == host)
            .collect()
    }

    /// A lazy datacenter-scale fleet: `n_hosts` G5K-class hosts with 10
    /// VMs each, derived on demand from `seed` (see [`SyntheticCluster`]).
    /// Nothing is allocated per host or per VM until it is touched.
    pub fn synthetic(n_hosts: usize, seed: u64) -> SyntheticCluster {
        SyntheticCluster {
            hosts: n_hosts,
            vms_per_host: 10,
            compat_percent: 80,
            seed,
            spec: MachineSpec::cluster_node(),
            host_reserve_gb: 8,
        }
    }
}

/// The planner/executor's read-only view of a VM — just the fields the
/// scheduling and cost models consume, cheap to derive on the fly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VmView {
    /// Memory footprint in GiB.
    pub memory_gb: u64,
    /// Workload dirty rate (drives the pre-copy extension).
    pub dirty_rate_pages_per_sec: f64,
    /// Whether the VM can ride through an InPlaceTP micro-reboot.
    pub inplace_compatible: bool,
    /// The host the VM lives on before the plan runs.
    pub home: usize,
    /// Peak request rate of the VM's workload class, queries/second
    /// (zero for latency-metric and batch classes). Anchors the
    /// executor's opt-in SLO accounting.
    pub peak_qps: f64,
    /// Fractional capacity lost while a pre-copy stream degrades the
    /// guest ([`WorkloadProfile::migration_degradation`]).
    pub migration_degradation: f64,
}

/// Read-only cluster access for the planner and executor.
///
/// [`Cluster`] materializes hosts and VMs as `Vec`s — fine for testbeds,
/// hopeless for 10k-host fleets. This trait is the seam that lets the
/// same planner/executor run over either a materialized [`Cluster`] or a
/// lazy [`SyntheticCluster`] whose per-VM state is a pure function of
/// `(seed, index)`: O(1) memory per untouched entity.
///
/// `Sync` is required so sharded execution can read the view from pool
/// workers.
pub trait ClusterView: Sync {
    /// Number of hosts.
    fn host_count(&self) -> usize;
    /// Number of VMs.
    fn vm_count(&self) -> usize;
    /// GiB reserved per host for the administration OS.
    fn host_reserve_gb(&self) -> u64;
    /// Hardware description of a host.
    fn host_spec(&self, host: usize) -> &MachineSpec;
    /// The VM's scheduling-relevant fields.
    fn vm(&self, vm: usize) -> VmView;
    /// The VM's name (error reporting only — may allocate).
    fn vm_name(&self, vm: usize) -> String;
    /// `Some(spec)` when every host shares one hardware spec — the
    /// executor then memoizes per-class cost evaluations instead of
    /// recomputing them per host/VM.
    fn uniform_spec(&self) -> Option<&MachineSpec>;

    /// VM slots (by GiB) available on a host.
    fn host_capacity_gb(&self, host: usize) -> u64 {
        self.host_spec(host)
            .ram_gb
            .saturating_sub(self.host_reserve_gb())
    }
}

impl ClusterView for Cluster {
    fn host_count(&self) -> usize {
        self.hosts.len()
    }

    fn vm_count(&self) -> usize {
        self.vms.len()
    }

    fn host_reserve_gb(&self) -> u64 {
        self.host_reserve_gb
    }

    fn host_spec(&self, host: usize) -> &MachineSpec {
        &self.hosts[host].spec
    }

    fn vm(&self, vm: usize) -> VmView {
        let v = &self.vms[vm];
        VmView {
            memory_gb: v.config.memory_gb,
            dirty_rate_pages_per_sec: v.profile.dirty_rate_pages_per_sec,
            inplace_compatible: v.config.inplace_compatible,
            home: v.host,
            peak_qps: v.profile.peak_qps(),
            migration_degradation: v.profile.migration_degradation,
        }
    }

    fn vm_name(&self, vm: usize) -> String {
        self.vms[vm].name.clone()
    }

    fn uniform_spec(&self) -> Option<&MachineSpec> {
        let first = &self.hosts.first()?.spec;
        self.hosts[1..]
            .iter()
            .all(|h| h.spec == *first)
            .then_some(first)
    }
}

/// A datacenter-scale fleet that never materializes: host and VM state is
/// derived on first touch as a pure function of `(seed, index)`.
///
/// Layout mirrors [`Cluster::paper_testbed`] scaled out: every host is a
/// G5K-class node carrying `vms_per_host` 4 GiB VMs; each VM's workload
/// class (30% video-stream, 30% cpu-mem, 40% idle by slot) is fixed by
/// its slot and its InPlaceTP compatibility is an independent seeded coin
/// flip at `compat_percent`. [`SyntheticCluster::materialize`] builds the
/// equivalent `Vec`-backed [`Cluster`] for equivalence testing (don't do
/// this at 10k hosts).
#[derive(Debug, Clone)]
pub struct SyntheticCluster {
    hosts: usize,
    vms_per_host: usize,
    compat_percent: u32,
    seed: u64,
    spec: MachineSpec,
    host_reserve_gb: u64,
}

/// SplitMix64 finalizer: the per-index hash behind the lazy derivation.
fn mix(seed: u64, i: u64) -> u64 {
    let mut z = seed ^ i.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Per-VM dirty-rate spread of the synthetic fleet: each VM draws one of
/// these multipliers (seeded, deterministic) around its workload class's
/// calibrated rate, so dirty rates vary per VM while staying anchored to
/// the class. The set is deliberately small and discrete — the executor
/// memoizes migration estimates per `(memory, dirty-rate, sharers)` key,
/// and `classes × 4` distinct rates keep that memo a handful of entries
/// fleet-wide instead of one per VM.
const DIRTY_MULTIPLIERS: [f64; 4] = [0.5, 0.8, 1.0, 1.6];

/// Salt decorrelating the dirty-rate draw from the compat coin flip.
const DIRTY_SALT: u64 = 0xd1a7_0b5e_ed5a_17ed;

impl SyntheticCluster {
    /// Sets the VM count per host (default 10).
    pub fn with_vms_per_host(mut self, n: usize) -> Self {
        self.vms_per_host = n;
        self
    }

    /// Sets the InPlaceTP-compatible share of VMs (default 80%).
    pub fn with_compat_percent(mut self, pct: u32) -> Self {
        self.compat_percent = pct.min(100);
        self
    }

    /// The seed the fleet derives from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The workload profile of a VM's slot — same 30/30/40
    /// video/cpu/idle mix as the paper testbed.
    fn profile_for_slot(slot: usize) -> WorkloadProfile {
        match slot % 10 {
            0..=2 => WorkloadProfile::video_stream(),
            3..=5 => WorkloadProfile::cpu_mem(),
            _ => WorkloadProfile::idle(),
        }
    }

    /// The VM's seeded dirty-rate multiplier (see [`DIRTY_MULTIPLIERS`]).
    fn dirty_multiplier(&self, vm: usize) -> f64 {
        DIRTY_MULTIPLIERS[(mix(self.seed ^ DIRTY_SALT, vm as u64) % 4) as usize]
    }

    fn is_compat(&self, vm: usize) -> bool {
        (mix(self.seed, vm as u64) % 100) < self.compat_percent as u64
    }

    /// Builds the equivalent materialized [`Cluster`] — equivalence
    /// testing only; allocates every host and VM.
    pub fn materialize(&self) -> Cluster {
        let hosts = (0..self.hosts)
            .map(|_| HostState {
                spec: self.spec.clone(),
                hypervisor: HypervisorKind::Xen,
                upgraded: false,
            })
            .collect();
        let vms = (0..self.vm_count())
            .map(|i| {
                let host = i / self.vms_per_host;
                let slot = i % self.vms_per_host;
                let config = VmConfig::small(format!("vm-{host}-{slot}"))
                    .with_memory_gb(4)
                    .with_inplace_compatible(self.is_compat(i));
                // The materialized profile carries the same seeded per-VM
                // dirty rate the lazy view derives, so both sides of the
                // equivalence tests see identical VMs.
                let mut profile = Self::profile_for_slot(slot);
                profile.dirty_rate_pages_per_sec *= self.dirty_multiplier(i);
                ClusterVm {
                    name: config.name.clone(),
                    config,
                    profile,
                    host,
                }
            })
            .collect();
        Cluster {
            hosts,
            vms,
            host_reserve_gb: self.host_reserve_gb,
        }
    }
}

impl ClusterView for SyntheticCluster {
    fn host_count(&self) -> usize {
        self.hosts
    }

    fn vm_count(&self) -> usize {
        self.hosts * self.vms_per_host
    }

    fn host_reserve_gb(&self) -> u64 {
        self.host_reserve_gb
    }

    fn host_spec(&self, _host: usize) -> &MachineSpec {
        &self.spec
    }

    fn vm(&self, vm: usize) -> VmView {
        debug_assert!(vm < self.vm_count());
        let profile = Self::profile_for_slot(vm % self.vms_per_host);
        VmView {
            memory_gb: 4,
            dirty_rate_pages_per_sec: profile.dirty_rate_pages_per_sec * self.dirty_multiplier(vm),
            inplace_compatible: self.is_compat(vm),
            home: vm / self.vms_per_host,
            peak_qps: profile.peak_qps(),
            migration_degradation: profile.migration_degradation,
        }
    }

    fn vm_name(&self, vm: usize) -> String {
        format!("vm-{}-{}", vm / self.vms_per_host, vm % self.vms_per_host)
    }

    fn uniform_spec(&self) -> Option<&MachineSpec> {
        Some(&self.spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn testbed_shape() {
        let c = Cluster::paper_testbed(0, 1);
        assert_eq!(c.hosts.len(), 10);
        assert_eq!(c.vms.len(), 100);
        for h in 0..10 {
            assert_eq!(c.vms_on(h).len(), 10);
            assert_eq!(c.host_used_gb(h), 40);
            assert_eq!(c.host_capacity_gb(h), 88);
        }
        // Mix: 30 streaming, 30 cpu, 40 idle.
        let streaming = c
            .vms
            .iter()
            .filter(|v| v.profile.name == "video-stream")
            .count();
        let cpu = c.vms.iter().filter(|v| v.profile.name == "cpu-mem").count();
        let idle = c.vms.iter().filter(|v| v.profile.name == "idle").count();
        assert_eq!((streaming, cpu, idle), (30, 30, 40));
    }

    #[test]
    fn compat_percent_is_exact() {
        for pct in [0u32, 20, 40, 60, 80] {
            let c = Cluster::paper_testbed(pct, 7);
            let n = c.vms.iter().filter(|v| v.config.inplace_compatible).count();
            assert_eq!(n as u32, pct, "compat at {pct}%");
        }
    }

    #[test]
    fn deterministic_assignment() {
        let a = Cluster::paper_testbed(40, 9);
        let b = Cluster::paper_testbed(40, 9);
        let fa: Vec<bool> = a.vms.iter().map(|v| v.config.inplace_compatible).collect();
        let fb: Vec<bool> = b.vms.iter().map(|v| v.config.inplace_compatible).collect();
        assert_eq!(fa, fb);
    }

    #[test]
    fn synthetic_view_matches_its_materialization() {
        let syn = Cluster::synthetic(37, 0xfee1).with_compat_percent(60);
        let mat = syn.materialize();
        assert_eq!(syn.host_count(), mat.host_count());
        assert_eq!(syn.vm_count(), mat.vm_count());
        assert_eq!(syn.host_reserve_gb(), mat.host_reserve_gb());
        for h in 0..syn.host_count() {
            assert_eq!(syn.host_spec(h), mat.host_spec(h));
            assert_eq!(
                ClusterView::host_capacity_gb(&syn, h),
                ClusterView::host_capacity_gb(&mat, h)
            );
        }
        for v in 0..syn.vm_count() {
            assert_eq!(syn.vm(v), mat.vm(v), "vm {v}");
            assert_eq!(syn.vm_name(v), mat.vm_name(v));
        }
    }

    #[test]
    fn synthetic_dirty_rates_spread_per_vm_but_stay_class_anchored() {
        let syn = Cluster::synthetic(50, 0xd1ff);
        let mat = syn.materialize();
        let mut distinct: Vec<u64> = Vec::new();
        for v in 0..syn.vm_count() {
            let view = syn.vm(v);
            // Materialize-identity: the lazy view and the Vec-backed
            // cluster derive the same per-VM dirty rate.
            assert_eq!(
                view.dirty_rate_pages_per_sec,
                mat.vm(v).dirty_rate_pages_per_sec,
                "vm {v}"
            );
            // Class-anchored: the rate is the slot profile's rate scaled
            // by one of the discrete multipliers.
            let base = SyntheticCluster::profile_for_slot(v % 10).dirty_rate_pages_per_sec;
            assert!(
                DIRTY_MULTIPLIERS
                    .iter()
                    .any(|m| (view.dirty_rate_pages_per_sec - base * m).abs() < 1e-9),
                "vm {v}: rate {} not a multiplier of class base {base}",
                view.dirty_rate_pages_per_sec
            );
            distinct.push(view.dirty_rate_pages_per_sec.to_bits());
        }
        distinct.sort_unstable();
        distinct.dedup();
        // Spread exists (more rates than classes) but the executor memo
        // stays bounded (at most classes × multipliers keys).
        assert!(distinct.len() > 3, "only {} distinct rates", distinct.len());
        assert!(
            distinct.len() <= 3 * DIRTY_MULTIPLIERS.len(),
            "{} distinct rates would bloat the exec memo",
            distinct.len()
        );
        // Same class, different VMs: slots 0 and 10 are both video-stream
        // on this seed spread — scan for at least one differing pair.
        let video_rates: Vec<f64> = (0..syn.vm_count())
            .filter(|v| v % 10 <= 2)
            .map(|v| syn.vm(v).dirty_rate_pages_per_sec)
            .collect();
        assert!(
            video_rates.iter().any(|&r| r != video_rates[0]),
            "per-VM spread missing within the video class"
        );
    }

    #[test]
    fn synthetic_compat_share_tracks_the_percent() {
        let syn = Cluster::synthetic(1000, 7).with_compat_percent(80);
        let n = (0..syn.vm_count())
            .filter(|&v| syn.vm(v).inplace_compatible)
            .count();
        let share = n as f64 / syn.vm_count() as f64;
        assert!((0.77..0.83).contains(&share), "share = {share}");
        // Seeds decorrelate the assignment.
        let other = Cluster::synthetic(1000, 8).with_compat_percent(80);
        let flips: Vec<bool> = (0..100).map(|v| syn.vm(v).inplace_compatible).collect();
        let flips2: Vec<bool> = (0..100).map(|v| other.vm(v).inplace_compatible).collect();
        assert_ne!(flips, flips2);
    }

    #[test]
    fn synthetic_uniform_spec_enables_memoization() {
        let syn = Cluster::synthetic(5, 1);
        assert!(syn.uniform_spec().is_some());
        // The paper testbed is uniform too; a mixed fleet is not.
        let mut c = Cluster::paper_testbed(0, 1);
        assert!(c.uniform_spec().is_some());
        c.hosts[3].spec = MachineSpec::m1();
        assert!(c.uniform_spec().is_none());
    }
}
