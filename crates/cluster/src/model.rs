//! The cluster model: hosts and placed VMs.

use hypertp_core::{HypervisorKind, VmConfig};
use hypertp_machine::MachineSpec;
use hypertp_sim::SimRng;
use hypertp_workloads::WorkloadProfile;

/// A VM placed somewhere in the cluster.
#[derive(Debug, Clone)]
pub struct ClusterVm {
    /// Unique name.
    pub name: String,
    /// Configuration (size, InPlaceTP compatibility).
    pub config: VmConfig,
    /// Workload profile (drives migration dirty rates).
    pub profile: WorkloadProfile,
    /// Current host index.
    pub host: usize,
}

/// One host's state.
#[derive(Debug, Clone)]
pub struct HostState {
    /// Hardware description.
    pub spec: MachineSpec,
    /// Hypervisor currently running.
    pub hypervisor: HypervisorKind,
    /// True once the host has been upgraded to the target hypervisor.
    pub upgraded: bool,
}

/// The cluster: hosts plus VM placement.
#[derive(Debug, Clone)]
pub struct Cluster {
    /// Hosts by index.
    pub hosts: Vec<HostState>,
    /// All VMs.
    pub vms: Vec<ClusterVm>,
    /// GiB reserved per host for the administration OS.
    pub host_reserve_gb: u64,
}

impl Cluster {
    /// Builds the §5.4 testbed: 10 hosts (2× E5-2630 v3, 96 GB, 10 Gbps),
    /// 10 VMs each (1 vCPU / 4 GB) with the paper's mix — 30% video
    /// streaming, 30% CPU+memory intensive, 40% idle — and
    /// `compat_percent` of the VMs marked InPlaceTP-compatible (assigned
    /// deterministically from `seed`).
    pub fn paper_testbed(compat_percent: u32, seed: u64) -> Cluster {
        let mut rng = SimRng::new(seed);
        let hosts = (0..10)
            .map(|_| HostState {
                spec: MachineSpec::cluster_node(),
                hypervisor: HypervisorKind::Xen,
                upgraded: false,
            })
            .collect();
        let mut vms = Vec::new();
        let total = 100usize;
        // Deterministic compatibility assignment: choose exactly
        // compat_percent% of the VM indices.
        let compat_count = (total as u64 * compat_percent as u64 / 100) as usize;
        let compat_idx = rng.sample_indices(total, compat_count);
        let is_compat = {
            let mut v = vec![false; total];
            for &i in &compat_idx {
                v[i] = true;
            }
            v
        };
        for host in 0..10 {
            for slot in 0..10 {
                let idx = host * 10 + slot;
                let profile = match slot % 10 {
                    0..=2 => WorkloadProfile::video_stream(),
                    3..=5 => WorkloadProfile::cpu_mem(),
                    _ => WorkloadProfile::idle(),
                };
                let config = VmConfig::small(format!("vm-{host}-{slot}"))
                    .with_memory_gb(4)
                    .with_inplace_compatible(is_compat[idx]);
                vms.push(ClusterVm {
                    name: config.name.clone(),
                    config,
                    profile,
                    host,
                });
            }
        }
        Cluster {
            hosts,
            vms,
            host_reserve_gb: 8,
        }
    }

    /// VM slots (by GiB) available on a host.
    pub fn host_capacity_gb(&self, host: usize) -> u64 {
        self.hosts[host].spec.ram_gb - self.host_reserve_gb
    }

    /// GiB currently used by VMs on a host.
    pub fn host_used_gb(&self, host: usize) -> u64 {
        self.vms
            .iter()
            .filter(|v| v.host == host)
            .map(|v| v.config.memory_gb)
            .sum()
    }

    /// Free GiB on a host.
    pub fn host_free_gb(&self, host: usize) -> u64 {
        self.host_capacity_gb(host)
            .saturating_sub(self.host_used_gb(host))
    }

    /// Indices of the VMs on a host.
    pub fn vms_on(&self, host: usize) -> Vec<usize> {
        (0..self.vms.len())
            .filter(|&i| self.vms[i].host == host)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn testbed_shape() {
        let c = Cluster::paper_testbed(0, 1);
        assert_eq!(c.hosts.len(), 10);
        assert_eq!(c.vms.len(), 100);
        for h in 0..10 {
            assert_eq!(c.vms_on(h).len(), 10);
            assert_eq!(c.host_used_gb(h), 40);
            assert_eq!(c.host_capacity_gb(h), 88);
        }
        // Mix: 30 streaming, 30 cpu, 40 idle.
        let streaming = c
            .vms
            .iter()
            .filter(|v| v.profile.name == "video-stream")
            .count();
        let cpu = c.vms.iter().filter(|v| v.profile.name == "cpu-mem").count();
        let idle = c.vms.iter().filter(|v| v.profile.name == "idle").count();
        assert_eq!((streaming, cpu, idle), (30, 30, 40));
    }

    #[test]
    fn compat_percent_is_exact() {
        for pct in [0u32, 20, 40, 60, 80] {
            let c = Cluster::paper_testbed(pct, 7);
            let n = c.vms.iter().filter(|v| v.config.inplace_compatible).count();
            assert_eq!(n as u32, pct, "compat at {pct}%");
        }
    }

    #[test]
    fn deterministic_assignment() {
        let a = Cluster::paper_testbed(40, 9);
        let b = Cluster::paper_testbed(40, 9);
        let fa: Vec<bool> = a.vms.iter().map(|v| v.config.inplace_compatible).collect();
        let fb: Vec<bool> = b.vms.iter().map(|v| v.config.inplace_compatible).collect();
        assert_eq!(fa, fb);
    }
}
