//! Exposure-minimizing campaign planning over a live vulnerability feed.
//!
//! The paper's objective is shrinking the vulnerability window; this
//! module makes that the *optimized* quantity. Given a fleet (any
//! [`ClusterView`]) and a stream of [`FeedEvent`]s, the planner chooses —
//! per host, per disclosure — between an in-place upgrade, live
//! migration, and explicit deferral, minimizing **integrated exposure**
//!
//! ```text
//! ∫ affected-VM-count × surface-criticality dt
//! ```
//!
//! under the per-VM downtime budget. All exposure accounting in the
//! workspace flows through one [`ExposureIntegrator`] — the campaign
//! report's `exposure_avoided`/`residual_exposure`, the executor's
//! exposure time series, and this planner all accrue through it, so the
//! numbers can never drift apart.
//!
//! # The schedule
//!
//! Remediating a host at completion time `C` accrues
//! `vms × criticality × min(C, window)` exposure; deferring accrues the
//! full window. With every host of an event sharing the disclosure's
//! criticality, minimizing the sum is the classic weighted-completion-
//! time problem, and Smith's rule — remediate in ascending
//! cost-per-exposed-VM order — is optimal on the serialized fluid model
//! used here. The surface-blind baseline runs the identical machinery
//! with uniform weights and host-index order, so the committed
//! exposure-reduction floor measures planning, not physics.
//!
//! # Incremental re-planning
//!
//! Host remediation costs depend on the fleet, not the disclosure, so
//! [`ExposurePlanner`] evaluates them once — sharded over a
//! [`WorkerPool`] with per-class memoization, exactly like the executor —
//! and each feed event re-plans against the cached table. Re-planning a
//! 10k-host fleet is then a sort, not a cost-model sweep.

use std::collections::HashMap;

use hypertp_sim::cost::MachinePerf;
use hypertp_sim::pool::WorkerPool;
use hypertp_sim::stats::{Histogram, Streaming};
use hypertp_sim::{CostModel, SimDuration};
use hypertp_vulndb::feed::{FeedEvent, SurfaceWeights};
use hypertp_vulndb::Severity;

use crate::exec::{inplace_time, migration_estimate, ExecConfig};
use crate::model::ClusterView;

/// The single integrator behind every exposure figure in the workspace.
///
/// One disclosure's exposure is accrued VM by VM: a VM remediated at
/// campaign time `t` was exposed for `min(t, window)`; a VM never
/// remediated (deferred, or stranded on an excluded host) was exposed for
/// the whole window. Each accrual is weighted by the disclosure's
/// criticality, so the integral is the planner's objective
/// ∫ affected-VMs × criticality dt evaluated exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct ExposureIntegrator {
    criticality: f64,
    window_secs: f64,
    integral: f64,
    vms: f64,
}

impl ExposureIntegrator {
    /// An integrator for one disclosure of the given criticality and
    /// patch window.
    pub fn new(criticality: f64, window: SimDuration) -> ExposureIntegrator {
        ExposureIntegrator {
            criticality,
            window_secs: window.as_secs_f64(),
            integral: 0.0,
            vms: 0.0,
        }
    }

    /// Accrues `vms` VMs remediated at campaign instant `at`; returns the
    /// per-VM exposure-seconds accrued (`criticality × min(at, window)`).
    pub fn remediated(&mut self, vms: f64, at: SimDuration) -> f64 {
        let per_vm = self.criticality * at.as_secs_f64().min(self.window_secs);
        self.integral += vms * per_vm;
        self.vms += vms;
        per_vm
    }

    /// Accrues `vms` VMs that sit out the whole window; returns the
    /// per-VM exposure-seconds (`criticality × window`).
    pub fn deferred(&mut self, vms: f64) -> f64 {
        let per_vm = self.criticality * self.window_secs;
        self.integral += vms * per_vm;
        self.vms += vms;
        per_vm
    }

    /// The integral so far, in VM·criticality·seconds.
    pub fn integral(&self) -> f64 {
        self.integral
    }

    /// VMs accrued so far.
    pub fn vms(&self) -> f64 {
        self.vms
    }

    /// The window this integrator caps exposure at, in seconds.
    pub fn window_secs(&self) -> f64 {
        self.window_secs
    }

    /// A remediated VM's exposed fraction of the window (for bounded
    /// histograms); 0 when the window is empty.
    pub fn fraction(&self, per_vm_secs: f64) -> f64 {
        if self.window_secs <= 0.0 || self.criticality <= 0.0 {
            return 0.0;
        }
        per_vm_secs / (self.criticality * self.window_secs)
    }
}

/// The planner's per-host verdict for one disclosure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HostAction {
    /// Micro-reboot the host in place (InPlaceTP).
    InPlace,
    /// Evacuate the host's VMs by live migration (MigrationTP).
    Migrate,
    /// Leave the host on the vulnerable hypervisor until the patch: the
    /// disclosure sits below the (weighted) transplant threshold, or no
    /// remediation path fits the downtime budget.
    Defer,
}

/// The remediation economics of one host, independent of any disclosure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HostCost {
    /// Resident VMs.
    pub vms: u64,
    /// Every resident VM is InPlaceTP-compatible.
    pub inplace_ok: bool,
    /// In-place path: host blackout, which is also every resident VM's
    /// downtime. Zero when `!inplace_ok`.
    pub inplace_cost: SimDuration,
    /// Migration path: total serialized evacuation time of the host.
    pub migrate_cost: SimDuration,
    /// Migration path: worst per-VM stop-and-copy blackout (the final
    /// dirty-round retransfer).
    pub migrate_blackout: SimDuration,
}

/// Planner configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExposureConfig {
    /// Cost-model knobs shared with the executor (link, overheads,
    /// target, wire mode).
    pub exec: ExecConfig,
    /// Hosts remediated concurrently (the fluid-model drain rate; the
    /// rolling-upgrade group width plays this role in the executor).
    pub concurrent_hosts: usize,
    /// Per-VM downtime allowance: a host whose cheapest remediation path
    /// would blacken a VM longer than this is explicitly deferred.
    pub downtime_budget: SimDuration,
    /// Surface-criticality calibration (uniform = the raw-CVSS policy).
    pub weights: SurfaceWeights,
    /// `true` plans by weighted severity and Smith-rule order; `false` is
    /// the surface-blind baseline (raw severity, host-index order). Both
    /// report exposure in the same calibrated metric.
    pub surface_aware: bool,
}

impl Default for ExposureConfig {
    fn default() -> Self {
        ExposureConfig {
            exec: ExecConfig::default(),
            concurrent_hosts: 8,
            downtime_budget: SimDuration::from_secs(300),
            weights: SurfaceWeights::uniform(),
            surface_aware: true,
        }
    }
}

/// One disclosure's plan: per-host actions, the remediation order, and
/// the schedule's integrated exposure.
#[derive(Debug, Clone, PartialEq)]
pub struct EventPlan {
    /// Disclosure id.
    pub id: String,
    /// Calibrated criticality (weighted score / 10) of the disclosure.
    pub criticality: f64,
    /// Patch window.
    pub window: SimDuration,
    /// Per-host verdicts, indexed by host.
    pub actions: Vec<HostAction>,
    /// Whether the event was remediated at all (false ⇒ every action is
    /// [`HostAction::Defer`]: the patch cycle covers it).
    pub remediated: bool,
    /// Remediated only because surface weighting escalated a flaw raw
    /// CVSS leaves below threshold.
    pub escalated: bool,
    /// Integrated exposure of this schedule, VM·criticality·seconds.
    pub exposure_vm_secs: f64,
    /// Wall-clock length of the remediation drain.
    pub makespan: SimDuration,
    /// VMs remediated / left exposed for the window.
    pub remediated_vms: u64,
    /// VMs on deferred hosts.
    pub deferred_vms: u64,
}

impl EventPlan {
    /// Hosts per action.
    pub fn count(&self, action: HostAction) -> usize {
        self.actions.iter().filter(|&&a| a == action).count()
    }
}

/// Bounded-memory summary of a whole feed replay.
#[derive(Debug, Clone, PartialEq)]
pub struct FeedReport {
    /// Disclosures replayed.
    pub events: usize,
    /// Disclosures that triggered remediation.
    pub remediated_events: usize,
    /// Remediations only the surface weighting triggered.
    pub escalated_events: usize,
    /// Integrated exposure over the whole feed, VM·criticality·days.
    pub exposure_vm_days: f64,
    /// Sum of remediation makespans (the disruption price paid).
    pub disruption: SimDuration,
    /// VM remediations performed / VM-windows deferred, summed over
    /// events.
    pub remediated_vms: u64,
    /// VMs left exposed for a full window, summed over events.
    pub deferred_vms: u64,
    /// Per-event integrated exposure (VM·criticality·days).
    pub per_event: Streaming,
    /// Per-event mean exposed fraction of the window, bucketed on
    /// `[0, 1)`.
    pub per_event_hist: Histogram,
}

/// Buckets of [`FeedReport::per_event_hist`]: 20 × 5% bins of the window.
pub const EXPOSURE_HIST_BUCKETS: usize = 20;

impl FeedReport {
    fn new() -> FeedReport {
        FeedReport {
            events: 0,
            remediated_events: 0,
            escalated_events: 0,
            exposure_vm_days: 0.0,
            disruption: SimDuration::ZERO,
            remediated_vms: 0,
            deferred_vms: 0,
            per_event: Streaming::new(),
            per_event_hist: Histogram::new(0.0, 1.0, EXPOSURE_HIST_BUCKETS),
        }
    }

    /// Canonical byte-stable rendering: two replays produced the same
    /// report iff their renders match.
    pub fn render(&self) -> String {
        format!(
            "events={} remediated={} escalated={} exposure_vm_days={:?} disruption_ns={} \
             remediated_vms={} deferred_vms={} per_event{{{}}} hist{{{}}}",
            self.events,
            self.remediated_events,
            self.escalated_events,
            self.exposure_vm_days,
            self.disruption.as_nanos(),
            self.remediated_vms,
            self.deferred_vms,
            self.per_event.render(),
            self.per_event_hist.render(),
        )
    }
}

/// Shard-local memo for host-cost evaluation: migration keyed per VM
/// class, in-place per VM count (uniform-spec fleets only) — the same
/// collapse the executor's memo performs.
struct CostMemo {
    migration: HashMap<(u64, u64), (SimDuration, SimDuration)>,
    inplace: HashMap<usize, SimDuration>,
}

fn host_cost<V: ClusterView + ?Sized>(
    view: &V,
    cfg: &ExposureConfig,
    host: usize,
    vms: &[usize],
    cost_model: &CostModel,
    uniform_perf: Option<&MachinePerf>,
    memo: &mut CostMemo,
) -> HostCost {
    let mut inplace_ok = !vms.is_empty();
    let mut migrate_cost = SimDuration::ZERO;
    let mut migrate_blackout = SimDuration::ZERO;
    for &vm in vms {
        let info = view.vm(vm);
        inplace_ok &= info.inplace_compatible;
        let key = (info.memory_gb, info.dirty_rate_pages_per_sec.to_bits());
        let (time, blackout) = match memo.migration.get(&key) {
            Some(&v) => v,
            None => {
                let (time, _, _) =
                    migration_estimate(&cfg.exec, info.memory_gb, info.dirty_rate_pages_per_sec, 1);
                // The per-VM blackout is the stop-and-copy: the dirty
                // pages written during the pre-copy round must be re-sent
                // with the VM paused (§3's downtime accounting).
                let copy = cfg.exec.link.transfer(info.memory_gb << 30, 1);
                let dirty = (info.dirty_rate_pages_per_sec * copy.as_secs_f64() * 4096.0) as u64;
                let blackout = cfg.exec.link.transfer(dirty, 1);
                memo.migration.insert(key, (time, blackout));
                (time, blackout)
            }
        };
        migrate_cost += time;
        migrate_blackout = migrate_blackout.max(blackout);
    }
    let inplace_cost = if inplace_ok {
        match uniform_perf {
            Some(perf) => match memo.inplace.get(&vms.len()) {
                Some(&d) => d,
                None => {
                    let d = inplace_time(perf, cost_model, &cfg.exec, vms.len(), cfg.exec.target);
                    memo.inplace.insert(vms.len(), d);
                    d
                }
            },
            None => inplace_time(
                &view.host_spec(host).perf(),
                cost_model,
                &cfg.exec,
                vms.len(),
                cfg.exec.target,
            ),
        }
    } else {
        SimDuration::ZERO
    };
    HostCost {
        vms: vms.len() as u64,
        inplace_ok,
        inplace_cost,
        migrate_cost,
        migrate_blackout,
    }
}

/// The incremental exposure planner: host costs are evaluated once (the
/// expensive, fleet-dependent part), each feed event re-plans against the
/// cached table (a sort and a prefix walk).
pub struct ExposurePlanner<'a, V: ClusterView + ?Sized> {
    view: &'a V,
    cfg: ExposureConfig,
    costs: Vec<HostCost>,
}

impl<'a, V: ClusterView + ?Sized> ExposurePlanner<'a, V> {
    /// Builds the planner serially.
    pub fn new(view: &'a V, cfg: ExposureConfig) -> ExposurePlanner<'a, V> {
        ExposurePlanner::with_pool(view, cfg, 1, &WorkerPool::serial())
    }

    /// Builds the planner with host-cost evaluation fanned over `shards`
    /// contiguous host ranges on `pool`. The cost table — and therefore
    /// every plan and report — is byte-identical for every
    /// `(shards, workers)` combination: each host's cost is a pure
    /// function of the view and config.
    pub fn with_pool(
        view: &'a V,
        cfg: ExposureConfig,
        shards: usize,
        pool: &WorkerPool,
    ) -> ExposurePlanner<'a, V> {
        let hosts = view.host_count();
        let mut by_host: Vec<Vec<usize>> = vec![Vec::new(); hosts];
        for vm in 0..view.vm_count() {
            by_host[view.vm(vm).home].push(vm);
        }
        let cost_model = CostModel::paper_calibrated();
        let uniform_perf = view.uniform_spec().map(|s| s.perf());
        let batch = pool.map_chunks(hosts, shards.max(1), |range| {
            let mut memo = CostMemo {
                migration: HashMap::new(),
                inplace: HashMap::new(),
            };
            range
                .map(|h| {
                    host_cost(
                        view,
                        &cfg,
                        h,
                        &by_host[h],
                        &cost_model,
                        uniform_perf.as_ref(),
                        &mut memo,
                    )
                })
                .collect::<Vec<HostCost>>()
        });
        let costs: Vec<HostCost> = batch.results.into_iter().flatten().collect();
        ExposurePlanner { view, cfg, costs }
    }

    /// The cached per-host cost table.
    pub fn costs(&self) -> &[HostCost] {
        &self.costs
    }

    /// The view this planner serves.
    pub fn view(&self) -> &V {
        self.view
    }

    /// Plans one disclosure. Pure in `(self, event)` — re-planning on the
    /// next event needs no recomputation, only this call.
    pub fn plan_event(&self, ev: &FeedEvent) -> EventPlan {
        let cfg = &self.cfg;
        let criticality = cfg.weights.criticality(&ev.vuln.cvss, ev.surface);
        let window = ev.window();
        let raw_critical = ev.vuln.severity() == Severity::Critical;
        // The aware planner escalates flaws whose weighted score crosses
        // the critical band; it never demotes a raw critical (deferring a
        // remediable critical could only add exposure).
        let weighted_critical =
            cfg.weights.effective_severity(&ev.vuln.cvss, ev.surface) == Severity::Critical;
        let remediated = if cfg.surface_aware {
            raw_critical || weighted_critical
        } else {
            raw_critical
        };
        let mut integ = ExposureIntegrator::new(criticality, window);
        let mut actions = vec![HostAction::Defer; self.costs.len()];
        let mut active: Vec<(usize, SimDuration)> = Vec::new();
        if remediated {
            for (h, c) in self.costs.iter().enumerate() {
                if c.vms == 0 {
                    continue;
                }
                let inplace_fits = c.inplace_ok && c.inplace_cost <= cfg.downtime_budget;
                let migrate_fits = c.migrate_blackout <= cfg.downtime_budget;
                let action = match (inplace_fits, migrate_fits) {
                    (true, true) => {
                        if c.inplace_cost <= c.migrate_cost {
                            HostAction::InPlace
                        } else {
                            HostAction::Migrate
                        }
                    }
                    (true, false) => HostAction::InPlace,
                    (false, true) => HostAction::Migrate,
                    (false, false) => HostAction::Defer,
                };
                actions[h] = action;
                match action {
                    HostAction::InPlace => active.push((h, c.inplace_cost)),
                    HostAction::Migrate => active.push((h, c.migrate_cost)),
                    HostAction::Defer => {}
                }
            }
            if cfg.surface_aware {
                // Smith's rule: ascending cost per exposed VM minimizes
                // Σ weight × completion on the fluid drain. Ties fall to
                // the host index, so the schedule is deterministic.
                active.sort_by(|a, b| {
                    let ka = a.1.as_secs_f64() / self.costs[a.0].vms as f64;
                    let kb = b.1.as_secs_f64() / self.costs[b.0].vms as f64;
                    ka.partial_cmp(&kb)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.0.cmp(&b.0))
                });
            }
        }
        let rate = cfg.concurrent_hosts.max(1) as f64;
        let mut running = SimDuration::ZERO;
        let mut remediated_vms = 0u64;
        for &(h, c) in &active {
            running += SimDuration::from_secs_f64(c.as_secs_f64() / rate);
            integ.remediated(self.costs[h].vms as f64, running);
            remediated_vms += self.costs[h].vms;
        }
        let mut deferred_vms = 0u64;
        for (h, c) in self.costs.iter().enumerate() {
            if actions[h] == HostAction::Defer && c.vms > 0 {
                integ.deferred(c.vms as f64);
                deferred_vms += c.vms;
            }
        }
        EventPlan {
            id: ev.vuln.id.clone(),
            criticality,
            window,
            actions,
            remediated,
            escalated: remediated && !raw_critical,
            exposure_vm_secs: integ.integral(),
            makespan: running,
            remediated_vms,
            deferred_vms,
        }
    }

    /// Replays a whole feed incrementally: one cached cost table, one
    /// [`plan_event`] per disclosure.
    ///
    /// [`plan_event`]: ExposurePlanner::plan_event
    pub fn replay(&self, events: &[FeedEvent]) -> FeedReport {
        let mut report = FeedReport::new();
        for ev in events {
            let plan = self.plan_event(ev);
            report.events += 1;
            if plan.remediated {
                report.remediated_events += 1;
            }
            if plan.escalated {
                report.escalated_events += 1;
            }
            let days = plan.exposure_vm_secs / 86_400.0;
            report.exposure_vm_days += days;
            report.disruption += plan.makespan;
            report.remediated_vms += plan.remediated_vms;
            report.deferred_vms += plan.deferred_vms;
            report.per_event.push(days);
            let total_vms = plan.remediated_vms + plan.deferred_vms;
            let denom = plan.criticality * plan.window.as_secs_f64() * total_vms as f64;
            if denom > 0.0 {
                report.per_event_hist.record(plan.exposure_vm_secs / denom);
            }
        }
        report
    }
}

/// Replays `events` against `view` in one call: builds the planner
/// (sharded host-cost evaluation) and runs the incremental replay.
pub fn replay_feed<V: ClusterView + ?Sized>(
    view: &V,
    events: &[FeedEvent],
    cfg: &ExposureConfig,
    shards: usize,
    pool: &WorkerPool,
) -> FeedReport {
    ExposurePlanner::with_pool(view, *cfg, shards, pool).replay(events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Cluster;
    use hypertp_vulndb::{dataset::dataset, VulnFeed};

    fn year_feed(seed: u64) -> Vec<FeedEvent> {
        VulnFeed::new(seed).replay(SimDuration::from_secs(365 * 86_400))
    }

    #[test]
    fn integrator_caps_at_the_window_and_sums() {
        let w = SimDuration::from_secs(100);
        let mut i = ExposureIntegrator::new(0.5, w);
        assert_eq!(i.remediated(2.0, SimDuration::from_secs(10)), 5.0);
        assert_eq!(i.remediated(1.0, SimDuration::from_secs(1000)), 50.0);
        assert_eq!(i.deferred(1.0), 50.0);
        assert_eq!(i.integral(), 2.0 * 5.0 + 50.0 + 50.0);
        assert_eq!(i.vms(), 4.0);
        assert_eq!(i.fraction(5.0), 0.1);
    }

    #[test]
    fn aware_replay_never_exceeds_blind_and_is_deterministic() {
        let view = Cluster::synthetic(60, 0xfeed).with_compat_percent(70);
        let events = year_feed(0xfeed);
        let weights = SurfaceWeights::calibrated(&dataset());
        let aware_cfg = ExposureConfig {
            weights,
            surface_aware: true,
            ..ExposureConfig::default()
        };
        let blind_cfg = ExposureConfig {
            surface_aware: false,
            ..aware_cfg
        };
        let pool = WorkerPool::serial();
        let aware = replay_feed(&view, &events, &aware_cfg, 1, &pool);
        let blind = replay_feed(&view, &events, &blind_cfg, 1, &pool);
        assert!(aware.exposure_vm_days <= blind.exposure_vm_days);
        assert!(aware.remediated_events >= blind.remediated_events);
        assert_eq!(blind.escalated_events, 0);
        let again = replay_feed(&view, &events, &aware_cfg, 1, &pool);
        assert_eq!(aware.render(), again.render());
    }

    #[test]
    fn replay_is_shard_and_worker_invariant() {
        let view = Cluster::synthetic(40, 7).with_compat_percent(80);
        let events = year_feed(7);
        let cfg = ExposureConfig {
            weights: SurfaceWeights::calibrated(&dataset()),
            ..ExposureConfig::default()
        };
        let base = replay_feed(&view, &events, &cfg, 1, &WorkerPool::serial()).render();
        for (shards, workers) in [(3, 2), (8, 4), (40, 1)] {
            let r = replay_feed(&view, &events, &cfg, shards, &WorkerPool::new(workers));
            assert_eq!(base, r.render(), "shards={shards} workers={workers}");
        }
    }

    #[test]
    fn tight_budget_defers_everything() {
        let view = Cluster::synthetic(10, 3);
        let events = year_feed(3);
        let cfg = ExposureConfig {
            downtime_budget: SimDuration::ZERO,
            ..ExposureConfig::default()
        };
        let planner = ExposurePlanner::new(&view, cfg);
        for ev in &events {
            let plan = planner.plan_event(ev);
            assert!(plan.actions.iter().all(|&a| a == HostAction::Defer));
            assert_eq!(plan.makespan, SimDuration::ZERO);
            assert_eq!(plan.remediated_vms, 0);
        }
    }

    #[test]
    fn empty_feed_is_a_no_op() {
        let view = Cluster::synthetic(10, 3);
        let r = replay_feed(
            &view,
            &[],
            &ExposureConfig::default(),
            1,
            &WorkerPool::serial(),
        );
        assert_eq!(r.events, 0);
        assert_eq!(r.exposure_vm_days, 0.0);
        assert_eq!(r.disruption, SimDuration::ZERO);
    }
}
