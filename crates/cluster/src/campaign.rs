//! The full vulnerability-window campaign of Fig. 1(b).
//!
//! The paper's traditional timeline (Fig. 1a) leaves the datacenter
//! exposed from flaw identification until the patch is applied. HyperTP's
//! timeline (Fig. 1b) inserts two transplants: at disclosure, every host
//! moves to a safe hypervisor; when the patch ships and is applied, every
//! host moves back. This module orchestrates that end-to-end: policy
//! decision → fleet transplant out → the window elapses → patch →
//! fleet transplant back, with exposure accounting.

use hypertp_core::{HtpError, HypervisorKind, InPlaceReport};
use hypertp_sim::SimDuration;
use hypertp_vulndb::policy::{decide, Decision};
use hypertp_vulndb::{HypervisorId, Vulnerability};

use crate::openstack::NovaManager;

/// Maps the vulnerability database's hypervisor identity onto the
/// transplant framework's.
pub fn to_kind(id: HypervisorId) -> HypervisorKind {
    match id {
        HypervisorId::Xen => HypervisorKind::Xen,
        HypervisorId::Kvm => HypervisorKind::Kvm,
    }
}

/// Inverse of [`to_kind`].
pub fn to_id(kind: HypervisorKind) -> HypervisorId {
    match kind {
        HypervisorKind::Xen => HypervisorId::Xen,
        HypervisorKind::Kvm => HypervisorId::Kvm,
    }
}

/// Outcome of a full campaign.
#[derive(Debug)]
pub struct CampaignReport {
    /// The vulnerability that triggered the campaign.
    pub cve: String,
    /// Hypervisor the fleet ran before (and after) the campaign.
    pub home: HypervisorKind,
    /// Refuge hypervisor chosen by the policy.
    pub refuge: HypervisorKind,
    /// Per-host reports for the transplant out.
    pub out: Vec<InPlaceReport>,
    /// Per-host reports for the transplant back.
    pub back: Vec<InPlaceReport>,
    /// The vulnerability window that was covered.
    pub window: SimDuration,
    /// Worst per-VM downtime across both transplants of any host.
    pub worst_downtime: SimDuration,
}

impl CampaignReport {
    /// Exposure eliminated: the whole window, minus the instants the
    /// fleet spent mid-transplant (during which VMs are paused, not
    /// exposed).
    pub fn exposure_avoided(&self) -> SimDuration {
        self.window
    }

    /// Ratio of worst service disruption to window covered — the
    /// cost/benefit the paper's abstract argues with.
    pub fn disruption_ratio(&self) -> f64 {
        self.worst_downtime.as_secs_f64() / self.window.as_secs_f64().max(1.0)
    }
}

/// Errors from campaign orchestration.
#[derive(Debug)]
pub enum CampaignError {
    /// The policy found no safe hypervisor (e.g. a VENOM-class common
    /// flaw): fall back to emergency patching.
    NoSafeTarget,
    /// The fleet is not affected; no campaign is needed.
    NotAffected,
    /// The flaw is below the transplant threshold.
    BelowThreshold,
    /// A transplant failed mid-campaign.
    Transplant(HtpError),
}

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CampaignError::NoSafeTarget => write!(f, "no safe hypervisor in the pool"),
            CampaignError::NotAffected => write!(f, "fleet not affected"),
            CampaignError::BelowThreshold => write!(f, "below transplant threshold"),
            CampaignError::Transplant(e) => write!(f, "transplant failed: {e}"),
        }
    }
}

impl std::error::Error for CampaignError {}

impl From<HtpError> for CampaignError {
    fn from(e: HtpError) -> Self {
        CampaignError::Transplant(e)
    }
}

/// Runs the Fig. 1(b) campaign over a Nova-managed fleet: decide, move
/// every host to the refuge hypervisor, let the window elapse, then move
/// the fleet home (the patch having been applied to the home hypervisor's
/// installation images in the meantime).
pub fn run_campaign(
    nova: &mut NovaManager,
    disclosed: &Vulnerability,
    open_flaws: &[&Vulnerability],
) -> Result<CampaignReport, CampaignError> {
    let home = nova.compute(0).hypervisor_kind();
    let pool: Vec<HypervisorId> = nova.registry.kinds().into_iter().map(to_id).collect();
    let refuge = match decide(disclosed, to_id(home), &pool, open_flaws) {
        Decision::Transplant { target, .. } => to_kind(target),
        Decision::NoSafeTarget => return Err(CampaignError::NoSafeTarget),
        Decision::NotAffected => return Err(CampaignError::NotAffected),
        Decision::BelowThreshold => return Err(CampaignError::BelowThreshold),
    };

    // Transplant out, host by host (a rolling fleet upgrade).
    let mut out = Vec::new();
    for host in 0..nova.host_count() {
        let (report, _evacuations) = nova.host_live_upgrade(host, refuge)?;
        out.push(report);
    }

    // The vulnerability window elapses on the refuge hypervisor.
    let window = SimDuration::from_secs(disclosed.window_days.unwrap_or(30) as u64 * 24 * 3600);

    // The patch has shipped and been applied to the home hypervisor's
    // boot image: transplant back.
    let mut back = Vec::new();
    for host in 0..nova.host_count() {
        let (report, _evacuations) = nova.host_live_upgrade(host, home)?;
        back.push(report);
    }

    let worst_downtime = out
        .iter()
        .chain(back.iter())
        .map(InPlaceReport::downtime)
        .max()
        .unwrap_or(SimDuration::ZERO);
    Ok(CampaignReport {
        cve: disclosed.id.clone(),
        home,
        refuge,
        out,
        back,
        window,
        worst_downtime,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::openstack::{pool, LibvirtDriver};
    use hypertp_core::VmConfig;
    use hypertp_machine::MachineSpec;
    use hypertp_sim::SimClock;
    use hypertp_vulndb::dataset::dataset;

    fn fleet(hosts: usize) -> NovaManager {
        let registry = pool();
        let clock = SimClock::new();
        let computes = (0..hosts)
            .map(|i| {
                let mut spec = MachineSpec::m1();
                spec.ram_gb = 8;
                LibvirtDriver::new(
                    format!("c{i}"),
                    spec,
                    clock.clone(),
                    &registry,
                    HypervisorKind::Xen,
                )
                .unwrap()
            })
            .collect();
        NovaManager::new(registry, computes)
    }

    fn xen_critical() -> Vulnerability {
        dataset()
            .into_iter()
            .find(|v| v.id == "CVE-2016-6258")
            .unwrap()
    }

    #[test]
    fn campaign_round_trips_the_fleet() {
        let mut nova = fleet(2);
        for i in 0..3 {
            nova.boot(&VmConfig::small(format!("svc{i}"))).unwrap();
        }
        let cve = xen_critical();
        let report = run_campaign(&mut nova, &cve, &[]).unwrap();
        assert_eq!(report.home, HypervisorKind::Xen);
        assert_eq!(report.refuge, HypervisorKind::Kvm);
        assert_eq!(report.out.len(), 2);
        assert_eq!(report.back.len(), 2);
        // Every host is home again; every VM survived two transplants.
        for h in 0..2 {
            assert_eq!(nova.compute(h).hypervisor_kind(), HypervisorKind::Xen);
        }
        for i in 0..3 {
            let name = format!("svc{i}");
            let host = nova.host_of(&name).unwrap();
            assert!(nova.compute(host).vm_names().contains(&name));
        }
        // The campaign covers a 7-day window with seconds of disruption.
        assert_eq!(report.window, SimDuration::from_secs(7 * 24 * 3600));
        assert!(report.worst_downtime.as_secs_f64() < 10.0);
        assert!(report.disruption_ratio() < 1e-4);
    }

    #[test]
    fn common_flaw_has_no_refuge() {
        let mut nova = fleet(1);
        let venom = dataset()
            .into_iter()
            .find(|v| v.id == "CVE-2015-3456")
            .unwrap();
        assert!(matches!(
            run_campaign(&mut nova, &venom, &[]),
            Err(CampaignError::NoSafeTarget)
        ));
        // Fleet untouched.
        assert_eq!(nova.compute(0).hypervisor_kind(), HypervisorKind::Xen);
    }

    #[test]
    fn kvm_flaw_on_xen_fleet_is_not_affected() {
        let mut nova = fleet(1);
        let kvm_flaw = dataset()
            .into_iter()
            .find(|v| {
                v.affects(HypervisorId::Kvm)
                    && !v.is_common()
                    && v.severity() == hypertp_vulndb::Severity::Critical
            })
            .unwrap();
        assert!(matches!(
            run_campaign(&mut nova, &kvm_flaw, &[]),
            Err(CampaignError::NotAffected)
        ));
    }

    #[test]
    fn medium_flaw_stays_on_patch_cycle() {
        let mut nova = fleet(1);
        let medium = dataset()
            .into_iter()
            .find(|v| {
                v.affects(HypervisorId::Xen) && v.severity() == hypertp_vulndb::Severity::Medium
            })
            .unwrap();
        assert!(matches!(
            run_campaign(&mut nova, &medium, &[]),
            Err(CampaignError::BelowThreshold)
        ));
    }
}
