//! The full vulnerability-window campaign of Fig. 1(b).
//!
//! The paper's traditional timeline (Fig. 1a) leaves the datacenter
//! exposed from flaw identification until the patch is applied. HyperTP's
//! timeline (Fig. 1b) inserts two transplants: at disclosure, every host
//! moves to a safe hypervisor; when the patch ships and is applied, every
//! host moves back. This module orchestrates that end-to-end: policy
//! decision → fleet transplant out → the window elapses → patch →
//! fleet transplant back, with exposure accounting.

use std::collections::VecDeque;

use hypertp_core::{
    crash_gate, host_failure_gate, HostGate, HtpError, HypervisorKind, InPlaceReport,
    RecoveryReport,
};
use hypertp_sim::fault::FaultPlan;
use hypertp_sim::pool::chunk_ranges;
use hypertp_sim::stats::{Histogram, Streaming};
use hypertp_sim::SimDuration;
use hypertp_vulndb::policy::{decide, Decision};
use hypertp_vulndb::{HypervisorId, Vulnerability};

use crate::openstack::NovaManager;

/// Maps the vulnerability database's hypervisor identity onto the
/// transplant framework's.
pub fn to_kind(id: HypervisorId) -> HypervisorKind {
    match id {
        HypervisorId::Xen => HypervisorKind::Xen,
        HypervisorId::Kvm => HypervisorKind::Kvm,
    }
}

/// Inverse of [`to_kind`].
pub fn to_id(kind: HypervisorKind) -> HypervisorId {
    match kind {
        HypervisorKind::Xen => HypervisorId::Xen,
        HypervisorKind::Kvm => HypervisorId::Kvm,
    }
}

/// Knobs for campaign orchestration under faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CampaignConfig {
    /// How many times a failed host upgrade is requeued to the back of
    /// the wave before the host is excluded from the campaign.
    pub max_host_retries: u32,
    /// If set, the patch ships after this many hosts have completed the
    /// transplant-out wave: the remaining hosts patch in place and never
    /// visit the refuge hypervisor.
    pub patch_after_hosts: Option<usize>,
    /// Number of contiguous host shards each wave is batched into. The
    /// driver calls stay sequential (the fleet manager is a single
    /// mutable control plane), but per-shard aggregates fold in shard
    /// order, so the report is byte-identical for every shard count. With
    /// faults armed the wave coerces to a single global queue — the fault
    /// plan's consultation order is part of the replay contract.
    pub shards: usize,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            max_host_retries: 2,
            patch_after_hosts: None,
            shards: 1,
        }
    }
}

/// Bucketing of each wave's per-host downtime histogram: 30 × 1 s bins
/// over `[0, 30 s)` — InPlaceTP downtimes are seconds, so the overflow
/// counter only fills on pathological hosts.
pub const DOWNTIME_HIST_BUCKETS: usize = 30;
const DOWNTIME_HIST_LO: f64 = 0.0;
const DOWNTIME_HIST_HI: f64 = 30.0;

/// Bounded-memory aggregate of one transplant wave. Replaces the per-host
/// `Vec<InPlaceReport>` the campaign used to carry: at 10k hosts the
/// report stays a few hundred bytes, and two waves are byte-comparable
/// via [`WaveReport::render`].
#[derive(Debug, Clone, PartialEq)]
pub struct WaveReport {
    /// Hosts that completed the transplant in this wave.
    pub upgrades: usize,
    /// VMs carried through the wave's transplants.
    pub vms: u64,
    /// Streaming aggregate (seconds) of per-host VM downtime.
    pub downtime: Streaming,
    /// Streaming aggregate (seconds) of per-host end-to-end transplant
    /// time (including the below-the-blackout phases).
    pub total: Streaming,
    /// Fixed-bucket histogram of the per-host downtimes (see
    /// [`DOWNTIME_HIST_BUCKETS`]).
    pub downtime_hist: Histogram,
    /// Worst per-VM downtime of any host in the wave.
    pub worst_downtime: SimDuration,
    /// Hosts that reached the target via unplanned crash recovery rather
    /// than a planned transplant (they still count in `upgrades`).
    pub crash_recoveries: usize,
}

impl WaveReport {
    /// An empty wave.
    pub fn new() -> WaveReport {
        WaveReport {
            upgrades: 0,
            vms: 0,
            downtime: Streaming::new(),
            total: Streaming::new(),
            downtime_hist: Histogram::new(
                DOWNTIME_HIST_LO,
                DOWNTIME_HIST_HI,
                DOWNTIME_HIST_BUCKETS,
            ),
            worst_downtime: SimDuration::ZERO,
            crash_recoveries: 0,
        }
    }

    /// Folds one host's transplant into the wave.
    pub fn push(&mut self, report: &InPlaceReport) {
        self.upgrades += 1;
        self.vms += report.vm_count as u64;
        let dt = report.downtime();
        self.downtime.push(dt.as_secs_f64());
        self.total.push(report.total().as_secs_f64());
        self.downtime_hist.record(dt.as_secs_f64());
        self.worst_downtime = self.worst_downtime.max(dt);
    }

    /// Folds one host's unplanned crash recovery into the wave: the host
    /// still landed on the target hypervisor, but its VMs' downtime is the
    /// recovery latency rather than a planned blackout.
    pub fn push_recovery(&mut self, report: &RecoveryReport) {
        self.upgrades += 1;
        self.crash_recoveries += 1;
        self.vms += report.vm_count as u64;
        let dt = report.recovery_latency;
        self.downtime.push(dt.as_secs_f64());
        self.total
            .push((report.recovery_latency + report.background_time).as_secs_f64());
        self.downtime_hist.record(dt.as_secs_f64());
        self.worst_downtime = self.worst_downtime.max(dt);
    }

    /// Folds another shard's aggregate into this one. Must be called in
    /// canonical shard order for bit-identical float sums.
    pub fn merge(&mut self, other: &WaveReport) {
        self.upgrades += other.upgrades;
        self.crash_recoveries += other.crash_recoveries;
        self.vms += other.vms;
        self.downtime.merge(&other.downtime);
        self.total.merge(&other.total);
        self.downtime_hist.merge(&other.downtime_hist);
        self.worst_downtime = self.worst_downtime.max(other.worst_downtime);
    }

    /// Number of hosts the wave upgraded.
    pub fn len(&self) -> usize {
        self.upgrades
    }

    /// True when the wave upgraded nothing.
    pub fn is_empty(&self) -> bool {
        self.upgrades == 0
    }

    /// Mean per-host downtime across the wave.
    pub fn mean_downtime(&self) -> SimDuration {
        SimDuration::from_secs_f64(self.downtime.mean())
    }

    /// Canonical byte-stable rendering: two waves aggregated the same
    /// hosts iff their renders match.
    pub fn render(&self) -> String {
        format!(
            "upgrades={} crashes={} vms={} worst_ns={} downtime{{{}}} total{{{}}} hist{{{}}}",
            self.upgrades,
            self.crash_recoveries,
            self.vms,
            self.worst_downtime.as_nanos(),
            self.downtime.render(),
            self.total.render(),
            self.downtime_hist.render(),
        )
    }
}

impl Default for WaveReport {
    fn default() -> Self {
        WaveReport::new()
    }
}

/// Outcome of a full campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignReport {
    /// The vulnerability that triggered the campaign.
    pub cve: String,
    /// Hypervisor the fleet ran before (and after) the campaign.
    pub home: HypervisorKind,
    /// Refuge hypervisor chosen by the policy.
    pub refuge: HypervisorKind,
    /// Streaming aggregate of the transplant-out wave.
    pub out: WaveReport,
    /// Streaming aggregate of the transplant-back wave.
    pub back: WaveReport,
    /// The vulnerability window that was covered.
    pub window: SimDuration,
    /// Worst per-VM downtime across both transplants of any host.
    pub worst_downtime: SimDuration,
    /// Number of hosts the campaign was responsible for.
    pub hosts_total: usize,
    /// Hosts excluded from the transplant-out wave after exhausting their
    /// retry budget: they ran the vulnerable hypervisor for the whole
    /// window (residual exposure).
    pub excluded_hosts: Vec<usize>,
    /// Hosts whose transplant *back* was abandoned: they remain on the
    /// refuge hypervisor — protected, but stranded away from home.
    pub stranded_hosts: Vec<usize>,
    /// VMs resident on excluded hosts — the workloads left exposed.
    pub residual_vms: usize,
    /// Hosts that skipped the refuge trip because the patch shipped
    /// mid-wave (see [`CampaignConfig::patch_after_hosts`]).
    pub skipped_after_patch: usize,
}

impl CampaignReport {
    /// Exposure eliminated: the whole window for every protected host;
    /// hosts excluded from the out-wave sat on the vulnerable hypervisor
    /// throughout, so their share of the window is *not* avoided.
    ///
    /// The complement of [`residual_exposure`] by construction —
    /// `avoided + residual == window` exactly — so both figures derive
    /// from the same [`crate::exposure::ExposureIntegrator`] accrual and
    /// can never drift from the executor's or the feed planner's
    /// accounting.
    ///
    /// [`residual_exposure`]: CampaignReport::residual_exposure
    pub fn exposure_avoided(&self) -> SimDuration {
        self.window.saturating_sub(self.residual_exposure())
    }

    /// Residual exposure: the window share of the excluded hosts,
    /// accrued through the workspace's single
    /// [`crate::exposure::ExposureIntegrator`] (each excluded host's
    /// fleet share is a deferred VM at unit criticality).
    pub fn residual_exposure(&self) -> SimDuration {
        if self.hosts_total == 0 || self.excluded_hosts.is_empty() {
            return SimDuration::ZERO;
        }
        let mut integ = crate::exposure::ExposureIntegrator::new(1.0, self.window);
        integ.deferred(self.excluded_hosts.len() as f64 / self.hosts_total as f64);
        SimDuration::from_secs_f64(integ.integral())
    }

    /// Ratio of worst service disruption to window covered — the
    /// cost/benefit the paper's abstract argues with.
    pub fn disruption_ratio(&self) -> f64 {
        self.worst_downtime.as_secs_f64() / self.window.as_secs_f64().max(1.0)
    }

    /// Canonical byte-stable rendering: two campaigns produced the same
    /// report iff their renders match (shard-identity checks compare
    /// this).
    pub fn render(&self) -> String {
        format!(
            "cve={} home={:?} refuge={:?} window_ns={} worst_ns={} hosts={} \
             excluded={:?} stranded={:?} residual_vms={} skipped={} \
             out{{{}}} back{{{}}}",
            self.cve,
            self.home,
            self.refuge,
            self.window.as_nanos(),
            self.worst_downtime.as_nanos(),
            self.hosts_total,
            self.excluded_hosts,
            self.stranded_hosts,
            self.residual_vms,
            self.skipped_after_patch,
            self.out.render(),
            self.back.render(),
        )
    }
}

/// Errors from campaign orchestration.
#[derive(Debug)]
pub enum CampaignError {
    /// The policy found no safe hypervisor (e.g. a VENOM-class common
    /// flaw): fall back to emergency patching.
    NoSafeTarget,
    /// The fleet is not affected; no campaign is needed.
    NotAffected,
    /// The flaw is below the transplant threshold.
    BelowThreshold,
    /// A transplant failed mid-campaign.
    Transplant(HtpError),
}

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CampaignError::NoSafeTarget => write!(f, "no safe hypervisor in the pool"),
            CampaignError::NotAffected => write!(f, "fleet not affected"),
            CampaignError::BelowThreshold => write!(f, "below transplant threshold"),
            CampaignError::Transplant(e) => write!(f, "transplant failed: {e}"),
        }
    }
}

impl std::error::Error for CampaignError {}

impl From<HtpError> for CampaignError {
    fn from(e: HtpError) -> Self {
        CampaignError::Transplant(e)
    }
}

/// Runs the Fig. 1(b) campaign over a Nova-managed fleet: decide, move
/// every host to the refuge hypervisor, let the window elapse, then move
/// the fleet home (the patch having been applied to the home hypervisor's
/// installation images in the meantime).
pub fn run_campaign(
    nova: &mut NovaManager,
    disclosed: &Vulnerability,
    open_flaws: &[&Vulnerability],
) -> Result<CampaignReport, CampaignError> {
    run_campaign_with(
        nova,
        disclosed,
        open_flaws,
        &FaultPlan::disarmed(),
        &CampaignConfig::default(),
    )
}

/// One wave of rolling host upgrades under fault injection.
struct WaveOutcome {
    /// Streaming aggregate of the wave's successful upgrades.
    report: WaveReport,
    /// Hosts upgraded, in completion order.
    upgraded: Vec<usize>,
    /// Hosts excluded after exhausting the retry budget.
    excluded: Vec<usize>,
    /// Hosts never attempted because the wave was cut short.
    skipped: Vec<usize>,
}

/// Drains one shard's queue through `nova.host_live_upgrade`, folding
/// results into `out`. Requeues go to the back of *this shard's* queue.
#[allow(clippy::too_many_arguments)]
fn drain_shard(
    nova: &mut NovaManager,
    mut queue: VecDeque<(usize, u32)>,
    target: HypervisorKind,
    faults: &FaultPlan,
    cfg: &CampaignConfig,
    wave: &str,
    stop_after: Option<usize>,
    out: &mut WaveOutcome,
) -> Result<(), CampaignError> {
    while let Some((host, attempts)) = queue.pop_front() {
        if stop_after.is_some_and(|k| out.upgraded.len() >= k) {
            out.skipped.push(host);
            continue;
        }
        let site = format!("{wave} host c{host}");
        match host_failure_gate(faults, &site, attempts, cfg.max_host_retries) {
            HostGate::Proceed => {
                // The hypervisor can crash right as the host's turn
                // comes: the unplanned path recovers it onto the same
                // target and the host rejoins the wave as upgraded.
                if crash_gate(faults, &format!("{site} crash")) {
                    let (report, _evacuations) = nova.host_crash_recover(host, target, faults)?;
                    out.report.push_recovery(&report);
                } else {
                    let (report, _evacuations) = nova.host_live_upgrade(host, target)?;
                    out.report.push(&report);
                }
                out.upgraded.push(host);
            }
            HostGate::Retry => queue.push_back((host, attempts + 1)),
            HostGate::Exclude => out.excluded.push(host),
        }
    }
    Ok(())
}

/// Rolls `hosts` through `nova.host_live_upgrade(host, target)` in
/// `cfg.shards` contiguous batches.
///
/// [`hypertp_sim::fault::InjectionPoint::HostFailure`] models a host that
/// faults mid-upgrade before any VM state is consumed (e.g. kexec refuses
/// to load the target kernel): the attempt is abandoned, the host's VMs
/// keep running on the old hypervisor, and the host is requeued at the
/// back of the wave
/// ([`hypertp_sim::fault::RecoveryAction::RequeuedHost`]). After
/// `max_host_retries` requeues the host is excluded
/// ([`hypertp_sim::fault::RecoveryAction::ExcludedHost`]) and the
/// campaign continues without it, accounting its VMs as residual
/// exposure. The retry/exclude verdict comes from the shared
/// [`host_failure_gate`], so the campaign's and the executor's fault
/// logs use the same wording and off-by-one.
///
/// Sharding batches the host list via
/// [`hypertp_sim::pool::chunk_ranges`]; shards run sequentially in order
/// (the manager is one mutable control plane), so a fault-free wave
/// visits hosts in exactly the unsharded order and the folded
/// [`WaveReport`] is byte-identical for every shard count. With faults
/// armed, requeue order matters, so the wave coerces to one global queue.
///
/// If `stop_after` is set, the wave is cut short once that many hosts
/// have completed: the rest land in `skipped` (the patch shipped before
/// their turn).
fn upgrade_wave(
    nova: &mut NovaManager,
    hosts: &[usize],
    target: HypervisorKind,
    faults: &FaultPlan,
    cfg: &CampaignConfig,
    wave: &str,
    stop_after: Option<usize>,
) -> Result<WaveOutcome, CampaignError> {
    let mut out = WaveOutcome {
        report: WaveReport::new(),
        upgraded: Vec::new(),
        excluded: Vec::new(),
        skipped: Vec::new(),
    };
    let shards = if faults.armed() { 1 } else { cfg.shards.max(1) };
    for range in chunk_ranges(hosts.len(), shards) {
        let queue: VecDeque<(usize, u32)> = hosts[range].iter().map(|&h| (h, 0)).collect();
        drain_shard(nova, queue, target, faults, cfg, wave, stop_after, &mut out)?;
    }
    Ok(out)
}

/// [`run_campaign`] with fault injection and recovery knobs: failed host
/// upgrades are requeued then excluded per [`CampaignConfig`], every
/// decision is recorded in `faults`' log, and the report accounts the
/// exposure left on excluded hosts.
pub fn run_campaign_with(
    nova: &mut NovaManager,
    disclosed: &Vulnerability,
    open_flaws: &[&Vulnerability],
    faults: &FaultPlan,
    cfg: &CampaignConfig,
) -> Result<CampaignReport, CampaignError> {
    if nova.host_count() == 0 {
        // An empty fleet has nothing exposed and nothing to transplant.
        return Err(CampaignError::NotAffected);
    }
    let home = nova.compute(0).hypervisor_kind();
    let pool: Vec<HypervisorId> = nova.registry.kinds().into_iter().map(to_id).collect();
    let refuge = match decide(disclosed, to_id(home), &pool, open_flaws) {
        Decision::Transplant { target, .. } => to_kind(target),
        Decision::NoSafeTarget => return Err(CampaignError::NoSafeTarget),
        Decision::NotAffected => return Err(CampaignError::NotAffected),
        Decision::BelowThreshold => return Err(CampaignError::BelowThreshold),
    };

    // Transplant out, host by host (a rolling fleet upgrade). Hosts that
    // fail are requeued, then excluded; if the patch ships mid-wave the
    // remaining hosts stay home and patch directly.
    let hosts_total = nova.host_count();
    let all_hosts: Vec<usize> = (0..hosts_total).collect();
    let wave_out = upgrade_wave(
        nova,
        &all_hosts,
        refuge,
        faults,
        cfg,
        "transplant-out",
        cfg.patch_after_hosts,
    )?;

    // The vulnerability window elapses on the refuge hypervisor.
    let window = SimDuration::from_secs(disclosed.window_days.unwrap_or(30) as u64 * 24 * 3600);

    // The patch has shipped and been applied to the home hypervisor's
    // boot image: transplant back — but only the hosts that actually
    // left. Excluded and patch-skipped hosts are still home.
    let wave_back = upgrade_wave(
        nova,
        &wave_out.upgraded,
        home,
        faults,
        cfg,
        "transplant-back",
        None,
    )?;

    let residual_vms = wave_out
        .excluded
        .iter()
        .map(|&h| nova.compute(h).vm_names().len())
        .sum();
    let worst_downtime = wave_out
        .report
        .worst_downtime
        .max(wave_back.report.worst_downtime);
    Ok(CampaignReport {
        cve: disclosed.id.clone(),
        home,
        refuge,
        out: wave_out.report,
        back: wave_back.report,
        window,
        worst_downtime,
        hosts_total,
        excluded_hosts: wave_out.excluded,
        stranded_hosts: wave_back.excluded,
        residual_vms,
        skipped_after_patch: wave_out.skipped.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::openstack::{pool, LibvirtDriver};
    use hypertp_core::VmConfig;
    use hypertp_machine::MachineSpec;
    use hypertp_sim::fault::{InjectionPoint, RecoveryAction};
    use hypertp_sim::SimClock;
    use hypertp_vulndb::dataset::dataset;

    fn fleet(hosts: usize) -> NovaManager {
        let registry = pool();
        let clock = SimClock::new();
        let computes = (0..hosts)
            .map(|i| {
                let mut spec = MachineSpec::m1();
                spec.ram_gb = 8;
                LibvirtDriver::new(
                    format!("c{i}"),
                    spec,
                    clock.clone(),
                    &registry,
                    HypervisorKind::Xen,
                )
                .unwrap()
            })
            .collect();
        NovaManager::new(registry, computes)
    }

    fn xen_critical() -> Vulnerability {
        dataset()
            .into_iter()
            .find(|v| v.id == "CVE-2016-6258")
            .unwrap()
    }

    #[test]
    fn campaign_round_trips_the_fleet() {
        let mut nova = fleet(2);
        for i in 0..3 {
            nova.boot(&VmConfig::small(format!("svc{i}"))).unwrap();
        }
        let cve = xen_critical();
        let report = run_campaign(&mut nova, &cve, &[]).unwrap();
        assert_eq!(report.home, HypervisorKind::Xen);
        assert_eq!(report.refuge, HypervisorKind::Kvm);
        assert_eq!(report.out.len(), 2);
        assert_eq!(report.back.len(), 2);
        // Every host is home again; every VM survived two transplants.
        for h in 0..2 {
            assert_eq!(nova.compute(h).hypervisor_kind(), HypervisorKind::Xen);
        }
        for i in 0..3 {
            let name = format!("svc{i}");
            let host = nova.host_of(&name).unwrap();
            assert!(nova.compute(host).vm_names().contains(&name));
        }
        // The campaign covers a 7-day window with seconds of disruption.
        assert_eq!(report.window, SimDuration::from_secs(7 * 24 * 3600));
        assert!(report.worst_downtime.as_secs_f64() < 10.0);
        assert!(report.disruption_ratio() < 1e-4);
    }

    #[test]
    fn empty_fleet_is_not_affected() {
        let mut nova = fleet(0);
        assert!(matches!(
            run_campaign(&mut nova, &xen_critical(), &[]),
            Err(CampaignError::NotAffected)
        ));
    }

    #[test]
    fn common_flaw_has_no_refuge() {
        let mut nova = fleet(1);
        let venom = dataset()
            .into_iter()
            .find(|v| v.id == "CVE-2015-3456")
            .unwrap();
        assert!(matches!(
            run_campaign(&mut nova, &venom, &[]),
            Err(CampaignError::NoSafeTarget)
        ));
        // Fleet untouched.
        assert_eq!(nova.compute(0).hypervisor_kind(), HypervisorKind::Xen);
    }

    #[test]
    fn kvm_flaw_on_xen_fleet_is_not_affected() {
        let mut nova = fleet(1);
        let kvm_flaw = dataset()
            .into_iter()
            .find(|v| {
                v.affects(HypervisorId::Kvm)
                    && !v.is_common()
                    && v.severity() == hypertp_vulndb::Severity::Critical
            })
            .unwrap();
        assert!(matches!(
            run_campaign(&mut nova, &kvm_flaw, &[]),
            Err(CampaignError::NotAffected)
        ));
    }

    #[test]
    fn transient_host_failure_is_requeued_and_fleet_fully_protected() {
        let mut nova = fleet(2);
        nova.boot(&VmConfig::small("a")).unwrap();
        nova.boot(&VmConfig::small("b")).unwrap();
        let faults = FaultPlan::new(0xc1a0_0001);
        faults.arm_once(InjectionPoint::HostFailure);
        let report = run_campaign_with(
            &mut nova,
            &xen_critical(),
            &[],
            &faults,
            &CampaignConfig::default(),
        )
        .unwrap();
        // One host faulted once, was requeued, and completed on retry:
        // the whole fleet is protected and back home.
        assert!(faults
            .log()
            .recovered_via(InjectionPoint::HostFailure, RecoveryAction::RequeuedHost));
        assert!(report.excluded_hosts.is_empty());
        assert_eq!(report.out.len(), 2);
        assert_eq!(report.back.len(), 2);
        assert_eq!(report.exposure_avoided(), report.window);
        assert_eq!(report.residual_exposure(), SimDuration::ZERO);
        for h in 0..2 {
            assert_eq!(nova.compute(h).hypervisor_kind(), HypervisorKind::Xen);
        }
    }

    #[test]
    fn persistent_host_failure_is_excluded_with_residual_exposure() {
        let mut nova = fleet(2);
        nova.boot(&VmConfig::small("a")).unwrap();
        nova.boot(&VmConfig::small("b")).unwrap();
        nova.boot(&VmConfig::small("c")).unwrap();
        let faults = FaultPlan::new(0xc1a0_0002);
        // The scheduler packs all three compatible VMs onto c1; doom it.
        // should_inject call ordinals for the out wave with queue
        // [c0, c1]: 1 = c0 (clean), 2 = c1 (requeue, attempt 1),
        // 3 = c1 (requeue, attempt 2), 4 = c1 (excluded, attempt 3).
        faults.arm_calls(InjectionPoint::HostFailure, &[2, 3, 4]);
        let report = run_campaign_with(
            &mut nova,
            &xen_critical(),
            &[],
            &faults,
            &CampaignConfig::default(),
        )
        .unwrap();
        assert_eq!(report.excluded_hosts, vec![1]);
        assert!(faults
            .log()
            .recovered_via(InjectionPoint::HostFailure, RecoveryAction::ExcludedHost));
        // Only c0 made the round trip; c1's VMs are residual exposure.
        assert_eq!(report.out.len(), 1);
        assert_eq!(report.back.len(), 1);
        assert_eq!(report.residual_vms, nova.compute(1).vm_names().len());
        assert!(report.residual_vms > 0);
        assert!(report.exposure_avoided() < report.window);
        assert!(report.residual_exposure() > SimDuration::ZERO);
        // The excluded host never transplanted: still on the vulnerable
        // home hypervisor, VMs intact.
        assert_eq!(nova.compute(0).hypervisor_kind(), HypervisorKind::Xen);
        assert_eq!(nova.compute(1).hypervisor_kind(), HypervisorKind::Xen);
        // No VM was lost anywhere in the fleet.
        let total: usize = (0..2).map(|h| nova.compute(h).vm_names().len()).sum();
        assert_eq!(total, 3);
    }

    #[test]
    fn crashed_host_rejoins_the_wave_recovered() {
        let mut nova = fleet(2);
        nova.boot(&VmConfig::small("a")).unwrap();
        nova.boot(&VmConfig::small("b")).unwrap();
        let faults = FaultPlan::new(0xc1a0_0004);
        // Crash-gate ordinal 2 = the second host's out-wave turn (the
        // scheduler packed both VMs there): its hypervisor dies and the
        // unplanned path recovers it onto the refuge.
        faults.arm_calls(InjectionPoint::HypervisorCrash, &[2]);
        let report = run_campaign_with(
            &mut nova,
            &xen_critical(),
            &[],
            &faults,
            &CampaignConfig::default(),
        )
        .unwrap();
        assert_eq!(report.out.crash_recoveries, 1);
        assert_eq!(report.out.len(), 2, "the crashed host rejoined the wave");
        assert_eq!(report.back.len(), 2);
        assert!(report.excluded_hosts.is_empty());
        assert!(faults.log().recovered_via(
            InjectionPoint::HypervisorCrash,
            RecoveryAction::MicroRebooted
        ));
        assert!(faults.log().recovered_via(
            InjectionPoint::HypervisorCrash,
            RecoveryAction::RestoredFromCheckpoint
        ));
        // Everyone is home, no VM lost anywhere.
        for h in 0..2 {
            assert_eq!(nova.compute(h).hypervisor_kind(), HypervisorKind::Xen);
        }
        let total: usize = (0..2).map(|h| nova.compute(h).vm_names().len()).sum();
        assert_eq!(total, 2);
        assert_eq!(report.exposure_avoided(), report.window);
    }

    #[test]
    fn patch_shipping_mid_wave_cuts_the_out_wave_short() {
        let mut nova = fleet(3);
        for i in 0..3 {
            nova.boot(&VmConfig::small(format!("svc{i}"))).unwrap();
        }
        let cfg = CampaignConfig {
            patch_after_hosts: Some(1),
            ..CampaignConfig::default()
        };
        let report = run_campaign_with(
            &mut nova,
            &xen_critical(),
            &[],
            &FaultPlan::disarmed(),
            &cfg,
        )
        .unwrap();
        // Only the first host visited the refuge; the other two patched
        // at home once the fix shipped.
        assert_eq!(report.out.len(), 1);
        assert_eq!(report.back.len(), 1);
        assert_eq!(report.skipped_after_patch, 2);
        assert!(report.excluded_hosts.is_empty());
        // Everyone ends up home regardless of the path taken.
        for h in 0..3 {
            assert_eq!(nova.compute(h).hypervisor_kind(), HypervisorKind::Xen);
        }
    }

    #[test]
    fn disruption_ratio_guards_a_zero_window() {
        let report = CampaignReport {
            cve: "CVE-0000-0000".into(),
            home: HypervisorKind::Xen,
            refuge: HypervisorKind::Kvm,
            out: WaveReport::new(),
            back: WaveReport::new(),
            window: SimDuration::ZERO,
            worst_downtime: SimDuration::from_secs(5),
            hosts_total: 1,
            excluded_hosts: Vec::new(),
            stranded_hosts: Vec::new(),
            residual_vms: 0,
            skipped_after_patch: 0,
        };
        // The ratio clamps the denominator at one second: finite, never
        // NaN/inf even for an instantly-patched flaw.
        assert_eq!(report.disruption_ratio(), 5.0);
        assert!(report.disruption_ratio().is_finite());
        assert_eq!(report.exposure_avoided(), SimDuration::ZERO);
        assert_eq!(report.residual_exposure(), SimDuration::ZERO);
    }

    #[test]
    fn sharded_wave_report_is_byte_identical_for_any_shard_count() {
        let run = |shards: usize| {
            let mut nova = fleet(5);
            for i in 0..6 {
                nova.boot(&VmConfig::small(format!("svc{i}"))).unwrap();
            }
            let cfg = CampaignConfig {
                shards,
                ..CampaignConfig::default()
            };
            run_campaign_with(
                &mut nova,
                &xen_critical(),
                &[],
                &FaultPlan::disarmed(),
                &cfg,
            )
            .unwrap()
        };
        let base = run(1);
        for shards in [2usize, 3, 5, 16] {
            let r = run(shards);
            assert_eq!(r, base, "shards={shards}");
            assert_eq!(r.render(), base.render());
        }
        // The streaming aggregates are consistent with the host count.
        assert_eq!(base.out.len(), 5);
        assert_eq!(base.out.downtime.count, 5);
        assert_eq!(base.out.downtime_hist.total(), 5);
        assert_eq!(base.out.vms, 6);
        assert_eq!(base.back.upgrades, 5);
        assert!(base.out.mean_downtime() <= base.out.worst_downtime);
        assert_eq!(
            base.worst_downtime,
            base.out.worst_downtime.max(base.back.worst_downtime)
        );
    }

    #[test]
    fn armed_faults_coerce_the_wave_to_one_queue() {
        let run = |shards: usize| {
            let mut nova = fleet(3);
            for i in 0..3 {
                nova.boot(&VmConfig::small(format!("svc{i}"))).unwrap();
            }
            let faults = FaultPlan::new(0xc1a0_0003);
            faults.arm(InjectionPoint::HostFailure, 0.5, u64::MAX);
            let cfg = CampaignConfig {
                shards,
                ..CampaignConfig::default()
            };
            let r = run_campaign_with(&mut nova, &xen_critical(), &[], &faults, &cfg).unwrap();
            (r.render(), faults.log().render())
        };
        // Fault replay order is part of the contract: any shard count
        // must reproduce the single-queue walk exactly.
        assert_eq!(run(1), run(4));
        assert_eq!(run(1), run(3));
    }

    #[test]
    fn exposure_accessors_partition_the_window_exactly() {
        // Satellite of the single-integrator refactor: avoided and
        // residual exposure are two views of one accrual, so they must
        // partition the window exactly — on a clean (feed-free) campaign
        // and on one with excluded hosts alike.
        let mut nova = fleet(2);
        nova.boot(&VmConfig::small("a")).unwrap();
        let clean = run_campaign(&mut nova, &xen_critical(), &[]).unwrap();
        assert_eq!(clean.residual_exposure(), SimDuration::ZERO);
        assert_eq!(
            clean.exposure_avoided() + clean.residual_exposure(),
            clean.window
        );

        let mut nova = fleet(2);
        nova.boot(&VmConfig::small("a")).unwrap();
        nova.boot(&VmConfig::small("b")).unwrap();
        nova.boot(&VmConfig::small("c")).unwrap();
        let faults = FaultPlan::new(0xc1a0_0002);
        faults.arm_calls(InjectionPoint::HostFailure, &[2, 3, 4]);
        let excluded = run_campaign_with(
            &mut nova,
            &xen_critical(),
            &[],
            &faults,
            &CampaignConfig::default(),
        )
        .unwrap();
        assert!(!excluded.excluded_hosts.is_empty());
        assert!(excluded.residual_exposure() > SimDuration::ZERO);
        assert_eq!(
            excluded.exposure_avoided() + excluded.residual_exposure(),
            excluded.window
        );
    }

    #[test]
    fn medium_flaw_stays_on_patch_cycle() {
        let mut nova = fleet(1);
        let medium = dataset()
            .into_iter()
            .find(|v| {
                v.affects(HypervisorId::Xen) && v.severity() == hypertp_vulndb::Severity::Medium
            })
            .unwrap();
        assert!(matches!(
            run_campaign(&mut nova, &medium, &[]),
            Err(CampaignError::BelowThreshold)
        ));
    }
}
