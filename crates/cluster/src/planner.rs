//! The BtrPlace-like reconfiguration planner.
//!
//! §5.4 divides the cluster into groups, sequentially takes each group
//! offline (its VMs placed on other hosts), and records the resulting
//! plans. We reproduce that structure: for each group, every VM on a
//! group host that cannot ride through InPlaceTP is migrated to the host
//! with the most free capacity outside the group (preferring
//! already-upgraded hosts so it never has to move again); compatible VMs
//! stay and are carried through the host's in-place transplant.
//!
//! The planner is generic over [`ClusterView`], so it runs unchanged over
//! a materialized [`crate::model::Cluster`] or a lazy
//! [`crate::model::SyntheticCluster`]. Placement state is an overlay
//! (per-host free GiB, a current-host array, per-host arrival lists) and
//! target selection is an ordered-set lookup, so planning is
//! O((V + H·G⁻¹·…) log H) — near-linear in fleet size — instead of the
//! O(H·V) full-scan-per-host shape that capped the old implementation at
//! toy fleets. The produced [`Plan`] is byte-identical to the scan-based
//! planner's (the test module keeps that one as an oracle).

use std::collections::BTreeSet;

use crate::model::ClusterView;

/// One step of a reconfiguration plan.
#[derive(Debug, Clone, PartialEq)]
pub enum Action {
    /// Live-migrate (MigrationTP) a VM between hosts.
    Migrate {
        /// VM index into `Cluster::vms`.
        vm: usize,
        /// Source host.
        from: usize,
        /// Destination host.
        to: usize,
    },
    /// Upgrade a host in place (InPlaceTP), carrying `vm_count` resident
    /// compatible VMs through the micro-reboot.
    InPlaceUpgrade {
        /// Host index.
        host: usize,
        /// Number of VMs transplanted with the host.
        vm_count: usize,
    },
}

/// A reconfiguration plan: actions grouped by offline group, to execute
/// group-by-group.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Plan {
    /// Per-group action lists, in execution order.
    pub groups: Vec<Vec<Action>>,
}

impl Plan {
    /// Total number of migrations in the plan.
    pub fn migration_count(&self) -> usize {
        self.groups
            .iter()
            .flatten()
            .filter(|a| matches!(a, Action::Migrate { .. }))
            .count()
    }

    /// Total number of in-place host upgrades.
    pub fn inplace_count(&self) -> usize {
        self.groups
            .iter()
            .flatten()
            .filter(|a| matches!(a, Action::InPlaceUpgrade { .. }))
            .count()
    }

    /// All actions flattened in execution order.
    pub fn actions(&self) -> impl Iterator<Item = &Action> {
        self.groups.iter().flatten()
    }
}

/// Errors from planning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// A VM could not be placed anywhere (cluster over capacity).
    NoCapacity {
        /// The VM that could not be placed.
        vm: String,
    },
    /// Invalid group size.
    BadGroupSize,
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::NoCapacity { vm } => write!(f, "no capacity to place {vm}"),
            PlanError::BadGroupSize => write!(f, "group size must be in 1..=hosts"),
        }
    }
}

impl std::error::Error for PlanError {}

/// Plans a rolling cluster upgrade with offline groups of `group_size`
/// hosts. The input view is read-only; placement is tracked in an
/// overlay.
pub fn plan_upgrade<V: ClusterView + ?Sized>(
    view: &V,
    group_size: usize,
) -> Result<Plan, PlanError> {
    plan_upgrade_excluding(view, group_size, &[])
}

/// Picks the best target in an ordered `(free_gb, host)` set: the
/// maximal element, iff it has room. Because the set's maximum has the
/// globally largest `(free, host)` pair, it is exactly the
/// `max_by_key((upgraded, free))` winner restricted to this set —
/// including the highest-host-index tie-break of a forward `max_by_key`
/// scan.
fn pick(set: &BTreeSet<(u64, usize)>, need_gb: u64) -> Option<usize> {
    set.last()
        .filter(|&&(free, _)| free >= need_gb)
        .map(|&(_, host)| host)
}

/// [`plan_upgrade`] over a degraded cluster: `excluded` hosts (failed or
/// quarantined by the campaign's fault policy) are neither upgraded nor
/// used as migration targets. VMs resident on an excluded host stay put —
/// the host keeps serving on its old hypervisor and its exposure is
/// accounted at the campaign level, not the plan level.
pub fn plan_upgrade_excluding<V: ClusterView + ?Sized>(
    view: &V,
    group_size: usize,
    excluded: &[usize],
) -> Result<Plan, PlanError> {
    let n_hosts = view.host_count();
    let n_vms = view.vm_count();
    let eligible: Vec<usize> = (0..n_hosts).filter(|h| !excluded.contains(h)).collect();
    if group_size == 0 || group_size > eligible.len() {
        return Err(PlanError::BadGroupSize);
    }

    // One pass over the VMs: per-host used GiB, the current-host overlay,
    // and a CSR index of home placements (ascending VM order per host).
    let mut used = vec![0u64; n_hosts];
    let mut counts = vec![0u32; n_hosts];
    let mut cur = vec![0u32; n_vms];
    for (i, cur_home) in cur.iter_mut().enumerate() {
        let vm = view.vm(i);
        used[vm.home] += vm.memory_gb;
        counts[vm.home] += 1;
        *cur_home = vm.home as u32;
    }
    let mut offsets = vec![0usize; n_hosts + 1];
    for h in 0..n_hosts {
        offsets[h + 1] = offsets[h] + counts[h] as usize;
    }
    let mut home_vms = vec![0u32; n_vms];
    let mut fill = offsets.clone();
    for (i, &home) in cur.iter().enumerate() {
        home_vms[fill[home as usize]] = i as u32;
        fill[home as usize] += 1;
    }

    let free = |host: usize, used: &[u64]| view.host_capacity_gb(host).saturating_sub(used[host]);

    // Target indices: every non-excluded host, keyed by (free, host), in
    // two tiers — already-upgraded hosts are always preferred over fresh
    // ones, matching `max_by_key((upgraded, free_gb))`.
    let mut fresh: BTreeSet<(u64, usize)> = eligible.iter().map(|&h| (free(h, &used), h)).collect();
    let mut upgraded: BTreeSet<(u64, usize)> = BTreeSet::new();
    let mut arrivals: Vec<Vec<u32>> = vec![Vec::new(); n_hosts];

    let mut plan = Plan::default();
    let mut group_start = 0usize;
    while group_start < eligible.len() {
        let group = &eligible[group_start..(group_start + group_size).min(eligible.len())];
        // The offline group cannot receive evacuated VMs.
        for &g in group {
            let key = (free(g, &used), g);
            if !fresh.remove(&key) {
                upgraded.remove(&key);
            }
        }
        let mut actions = Vec::new();
        for &host in group {
            // Resident snapshot: home VMs that have not moved away plus
            // arrivals that have not moved on, in ascending VM order (an
            // arrival can appear twice if it left and returned — dedup).
            let mut resident: Vec<u32> = home_vms[offsets[host]..offsets[host + 1]]
                .iter()
                .chain(arrivals[host].iter())
                .copied()
                .filter(|&i| cur[i as usize] == host as u32)
                .collect();
            resident.sort_unstable();
            resident.dedup();
            let mut staying = 0usize;
            for &vm32 in &resident {
                let vm = vm32 as usize;
                let info = view.vm(vm);
                if info.inplace_compatible {
                    staying += 1;
                    continue;
                }
                let need = info.memory_gb;
                let to = pick(&upgraded, need)
                    .or_else(|| pick(&fresh, need))
                    .ok_or_else(|| PlanError::NoCapacity {
                        vm: view.vm_name(vm),
                    })?;
                actions.push(Action::Migrate { vm, from: host, to });
                let key = (free(to, &used), to);
                let was_upgraded = upgraded.remove(&key);
                if !was_upgraded {
                    fresh.remove(&key);
                }
                used[to] += need;
                used[host] -= need;
                let key = (free(to, &used), to);
                if was_upgraded {
                    upgraded.insert(key);
                } else {
                    fresh.insert(key);
                }
                cur[vm] = to as u32;
                arrivals[to].push(vm32);
            }
            actions.push(Action::InPlaceUpgrade {
                host,
                vm_count: staying,
            });
        }
        // The group is back online, upgraded, with its evacuations freed.
        for &g in group {
            upgraded.insert((free(g, &used), g));
        }
        plan.groups.push(actions);
        group_start += group_size;
    }
    Ok(plan)
}

/// Checks that a plan never overflows any host's capacity when executed
/// step by step (test support).
pub fn validate_capacity<V: ClusterView + ?Sized>(view: &V, plan: &Plan) -> Result<(), PlanError> {
    let n_hosts = view.host_count();
    let n_vms = view.vm_count();
    let mut used = vec![0u64; n_hosts];
    let mut cur = vec![0usize; n_vms];
    for (i, cur_home) in cur.iter_mut().enumerate() {
        let vm = view.vm(i);
        used[vm.home] += vm.memory_gb;
        *cur_home = vm.home;
    }
    for action in plan.actions() {
        if let Action::Migrate { vm, from, to } = action {
            assert_eq!(cur[*vm], *from, "plan is self-consistent");
            let need = view.vm(*vm).memory_gb;
            if view.host_capacity_gb(*to).saturating_sub(used[*to]) < need {
                return Err(PlanError::NoCapacity {
                    vm: view.vm_name(*vm),
                });
            }
            used[*from] -= need;
            used[*to] += need;
            cur[*vm] = *to;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Cluster;

    /// The original O(H·V)-per-host scan planner, kept verbatim as an
    /// oracle: the indexed planner must reproduce its plans byte for
    /// byte.
    mod oracle {
        use super::super::{Action, Plan, PlanError};
        use crate::model::Cluster;

        pub fn plan_upgrade_excluding(
            cluster: &Cluster,
            group_size: usize,
            excluded: &[usize],
        ) -> Result<Plan, PlanError> {
            let eligible: Vec<usize> = (0..cluster.hosts.len())
                .filter(|h| !excluded.contains(h))
                .collect();
            if group_size == 0 || group_size > eligible.len() {
                return Err(PlanError::BadGroupSize);
            }
            let mut state = cluster.clone();
            let mut plan = Plan::default();
            let mut group_start = 0usize;
            while group_start < eligible.len() {
                let group: Vec<usize> =
                    eligible[group_start..(group_start + group_size).min(eligible.len())].to_vec();
                let mut actions = Vec::new();
                for &host in &group {
                    let resident = state.vms_on(host);
                    let mut staying = 0usize;
                    for vm in resident {
                        if state.vms[vm].config.inplace_compatible {
                            staying += 1;
                            continue;
                        }
                        let to =
                            best_target(&state, &group, excluded, state.vms[vm].config.memory_gb)
                                .ok_or_else(|| PlanError::NoCapacity {
                                vm: state.vms[vm].name.clone(),
                            })?;
                        actions.push(Action::Migrate { vm, from: host, to });
                        state.vms[vm].host = to;
                    }
                    actions.push(Action::InPlaceUpgrade {
                        host,
                        vm_count: staying,
                    });
                    state.hosts[host].upgraded = true;
                }
                plan.groups.push(actions);
                group_start += group_size;
            }
            Ok(plan)
        }

        fn best_target(
            cluster: &Cluster,
            group: &[usize],
            excluded: &[usize],
            need_gb: u64,
        ) -> Option<usize> {
            (0..cluster.hosts.len())
                .filter(|h| !group.contains(h) && !excluded.contains(h))
                .filter(|&h| cluster.host_free_gb(h) >= need_gb)
                .max_by_key(|&h| (cluster.hosts[h].upgraded, cluster.host_free_gb(h)))
        }
    }

    #[test]
    fn zero_host_plan_is_rejected_not_planned() {
        // A fleet with no hosts cannot satisfy any group size — the
        // planner must say so up front instead of emitting an empty plan
        // that an executor would happily "complete".
        let empty = Cluster {
            hosts: vec![],
            vms: vec![],
            host_reserve_gb: 0,
        };
        assert_eq!(plan_upgrade(&empty, 1), Err(PlanError::BadGroupSize));
        assert_eq!(plan_upgrade(&empty, 0), Err(PlanError::BadGroupSize));
        let syn = Cluster::synthetic(0, 7);
        assert_eq!(plan_upgrade(&syn, 1), Err(PlanError::BadGroupSize));
    }

    #[test]
    fn indexed_planner_matches_the_scan_oracle() {
        for seed in [3u64, 42, 99] {
            for pct in [0u32, 20, 50, 80, 100] {
                for group in [1usize, 2, 3, 7] {
                    let c = Cluster::paper_testbed(pct, seed);
                    // Compare Results: large groups over-fill the
                    // remaining hosts, and the two planners must fail on
                    // the same VM in that case.
                    let fast = plan_upgrade(&c, group);
                    let slow = oracle::plan_upgrade_excluding(&c, group, &[]);
                    assert_eq!(fast, slow, "seed={seed} pct={pct} group={group}");
                }
            }
        }
    }

    #[test]
    fn indexed_planner_matches_oracle_with_exclusions() {
        for excluded in [vec![0usize], vec![3, 7], vec![9, 1, 5]] {
            let c = Cluster::paper_testbed(30, 42);
            let fast = plan_upgrade_excluding(&c, 2, &excluded).unwrap();
            let slow = oracle::plan_upgrade_excluding(&c, 2, &excluded).unwrap();
            assert_eq!(fast, slow, "excluded={excluded:?}");
        }
    }

    #[test]
    fn indexed_planner_matches_oracle_on_synthetic_fleets() {
        for hosts in [5usize, 24, 100] {
            let syn = Cluster::synthetic(hosts, 0xbeef).with_compat_percent(50);
            let mat = syn.materialize();
            let via_view = plan_upgrade(&syn, 2).unwrap();
            let via_cluster = plan_upgrade(&mat, 2).unwrap();
            let slow = oracle::plan_upgrade_excluding(&mat, 2, &[]).unwrap();
            assert_eq!(via_view, via_cluster, "hosts={hosts}");
            assert_eq!(via_view, slow, "hosts={hosts}");
            validate_capacity(&syn, &via_view).unwrap();
        }
    }

    #[test]
    fn all_migration_plan_size_matches_paper() {
        // §5.4: the all-migration plan has 154 migration operations. Our
        // planner's rolling groups-of-two produce the same regime
        // (displaced VMs early in the roll must move again later).
        let c = Cluster::paper_testbed(0, 42);
        let plan = plan_upgrade(&c, 2).unwrap();
        let m = plan.migration_count();
        assert!((120..=180).contains(&m), "migrations = {m}");
        assert_eq!(plan.inplace_count(), 10, "every host still gets upgraded");
        validate_capacity(&c, &plan).unwrap();
    }

    #[test]
    fn migrations_decrease_with_compatibility() {
        let mut prev = usize::MAX;
        for pct in [0u32, 20, 40, 60, 80] {
            let c = Cluster::paper_testbed(pct, 42);
            let plan = plan_upgrade(&c, 2).unwrap();
            let m = plan.migration_count();
            assert!(m < prev, "at {pct}%: {m} !< {prev}");
            prev = m;
        }
    }

    #[test]
    fn eighty_percent_compat_needs_few_migrations() {
        // Paper: 25 migrations at 80% InPlaceTP-compatible.
        let c = Cluster::paper_testbed(80, 42);
        let plan = plan_upgrade(&c, 2).unwrap();
        let m = plan.migration_count();
        assert!((18..=40).contains(&m), "migrations = {m}");
    }

    #[test]
    fn fully_compatible_needs_no_migrations() {
        let c = Cluster::paper_testbed(100, 42);
        let plan = plan_upgrade(&c, 2).unwrap();
        assert_eq!(plan.migration_count(), 0);
        assert_eq!(plan.inplace_count(), 10);
    }

    #[test]
    fn every_host_upgraded_once() {
        let c = Cluster::paper_testbed(50, 3);
        let plan = plan_upgrade(&c, 3).unwrap();
        let mut hosts: Vec<usize> = plan
            .actions()
            .filter_map(|a| match a {
                Action::InPlaceUpgrade { host, .. } => Some(*host),
                _ => None,
            })
            .collect();
        hosts.sort_unstable();
        assert_eq!(hosts, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn excluded_hosts_are_neither_upgraded_nor_targets() {
        let c = Cluster::paper_testbed(0, 42);
        let excluded = [3usize, 7];
        let plan = plan_upgrade_excluding(&c, 2, &excluded).unwrap();
        for a in plan.actions() {
            match a {
                Action::InPlaceUpgrade { host, .. } => {
                    assert!(!excluded.contains(host), "excluded host {host} upgraded");
                }
                Action::Migrate { from, to, .. } => {
                    assert!(
                        !excluded.contains(from),
                        "migrated off excluded host {from}"
                    );
                    assert!(!excluded.contains(to), "migrated onto excluded host {to}");
                }
            }
        }
        assert_eq!(plan.inplace_count(), 8, "only the eligible hosts upgrade");
        validate_capacity(&c, &plan).unwrap();
    }

    #[test]
    fn excluding_every_host_is_a_bad_group_size() {
        let c = Cluster::paper_testbed(0, 42);
        let all: Vec<usize> = (0..10).collect();
        assert!(matches!(
            plan_upgrade_excluding(&c, 1, &all),
            Err(PlanError::BadGroupSize)
        ));
    }

    #[test]
    fn bad_group_size_rejected() {
        let c = Cluster::paper_testbed(0, 1);
        assert!(matches!(plan_upgrade(&c, 0), Err(PlanError::BadGroupSize)));
        assert!(matches!(plan_upgrade(&c, 11), Err(PlanError::BadGroupSize)));
    }

    #[test]
    fn empty_cluster_has_no_valid_plan() {
        let c = Cluster {
            hosts: Vec::new(),
            vms: Vec::new(),
            host_reserve_gb: 0,
        };
        // No hosts means no admissible group size at all.
        assert!(matches!(plan_upgrade(&c, 1), Err(PlanError::BadGroupSize)));
        assert!(matches!(plan_upgrade(&c, 0), Err(PlanError::BadGroupSize)));
    }

    #[test]
    fn single_host_with_incompatible_vm_has_no_evacuation_target() {
        // One host, one VM that cannot ride through InPlaceTP: there is
        // nowhere to evacuate it while its host is offline.
        let mut c = Cluster::paper_testbed(0, 7);
        c.hosts.truncate(1);
        c.vms.retain(|v| v.host == 0);
        assert!(!c.vms.is_empty(), "testbed host 0 carries VMs");
        assert!(c.vms.iter().any(|v| !v.config.inplace_compatible));
        assert!(matches!(
            plan_upgrade(&c, 1),
            Err(PlanError::NoCapacity { .. })
        ));
    }

    #[test]
    fn single_host_all_compatible_plans_without_migrations() {
        // The degenerate fleet still upgrades when every VM can ride the
        // micro-reboot: one group, one in-place action, no migrations.
        let mut c = Cluster::paper_testbed(100, 7);
        c.hosts.truncate(1);
        c.vms.retain(|v| v.host == 0);
        let plan = plan_upgrade(&c, 1).unwrap();
        assert_eq!(plan.migration_count(), 0);
        assert_eq!(plan.inplace_count(), 1);
        assert_eq!(plan.groups.len(), 1);
    }

    #[test]
    fn compatible_vms_never_migrate() {
        let c = Cluster::paper_testbed(60, 5);
        let plan = plan_upgrade(&c, 2).unwrap();
        for a in plan.actions() {
            if let Action::Migrate { vm, .. } = a {
                assert!(
                    !c.vms[*vm].config.inplace_compatible,
                    "{} is compatible but was migrated",
                    c.vms[*vm].name
                );
            }
        }
    }
}
