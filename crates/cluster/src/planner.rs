//! The BtrPlace-like reconfiguration planner.
//!
//! §5.4 divides the cluster into groups, sequentially takes each group
//! offline (its VMs placed on other hosts), and records the resulting
//! plans. We reproduce that structure: for each group, every VM on a
//! group host that cannot ride through InPlaceTP is migrated to the host
//! with the most free capacity outside the group (preferring
//! already-upgraded hosts so it never has to move again); compatible VMs
//! stay and are carried through the host's in-place transplant.

use crate::model::Cluster;

/// One step of a reconfiguration plan.
#[derive(Debug, Clone, PartialEq)]
pub enum Action {
    /// Live-migrate (MigrationTP) a VM between hosts.
    Migrate {
        /// VM index into `Cluster::vms`.
        vm: usize,
        /// Source host.
        from: usize,
        /// Destination host.
        to: usize,
    },
    /// Upgrade a host in place (InPlaceTP), carrying `vm_count` resident
    /// compatible VMs through the micro-reboot.
    InPlaceUpgrade {
        /// Host index.
        host: usize,
        /// Number of VMs transplanted with the host.
        vm_count: usize,
    },
}

/// A reconfiguration plan: actions grouped by offline group, to execute
/// group-by-group.
#[derive(Debug, Clone, Default)]
pub struct Plan {
    /// Per-group action lists, in execution order.
    pub groups: Vec<Vec<Action>>,
}

impl Plan {
    /// Total number of migrations in the plan.
    pub fn migration_count(&self) -> usize {
        self.groups
            .iter()
            .flatten()
            .filter(|a| matches!(a, Action::Migrate { .. }))
            .count()
    }

    /// Total number of in-place host upgrades.
    pub fn inplace_count(&self) -> usize {
        self.groups
            .iter()
            .flatten()
            .filter(|a| matches!(a, Action::InPlaceUpgrade { .. }))
            .count()
    }

    /// All actions flattened in execution order.
    pub fn actions(&self) -> impl Iterator<Item = &Action> {
        self.groups.iter().flatten()
    }
}

/// Errors from planning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// A VM could not be placed anywhere (cluster over capacity).
    NoCapacity {
        /// The VM that could not be placed.
        vm: String,
    },
    /// Invalid group size.
    BadGroupSize,
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::NoCapacity { vm } => write!(f, "no capacity to place {vm}"),
            PlanError::BadGroupSize => write!(f, "group size must be in 1..=hosts"),
        }
    }
}

impl std::error::Error for PlanError {}

/// Plans a rolling cluster upgrade with offline groups of `group_size`
/// hosts. Mutates a copy of the cluster to track placement; the input is
/// untouched.
pub fn plan_upgrade(cluster: &Cluster, group_size: usize) -> Result<Plan, PlanError> {
    if group_size == 0 || group_size > cluster.hosts.len() {
        return Err(PlanError::BadGroupSize);
    }
    let mut state = cluster.clone();
    let mut plan = Plan::default();
    let host_count = state.hosts.len();
    let mut group_start = 0usize;
    while group_start < host_count {
        let group: Vec<usize> = (group_start..(group_start + group_size).min(host_count)).collect();
        let mut actions = Vec::new();
        for &host in &group {
            let resident = state.vms_on(host);
            let mut staying = 0usize;
            for vm in resident {
                if state.vms[vm].config.inplace_compatible {
                    staying += 1;
                    continue;
                }
                let to = best_target(&state, &group, state.vms[vm].config.memory_gb).ok_or_else(
                    || PlanError::NoCapacity {
                        vm: state.vms[vm].name.clone(),
                    },
                )?;
                actions.push(Action::Migrate { vm, from: host, to });
                state.vms[vm].host = to;
            }
            actions.push(Action::InPlaceUpgrade {
                host,
                vm_count: staying,
            });
            state.hosts[host].upgraded = true;
        }
        plan.groups.push(actions);
        group_start += group_size;
    }
    Ok(plan)
}

/// Chooses the destination for an evacuated VM: the host outside the
/// offline group with enough free memory, preferring already-upgraded
/// hosts (so the VM never moves again), then the most free capacity.
fn best_target(cluster: &Cluster, group: &[usize], need_gb: u64) -> Option<usize> {
    (0..cluster.hosts.len())
        .filter(|h| !group.contains(h))
        .filter(|&h| cluster.host_free_gb(h) >= need_gb)
        .max_by_key(|&h| (cluster.hosts[h].upgraded, cluster.host_free_gb(h)))
}

/// Checks that a plan never overflows any host's capacity when executed
/// step by step (test support).
pub fn validate_capacity(cluster: &Cluster, plan: &Plan) -> Result<(), PlanError> {
    let mut state = cluster.clone();
    for action in plan.actions() {
        if let Action::Migrate { vm, from, to } = action {
            assert_eq!(state.vms[*vm].host, *from, "plan is self-consistent");
            if state.host_free_gb(*to) < state.vms[*vm].config.memory_gb {
                return Err(PlanError::NoCapacity {
                    vm: state.vms[*vm].name.clone(),
                });
            }
            state.vms[*vm].host = *to;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Cluster;

    #[test]
    fn all_migration_plan_size_matches_paper() {
        // §5.4: the all-migration plan has 154 migration operations. Our
        // planner's rolling groups-of-two produce the same regime
        // (displaced VMs early in the roll must move again later).
        let c = Cluster::paper_testbed(0, 42);
        let plan = plan_upgrade(&c, 2).unwrap();
        let m = plan.migration_count();
        assert!((120..=180).contains(&m), "migrations = {m}");
        assert_eq!(plan.inplace_count(), 10, "every host still gets upgraded");
        validate_capacity(&c, &plan).unwrap();
    }

    #[test]
    fn migrations_decrease_with_compatibility() {
        let mut prev = usize::MAX;
        for pct in [0u32, 20, 40, 60, 80] {
            let c = Cluster::paper_testbed(pct, 42);
            let plan = plan_upgrade(&c, 2).unwrap();
            let m = plan.migration_count();
            assert!(m < prev, "at {pct}%: {m} !< {prev}");
            prev = m;
        }
    }

    #[test]
    fn eighty_percent_compat_needs_few_migrations() {
        // Paper: 25 migrations at 80% InPlaceTP-compatible.
        let c = Cluster::paper_testbed(80, 42);
        let plan = plan_upgrade(&c, 2).unwrap();
        let m = plan.migration_count();
        assert!((18..=40).contains(&m), "migrations = {m}");
    }

    #[test]
    fn fully_compatible_needs_no_migrations() {
        let c = Cluster::paper_testbed(100, 42);
        let plan = plan_upgrade(&c, 2).unwrap();
        assert_eq!(plan.migration_count(), 0);
        assert_eq!(plan.inplace_count(), 10);
    }

    #[test]
    fn every_host_upgraded_once() {
        let c = Cluster::paper_testbed(50, 3);
        let plan = plan_upgrade(&c, 3).unwrap();
        let mut hosts: Vec<usize> = plan
            .actions()
            .filter_map(|a| match a {
                Action::InPlaceUpgrade { host, .. } => Some(*host),
                _ => None,
            })
            .collect();
        hosts.sort_unstable();
        assert_eq!(hosts, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn bad_group_size_rejected() {
        let c = Cluster::paper_testbed(0, 1);
        assert!(matches!(plan_upgrade(&c, 0), Err(PlanError::BadGroupSize)));
        assert!(matches!(plan_upgrade(&c, 11), Err(PlanError::BadGroupSize)));
    }

    #[test]
    fn compatible_vms_never_migrate() {
        let c = Cluster::paper_testbed(60, 5);
        let plan = plan_upgrade(&c, 2).unwrap();
        for a in plan.actions() {
            if let Action::Migrate { vm, .. } = a {
                assert!(
                    !c.vms[*vm].config.inplace_compatible,
                    "{} is compatible but was migrated",
                    c.vms[*vm].name
                );
            }
        }
    }
}
