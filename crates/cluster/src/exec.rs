//! The plan executor: timing the cluster upgrade (Fig. 13).
//!
//! Execution policy follows the paper's testbed behaviour: migrations are
//! serialized (operators cap concurrent migrations to protect the 10 Gbps
//! fabric), and once a group's hosts are evacuated their in-place upgrades
//! run in parallel. Per-migration time is the sum of the per-operation
//! orchestration overhead, the pre-copy transfer (with the workload's
//! dirty-rate extension) and the stop-and-copy. Per-upgrade time comes
//! from the same cost model as the single-machine InPlaceTP experiments.
//!
//! # Sharded execution
//!
//! Every group's simulation is *relative*: migration and upgrade times
//! depend only on the group's own actions, never on the global clock. So
//! a plan's groups are pure, independent simulations ([`run_group`]
//! internally) whose outcomes fold in group order into the same report
//! the sequential walk produces — bit for bit. [`execute_sharded`]
//! exploits that: contiguous group ranges run as deterministic shards on
//! a [`WorkerPool`], and each shard memoizes cost-model evaluations per
//! VM class (fleets with a uniform host spec repeat a handful of
//! distinct evaluations thousands of times), so the sharded path wins
//! wall-clock even on a single core. With faults armed, execution drops
//! to the sequential walk — [`hypertp_sim::fault::FaultPlan`] consultation
//! order is part of the deterministic replay contract — and is again
//! byte-identical to the unsharded path.

use std::collections::HashMap;

use hypertp_core::{
    crash_gate, host_failure_gate, warm_recovery_latency, CheckpointConfig, HostGate,
    HypervisorKind,
};
use hypertp_migrate::{FleetOrder, Link, LinkContention, SloVm, TrafficCurve, WireMode};
use hypertp_sim::cost::{BootTarget, MachinePerf};
use hypertp_sim::fault::{FaultPlan, InjectionPoint, RecoveryAction};
use hypertp_sim::pool::WorkerPool;
use hypertp_sim::stats::{Histogram, Streaming};
use hypertp_sim::{CostModel, EventQueue, SimDuration, SimTime};

use crate::model::ClusterView;
use crate::planner::{Action, Plan};

/// Timing knobs for plan execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecConfig {
    /// The cluster fabric.
    pub link: Link,
    /// Per-migration orchestration overhead (scheduling, pre/post hooks —
    /// dominated by the cloud manager, not the data path).
    pub per_migration_overhead: SimDuration,
    /// Target hypervisor of the upgrade.
    pub target: HypervisorKind,
    /// Maximum concurrent migrations the operator allows on the fabric
    /// (the paper's testbed effectively serializes: 1). Concurrent
    /// migrations also share link bandwidth.
    pub max_concurrent_migrations: usize,
    /// Retries granted to a host whose in-place upgrade faults before it
    /// is dropped from the plan (see [`execute_with_faults`]).
    pub max_host_retries: u32,
    /// Wire representation used by the campaign's migrations. The
    /// executor is an analytic model, so under
    /// [`WireMode::ContentAware`] it scales page bytes by
    /// [`ExecConfig::wire_compression_ratio`] instead of running the
    /// page-level path; [`WireMode::Raw`] (the default) keeps the
    /// paper-faithful fig. 13 byte accounting.
    pub wire_mode: WireMode,
    /// Observed wire/raw byte ratio of the content-aware path on this
    /// workload (e.g. [`hypertp_migrate::WireStats::compression_ratio`]
    /// from a reference migration, or BENCH_wire.json). 1.0 = no savings.
    pub wire_compression_ratio: f64,
    /// Admission order of each group's migration queue.
    /// [`FleetOrder::Fifo`] (the default) keeps the planner's order;
    /// [`FleetOrder::ShortestPredictedFirst`] admits the migrations the
    /// analytic model predicts fastest first, which minimises the mean
    /// VM-ready time ([`ExecReport::mean_vm_ready`]) — each VM's exposure
    /// window — without changing the group's drain time on a serialized
    /// fabric.
    pub fleet_order: FleetOrder,
    /// Run in-place upgrades with the incremental pre-pause translation
    /// path ([`hypertp_core::Optimizations::incremental_translate`]). The
    /// executor is an analytic model: the warm UISR snapshot happens while
    /// the group's migrations drain (below the time axis), so the blackout
    /// charged to each host shrinks to the dirty-delta re-translation
    /// ([`CostModel::delta_translate`] at
    /// [`ExecConfig::inplace_dirty_fraction`]) instead of the full
    /// [`CostModel::translate`]. Off by default: the fig. 13 accounting is
    /// byte-identical to the paper-faithful pause-time translation.
    pub incremental_translate: bool,
    /// Fraction of guest pages still dirty at the final pause when
    /// [`ExecConfig::incremental_translate`] is on (e.g. a reference
    /// [`hypertp_core::InPlaceReport::dirty_fraction`], or the hot-guest
    /// figure from BENCH_inplace.json). 1.0 = everything re-translated,
    /// which degenerates exactly to the full-translate accounting.
    pub inplace_dirty_fraction: f64,
    /// Opt-in SLO accounting over the campaign's migrations. `None`
    /// (the default) keeps every report byte-identical to the
    /// SLO-unaware executor. `Some` derives each serving VM's diurnal
    /// traffic curve (a pure function of the configured seed and the VM
    /// index — see [`hypertp_workloads::derive_curve`]), stretches
    /// migration estimates by the workload's share of the fabric at
    /// admission time, and accounts per-VM violation-seconds and
    /// error-budget burn in [`ExecReport`]. Group times stay relative
    /// to the group's start, so sharded execution remains
    /// byte-identical for every shard/worker count.
    pub slo: Option<SloExecConfig>,
    /// Opt-in vulnerability-window accounting. `None` (the default)
    /// keeps every report byte-identical to the exposure-unaware
    /// executor. `Some` treats the campaign as the remediation of one
    /// disclosure: every VM's exposure — criticality × time until its
    /// group finished, capped at the patch window — accrues through the
    /// workspace's single [`crate::exposure::ExposureIntegrator`] into
    /// [`ExecReport::exposure_vm_secs`] and a bounded per-group time
    /// series ([`ExecReport::exposure`],
    /// [`ExecReport::exposure_hist`]).
    pub exposure: Option<ExposureExecConfig>,
}

/// Parameters of the executor's opt-in exposure accounting: the
/// disclosure the campaign remediates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExposureExecConfig {
    /// Surface-calibrated criticality of the disclosure (weighted CVSS /
    /// 10, see [`hypertp_vulndb::SurfaceWeights::criticality`]).
    pub criticality: f64,
    /// Patch window: exposure stops accruing after this long whether or
    /// not the fleet remediated.
    pub window: SimDuration,
}

impl Default for ExposureExecConfig {
    fn default() -> Self {
        ExposureExecConfig {
            criticality: 1.0,
            window: SimDuration::from_secs(30 * 24 * 3600),
        }
    }
}

/// Parameters of the executor's opt-in SLO accounting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloExecConfig {
    /// Seed of the per-VM diurnal curve derivation.
    pub seed: u64,
    /// Per-VM violation-seconds allowance over the campaign.
    pub error_budget: SimDuration,
}

impl Default for SloExecConfig {
    fn default() -> Self {
        SloExecConfig {
            seed: 0x510_ca3e,
            error_budget: SimDuration::from_secs(216),
        }
    }
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            link: Link::ten_gigabit(),
            per_migration_overhead: SimDuration::from_millis(3500),
            target: HypervisorKind::Kvm,
            max_concurrent_migrations: 1,
            max_host_retries: 2,
            wire_mode: WireMode::Raw,
            wire_compression_ratio: 1.0,
            fleet_order: FleetOrder::Fifo,
            incremental_translate: false,
            inplace_dirty_fraction: 1.0,
            slo: None,
            exposure: None,
        }
    }
}

impl ExecConfig {
    /// Calibrates the content-aware byte accounting from a measured
    /// reference migration: switches to [`WireMode::ContentAware`] and
    /// takes the wire/raw ratio straight from the reference's
    /// [`hypertp_migrate::WireStats`] (e.g. an engine report, a
    /// `proxy source` run, or the merged fleet stats behind
    /// `BENCH_wire.json`). A reference that sent nothing keeps the
    /// ratio at 1.0 — the raw accounting — rather than promising a
    /// free campaign.
    pub fn with_wire_reference(mut self, reference: &hypertp_migrate::WireStats) -> Self {
        self.wire_mode = WireMode::ContentAware;
        self.wire_compression_ratio = if reference.raw_equivalent_bytes() == 0 {
            1.0
        } else {
            reference.compression_ratio().clamp(0.0, 1.0)
        };
        self
    }
}

/// Bucketing of the per-VM ready-offset histogram carried by
/// [`ExecReport::vm_ready_hist`]: 36 × 50 s bins over `[0, 1800 s)` —
/// wide enough for the paper testbed's worst group drains, with the
/// overflow counter absorbing pathological fleets.
pub const READY_HIST_BUCKETS: usize = 36;
const READY_HIST_LO: f64 = 0.0;
const READY_HIST_HI: f64 = 1800.0;

/// Result of executing a plan. All telemetry is bounded-memory: per-VM
/// and per-group samples stream through [`Streaming`] aggregates and a
/// fixed-bucket [`Histogram`] instead of materializing vectors, so the
/// report costs the same at 10 hosts and 10k hosts.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecReport {
    /// Number of migrations performed.
    pub migrations: usize,
    /// Number of in-place host upgrades.
    pub inplace_upgrades: usize,
    /// Total wall-clock reconfiguration time.
    pub total: SimDuration,
    /// Time spent in the migration phase(s).
    pub migration_time: SimDuration,
    /// Time spent in in-place upgrades (parallel within a group).
    pub inplace_time: SimDuration,
    /// In-place upgrade attempts that faulted and were retried.
    pub host_retries: usize,
    /// Hosts dropped from the plan after exhausting their retry budget.
    pub hosts_excluded: usize,
    /// Hosts whose hypervisor crashed in their upgrade slot and reached
    /// the target via unplanned warm-checkpoint recovery instead (still
    /// counted in `inplace_upgrades`).
    pub crash_recoveries: usize,
    /// Page bytes actually put on the fabric by the campaign's
    /// migrations (equals the raw byte count under [`WireMode::Raw`]).
    pub wire_bytes_sent: u64,
    /// Bytes the content-aware wire path kept off the fabric (0 under
    /// [`WireMode::Raw`]).
    pub wire_bytes_saved: u64,
    /// Mean time from a group's start until each of its migrating VMs was
    /// ready on its destination (the per-VM exposure window). Zero when
    /// the plan has no migrations. [`FleetOrder::ShortestPredictedFirst`]
    /// minimises this without changing [`ExecReport::total`] on a
    /// serialized fabric.
    pub mean_vm_ready: SimDuration,
    /// Streaming aggregate (seconds) of every migrating VM's ready
    /// offset from its group's start.
    pub vm_ready: Streaming,
    /// Fixed-bucket histogram of the same ready offsets (see
    /// [`READY_HIST_BUCKETS`]).
    pub vm_ready_hist: Histogram,
    /// Streaming aggregate (seconds) of per-group migration-phase drain
    /// times.
    pub group_drain: Streaming,
    /// Migrating VMs that carried an SLO (served measurable traffic)
    /// under [`ExecConfig::slo`]. Zero when SLO accounting is off.
    pub slo_vms: usize,
    /// Total SLO violation time across those VMs: seconds during which a
    /// migration's bandwidth steal pushed a VM's offered load above its
    /// degraded capacity.
    pub slo_violation: SimDuration,
    /// Worst per-VM error-budget burn (1.0 = a VM spent its entire
    /// daily violation allowance on this campaign).
    pub slo_max_budget_burn: f64,
    /// VMs whose vulnerability exposure was accounted under
    /// [`ExecConfig::exposure`] (remediated + excluded). Zero when the
    /// accounting is off.
    pub exposure_vms: usize,
    /// Integrated exposure of the campaign:
    /// Σ VMs × criticality × min(remediation time, window), in
    /// VM·criticality·seconds.
    pub exposure_vm_secs: f64,
    /// Per-group time series of the per-VM exposure accrued when that
    /// group finished (criticality·seconds), in campaign order — the
    /// vulnerability-window metric as a first-class bounded aggregate.
    pub exposure: Streaming,
    /// The same per-group samples as exposed fraction of the patch
    /// window, bucketed on `[0, 1)` (see [`EXPOSURE_HIST_BUCKETS`]).
    ///
    /// [`EXPOSURE_HIST_BUCKETS`]: crate::exposure::EXPOSURE_HIST_BUCKETS
    pub exposure_hist: Histogram,
}

impl ExecReport {
    /// Percentage of time saved relative to a baseline execution.
    /// Returns 0.0 when the baseline took no time at all (a plan with
    /// nothing to do) — never NaN or ±inf.
    pub fn time_gain_pct(&self, baseline: &ExecReport) -> f64 {
        let base = baseline.total.as_secs_f64();
        if base == 0.0 {
            return 0.0;
        }
        (1.0 - self.total.as_secs_f64() / base) * 100.0
    }

    /// Canonical byte-stable rendering: two executions produced the same
    /// report iff their renders match. Floats use `{:?}` (shortest
    /// round-trip), so even last-ulp divergence shows.
    pub fn render(&self) -> String {
        let mut out = format!(
            "migrations={} upgrades={} total_ns={} migration_ns={} inplace_ns={} \
             retries={} excluded={} crashes={} wire_sent={} wire_saved={} mean_ready_ns={} \
             slo_vms={} slo_violation_ns={} slo_burn={:?} \
             vm_ready{{{}}} drain{{{}}} hist{{{}}}",
            self.migrations,
            self.inplace_upgrades,
            self.total.as_nanos(),
            self.migration_time.as_nanos(),
            self.inplace_time.as_nanos(),
            self.host_retries,
            self.hosts_excluded,
            self.crash_recoveries,
            self.wire_bytes_sent,
            self.wire_bytes_saved,
            self.mean_vm_ready.as_nanos(),
            self.slo_vms,
            self.slo_violation.as_nanos(),
            self.slo_max_budget_burn,
            self.vm_ready.render(),
            self.group_drain.render(),
            self.vm_ready_hist.render(),
        );
        // Exposure accounting is opt-in: reports that never accrued a VM
        // render exactly as before the metric existed, which is what the
        // feed-free byte-identity tests pin.
        if self.exposure_vms > 0 {
            out.push_str(&format!(
                " exposure_vms={} exposure_vm_secs={:?} exposure{{{}}} exposure_hist{{{}}}",
                self.exposure_vms,
                self.exposure_vm_secs,
                self.exposure.render(),
                self.exposure_hist.render(),
            ));
        }
        out
    }
}

/// Estimates one live migration: `(duration, raw_bytes, wire_bytes)` for
/// a VM of `memory_gb` GiB dirtying `dirty_rate` pages/s, with `sharers`
/// flows on the fabric. Under [`WireMode::ContentAware`] the page bytes
/// shrink by the configured compression ratio before hitting the link.
/// Pure in its arguments — safe to memoize per VM class.
pub(crate) fn migration_estimate(
    cfg: &ExecConfig,
    memory_gb: u64,
    dirty_rate: f64,
    sharers: u32,
) -> (SimDuration, u64, u64) {
    let raw = memory_gb << 30;
    let ratio = match cfg.wire_mode {
        WireMode::Raw => 1.0,
        WireMode::ContentAware => cfg.wire_compression_ratio.clamp(0.0, 1.0),
    };
    let bytes = (raw as f64 * ratio) as u64;
    let copy = cfg.link.transfer(bytes, sharers);
    // Dirty pages written during the copy must be re-sent (a geometric
    // tail approximated by its first round).
    let raw_dirty = (dirty_rate * copy.as_secs_f64() * 4096.0) as u64;
    let dirty_bytes = (raw_dirty as f64 * ratio) as u64;
    let extra = cfg.link.transfer(dirty_bytes, sharers);
    (
        cfg.per_migration_overhead + copy + extra,
        raw + raw_dirty,
        bytes + dirty_bytes,
    )
}

/// The serving VM's SLO attachment under the opt-in accounting: `None`
/// for classes with no measurable QPS. The traffic curve is a pure
/// function of `(slo.seed, vm index)` — cheap to re-derive, nothing to
/// share across shards.
fn vm_slo<V: ClusterView + ?Sized>(view: &V, slo: &SloExecConfig, vm: usize) -> Option<SloVm> {
    let info = view.vm(vm);
    if info.peak_qps <= 0.0 {
        return None;
    }
    Some(SloVm {
        traffic: hypertp_workloads::derive_curve(
            slo.seed,
            vm as u64,
            info.peak_qps,
            TrafficCurve::DAY,
        ),
        degraded_capacity: (1.0 - info.migration_degradation).clamp(0.0, 1.0),
        error_budget: slo.error_budget,
    })
}

/// Stretches a migration estimate by the workload's share of the fabric
/// at admission time: the orchestration overhead is load-independent,
/// but the transfer only gets the link share [`LinkContention`] leaves
/// it, so its time divides by that share.
fn contention_stretch(cfg: &ExecConfig, estimate: SimDuration, workload_bps: f64) -> SimDuration {
    if workload_bps <= 0.0 {
        return estimate;
    }
    let share = LinkContention::new(workload_bps).share(&cfg.link);
    if share >= 1.0 {
        return estimate;
    }
    let transfer = estimate.saturating_sub(cfg.per_migration_overhead);
    cfg.per_migration_overhead + SimDuration::from_secs_f64(transfer.as_secs_f64() / share)
}

/// Time of one in-place host upgrade carrying `vm_count` 4 GiB VMs on a
/// host with performance `perf`.
///
/// Under [`ExecConfig::incremental_translate`] the pause-time translation
/// term becomes the dirty-delta re-translation at the configured residual
/// dirty fraction; the warm snapshot itself overlaps the group's
/// migration drain and never shows up in the blackout.
pub(crate) fn inplace_time(
    perf: &MachinePerf,
    cost: &CostModel,
    cfg: &ExecConfig,
    vm_count: usize,
    target: HypervisorKind,
) -> SimDuration {
    let vms: Vec<(f64, u64)> = (0..vm_count).map(|_| (4.0, 4 * 512)).collect();
    let xl: Vec<(f64, u32, u64)> = (0..vm_count).map(|_| (4.0, 1, 4 * 512)).collect();
    let rl: Vec<(f64, u32)> = (0..vm_count).map(|_| (4.0, 1)).collect();
    let total_gb = vm_count as f64 * 4.0;
    let entries = vm_count as u64 * 4 * 512;
    let boot = match target {
        HypervisorKind::Kvm => BootTarget::LinuxKvm,
        HypervisorKind::Xen => BootTarget::XenDom0,
    };
    let translate = if cfg.incremental_translate {
        let frac = cfg.inplace_dirty_fraction.clamp(0.0, 1.0);
        let dl: Vec<(f64, u32, u64, f64)> =
            (0..vm_count).map(|_| (4.0, 1, 4 * 512, frac)).collect();
        cost.delta_translate(perf, &dl)
    } else {
        cost.translate(perf, &xl)
    };
    cost.pram_build(perf, &vms)
        + translate
        + cost.reboot(perf, boot, total_gb, entries)
        + cost.restore(perf, &rl, true)
}

/// Shard-local memo of cost-model evaluations. Both helpers are pure
/// functions of their keys, so memoized and recomputed runs are
/// bit-identical; the memo just collapses a fleet's thousands of
/// same-class evaluations into a handful.
struct ExecMemo {
    /// `(memory_gb, dirty_rate bits, sharers)` → migration estimate.
    /// Host-independent, so always valid.
    migration: HashMap<(u64, u64, u32), (SimDuration, u64, u64)>,
    /// `vm_count` → upgrade time. Only consulted for fleets with a
    /// uniform host spec (the perf inputs are then host-invariant).
    inplace: HashMap<usize, SimDuration>,
}

impl ExecMemo {
    fn new() -> ExecMemo {
        ExecMemo {
            migration: HashMap::new(),
            inplace: HashMap::new(),
        }
    }

    fn migration<V: ClusterView + ?Sized>(
        &mut self,
        view: &V,
        cfg: &ExecConfig,
        vm: usize,
        sharers: u32,
    ) -> (SimDuration, u64, u64) {
        let info = view.vm(vm);
        let key = (
            info.memory_gb,
            info.dirty_rate_pages_per_sec.to_bits(),
            sharers,
        );
        if let Some(&est) = self.migration.get(&key) {
            return est;
        }
        let est = migration_estimate(cfg, info.memory_gb, info.dirty_rate_pages_per_sec, sharers);
        self.migration.insert(key, est);
        est
    }

    fn inplace<V: ClusterView + ?Sized>(
        &mut self,
        view: &V,
        cost: &CostModel,
        cfg: &ExecConfig,
        host: usize,
        vm_count: usize,
        uniform_perf: Option<&MachinePerf>,
    ) -> SimDuration {
        match uniform_perf {
            Some(perf) => {
                if let Some(&d) = self.inplace.get(&vm_count) {
                    return d;
                }
                let d = inplace_time(perf, cost, cfg, vm_count, cfg.target);
                self.inplace.insert(vm_count, d);
                d
            }
            None => inplace_time(
                &view.host_spec(host).perf(),
                cost,
                cfg,
                vm_count,
                cfg.target,
            ),
        }
    }
}

/// The outcome of one group's simulation, relative to the group's start.
/// Folding these in group order reproduces the sequential walk exactly.
struct GroupOutcome {
    migrations: usize,
    upgrades: usize,
    drain: SimDuration,
    inplace: SimDuration,
    ready_acc: SimDuration,
    raw_bytes: u64,
    wire_bytes: u64,
    host_retries: usize,
    hosts_excluded: usize,
    crash_recoveries: usize,
    vm_ready: Streaming,
    vm_ready_hist: Histogram,
    slo_vms: usize,
    slo_violation: SimDuration,
    slo_burn_max: f64,
    /// VMs the group actually remediated (migrated, or carried through an
    /// in-place upgrade / crash recovery).
    vms_done: u64,
    /// VMs stranded on hosts the group dropped from the plan.
    vms_excluded: u64,
}

/// Admits the next migration from `queue` at instant `now` (relative to
/// the group's start): picks the VM, accounts its bytes and — under
/// [`ExecConfig::slo`] — its contention-stretched duration and SLO
/// outcome, and returns `(duration, vm)` for the event queue.
///
/// Order: [`FleetOrder::SloAware`] re-prices every waiting VM at this
/// instant and admits the least predicted SLO harm (ties fall to the
/// shorter migration, then the lower VM index — deterministic); every
/// other order takes the queue front (FIFO/SPDF pre-ordering happened at
/// queue build time).
fn admit_next<V: ClusterView + ?Sized>(
    view: &V,
    cfg: &ExecConfig,
    memo: &mut ExecMemo,
    out: &mut GroupOutcome,
    queue: &mut std::collections::VecDeque<usize>,
    now: SimTime,
    sharers: u32,
) -> Option<(SimDuration, usize)> {
    let start = now.duration_since(SimTime::ZERO);
    let pos = if cfg.fleet_order == FleetOrder::SloAware {
        let mut best: Option<(SimDuration, SimDuration, usize, usize)> = None;
        for (pos, &vm) in queue.iter().enumerate() {
            let (time, _, _) = memo.migration(view, cfg, vm, sharers);
            let (time, harm) = match cfg.slo.and_then(|s| vm_slo(view, &s, vm)) {
                Some(slo) => {
                    let t = contention_stretch(cfg, time, slo.traffic.bps_at(start));
                    (t, slo.outcome(start, t, SimDuration::ZERO).violation)
                }
                None => (time, SimDuration::ZERO),
            };
            if best.is_none_or(|(h, t, v, _)| (harm, time, vm) < (h, t, v)) {
                best = Some((harm, time, vm, pos));
            }
        }
        best?.3
    } else {
        0
    };
    let vm = queue.remove(pos)?;
    let (time, raw, wire) = memo.migration(view, cfg, vm, sharers);
    out.raw_bytes += raw;
    out.wire_bytes += wire;
    let time = match cfg.slo.and_then(|s| vm_slo(view, &s, vm)) {
        Some(slo) => {
            let stretched = contention_stretch(cfg, time, slo.traffic.bps_at(start));
            let o = slo.outcome(start, stretched, SimDuration::ZERO);
            out.slo_vms += 1;
            out.slo_violation += o.violation;
            out.slo_burn_max = out.slo_burn_max.max(o.budget_burn);
            stretched
        }
        None => time,
    };
    Some((time, vm))
}

/// Simulates one group: drain its migrations through the slot pool, then
/// run its in-place upgrades in parallel. Pure in `(view, cfg, group)`
/// when `faults` is `None`; with faults the caller must invoke groups
/// sequentially in plan order (consultation order is the replay
/// contract).
fn run_group<V: ClusterView + ?Sized>(
    view: &V,
    cfg: &ExecConfig,
    cost: &CostModel,
    group: &[Action],
    faults: Option<&FaultPlan>,
    memo: &mut ExecMemo,
    uniform_perf: Option<&MachinePerf>,
) -> GroupOutcome {
    let slots = cfg.max_concurrent_migrations.max(1);
    let mut out = GroupOutcome {
        migrations: 0,
        upgrades: 0,
        drain: SimDuration::ZERO,
        inplace: SimDuration::ZERO,
        ready_acc: SimDuration::ZERO,
        raw_bytes: 0,
        wire_bytes: 0,
        host_retries: 0,
        hosts_excluded: 0,
        crash_recoveries: 0,
        vm_ready: Streaming::new(),
        vm_ready_hist: Histogram::new(READY_HIST_LO, READY_HIST_HI, READY_HIST_BUCKETS),
        slo_vms: 0,
        slo_violation: SimDuration::ZERO,
        slo_burn_max: 0.0,
        vms_done: 0,
        vms_excluded: 0,
    };

    // Phase 1: drain the group's migrations through the slot pool. All
    // times are relative to the group's start.
    let mut pending: Vec<usize> = group
        .iter()
        .filter_map(|a| match a {
            Action::Migrate { vm, .. } => Some(*vm),
            _ => None,
        })
        .collect();
    out.migrations = pending.len();
    let sharers = pending.len().min(slots) as u32;
    if cfg.fleet_order == FleetOrder::ShortestPredictedFirst {
        // Convergence-aware admission: the analytic model's predicted
        // migration time orders the queue (VM index breaks ties, so the
        // schedule is deterministic).
        let keyed: Vec<(SimDuration, usize)> = pending
            .iter()
            .map(|&vm| (memo.migration(view, cfg, vm, sharers).0, vm))
            .collect();
        let mut keyed = keyed;
        keyed.sort_unstable();
        pending = keyed.into_iter().map(|(_, vm)| vm).collect();
    }
    let mut queue: std::collections::VecDeque<usize> = pending.into();
    let mut events: EventQueue<usize> = EventQueue::with_capacity(slots + 1);
    let mut now = SimTime::ZERO;
    let mut in_flight = 0usize;
    while in_flight < slots {
        match admit_next(view, cfg, memo, &mut out, &mut queue, now, sharers) {
            Some((time, vm)) => {
                events.schedule(now + time, vm);
                in_flight += 1;
            }
            None => break,
        }
    }
    while let Some((t, _done)) = events.pop() {
        now = t;
        let offset = now.duration_since(SimTime::ZERO);
        out.ready_acc += offset;
        out.vms_done += 1;
        out.vm_ready.push(offset.as_secs_f64());
        out.vm_ready_hist.record(offset.as_secs_f64());
        if let Some((time, vm)) = admit_next(view, cfg, memo, &mut out, &mut queue, now, sharers) {
            events.schedule(now + time, vm);
        }
    }
    out.drain = now.duration_since(SimTime::ZERO);

    // Phase 2: the group's in-place upgrades, in parallel. A faulted
    // upgrade burns its attempt's time and retries on the same host;
    // past the retry budget the host is dropped from the plan.
    let mut group_inplace = SimDuration::ZERO;
    for a in group {
        let Action::InPlaceUpgrade { host, vm_count } = a else {
            continue;
        };
        let attempt_cost = memo.inplace(view, cost, cfg, *host, *vm_count, uniform_perf);
        let mut host_time = SimDuration::ZERO;
        match faults {
            None => {
                host_time += attempt_cost;
                out.upgrades += 1;
                out.vms_done += *vm_count as u64;
            }
            Some(faults) => {
                let site = format!("exec upgrade h{host}");
                if crash_gate(faults, &format!("{site} crash")) {
                    // The hypervisor dies as the host's slot opens: the
                    // always-on checkpointer keeps translation off the
                    // critical path, so the host reaches the target in the
                    // modeled warm recovery latency instead of a planned
                    // upgrade attempt.
                    let perf_owned;
                    let perf = match uniform_perf {
                        Some(p) => p,
                        None => {
                            perf_owned = view.host_spec(*host).perf();
                            &perf_owned
                        }
                    };
                    let rl: Vec<(f64, u32)> = (0..*vm_count).map(|_| (4.0, 1)).collect();
                    let recovery = warm_recovery_latency(
                        cost,
                        perf,
                        cfg.target,
                        CheckpointConfig::default().detection,
                        *vm_count as f64 * 4.0,
                        *vm_count as u64 * 4 * 512,
                        &rl,
                    );
                    host_time += recovery;
                    out.upgrades += 1;
                    out.vms_done += *vm_count as u64;
                    out.crash_recoveries += 1;
                    faults.record_recovery(
                        InjectionPoint::HypervisorCrash,
                        RecoveryAction::MicroRebooted,
                        &format!(
                            "h{host}: crashed in its upgrade slot; warm-checkpoint recovery \
                             onto {} carried {vm_count} VMs",
                            cfg.target.name()
                        ),
                    );
                } else {
                    let mut failures = 0u32;
                    loop {
                        host_time += attempt_cost;
                        match host_failure_gate(faults, &site, failures, cfg.max_host_retries) {
                            HostGate::Proceed => {
                                out.upgrades += 1;
                                out.vms_done += *vm_count as u64;
                                break;
                            }
                            HostGate::Retry => {
                                failures += 1;
                                out.host_retries += 1;
                            }
                            HostGate::Exclude => {
                                out.hosts_excluded += 1;
                                out.vms_excluded += *vm_count as u64;
                                break;
                            }
                        }
                    }
                }
            }
        }
        group_inplace = group_inplace.max(host_time);
    }
    out.inplace = group_inplace;
    out
}

/// Folds per-group outcomes — in group order — into the report the
/// sequential walk produces. Under [`ExecConfig::exposure`] the fold also
/// runs the campaign's exposure integrator: a group's VMs stop being
/// exposed when the group finishes on the campaign clock (the running
/// `total`), VMs on excluded hosts stay exposed for the whole window.
fn fold_outcomes(cfg: &ExecConfig, outcomes: impl Iterator<Item = GroupOutcome>) -> ExecReport {
    let mut report = ExecReport {
        migrations: 0,
        inplace_upgrades: 0,
        total: SimDuration::ZERO,
        migration_time: SimDuration::ZERO,
        inplace_time: SimDuration::ZERO,
        host_retries: 0,
        hosts_excluded: 0,
        crash_recoveries: 0,
        wire_bytes_sent: 0,
        wire_bytes_saved: 0,
        mean_vm_ready: SimDuration::ZERO,
        vm_ready: Streaming::new(),
        vm_ready_hist: Histogram::new(READY_HIST_LO, READY_HIST_HI, READY_HIST_BUCKETS),
        group_drain: Streaming::new(),
        slo_vms: 0,
        slo_violation: SimDuration::ZERO,
        slo_max_budget_burn: 0.0,
        exposure_vms: 0,
        exposure_vm_secs: 0.0,
        exposure: Streaming::new(),
        exposure_hist: Histogram::new(0.0, 1.0, crate::exposure::EXPOSURE_HIST_BUCKETS),
    };
    let mut raw_bytes = 0u64;
    let mut ready_acc = SimDuration::ZERO;
    let mut integ = cfg
        .exposure
        .map(|e| crate::exposure::ExposureIntegrator::new(e.criticality, e.window));
    for g in outcomes {
        report.migrations += g.migrations;
        report.inplace_upgrades += g.upgrades;
        report.migration_time += g.drain;
        report.inplace_time += g.inplace;
        report.total += g.drain + g.inplace;
        report.host_retries += g.host_retries;
        report.hosts_excluded += g.hosts_excluded;
        report.crash_recoveries += g.crash_recoveries;
        report.wire_bytes_sent += g.wire_bytes;
        raw_bytes += g.raw_bytes;
        ready_acc += g.ready_acc;
        report.vm_ready.merge(&g.vm_ready);
        report.vm_ready_hist.merge(&g.vm_ready_hist);
        report.group_drain.push(g.drain.as_secs_f64());
        report.slo_vms += g.slo_vms;
        report.slo_violation += g.slo_violation;
        report.slo_max_budget_burn = report.slo_max_budget_burn.max(g.slo_burn_max);
        if let Some(integ) = integ.as_mut() {
            if g.vms_done > 0 {
                let per_vm = integ.remediated(g.vms_done as f64, report.total);
                report.exposure.push(per_vm);
                report.exposure_hist.record(integ.fraction(per_vm));
                report.exposure_vms += g.vms_done as usize;
            }
            if g.vms_excluded > 0 {
                let per_vm = integ.deferred(g.vms_excluded as f64);
                report.exposure.push(per_vm);
                report.exposure_hist.record(integ.fraction(per_vm));
                report.exposure_vms += g.vms_excluded as usize;
            }
        }
    }
    if let Some(integ) = integ {
        report.exposure_vm_secs = integ.integral();
    }
    report.wire_bytes_saved = raw_bytes.saturating_sub(report.wire_bytes_sent);
    report.mean_vm_ready = if report.migrations == 0 {
        SimDuration::ZERO
    } else {
        SimDuration::from_nanos(ready_acc.as_nanos() / report.migrations as u64)
    };
    report
}

/// Executes a plan with a discrete-event scheduler. Within a group, up to
/// `max_concurrent_migrations` migrations run at once (sharing the link);
/// the group's in-place upgrades run in parallel once its migrations have
/// drained; groups run one after another (the rolling-offline structure).
pub fn execute<V: ClusterView + ?Sized>(view: &V, plan: &Plan, cfg: &ExecConfig) -> ExecReport {
    execute_sharded_with(
        view,
        plan,
        cfg,
        &FaultPlan::disarmed(),
        1,
        &WorkerPool::serial(),
    )
}

/// [`execute`] under fault injection: an in-place upgrade hit by
/// [`hypertp_sim::fault::InjectionPoint::HostFailure`] burns its slot
/// time and is retried
/// ([`hypertp_sim::fault::RecoveryAction::RequeuedHost`]); past
/// `cfg.max_host_retries` the host is dropped from the plan
/// ([`hypertp_sim::fault::RecoveryAction::ExcludedHost`]) and accounted
/// in [`ExecReport::hosts_excluded`]. Faulted attempts extend the group's
/// parallel in-place phase, so recovery cost shows up in the reported
/// wall-clock totals.
pub fn execute_with_faults<V: ClusterView + ?Sized>(
    view: &V,
    plan: &Plan,
    cfg: &ExecConfig,
    faults: &FaultPlan,
) -> ExecReport {
    execute_sharded_with(view, plan, cfg, faults, 1, &WorkerPool::serial())
}

/// [`execute`] over deterministic group shards on the default
/// [`WorkerPool`] (respecting `HYPERTP_WORKERS`). The report is
/// byte-identical to [`execute`]'s for every shard count and worker
/// count.
pub fn execute_sharded<V: ClusterView + ?Sized>(
    view: &V,
    plan: &Plan,
    cfg: &ExecConfig,
    shards: usize,
) -> ExecReport {
    execute_sharded_with(
        view,
        plan,
        cfg,
        &FaultPlan::disarmed(),
        shards,
        &WorkerPool::from_env(),
    )
}

/// The general entry point: sharded execution with explicit faults and
/// pool.
///
/// * Fault-free (`!faults.armed()`): the plan's groups are split into
///   `shards` contiguous chunks ([`hypertp_sim::pool::chunk_ranges`]) and
///   simulated on the pool; each shard keeps its own cost-model memo.
///   Outcomes fold in group order, so the report is identical for every
///   `(shards, workers)` combination — including `(1, serial)`, which is
///   exactly [`execute`].
/// * Faults armed: groups run sequentially in plan order on the calling
///   thread (the fault plan's consultation order is part of the replay
///   contract), identical to the pre-sharding executor.
pub fn execute_sharded_with<V: ClusterView + ?Sized>(
    view: &V,
    plan: &Plan,
    cfg: &ExecConfig,
    faults: &FaultPlan,
    shards: usize,
    pool: &WorkerPool,
) -> ExecReport {
    let cost = CostModel::paper_calibrated();
    let uniform_perf = view.uniform_spec().map(|s| s.perf());
    if faults.armed() {
        let mut memo = ExecMemo::new();
        return fold_outcomes(
            cfg,
            plan.groups.iter().map(|g| {
                run_group(
                    view,
                    cfg,
                    &cost,
                    g,
                    Some(faults),
                    &mut memo,
                    uniform_perf.as_ref(),
                )
            }),
        );
    }
    let batch = pool.map_chunks(plan.groups.len(), shards.max(1), |range| {
        let mut memo = ExecMemo::new();
        range
            .map(|gi| {
                run_group(
                    view,
                    cfg,
                    &cost,
                    &plan.groups[gi],
                    None,
                    &mut memo,
                    uniform_perf.as_ref(),
                )
            })
            .collect::<Vec<GroupOutcome>>()
    });
    fold_outcomes(cfg, batch.results.into_iter().flatten())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Cluster;
    use crate::planner::plan_upgrade;
    use hypertp_sim::fault::{InjectionPoint, RecoveryAction};

    fn run(pct: u32) -> ExecReport {
        let c = Cluster::paper_testbed(pct, 42);
        let plan = plan_upgrade(&c, 2).unwrap();
        execute(&c, &plan, &ExecConfig::default())
    }

    #[test]
    fn fig13_all_migration_baseline_around_19_minutes() {
        let r = run(0);
        let minutes = r.total.as_secs_f64() / 60.0;
        assert!((14.0..23.0).contains(&minutes), "total = {minutes} min");
        assert!(r.migrations >= 120);
    }

    #[test]
    fn fig13_eighty_percent_compat_around_4_minutes() {
        let r = run(80);
        let minutes = r.total.as_secs_f64() / 60.0;
        assert!((2.5..6.0).contains(&minutes), "total = {minutes} min");
    }

    #[test]
    fn fig13_time_gain_curve() {
        let baseline = run(0);
        let mut prev_gain = -1.0;
        for pct in [20u32, 40, 60, 80] {
            let r = run(pct);
            let gain = r.time_gain_pct(&baseline);
            assert!(gain > prev_gain, "gain at {pct}% = {gain}");
            prev_gain = gain;
        }
        // Paper: ≈80% time gain at 80% compatibility, ≈68% at 60%.
        let g80 = run(80).time_gain_pct(&baseline);
        assert!((68.0..90.0).contains(&g80), "gain at 80% = {g80}");
        let g60 = run(60).time_gain_pct(&baseline);
        assert!((50.0..80.0).contains(&g60), "gain at 60% = {g60}");
    }

    #[test]
    fn time_gain_pct_guards_zero_baseline() {
        // An empty plan executes in zero time; comparing against it must
        // not produce NaN/inf.
        let c = Cluster::paper_testbed(0, 42);
        let empty = execute(&c, &Plan::default(), &ExecConfig::default());
        assert_eq!(empty.total, SimDuration::ZERO);
        let r = run(0);
        assert_eq!(r.time_gain_pct(&empty), 0.0);
        assert!(r.time_gain_pct(&empty).is_finite());
        // Degenerate self-comparison of the empty report too.
        assert_eq!(empty.time_gain_pct(&empty), 0.0);
        assert_eq!(empty.mean_vm_ready, SimDuration::ZERO);
        assert_eq!(empty.vm_ready.mean(), 0.0);
    }

    #[test]
    fn concurrency_knob_shortens_the_migration_phase() {
        let c = Cluster::paper_testbed(0, 42);
        let plan = plan_upgrade(&c, 2).unwrap();
        let serial = execute(&c, &plan, &ExecConfig::default());
        let four = execute(
            &c,
            &plan,
            &ExecConfig {
                max_concurrent_migrations: 4,
                ..ExecConfig::default()
            },
        );
        assert_eq!(serial.migrations, four.migrations);
        // Four slots share the fabric, so the win comes from overlapping
        // the per-migration orchestration overhead — real but sub-linear.
        assert!(four.total < serial.total);
        assert!(
            four.total.as_secs_f64() > serial.total.as_secs_f64() / 4.0,
            "bandwidth sharing prevents a linear speedup"
        );
    }

    #[test]
    fn host_failure_retry_extends_wall_clock() {
        let c = Cluster::paper_testbed(100, 42);
        let plan = plan_upgrade(&c, 2).unwrap();
        let cfg = ExecConfig::default();
        let clean = execute(&c, &plan, &cfg);
        let faults = FaultPlan::new(0xe8ec);
        faults.arm_once(InjectionPoint::HostFailure);
        let faulted = execute_with_faults(&c, &plan, &cfg, &faults);
        assert_eq!(faulted.host_retries, 1);
        assert_eq!(faulted.hosts_excluded, 0);
        assert_eq!(faulted.inplace_upgrades, clean.inplace_upgrades);
        assert!(
            faulted.total > clean.total,
            "recovery cost must show up in wall-clock time"
        );
        assert!(faults
            .log()
            .recovered_via(InjectionPoint::HostFailure, RecoveryAction::RequeuedHost));
    }

    #[test]
    fn exhausted_retries_drop_the_host_from_the_plan() {
        let c = Cluster::paper_testbed(100, 42);
        let plan = plan_upgrade(&c, 2).unwrap();
        let cfg = ExecConfig::default();
        let faults = FaultPlan::new(0xe8ed);
        // First host's upgrade fails on every attempt (1 + 2 retries).
        faults.arm_calls(InjectionPoint::HostFailure, &[1, 2, 3]);
        let r = execute_with_faults(&c, &plan, &cfg, &faults);
        assert_eq!(r.hosts_excluded, 1);
        assert_eq!(r.host_retries, cfg.max_host_retries as usize);
        assert_eq!(r.inplace_upgrades, plan.inplace_count() - 1);
        assert!(faults
            .log()
            .recovered_via(InjectionPoint::HostFailure, RecoveryAction::ExcludedHost));
    }

    #[test]
    fn crashed_host_recovers_and_stays_in_the_plan() {
        let c = Cluster::paper_testbed(100, 42);
        let plan = plan_upgrade(&c, 2).unwrap();
        let cfg = ExecConfig::default();
        let clean = execute(&c, &plan, &cfg);
        let run = || {
            let faults = FaultPlan::new(0xc4a5);
            faults.arm_once(InjectionPoint::HypervisorCrash);
            let r = execute_with_faults(&c, &plan, &cfg, &faults);
            (r, faults.log().render())
        };
        let (r, log) = run();
        assert_eq!(r.crash_recoveries, 1);
        // The crashed host still reaches the target: no upgrade is lost.
        assert_eq!(r.inplace_upgrades, clean.inplace_upgrades);
        assert_eq!(r.hosts_excluded, 0);
        assert!(r.total > SimDuration::ZERO);
        assert!(log.contains("micro_rebooted"));
        // Replay determinism: the same seed reproduces report and log.
        let (r2, log2) = run();
        assert_eq!(r.render(), r2.render());
        assert_eq!(log, log2);
    }

    #[test]
    fn same_seed_executes_identically() {
        let c = Cluster::paper_testbed(80, 42);
        let plan = plan_upgrade(&c, 2).unwrap();
        let cfg = ExecConfig::default();
        let run = |seed: u64| {
            let faults = FaultPlan::new(seed);
            faults.arm(InjectionPoint::HostFailure, 0.3, u64::MAX);
            let r = execute_with_faults(&c, &plan, &cfg, &faults);
            (
                r.host_retries,
                r.hosts_excluded,
                r.total,
                faults.log().render(),
            )
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn sharded_report_is_byte_identical_for_any_shards_and_workers() {
        let c = Cluster::paper_testbed(40, 42);
        let plan = plan_upgrade(&c, 2).unwrap();
        let cfg = ExecConfig::default();
        let baseline = execute(&c, &plan, &cfg);
        for shards in [1usize, 2, 3, 5, 64] {
            for workers in [1usize, 3, 8] {
                let r = execute_sharded_with(
                    &c,
                    &plan,
                    &cfg,
                    &FaultPlan::disarmed(),
                    shards,
                    &WorkerPool::new(workers),
                );
                assert_eq!(r, baseline, "shards={shards} workers={workers}");
                assert_eq!(r.render(), baseline.render());
            }
        }
    }

    #[test]
    fn sharded_with_armed_faults_matches_the_sequential_walk() {
        let c = Cluster::paper_testbed(80, 42);
        let plan = plan_upgrade(&c, 2).unwrap();
        let cfg = ExecConfig::default();
        let run = |shards: usize, workers: usize| {
            let faults = FaultPlan::new(0xfa01);
            faults.arm(InjectionPoint::HostFailure, 0.4, u64::MAX);
            let r =
                execute_sharded_with(&c, &plan, &cfg, &faults, shards, &WorkerPool::new(workers));
            (r, faults.log().render())
        };
        let (seq_report, seq_log) = run(1, 1);
        let (sharded_report, sharded_log) = run(8, 4);
        assert_eq!(sharded_report, seq_report);
        assert_eq!(sharded_log, seq_log, "fault replay must be order-identical");
        assert!(
            seq_report.host_retries > 0,
            "the armed plan must actually fire"
        );
    }

    #[test]
    fn memoized_cost_evaluation_matches_per_host_recomputation() {
        // Same hardware, but the specs compare unequal (different name
        // strings), which disables the uniform-spec memo: the reports
        // must still match bit for bit.
        let c = Cluster::paper_testbed(40, 42);
        let mut unmemoized = c.clone();
        for (i, h) in unmemoized.hosts.iter_mut().enumerate() {
            h.spec.name = format!("G5K-{i}");
        }
        assert!(crate::model::ClusterView::uniform_spec(&unmemoized).is_none());
        let plan = plan_upgrade(&c, 2).unwrap();
        let cfg = ExecConfig::default();
        let memoized = execute(&c, &plan, &cfg);
        let recomputed = execute(&unmemoized, &plan, &cfg);
        assert_eq!(memoized, recomputed);
    }

    #[test]
    fn synthetic_view_executes_like_its_materialization() {
        let syn = Cluster::synthetic(40, 0xd00d).with_compat_percent(70);
        let mat = syn.materialize();
        let plan_syn = plan_upgrade(&syn, 2).unwrap();
        let plan_mat = plan_upgrade(&mat, 2).unwrap();
        assert_eq!(plan_syn, plan_mat);
        let cfg = ExecConfig::default();
        let r_syn = execute_sharded(&syn, &plan_syn, &cfg, 4);
        let r_mat = execute(&mat, &plan_mat, &cfg);
        assert_eq!(r_syn, r_mat);
    }

    #[test]
    fn content_aware_wire_mode_shrinks_migration_phase_and_reports_savings() {
        let c = Cluster::paper_testbed(0, 42);
        let plan = plan_upgrade(&c, 2).unwrap();
        let raw = execute(&c, &plan, &ExecConfig::default());
        assert_eq!(raw.wire_bytes_saved, 0, "raw mode saves nothing");
        assert!(raw.wire_bytes_sent > 0);

        let ca = execute(
            &c,
            &plan,
            &ExecConfig {
                wire_mode: WireMode::ContentAware,
                wire_compression_ratio: 0.3,
                ..ExecConfig::default()
            },
        );
        assert_eq!(ca.migrations, raw.migrations);
        assert!(
            ca.migration_time < raw.migration_time,
            "fewer bytes, less time"
        );
        assert!(ca.total < raw.total);
        assert!(ca.wire_bytes_sent < raw.wire_bytes_sent);
        assert!(
            ca.wire_bytes_saved > raw.wire_bytes_sent / 2,
            "a 0.3 ratio must save most of the raw bytes"
        );

        // Ratio 1.0 must degenerate to the raw accounting exactly.
        let unity = execute(
            &c,
            &plan,
            &ExecConfig {
                wire_mode: WireMode::ContentAware,
                wire_compression_ratio: 1.0,
                ..ExecConfig::default()
            },
        );
        assert_eq!(unity.total, raw.total);
        assert_eq!(unity.wire_bytes_sent, raw.wire_bytes_sent);
        assert_eq!(unity.wire_bytes_saved, 0);
    }

    #[test]
    fn wire_reference_calibrates_the_content_aware_accounting() {
        // A measured reference migration (here: a hand-built WireStats
        // shaped like an idle guest — mostly elided zeros) feeds the
        // analytic executor the same ratio the page-level path earned.
        use hypertp_migrate::{FrameKind, WireStats};
        let mut reference = WireStats::default();
        for _ in 0..900 {
            reference.record_parts(FrameKind::Zero, 16);
        }
        for _ in 0..100 {
            reference.record_parts(FrameKind::Raw, 24);
        }
        let cfg = ExecConfig::default().with_wire_reference(&reference);
        assert_eq!(cfg.wire_mode, WireMode::ContentAware);
        assert!(
            (cfg.wire_compression_ratio - reference.compression_ratio()).abs() < 1e-12,
            "ratio must come straight from the reference stats"
        );
        assert!(
            cfg.wire_compression_ratio < 0.1,
            "idle reference elides most bytes"
        );

        let c = Cluster::paper_testbed(0, 42);
        let plan = plan_upgrade(&c, 2).unwrap();
        let raw = execute(&c, &plan, &ExecConfig::default());
        let calibrated = execute(&c, &plan, &cfg);
        assert!(calibrated.migration_time < raw.migration_time);
        assert!(calibrated.wire_bytes_saved > 0);

        // An empty reference must not promise a free campaign.
        let empty = ExecConfig::default().with_wire_reference(&WireStats::default());
        assert_eq!(empty.wire_compression_ratio, 1.0);
    }

    #[test]
    fn spdf_cuts_mean_vm_ready_without_changing_the_drain() {
        // The paper testbed mixes idle, cpu-mem and video-stream VMs, so
        // predicted migration times differ. On a serialized fabric the
        // group drain time is order-invariant (the sum of the times), but
        // admitting the fast migrations first shrinks the average VM's
        // wait for its own completion.
        let c = Cluster::paper_testbed(0, 42);
        let plan = plan_upgrade(&c, 2).unwrap();
        let fifo = execute(&c, &plan, &ExecConfig::default());
        let spdf = execute(
            &c,
            &plan,
            &ExecConfig {
                fleet_order: FleetOrder::ShortestPredictedFirst,
                ..ExecConfig::default()
            },
        );
        assert_eq!(fifo.migrations, spdf.migrations);
        assert_eq!(
            fifo.total, spdf.total,
            "serialized drain time is admission-order invariant"
        );
        assert_eq!(fifo.wire_bytes_sent, spdf.wire_bytes_sent);
        assert!(
            spdf.mean_vm_ready < fifo.mean_vm_ready,
            "spdf {:?} !< fifo {:?}",
            spdf.mean_vm_ready,
            fifo.mean_vm_ready
        );
        // Determinism: the same config re-executes identically.
        let again = execute(
            &c,
            &plan,
            &ExecConfig {
                fleet_order: FleetOrder::ShortestPredictedFirst,
                ..ExecConfig::default()
            },
        );
        assert_eq!(again.total, spdf.total);
        assert_eq!(again.mean_vm_ready, spdf.mean_vm_ready);
    }

    #[test]
    fn streaming_telemetry_is_consistent_with_the_scalar_fields() {
        let c = Cluster::paper_testbed(0, 42);
        let plan = plan_upgrade(&c, 2).unwrap();
        let r = execute(&c, &plan, &ExecConfig::default());
        assert_eq!(r.vm_ready.count as usize, r.migrations);
        assert_eq!(r.vm_ready_hist.total() as usize, r.migrations);
        assert_eq!(r.group_drain.count as usize, plan.groups.len());
        // The streamed mean reproduces mean_vm_ready (integer-truncated).
        let mean_ns = (r.vm_ready.mean() * 1e9) as u64;
        let diff = mean_ns.abs_diff(r.mean_vm_ready.as_nanos());
        assert!(
            diff < 1_000,
            "stream mean {mean_ns} vs {:?}",
            r.mean_vm_ready
        );
        assert!(r.vm_ready.max <= r.group_drain.max);
    }

    #[test]
    fn incremental_translate_shrinks_the_inplace_phase() {
        let c = Cluster::paper_testbed(100, 42);
        let plan = plan_upgrade(&c, 2).unwrap();
        let full = execute(&c, &plan, &ExecConfig::default());

        // A mostly-converged fleet (5% residual dirty pages at the pause)
        // re-translates only the delta during the blackout.
        let inc = execute(
            &c,
            &plan,
            &ExecConfig {
                incremental_translate: true,
                inplace_dirty_fraction: 0.05,
                ..ExecConfig::default()
            },
        );
        assert_eq!(inc.inplace_upgrades, full.inplace_upgrades);
        assert!(
            inc.inplace_time < full.inplace_time,
            "incremental {:?} !< full {:?}",
            inc.inplace_time,
            full.inplace_time
        );
        assert!(inc.total < full.total);

        // Fraction 1.0 must degenerate to the full-translate accounting
        // exactly (delta cost at unity fraction equals `translate`).
        let unity = execute(
            &c,
            &plan,
            &ExecConfig {
                incremental_translate: true,
                inplace_dirty_fraction: 1.0,
                ..ExecConfig::default()
            },
        );
        assert_eq!(unity.total, full.total);
        assert_eq!(unity.inplace_time, full.inplace_time);

        // Determinism: same config, same schedule.
        let again = execute(
            &c,
            &plan,
            &ExecConfig {
                incremental_translate: true,
                inplace_dirty_fraction: 0.05,
                ..ExecConfig::default()
            },
        );
        assert_eq!(again.total, inc.total);
        assert_eq!(again.inplace_time, inc.inplace_time);
    }

    #[test]
    fn slo_accounting_defaults_off_and_reports_zero() {
        let c = Cluster::paper_testbed(0, 42);
        let plan = plan_upgrade(&c, 2).unwrap();
        let r = execute(&c, &plan, &ExecConfig::default());
        assert_eq!(r.slo_vms, 0);
        assert_eq!(r.slo_violation, SimDuration::ZERO);
        assert_eq!(r.slo_max_budget_burn, 0.0);
        assert!(r.render().contains("slo_vms=0 slo_violation_ns=0"));
    }

    #[test]
    fn slo_accounting_stretches_migrations_and_counts_violations() {
        // The paper testbed migrates video-stream VMs (4 kQPS peak); with
        // SLO accounting on, their traffic steals fabric share at
        // admission time, so the migration phase must lengthen and the
        // serving VMs must be accounted.
        let c = Cluster::paper_testbed(0, 42);
        let plan = plan_upgrade(&c, 2).unwrap();
        let off = execute(&c, &plan, &ExecConfig::default());
        let cfg = ExecConfig {
            slo: Some(SloExecConfig::default()),
            ..ExecConfig::default()
        };
        let on = execute(&c, &plan, &cfg);
        assert_eq!(on.migrations, off.migrations);
        assert!(on.slo_vms > 0, "video-stream VMs carry SLOs");
        assert!(
            on.migration_time >= off.migration_time,
            "contention can only slow the fabric"
        );
        assert!(on.slo_max_budget_burn >= 0.0);
        // Deterministic rerun.
        let again = execute(&c, &plan, &cfg);
        assert_eq!(on.render(), again.render());
    }

    #[test]
    fn slo_aware_order_cuts_violation_seconds() {
        // Blind FIFO admission migrates VMs whenever their turn comes;
        // SLO-aware admission re-prices the queue at each slot and
        // prefers VMs in their quiet windows. Same physics (slo armed in
        // both), so the comparison is fair. A gigabit fabric stretches
        // group drains enough that window placement matters; greedy
        // least-harm admission must not lose to blind order by more
        // than scheduling noise on any fabric.
        let c = Cluster::paper_testbed(0, 42);
        let plan = plan_upgrade(&c, 2).unwrap();
        let slo = Some(SloExecConfig::default());
        let run = |order| {
            execute(
                &c,
                &plan,
                &ExecConfig {
                    slo,
                    fleet_order: order,
                    link: hypertp_migrate::Link::gigabit(),
                    ..ExecConfig::default()
                },
            )
        };
        let blind = run(FleetOrder::Fifo);
        let aware = run(FleetOrder::SloAware);
        assert_eq!(blind.migrations, aware.migrations);
        assert_eq!(blind.slo_vms, aware.slo_vms);
        assert!(
            aware.slo_violation.as_secs_f64() <= blind.slo_violation.as_secs_f64() * 1.01,
            "aware {:?} !<= blind {:?}",
            aware.slo_violation,
            blind.slo_violation
        );
    }

    #[test]
    fn slo_aware_sharded_report_stays_byte_identical() {
        let c = Cluster::paper_testbed(0, 42);
        let plan = plan_upgrade(&c, 2).unwrap();
        let cfg = ExecConfig {
            slo: Some(SloExecConfig::default()),
            fleet_order: FleetOrder::SloAware,
            ..ExecConfig::default()
        };
        let baseline = execute(&c, &plan, &cfg);
        for shards in [1usize, 3, 8] {
            for workers in [1usize, 4] {
                let r = execute_sharded_with(
                    &c,
                    &plan,
                    &cfg,
                    &FaultPlan::disarmed(),
                    shards,
                    &WorkerPool::new(workers),
                );
                assert_eq!(
                    r.render(),
                    baseline.render(),
                    "shards={shards} workers={workers}"
                );
            }
        }
    }

    #[test]
    fn exposure_accounting_defaults_off_and_renders_identically() {
        // The metric is opt-in: with no feed attached the report — and
        // its byte-stable render — must be indistinguishable from an
        // executor that has never heard of exposure.
        let c = Cluster::paper_testbed(40, 42);
        let plan = plan_upgrade(&c, 2).unwrap();
        let r = execute(&c, &plan, &ExecConfig::default());
        assert_eq!(r.exposure_vms, 0);
        assert_eq!(r.exposure_vm_secs, 0.0);
        assert_eq!(r.exposure.count, 0);
        assert!(!r.render().contains("exposure"));
    }

    #[test]
    fn exposure_accounting_integrates_per_group_and_stays_sharded_identical() {
        let c = Cluster::paper_testbed(40, 42);
        let plan = plan_upgrade(&c, 2).unwrap();
        let cfg = ExecConfig {
            exposure: Some(ExposureExecConfig {
                criticality: 0.8,
                window: SimDuration::from_secs(7 * 24 * 3600),
            }),
            ..ExecConfig::default()
        };
        let r = execute(&c, &plan, &cfg);
        // Every planned VM is accounted at least once (a VM that migrates
        // onto a host whose own in-place slot comes later rides two
        // remediation events), the series carries one sample per group,
        // and the integral is bounded by crit × window × accounted VMs.
        assert!(r.exposure_vms >= c.vm_count());
        assert_eq!(r.exposure.count, plan.groups.len() as u64);
        assert!(r.exposure_vm_secs > 0.0);
        let cap = 0.8 * (7 * 24 * 3600) as f64 * r.exposure_vms as f64;
        assert!(r.exposure_vm_secs < cap);
        assert!(r.render().contains("exposure_vms="));
        // Later groups finish later on the campaign clock, so the last
        // group's per-VM sample is the campaign total at its criticality.
        assert!(r.exposure.min <= r.exposure.max);
        assert!((r.exposure.max - 0.8 * r.total.as_secs_f64()).abs() < 1e-6);
        for shards in [2usize, 5, 11] {
            for workers in [1usize, 4] {
                let s = execute_sharded_with(
                    &c,
                    &plan,
                    &cfg,
                    &FaultPlan::disarmed(),
                    shards,
                    &WorkerPool::new(workers),
                );
                assert_eq!(s.render(), r.render(), "shards={shards} workers={workers}");
            }
        }
    }

    #[test]
    fn excluded_hosts_accrue_the_full_window() {
        // A host dropped from the plan strands its VMs on the vulnerable
        // hypervisor: each must accrue criticality × the whole window.
        let c = Cluster::paper_testbed(100, 42);
        let plan = plan_upgrade(&c, 2).unwrap();
        let window = SimDuration::from_secs(7 * 24 * 3600);
        let cfg = ExecConfig {
            max_host_retries: 0,
            exposure: Some(ExposureExecConfig {
                criticality: 1.0,
                window,
            }),
            ..ExecConfig::default()
        };
        let faults = FaultPlan::new(0xe4_05);
        faults.arm(InjectionPoint::HostFailure, 1.0, 1);
        let r = execute_with_faults(&c, &plan, &cfg, &faults);
        assert_eq!(r.hosts_excluded, 1);
        // The excluded host's VMs dominate the integral: their share is
        // window seconds each, dwarfing the seconds-scale campaign.
        let full_window_vms = (r.exposure_vm_secs / window.as_secs_f64()).round() as usize;
        assert!(full_window_vms >= 1, "integral {:?}", r.exposure_vm_secs);
        assert!(r.render().contains("exposure_vms="));
    }

    #[test]
    fn inplace_upgrades_take_seconds_each() {
        let c = Cluster::paper_testbed(100, 42);
        let plan = plan_upgrade(&c, 2).unwrap();
        let r = execute(&c, &plan, &ExecConfig::default());
        // "hypervisor host upgrades using InPlaceTP take only seconds"
        let per_group = r.total.as_secs_f64() / plan.groups.len() as f64;
        assert!(per_group < 30.0, "per-group upgrade = {per_group}s");
        assert_eq!(r.migrations, 0);
    }
}
