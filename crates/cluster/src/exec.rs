//! The plan executor: timing the cluster upgrade (Fig. 13).
//!
//! Execution policy follows the paper's testbed behaviour: migrations are
//! serialized (operators cap concurrent migrations to protect the 10 Gbps
//! fabric), and once a group's hosts are evacuated their in-place upgrades
//! run in parallel. Per-migration time is the sum of the per-operation
//! orchestration overhead, the pre-copy transfer (with the workload's
//! dirty-rate extension) and the stop-and-copy. Per-upgrade time comes
//! from the same cost model as the single-machine InPlaceTP experiments.

use hypertp_core::HypervisorKind;
use hypertp_migrate::{FleetOrder, Link, WireMode};
use hypertp_sim::cost::BootTarget;
use hypertp_sim::fault::{FaultPlan, InjectionPoint, RecoveryAction};
use hypertp_sim::{CostModel, EventQueue, SimDuration, SimTime};

use crate::model::Cluster;
use crate::planner::{Action, Plan};

/// Timing knobs for plan execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecConfig {
    /// The cluster fabric.
    pub link: Link,
    /// Per-migration orchestration overhead (scheduling, pre/post hooks —
    /// dominated by the cloud manager, not the data path).
    pub per_migration_overhead: SimDuration,
    /// Target hypervisor of the upgrade.
    pub target: HypervisorKind,
    /// Maximum concurrent migrations the operator allows on the fabric
    /// (the paper's testbed effectively serializes: 1). Concurrent
    /// migrations also share link bandwidth.
    pub max_concurrent_migrations: usize,
    /// Retries granted to a host whose in-place upgrade faults before it
    /// is dropped from the plan (see [`execute_with_faults`]).
    pub max_host_retries: u32,
    /// Wire representation used by the campaign's migrations. The
    /// executor is an analytic model, so under
    /// [`WireMode::ContentAware`] it scales page bytes by
    /// [`ExecConfig::wire_compression_ratio`] instead of running the
    /// page-level path; [`WireMode::Raw`] (the default) keeps the
    /// paper-faithful fig. 13 byte accounting.
    pub wire_mode: WireMode,
    /// Observed wire/raw byte ratio of the content-aware path on this
    /// workload (e.g. [`hypertp_migrate::WireStats::compression_ratio`]
    /// from a reference migration, or BENCH_wire.json). 1.0 = no savings.
    pub wire_compression_ratio: f64,
    /// Admission order of each group's migration queue.
    /// [`FleetOrder::Fifo`] (the default) keeps the planner's order;
    /// [`FleetOrder::ShortestPredictedFirst`] admits the migrations the
    /// analytic model predicts fastest first, which minimises the mean
    /// VM-ready time ([`ExecReport::mean_vm_ready`]) — each VM's exposure
    /// window — without changing the group's drain time on a serialized
    /// fabric.
    pub fleet_order: FleetOrder,
    /// Run in-place upgrades with the incremental pre-pause translation
    /// path ([`hypertp_core::Optimizations::incremental_translate`]). The
    /// executor is an analytic model: the warm UISR snapshot happens while
    /// the group's migrations drain (below the time axis), so the blackout
    /// charged to each host shrinks to the dirty-delta re-translation
    /// ([`CostModel::delta_translate`] at
    /// [`ExecConfig::inplace_dirty_fraction`]) instead of the full
    /// [`CostModel::translate`]. Off by default: the fig. 13 accounting is
    /// byte-identical to the paper-faithful pause-time translation.
    pub incremental_translate: bool,
    /// Fraction of guest pages still dirty at the final pause when
    /// [`ExecConfig::incremental_translate`] is on (e.g. a reference
    /// [`hypertp_core::InPlaceReport::dirty_fraction`], or the hot-guest
    /// figure from BENCH_inplace.json). 1.0 = everything re-translated,
    /// which degenerates exactly to the full-translate accounting.
    pub inplace_dirty_fraction: f64,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            link: Link::ten_gigabit(),
            per_migration_overhead: SimDuration::from_millis(3500),
            target: HypervisorKind::Kvm,
            max_concurrent_migrations: 1,
            max_host_retries: 2,
            wire_mode: WireMode::Raw,
            wire_compression_ratio: 1.0,
            fleet_order: FleetOrder::Fifo,
            incremental_translate: false,
            inplace_dirty_fraction: 1.0,
        }
    }
}

/// Result of executing a plan.
#[derive(Debug, Clone)]
pub struct ExecReport {
    /// Number of migrations performed.
    pub migrations: usize,
    /// Number of in-place host upgrades.
    pub inplace_upgrades: usize,
    /// Total wall-clock reconfiguration time.
    pub total: SimDuration,
    /// Time spent in the migration phase(s).
    pub migration_time: SimDuration,
    /// Time spent in in-place upgrades (parallel within a group).
    pub inplace_time: SimDuration,
    /// In-place upgrade attempts that faulted and were retried.
    pub host_retries: usize,
    /// Hosts dropped from the plan after exhausting their retry budget.
    pub hosts_excluded: usize,
    /// Page bytes actually put on the fabric by the campaign's
    /// migrations (equals the raw byte count under [`WireMode::Raw`]).
    pub wire_bytes_sent: u64,
    /// Bytes the content-aware wire path kept off the fabric (0 under
    /// [`WireMode::Raw`]).
    pub wire_bytes_saved: u64,
    /// Mean time from a group's start until each of its migrating VMs was
    /// ready on its destination (the per-VM exposure window). Zero when
    /// the plan has no migrations. [`FleetOrder::ShortestPredictedFirst`]
    /// minimises this without changing [`ExecReport::total`] on a
    /// serialized fabric.
    pub mean_vm_ready: SimDuration,
}

impl ExecReport {
    /// Percentage of time saved relative to a baseline execution.
    pub fn time_gain_pct(&self, baseline: &ExecReport) -> f64 {
        (1.0 - self.total.as_secs_f64() / baseline.total.as_secs_f64()) * 100.0
    }
}

/// Analytic estimate of one live migration: duration plus its raw and
/// on-the-wire byte counts.
struct MigrationEstimate {
    time: SimDuration,
    raw_bytes: u64,
    wire_bytes: u64,
}

/// Estimates one live migration of `vm` with `sharers` flows on the
/// fabric. Under [`WireMode::ContentAware`] the page bytes shrink by the
/// configured compression ratio before hitting the link.
fn migration_time(
    cluster: &Cluster,
    cfg: &ExecConfig,
    vm: usize,
    sharers: u32,
) -> MigrationEstimate {
    let v = &cluster.vms[vm];
    let raw = v.config.memory_gb << 30;
    let ratio = match cfg.wire_mode {
        WireMode::Raw => 1.0,
        WireMode::ContentAware => cfg.wire_compression_ratio.clamp(0.0, 1.0),
    };
    let bytes = (raw as f64 * ratio) as u64;
    let copy = cfg.link.transfer(bytes, sharers);
    // Dirty pages written during the copy must be re-sent (a geometric
    // tail approximated by its first round).
    let raw_dirty = (v.profile.dirty_rate_pages_per_sec * copy.as_secs_f64() * 4096.0) as u64;
    let dirty_bytes = (raw_dirty as f64 * ratio) as u64;
    let extra = cfg.link.transfer(dirty_bytes, sharers);
    MigrationEstimate {
        time: cfg.per_migration_overhead + copy + extra,
        raw_bytes: raw + raw_dirty,
        wire_bytes: bytes + dirty_bytes,
    }
}

/// Time of one in-place host upgrade carrying `vm_count` 4 GiB VMs.
///
/// Under [`ExecConfig::incremental_translate`] the pause-time translation
/// term becomes the dirty-delta re-translation at the configured residual
/// dirty fraction; the warm snapshot itself overlaps the group's
/// migration drain and never shows up in the blackout.
fn inplace_time(
    cluster: &Cluster,
    cost: &CostModel,
    cfg: &ExecConfig,
    host: usize,
    vm_count: usize,
    target: HypervisorKind,
) -> SimDuration {
    let perf = cluster.hosts[host].spec.perf();
    let vms: Vec<(f64, u64)> = (0..vm_count).map(|_| (4.0, 4 * 512)).collect();
    let xl: Vec<(f64, u32, u64)> = (0..vm_count).map(|_| (4.0, 1, 4 * 512)).collect();
    let rl: Vec<(f64, u32)> = (0..vm_count).map(|_| (4.0, 1)).collect();
    let total_gb = vm_count as f64 * 4.0;
    let entries = vm_count as u64 * 4 * 512;
    let boot = match target {
        HypervisorKind::Kvm => BootTarget::LinuxKvm,
        HypervisorKind::Xen => BootTarget::XenDom0,
    };
    let translate = if cfg.incremental_translate {
        let frac = cfg.inplace_dirty_fraction.clamp(0.0, 1.0);
        let dl: Vec<(f64, u32, u64, f64)> =
            (0..vm_count).map(|_| (4.0, 1, 4 * 512, frac)).collect();
        cost.delta_translate(&perf, &dl)
    } else {
        cost.translate(&perf, &xl)
    };
    cost.pram_build(&perf, &vms)
        + translate
        + cost.reboot(&perf, boot, total_gb, entries)
        + cost.restore(&perf, &rl, true)
}

/// Executes a plan with a discrete-event scheduler. Within a group, up to
/// `max_concurrent_migrations` migrations run at once (sharing the link);
/// the group's in-place upgrades run in parallel once its migrations have
/// drained; groups run one after another (the rolling-offline structure).
pub fn execute(cluster: &Cluster, plan: &Plan, cfg: &ExecConfig) -> ExecReport {
    execute_with_faults(cluster, plan, cfg, &FaultPlan::disarmed())
}

/// [`execute`] under fault injection: an in-place upgrade hit by
/// [`InjectionPoint::HostFailure`] burns its slot time and is retried
/// ([`RecoveryAction::RequeuedHost`]); past `cfg.max_host_retries` the
/// host is dropped from the plan ([`RecoveryAction::ExcludedHost`]) and
/// accounted in [`ExecReport::hosts_excluded`]. Faulted attempts extend
/// the group's parallel in-place phase, so recovery cost shows up in the
/// reported wall-clock totals.
pub fn execute_with_faults(
    cluster: &Cluster,
    plan: &Plan,
    cfg: &ExecConfig,
    faults: &FaultPlan,
) -> ExecReport {
    let cost = CostModel::paper_calibrated();
    let slots = cfg.max_concurrent_migrations.max(1);
    let mut now = SimTime::ZERO;
    let mut migration_time_acc = SimDuration::ZERO;
    let mut inplace_time_acc = SimDuration::ZERO;
    let mut migrations = 0usize;
    let mut upgrades = 0usize;
    let mut host_retries = 0usize;
    let mut hosts_excluded = 0usize;
    let mut wire_bytes_sent = 0u64;
    let mut raw_bytes = 0u64;
    let mut ready_acc = SimDuration::ZERO;
    for group in &plan.groups {
        let group_start = now;
        // Phase 1: drain the group's migrations through the slot pool.
        let mut pending: Vec<usize> = group
            .iter()
            .filter_map(|a| match a {
                Action::Migrate { vm, .. } => Some(*vm),
                _ => None,
            })
            .collect();
        migrations += pending.len();
        let sharers = pending.len().min(slots) as u32;
        if cfg.fleet_order == FleetOrder::ShortestPredictedFirst {
            // Convergence-aware admission: the analytic model's predicted
            // migration time orders the queue (VM index breaks ties, so
            // the schedule is deterministic).
            pending.sort_by_key(|&vm| (migration_time(cluster, cfg, vm, sharers).time, vm));
        }
        let mut queue: std::collections::VecDeque<usize> = pending.into();
        let mut events: EventQueue<usize> = EventQueue::new();
        // Seed the slots.
        let mut in_flight = 0usize;
        while in_flight < slots {
            match queue.pop_front() {
                Some(vm) => {
                    let est = migration_time(cluster, cfg, vm, sharers);
                    wire_bytes_sent += est.wire_bytes;
                    raw_bytes += est.raw_bytes;
                    events.schedule(now + est.time, vm);
                    in_flight += 1;
                }
                None => break,
            }
        }
        while let Some((t, _done)) = events.pop() {
            now = t;
            ready_acc += now.duration_since(group_start);
            if let Some(vm) = queue.pop_front() {
                let est = migration_time(cluster, cfg, vm, sharers);
                wire_bytes_sent += est.wire_bytes;
                raw_bytes += est.raw_bytes;
                events.schedule(now + est.time, vm);
            }
        }
        migration_time_acc += now.duration_since(group_start);
        // Phase 2: the group's in-place upgrades, in parallel. A faulted
        // upgrade burns its attempt's time and retries on the same host;
        // past the retry budget the host is dropped from the plan.
        let mut group_inplace = SimDuration::ZERO;
        for a in group {
            let Action::InPlaceUpgrade { host, vm_count } = a else {
                continue;
            };
            let attempt_cost = inplace_time(cluster, &cost, cfg, *host, *vm_count, cfg.target);
            let mut host_time = SimDuration::ZERO;
            let mut attempts = 0u32;
            loop {
                let site = format!("exec upgrade h{host}");
                host_time += attempt_cost;
                if faults.should_inject(InjectionPoint::HostFailure, &site) {
                    attempts += 1;
                    if attempts > cfg.max_host_retries {
                        faults.record_recovery(
                            InjectionPoint::HostFailure,
                            RecoveryAction::ExcludedHost,
                            &format!("{site}: dropped after {attempts} failed attempts"),
                        );
                        hosts_excluded += 1;
                        break;
                    }
                    faults.record_recovery(
                        InjectionPoint::HostFailure,
                        RecoveryAction::RequeuedHost,
                        &format!("{site}: attempt {attempts} failed, retrying"),
                    );
                    host_retries += 1;
                    continue;
                }
                upgrades += 1;
                break;
            }
            group_inplace = group_inplace.max(host_time);
        }
        now += group_inplace;
        inplace_time_acc += group_inplace;
    }
    ExecReport {
        migrations,
        inplace_upgrades: upgrades,
        total: now.duration_since(SimTime::ZERO),
        migration_time: migration_time_acc,
        inplace_time: inplace_time_acc,
        host_retries,
        hosts_excluded,
        wire_bytes_sent,
        wire_bytes_saved: raw_bytes.saturating_sub(wire_bytes_sent),
        mean_vm_ready: if migrations == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_nanos(ready_acc.as_nanos() / migrations as u64)
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Cluster;
    use crate::planner::plan_upgrade;

    fn run(pct: u32) -> ExecReport {
        let c = Cluster::paper_testbed(pct, 42);
        let plan = plan_upgrade(&c, 2).unwrap();
        execute(&c, &plan, &ExecConfig::default())
    }

    #[test]
    fn fig13_all_migration_baseline_around_19_minutes() {
        let r = run(0);
        let minutes = r.total.as_secs_f64() / 60.0;
        assert!((14.0..23.0).contains(&minutes), "total = {minutes} min");
        assert!(r.migrations >= 120);
    }

    #[test]
    fn fig13_eighty_percent_compat_around_4_minutes() {
        let r = run(80);
        let minutes = r.total.as_secs_f64() / 60.0;
        assert!((2.5..6.0).contains(&minutes), "total = {minutes} min");
    }

    #[test]
    fn fig13_time_gain_curve() {
        let baseline = run(0);
        let mut prev_gain = -1.0;
        for pct in [20u32, 40, 60, 80] {
            let r = run(pct);
            let gain = r.time_gain_pct(&baseline);
            assert!(gain > prev_gain, "gain at {pct}% = {gain}");
            prev_gain = gain;
        }
        // Paper: ≈80% time gain at 80% compatibility, ≈68% at 60%.
        let g80 = run(80).time_gain_pct(&baseline);
        assert!((68.0..90.0).contains(&g80), "gain at 80% = {g80}");
        let g60 = run(60).time_gain_pct(&baseline);
        assert!((50.0..80.0).contains(&g60), "gain at 60% = {g60}");
    }

    #[test]
    fn concurrency_knob_shortens_the_migration_phase() {
        let c = Cluster::paper_testbed(0, 42);
        let plan = plan_upgrade(&c, 2).unwrap();
        let serial = execute(&c, &plan, &ExecConfig::default());
        let four = execute(
            &c,
            &plan,
            &ExecConfig {
                max_concurrent_migrations: 4,
                ..ExecConfig::default()
            },
        );
        assert_eq!(serial.migrations, four.migrations);
        // Four slots share the fabric, so the win comes from overlapping
        // the per-migration orchestration overhead — real but sub-linear.
        assert!(four.total < serial.total);
        assert!(
            four.total.as_secs_f64() > serial.total.as_secs_f64() / 4.0,
            "bandwidth sharing prevents a linear speedup"
        );
    }

    #[test]
    fn host_failure_retry_extends_wall_clock() {
        let c = Cluster::paper_testbed(100, 42);
        let plan = plan_upgrade(&c, 2).unwrap();
        let cfg = ExecConfig::default();
        let clean = execute(&c, &plan, &cfg);
        let faults = FaultPlan::new(0xe8ec);
        faults.arm_once(InjectionPoint::HostFailure);
        let faulted = execute_with_faults(&c, &plan, &cfg, &faults);
        assert_eq!(faulted.host_retries, 1);
        assert_eq!(faulted.hosts_excluded, 0);
        assert_eq!(faulted.inplace_upgrades, clean.inplace_upgrades);
        assert!(
            faulted.total > clean.total,
            "recovery cost must show up in wall-clock time"
        );
        assert!(faults
            .log()
            .recovered_via(InjectionPoint::HostFailure, RecoveryAction::RequeuedHost));
    }

    #[test]
    fn exhausted_retries_drop_the_host_from_the_plan() {
        let c = Cluster::paper_testbed(100, 42);
        let plan = plan_upgrade(&c, 2).unwrap();
        let cfg = ExecConfig::default();
        let faults = FaultPlan::new(0xe8ed);
        // First host's upgrade fails on every attempt (1 + 2 retries).
        faults.arm_calls(InjectionPoint::HostFailure, &[1, 2, 3]);
        let r = execute_with_faults(&c, &plan, &cfg, &faults);
        assert_eq!(r.hosts_excluded, 1);
        assert_eq!(r.host_retries, cfg.max_host_retries as usize);
        assert_eq!(r.inplace_upgrades, plan.inplace_count() - 1);
        assert!(faults
            .log()
            .recovered_via(InjectionPoint::HostFailure, RecoveryAction::ExcludedHost));
    }

    #[test]
    fn same_seed_executes_identically() {
        let c = Cluster::paper_testbed(80, 42);
        let plan = plan_upgrade(&c, 2).unwrap();
        let cfg = ExecConfig::default();
        let run = |seed: u64| {
            let faults = FaultPlan::new(seed);
            faults.arm(InjectionPoint::HostFailure, 0.3, u64::MAX);
            let r = execute_with_faults(&c, &plan, &cfg, &faults);
            (
                r.host_retries,
                r.hosts_excluded,
                r.total,
                faults.log().render(),
            )
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn content_aware_wire_mode_shrinks_migration_phase_and_reports_savings() {
        let c = Cluster::paper_testbed(0, 42);
        let plan = plan_upgrade(&c, 2).unwrap();
        let raw = execute(&c, &plan, &ExecConfig::default());
        assert_eq!(raw.wire_bytes_saved, 0, "raw mode saves nothing");
        assert!(raw.wire_bytes_sent > 0);

        let ca = execute(
            &c,
            &plan,
            &ExecConfig {
                wire_mode: WireMode::ContentAware,
                wire_compression_ratio: 0.3,
                ..ExecConfig::default()
            },
        );
        assert_eq!(ca.migrations, raw.migrations);
        assert!(
            ca.migration_time < raw.migration_time,
            "fewer bytes, less time"
        );
        assert!(ca.total < raw.total);
        assert!(ca.wire_bytes_sent < raw.wire_bytes_sent);
        assert!(
            ca.wire_bytes_saved > raw.wire_bytes_sent / 2,
            "a 0.3 ratio must save most of the raw bytes"
        );

        // Ratio 1.0 must degenerate to the raw accounting exactly.
        let unity = execute(
            &c,
            &plan,
            &ExecConfig {
                wire_mode: WireMode::ContentAware,
                wire_compression_ratio: 1.0,
                ..ExecConfig::default()
            },
        );
        assert_eq!(unity.total, raw.total);
        assert_eq!(unity.wire_bytes_sent, raw.wire_bytes_sent);
        assert_eq!(unity.wire_bytes_saved, 0);
    }

    #[test]
    fn spdf_cuts_mean_vm_ready_without_changing_the_drain() {
        // The paper testbed mixes idle, cpu-mem and video-stream VMs, so
        // predicted migration times differ. On a serialized fabric the
        // group drain time is order-invariant (the sum of the times), but
        // admitting the fast migrations first shrinks the average VM's
        // wait for its own completion.
        let c = Cluster::paper_testbed(0, 42);
        let plan = plan_upgrade(&c, 2).unwrap();
        let fifo = execute(&c, &plan, &ExecConfig::default());
        let spdf = execute(
            &c,
            &plan,
            &ExecConfig {
                fleet_order: FleetOrder::ShortestPredictedFirst,
                ..ExecConfig::default()
            },
        );
        assert_eq!(fifo.migrations, spdf.migrations);
        assert_eq!(
            fifo.total, spdf.total,
            "serialized drain time is admission-order invariant"
        );
        assert_eq!(fifo.wire_bytes_sent, spdf.wire_bytes_sent);
        assert!(
            spdf.mean_vm_ready < fifo.mean_vm_ready,
            "spdf {:?} !< fifo {:?}",
            spdf.mean_vm_ready,
            fifo.mean_vm_ready
        );
        // Determinism: the same config re-executes identically.
        let again = execute(
            &c,
            &plan,
            &ExecConfig {
                fleet_order: FleetOrder::ShortestPredictedFirst,
                ..ExecConfig::default()
            },
        );
        assert_eq!(again.total, spdf.total);
        assert_eq!(again.mean_vm_ready, spdf.mean_vm_ready);
    }

    #[test]
    fn incremental_translate_shrinks_the_inplace_phase() {
        let c = Cluster::paper_testbed(100, 42);
        let plan = plan_upgrade(&c, 2).unwrap();
        let full = execute(&c, &plan, &ExecConfig::default());

        // A mostly-converged fleet (5% residual dirty pages at the pause)
        // re-translates only the delta during the blackout.
        let inc = execute(
            &c,
            &plan,
            &ExecConfig {
                incremental_translate: true,
                inplace_dirty_fraction: 0.05,
                ..ExecConfig::default()
            },
        );
        assert_eq!(inc.inplace_upgrades, full.inplace_upgrades);
        assert!(
            inc.inplace_time < full.inplace_time,
            "incremental {:?} !< full {:?}",
            inc.inplace_time,
            full.inplace_time
        );
        assert!(inc.total < full.total);

        // Fraction 1.0 must degenerate to the full-translate accounting
        // exactly (delta cost at unity fraction equals `translate`).
        let unity = execute(
            &c,
            &plan,
            &ExecConfig {
                incremental_translate: true,
                inplace_dirty_fraction: 1.0,
                ..ExecConfig::default()
            },
        );
        assert_eq!(unity.total, full.total);
        assert_eq!(unity.inplace_time, full.inplace_time);

        // Determinism: same config, same schedule.
        let again = execute(
            &c,
            &plan,
            &ExecConfig {
                incremental_translate: true,
                inplace_dirty_fraction: 0.05,
                ..ExecConfig::default()
            },
        );
        assert_eq!(again.total, inc.total);
        assert_eq!(again.inplace_time, inc.inplace_time);
    }

    #[test]
    fn inplace_upgrades_take_seconds_each() {
        let c = Cluster::paper_testbed(100, 42);
        let plan = plan_upgrade(&c, 2).unwrap();
        let r = execute(&c, &plan, &ExecConfig::default());
        // "hypervisor host upgrades using InPlaceTP take only seconds"
        let per_group = r.total.as_secs_f64() / plan.groups.len() as f64;
        assert!(per_group < 30.0, "per-group upgrade = {per_group}s");
        assert_eq!(r.migrations, 0);
    }
}
