//! An `xl`-style toolstack facade.
//!
//! Fig. 5 shows two paths to the hypervisor: generic libraries (libvirt —
//! the `(G2)` path every surveyed cloud uses) and the vendor toolstack
//! (`xl`, the `(G1)` path the paper found *no* sysadmin using). The
//! facade exists for completeness of the architecture and for debugging;
//! cluster orchestration goes through the libvirt-style driver in
//! `hypertp-cluster`.

use hypertp_core::{HtpError, Hypervisor, VmConfig, VmId, VmState};
use hypertp_machine::Machine;

use crate::hypervisor::XenHypervisor;

/// One row of `xl list`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XlDomain {
    /// Domain name.
    pub name: String,
    /// Domain id.
    pub domid: u32,
    /// Memory in MiB.
    pub mem_mib: u64,
    /// vCPU count.
    pub vcpus: u32,
    /// State string in `xl` format: `r-----` running, `--p---` paused.
    pub state: String,
}

/// The `xl` command surface over a Xen host.
pub struct Xl<'h> {
    hv: &'h mut XenHypervisor,
    machine: &'h mut Machine,
}

impl<'h> Xl<'h> {
    /// Attaches to a running Xen host.
    pub fn new(hv: &'h mut XenHypervisor, machine: &'h mut Machine) -> Self {
        Xl { hv, machine }
    }

    /// `xl create`: boots a domain from a config.
    pub fn create(&mut self, config: &VmConfig) -> Result<u32, HtpError> {
        Ok(self.hv.create_vm(self.machine, config)?.0)
    }

    /// `xl destroy <name>`.
    pub fn destroy(&mut self, name: &str) -> Result<(), HtpError> {
        let id = self.lookup(name)?;
        self.hv.destroy_vm(self.machine, id)
    }

    /// `xl pause <name>`.
    pub fn pause(&mut self, name: &str) -> Result<(), HtpError> {
        let id = self.lookup(name)?;
        self.hv.pause_vm(id)
    }

    /// `xl unpause <name>`.
    pub fn unpause(&mut self, name: &str) -> Result<(), HtpError> {
        let id = self.lookup(name)?;
        self.hv.resume_vm(id)
    }

    /// `xl save <name>`: returns the HVM context byte stream, as
    /// `xc_domain_hvm_getcontext` hands it to the toolstack.
    pub fn save(&mut self, name: &str) -> Result<Vec<u8>, HtpError> {
        let id = self.lookup(name)?;
        // Quiesce first — a paused guest cannot acknowledge the device
        // notifications — then pause and save through the public UISR
        // path, which enforces the same rules as a transplant.
        self.hv.notify_prepare_transplant(self.machine, id)?;
        self.hv.pause_vm(id)?;
        let uisr = self.hv.save_uisr(self.machine, id)?;
        Ok(hypertp_uisr::encode(&uisr))
    }

    /// `xl list`: all domains (dom0 excluded, as it is not a `Domain` in
    /// the model).
    pub fn list(&self) -> Vec<XlDomain> {
        self.hv
            .vm_ids()
            .into_iter()
            .filter_map(|id| {
                let c = self.hv.vm_config(id).ok()?;
                let state = match self.hv.vm_state(id).ok()? {
                    VmState::Running => "r-----",
                    VmState::Paused => "--p---",
                };
                Some(XlDomain {
                    name: c.name.clone(),
                    domid: id.0,
                    mem_mib: c.memory_gb * 1024,
                    vcpus: c.vcpus,
                    state: state.to_string(),
                })
            })
            .collect()
    }

    /// Renders `xl list` as the familiar table.
    pub fn list_text(&self) -> String {
        let mut out = String::from("Name          ID   Mem VCPUs\tState\n");
        for d in self.list() {
            out.push_str(&format!(
                "{:<12} {:>3} {:>5} {:>5}\t{}\n",
                d.name, d.domid, d.mem_mib, d.vcpus, d.state
            ));
        }
        out
    }

    fn lookup(&self, name: &str) -> Result<VmId, HtpError> {
        self.hv
            .find_vm(name)
            .ok_or(HtpError::UnknownVm(VmId(u32::MAX)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypertp_machine::MachineSpec;

    fn setup() -> (Machine, XenHypervisor) {
        let mut spec = MachineSpec::m1();
        spec.ram_gb = 4;
        let mut m = Machine::new(spec);
        let hv = XenHypervisor::new(&mut m);
        (m, hv)
    }

    #[test]
    fn create_list_pause_destroy() {
        let (mut m, mut hv) = setup();
        let mut xl = Xl::new(&mut hv, &mut m);
        let domid = xl.create(&VmConfig::small("guest1").with_vcpus(2)).unwrap();
        let rows = xl.list();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].domid, domid);
        assert_eq!(rows[0].mem_mib, 1024);
        assert_eq!(rows[0].vcpus, 2);
        assert_eq!(rows[0].state, "r-----");
        xl.pause("guest1").unwrap();
        assert_eq!(xl.list()[0].state, "--p---");
        xl.unpause("guest1").unwrap();
        xl.destroy("guest1").unwrap();
        assert!(xl.list().is_empty());
    }

    #[test]
    fn save_produces_decodable_stream() {
        let (mut m, mut hv) = setup();
        let mut xl = Xl::new(&mut hv, &mut m);
        xl.create(&VmConfig::small("guest1")).unwrap();
        let blob = xl.save("guest1").unwrap();
        let vm = hypertp_uisr::decode(&blob).unwrap();
        assert_eq!(vm.name, "guest1");
        assert_eq!(vm.vcpus.len(), 1);
    }

    #[test]
    fn unknown_domain_errors() {
        let (mut m, mut hv) = setup();
        let mut xl = Xl::new(&mut hv, &mut m);
        assert!(xl.pause("nope").is_err());
        assert!(xl.destroy("nope").is_err());
    }

    #[test]
    fn list_text_formats() {
        let (mut m, mut hv) = setup();
        let mut xl = Xl::new(&mut hv, &mut m);
        xl.create(&VmConfig::small("web")).unwrap();
        let text = xl.list_text();
        assert!(text.contains("Name"));
        assert!(text.contains("web"));
    }
}
