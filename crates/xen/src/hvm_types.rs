//! Xen's HVM hardware-state save structures.
//!
//! These mirror the layouts in Xen's `public/arch-x86/hvm/save.h`: one big
//! `hvm_hw_cpu` per vCPU with VMX-packed segment attributes and inline
//! syscall MSRs, a raw FXSAVE image for the FPU, architecturally-packed
//! 64-bit IOAPIC redirection entries, and dedicated MTRR/XSAVE/LAPIC/PIT
//! records. The *shape* of this data is what makes heterogeneous transplant
//! non-trivial: none of these containers exist on the KVM side.

use hypertp_uisr::{FpuState, PitChannel, RedirectionEntry};

/// Segment index within [`HvmHwCpu::segs`].
pub const SEG_CS: usize = 0;
/// Data segment index.
pub const SEG_DS: usize = 1;
/// Extra segment index.
pub const SEG_ES: usize = 2;
/// FS segment index.
pub const SEG_FS: usize = 3;
/// GS segment index.
pub const SEG_GS: usize = 4;
/// Stack segment index.
pub const SEG_SS: usize = 5;
/// Task register index.
pub const SEG_TR: usize = 6;
/// Local descriptor table register index.
pub const SEG_LDTR: usize = 7;

/// One segment as Xen saves it: selector/limit/base plus the VMX
/// access-rights word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HvmSegment {
    /// Selector (Xen widens to 32 bits in the save record).
    pub sel: u32,
    /// Segment limit.
    pub limit: u32,
    /// Segment base.
    pub base: u64,
    /// VMX access-rights word (see [`crate::arbytes`]).
    pub arbytes: u32,
}

/// Xen's per-vCPU CPU save record (`hvm_hw_cpu`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HvmHwCpu {
    /// General-purpose registers: rax, rbx, rcx, rdx, rbp, rsi, rdi, rsp,
    /// r8..r15 (Xen's field order).
    pub gprs: [u64; 16],
    /// Instruction pointer.
    pub rip: u64,
    /// Flags register.
    pub rflags: u64,
    /// Control registers cr0, cr2, cr3, cr4.
    pub crs: [u64; 4],
    /// Debug registers dr0, dr1, dr2, dr3, dr6, dr7.
    pub drs: [u64; 6],
    /// Segments, indexed by the `SEG_*` constants.
    pub segs: [HvmSegment; 8],
    /// GDTR base/limit.
    pub gdtr_base: u64,
    /// GDTR limit.
    pub gdtr_limit: u32,
    /// IDTR base.
    pub idtr_base: u64,
    /// IDTR limit.
    pub idtr_limit: u32,
    /// SYSENTER MSRs (cs, esp, eip).
    pub sysenter: [u64; 3],
    /// Shadow GS base.
    pub shadow_gs: u64,
    /// Inline syscall MSRs: flags, lstar, star, cstar, syscall_mask, efer,
    /// tsc_aux — Xen keeps these in the CPU record rather than a list.
    pub msr_flags: u64,
    /// MSR_LSTAR.
    pub msr_lstar: u64,
    /// MSR_STAR.
    pub msr_star: u64,
    /// MSR_CSTAR.
    pub msr_cstar: u64,
    /// MSR_SYSCALL_MASK (SFMASK).
    pub msr_syscall_mask: u64,
    /// MSR_EFER.
    pub msr_efer: u64,
    /// MSR_TSC_AUX.
    pub msr_tsc_aux: u64,
    /// Guest TSC at save time.
    pub tsc: u64,
    /// Raw FXSAVE image.
    pub fpu_regs: [u8; 512],
    /// Pending event (interruption info), 0 if none.
    pub pending_event: u32,
    /// Pending event error code.
    pub error_code: u32,
}

impl Default for HvmHwCpu {
    fn default() -> Self {
        HvmHwCpu {
            gprs: [0; 16],
            rip: 0,
            rflags: 0x2,
            crs: [0; 4],
            drs: [0; 6],
            segs: [HvmSegment::default(); 8],
            gdtr_base: 0,
            gdtr_limit: 0,
            idtr_base: 0,
            idtr_limit: 0,
            sysenter: [0; 3],
            shadow_gs: 0,
            msr_flags: 0,
            msr_lstar: 0,
            msr_star: 0,
            msr_cstar: 0,
            msr_syscall_mask: 0,
            msr_efer: 0,
            msr_tsc_aux: 0,
            tsc: 0,
            fpu_regs: [0; 512],
            pending_event: 0,
            error_code: 0,
        }
    }
}

/// Xen's LAPIC bookkeeping record (`hvm_hw_lapic`). The register page is a
/// separate `LAPIC_REGS` record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HvmHwLapic {
    /// APIC base MSR value.
    pub apic_base_msr: u64,
    /// Non-zero if the LAPIC is hardware-disabled.
    pub disabled: u32,
    /// Timer divisor (divide configuration).
    pub timer_divisor: u32,
    /// TSC-deadline MSR value.
    pub tdt_msr: u64,
}

/// Xen's MTRR record (`hvm_hw_mtrr`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HvmHwMtrr {
    /// PAT MSR.
    pub msr_pat_cr: u64,
    /// Variable-range MTRRs, interleaved base/mask (16 slots = 8 pairs).
    pub msr_mtrr_var: [u64; 16],
    /// Fixed-range MTRRs.
    pub msr_mtrr_fixed: [u64; 11],
    /// MTRR capability MSR.
    pub msr_mtrr_cap: u64,
    /// MTRR default type MSR.
    pub msr_mtrr_def_type: u64,
}

impl Default for HvmHwMtrr {
    fn default() -> Self {
        HvmHwMtrr {
            msr_pat_cr: 0x0007_0406_0007_0406,
            msr_mtrr_var: [0; 16],
            msr_mtrr_fixed: [0x0606_0606_0606_0606; 11],
            msr_mtrr_cap: 0x508, // 8 variable ranges, fixed + WC supported.
            msr_mtrr_def_type: 0x0c06,
        }
    }
}

/// Xen's XSAVE record (`hvm_hw_cpu_xsave`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HvmHwXsave {
    /// XCR0.
    pub xcr0: u64,
    /// Accumulated XCR0 (all components ever enabled).
    pub xcr0_accum: u64,
    /// Raw XSAVE area.
    pub area: Vec<u8>,
}

/// Xen's IOAPIC record: 48 architecturally packed 64-bit redirection
/// entries (`hvm_hw_vioapic`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HvmHwIoapic {
    /// IOAPIC bus address.
    pub base_address: u64,
    /// I/O register select latch.
    pub ioregsel: u32,
    /// IOAPIC ID.
    pub id: u8,
    /// Packed redirection table entries (one u64 per pin).
    pub redirtbl: Vec<u64>,
}

impl Default for HvmHwIoapic {
    fn default() -> Self {
        HvmHwIoapic {
            base_address: 0xfec0_0000,
            ioregsel: 0,
            id: 0,
            // All pins masked at reset.
            redirtbl: vec![1 << 16; 48],
        }
    }
}

/// One PIT channel as Xen saves it (`hvm_hw_pit.channels[i]`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[allow(missing_docs)]
pub struct HvmPitChannel {
    pub count: u32,
    pub latched_count: u16,
    pub count_latched: u8,
    pub status_latched: u8,
    pub status: u8,
    pub read_state: u8,
    pub write_state: u8,
    pub write_latch: u8,
    pub rw_mode: u8,
    pub mode: u8,
    pub bcd: u8,
    pub gate: u8,
}

/// Xen's PIT record (`hvm_hw_pit`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HvmHwPit {
    /// The three 8254 channels.
    pub channels: [HvmPitChannel; 3],
    /// Speaker data bit.
    pub speaker_data_on: u8,
}

// --- FXSAVE image packing (Intel SDM Vol. 1, 10.5.1) ---

/// Packs UISR FPU state into a 512-byte FXSAVE image.
pub fn fxsave_pack(f: &FpuState) -> [u8; 512] {
    let mut img = [0u8; 512];
    img[0..2].copy_from_slice(&f.fcw.to_le_bytes());
    img[2..4].copy_from_slice(&f.fsw.to_le_bytes());
    img[4] = f.ftw;
    img[6..8].copy_from_slice(&f.last_opcode.to_le_bytes());
    img[8..16].copy_from_slice(&f.last_ip.to_le_bytes());
    img[16..24].copy_from_slice(&f.last_dp.to_le_bytes());
    img[24..28].copy_from_slice(&f.mxcsr.to_le_bytes());
    img[28..32].copy_from_slice(&f.mxcsr_mask.to_le_bytes());
    for (i, st) in f.st.iter().enumerate() {
        img[32 + i * 16..48 + i * 16].copy_from_slice(st);
    }
    for (i, xmm) in f.xmm.iter().enumerate() {
        img[160 + i * 16..176 + i * 16].copy_from_slice(xmm);
    }
    img
}

/// Unpacks a 512-byte FXSAVE image into UISR FPU state.
pub fn fxsave_unpack(img: &[u8; 512]) -> FpuState {
    let mut f = FpuState {
        fcw: u16::from_le_bytes(img[0..2].try_into().expect("2")),
        fsw: u16::from_le_bytes(img[2..4].try_into().expect("2")),
        ftw: img[4],
        last_opcode: u16::from_le_bytes(img[6..8].try_into().expect("2")),
        last_ip: u64::from_le_bytes(img[8..16].try_into().expect("8")),
        last_dp: u64::from_le_bytes(img[16..24].try_into().expect("8")),
        mxcsr: u32::from_le_bytes(img[24..28].try_into().expect("4")),
        mxcsr_mask: u32::from_le_bytes(img[28..32].try_into().expect("4")),
        ..FpuState::default()
    };
    for i in 0..8 {
        f.st[i] = img[32 + i * 16..48 + i * 16].try_into().expect("16");
    }
    for i in 0..16 {
        f.xmm[i] = img[160 + i * 16..176 + i * 16].try_into().expect("16");
    }
    f
}

// --- IOAPIC redirection entry packing (82093AA datasheet / SDM) ---

/// Packs a UISR redirection entry into the architectural 64-bit RTE.
pub fn rte_pack(e: &RedirectionEntry) -> u64 {
    let mut v = e.vector as u64;
    v |= ((e.delivery_mode as u64) & 0x7) << 8;
    v |= (e.dest_mode as u64) << 11;
    v |= (e.remote_irr as u64) << 14;
    v |= (e.trigger_level as u64) << 15;
    v |= (e.masked as u64) << 16;
    v |= (e.dest as u64) << 56;
    v
}

/// Unpacks an architectural 64-bit RTE into a UISR redirection entry.
pub fn rte_unpack(v: u64) -> RedirectionEntry {
    RedirectionEntry {
        vector: (v & 0xff) as u8,
        delivery_mode: ((v >> 8) & 0x7) as u8,
        dest_mode: v & (1 << 11) != 0,
        remote_irr: v & (1 << 14) != 0,
        trigger_level: v & (1 << 15) != 0,
        masked: v & (1 << 16) != 0,
        dest: (v >> 56) as u8,
    }
}

/// Converts a Xen PIT channel to the UISR channel shape.
pub fn pit_channel_to_uisr(c: &HvmPitChannel) -> PitChannel {
    PitChannel {
        count: c.count,
        latched_count: c.latched_count,
        status: c.status,
        read_state: c.read_state,
        write_state: c.write_state,
        mode: c.mode,
        bcd: c.bcd != 0,
        gate: c.gate != 0,
    }
}

/// Converts a UISR PIT channel back to Xen's shape.
pub fn pit_channel_from_uisr(c: &PitChannel) -> HvmPitChannel {
    HvmPitChannel {
        count: c.count,
        latched_count: c.latched_count,
        count_latched: 0,
        status_latched: 0,
        status: c.status,
        read_state: c.read_state,
        write_state: c.write_state,
        write_latch: 0,
        rw_mode: 0,
        mode: c.mode,
        bcd: c.bcd as u8,
        gate: c.gate as u8,
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)]
mod tests {
    use super::*;

    #[test]
    fn fxsave_roundtrip() {
        let mut f = FpuState::default();
        f.fcw = 0x1234;
        f.mxcsr = 0xdead;
        f.st[3] = [7; 16];
        f.xmm[15] = [9; 16];
        f.last_ip = 0xffff_8000_1234_5678;
        let img = fxsave_pack(&f);
        assert_eq!(fxsave_unpack(&img), f);
    }

    #[test]
    fn fxsave_offsets_are_architectural() {
        let mut f = FpuState::default();
        f.mxcsr = 0xaabbccdd;
        let img = fxsave_pack(&f);
        // MXCSR lives at byte 24 of the FXSAVE image.
        assert_eq!(&img[24..28], &[0xdd, 0xcc, 0xbb, 0xaa]);
    }

    #[test]
    fn rte_roundtrip() {
        let e = RedirectionEntry {
            vector: 0x31,
            delivery_mode: 0b001,
            dest_mode: true,
            masked: true,
            trigger_level: true,
            remote_irr: false,
            dest: 0xff,
        };
        assert_eq!(rte_unpack(rte_pack(&e)), e);
    }

    #[test]
    fn rte_masked_bit_is_16() {
        let e = RedirectionEntry {
            masked: true,
            ..RedirectionEntry::default()
        };
        assert_eq!(rte_pack(&e), 1 << 16);
    }

    #[test]
    fn default_ioapic_has_48_masked_pins() {
        let io = HvmHwIoapic::default();
        assert_eq!(io.redirtbl.len(), 48);
        assert!(io.redirtbl.iter().all(|&r| rte_unpack(r).masked));
    }

    #[test]
    fn pit_channel_roundtrip() {
        let c = HvmPitChannel {
            count: 65534,
            latched_count: 100,
            status: 7,
            read_state: 1,
            write_state: 2,
            mode: 3,
            bcd: 1,
            gate: 1,
            ..HvmPitChannel::default()
        };
        let u = pit_channel_to_uisr(&c);
        let back = pit_channel_from_uisr(&u);
        assert_eq!(back.count, c.count);
        assert_eq!(back.mode, c.mode);
        assert_eq!(back.bcd, 1);
        assert_eq!(back.gate, 1);
    }

    #[test]
    fn randomized_rte_roundtrip() {
        // Deterministic randomized loop (formerly proptest, 256 cases).
        let mut rng = hypertp_sim::SimRng::new(0x0e7e_0001);
        for _ in 0..256 {
            let v = rng.next_u64();
            // Only defined bits roundtrip.
            let defined = v
                & ((0xffu64 << 56)
                    | (1 << 16)
                    | (1 << 15)
                    | (1 << 14)
                    | (1 << 11)
                    | (0x7 << 8)
                    | 0xff);
            assert_eq!(rte_pack(&rte_unpack(v)), defined);
        }
        // Edge values.
        for v in [0u64, u64::MAX] {
            let defined = v
                & ((0xffu64 << 56)
                    | (1 << 16)
                    | (1 << 15)
                    | (1 << 14)
                    | (1 << 11)
                    | (0x7 << 8)
                    | 0xff);
            assert_eq!(rte_pack(&rte_unpack(v)), defined);
        }
    }
}
