//! Xen's `to_uisr_*` / `from_uisr_*` translation functions (§3.1).
//!
//! The save direction starts from the HVM context byte stream (what
//! `xc_domain_hvm_getcontext` returns through libxenctrl) and produces UISR
//! sections per Table 2; the restore direction rebuilds Xen's containers
//! from UISR. The interesting conversions:
//!
//! * VMX-packed `arbytes` ⇄ exploded segment attributes;
//! * inline syscall MSRs in `hvm_hw_cpu` ⇄ the UISR MSR list;
//! * the raw FXSAVE image ⇄ the exploded UISR FPU state;
//! * architecturally packed 64-bit IOAPIC RTEs ⇄ UISR entries, including
//!   the 48⇄24-pin compatibility fix of §4.2.1;
//! * PAT travelling inside Xen's MTRR record but in the UISR MSR list.

use hypertp_uisr::state::XEN_IOAPIC_PINS;
use hypertp_uisr::{
    lapic_page, msr, CpuRegisters, IoApicState, MsrEntry, MtrrState, PitState, SegmentRegister,
    SpecialRegisters, UisrVm, VcpuState, XsaveState,
};

use crate::arbytes;
use crate::domain::XenVcpu;
use crate::hvm_context::HvmRecord;
use crate::hvm_types::{
    self, HvmHwCpu, HvmHwIoapic, HvmHwLapic, HvmHwMtrr, HvmHwPit, HvmHwXsave, HvmSegment, SEG_CS,
    SEG_DS, SEG_ES, SEG_FS, SEG_GS, SEG_LDTR, SEG_SS, SEG_TR,
};

fn seg_to_uisr(s: &HvmSegment) -> SegmentRegister {
    let mut seg = arbytes::unpack(s.arbytes);
    seg.base = s.base;
    seg.limit = s.limit;
    seg.selector = s.sel as u16;
    seg
}

fn seg_from_uisr(s: &SegmentRegister) -> HvmSegment {
    HvmSegment {
        sel: s.selector as u32,
        limit: s.limit,
        base: s.base,
        arbytes: arbytes::pack(s),
    }
}

/// Translates one vCPU's Xen containers into the UISR vCPU section
/// (`to_uisr_vCPU`).
pub fn vcpu_to_uisr(id: u32, v: &XenVcpu) -> VcpuState {
    let hw = &v.hw;
    let regs = CpuRegisters {
        rax: hw.gprs[0],
        rbx: hw.gprs[1],
        rcx: hw.gprs[2],
        rdx: hw.gprs[3],
        rbp: hw.gprs[4],
        rsi: hw.gprs[5],
        rdi: hw.gprs[6],
        rsp: hw.gprs[7],
        r8: hw.gprs[8],
        r9: hw.gprs[9],
        r10: hw.gprs[10],
        r11: hw.gprs[11],
        r12: hw.gprs[12],
        r13: hw.gprs[13],
        r14: hw.gprs[14],
        r15: hw.gprs[15],
        rip: hw.rip,
        rflags: hw.rflags,
    };
    let sregs = SpecialRegisters {
        cs: seg_to_uisr(&hw.segs[SEG_CS]),
        ds: seg_to_uisr(&hw.segs[SEG_DS]),
        es: seg_to_uisr(&hw.segs[SEG_ES]),
        fs: seg_to_uisr(&hw.segs[SEG_FS]),
        gs: seg_to_uisr(&hw.segs[SEG_GS]),
        ss: seg_to_uisr(&hw.segs[SEG_SS]),
        tr: seg_to_uisr(&hw.segs[SEG_TR]),
        ldt: seg_to_uisr(&hw.segs[SEG_LDTR]),
        gdt: hypertp_uisr::DescriptorTable {
            base: hw.gdtr_base,
            limit: hw.gdtr_limit as u16,
        },
        idt: hypertp_uisr::DescriptorTable {
            base: hw.idtr_base,
            limit: hw.idtr_limit as u16,
        },
        cr0: hw.crs[0],
        cr2: hw.crs[1],
        cr3: hw.crs[2],
        cr4: hw.crs[3],
        cr8: (lapic_page::tpr(&v.lapic_regs) >> 4) as u64,
        efer: hw.msr_efer,
        apic_base: v.lapic.apic_base_msr,
    };
    let mut msrs: Vec<MsrEntry> = Vec::new();
    msr::set(&mut msrs, msr::IA32_EFER, hw.msr_efer);
    msr::set(&mut msrs, msr::STAR, hw.msr_star);
    msr::set(&mut msrs, msr::LSTAR, hw.msr_lstar);
    msr::set(&mut msrs, msr::CSTAR, hw.msr_cstar);
    msr::set(&mut msrs, msr::SFMASK, hw.msr_syscall_mask);
    msr::set(&mut msrs, msr::TSC_AUX, hw.msr_tsc_aux);
    msr::set(&mut msrs, msr::KERNEL_GS_BASE, hw.shadow_gs);
    msr::set(&mut msrs, msr::IA32_TSC, hw.tsc);
    msr::set(&mut msrs, msr::IA32_SYSENTER_CS, hw.sysenter[0]);
    msr::set(&mut msrs, msr::IA32_SYSENTER_ESP, hw.sysenter[1]);
    msr::set(&mut msrs, msr::IA32_SYSENTER_EIP, hw.sysenter[2]);
    msr::set(&mut msrs, msr::IA32_PAT, v.mtrr.msr_pat_cr);
    msr::set(&mut msrs, msr::IA32_APIC_BASE, v.lapic.apic_base_msr);
    VcpuState {
        id,
        regs,
        sregs,
        fpu: hvm_types::fxsave_unpack(&v.hw.fpu_regs),
        msrs,
        xsave: XsaveState {
            xcr0: v.xsave.xcr0,
            area: v.xsave.area.clone(),
        },
        lapic: lapic_page::summarize(&v.lapic_regs, v.lapic.apic_base_msr),
        lapic_regs: v.lapic_regs.clone(),
        mtrr: MtrrState {
            def_type: v.mtrr.msr_mtrr_def_type,
            fixed: v.mtrr.msr_mtrr_fixed,
            variable: v
                .mtrr
                .msr_mtrr_var
                .chunks(2)
                .map(|p| (p[0], p[1]))
                .collect(),
        },
    }
}

/// Rebuilds a Xen vCPU from a UISR vCPU section (`from_uisr_vCPU`).
pub fn vcpu_from_uisr(v: &VcpuState) -> XenVcpu {
    let mut hw = HvmHwCpu::default();
    let r = &v.regs;
    hw.gprs = [
        r.rax, r.rbx, r.rcx, r.rdx, r.rbp, r.rsi, r.rdi, r.rsp, r.r8, r.r9, r.r10, r.r11, r.r12,
        r.r13, r.r14, r.r15,
    ];
    hw.rip = r.rip;
    hw.rflags = r.rflags;
    hw.crs = [v.sregs.cr0, v.sregs.cr2, v.sregs.cr3, v.sregs.cr4];
    hw.segs[SEG_CS] = seg_from_uisr(&v.sregs.cs);
    hw.segs[SEG_DS] = seg_from_uisr(&v.sregs.ds);
    hw.segs[SEG_ES] = seg_from_uisr(&v.sregs.es);
    hw.segs[SEG_FS] = seg_from_uisr(&v.sregs.fs);
    hw.segs[SEG_GS] = seg_from_uisr(&v.sregs.gs);
    hw.segs[SEG_SS] = seg_from_uisr(&v.sregs.ss);
    hw.segs[SEG_TR] = seg_from_uisr(&v.sregs.tr);
    hw.segs[SEG_LDTR] = seg_from_uisr(&v.sregs.ldt);
    hw.gdtr_base = v.sregs.gdt.base;
    hw.gdtr_limit = v.sregs.gdt.limit as u32;
    hw.idtr_base = v.sregs.idt.base;
    hw.idtr_limit = v.sregs.idt.limit as u32;
    hw.msr_efer = msr::find(&v.msrs, msr::IA32_EFER).unwrap_or(v.sregs.efer);
    hw.msr_star = msr::find(&v.msrs, msr::STAR).unwrap_or(0);
    hw.msr_lstar = msr::find(&v.msrs, msr::LSTAR).unwrap_or(0);
    hw.msr_cstar = msr::find(&v.msrs, msr::CSTAR).unwrap_or(0);
    hw.msr_syscall_mask = msr::find(&v.msrs, msr::SFMASK).unwrap_or(0);
    hw.msr_tsc_aux = msr::find(&v.msrs, msr::TSC_AUX).unwrap_or(0);
    hw.shadow_gs = msr::find(&v.msrs, msr::KERNEL_GS_BASE).unwrap_or(0);
    hw.tsc = msr::find(&v.msrs, msr::IA32_TSC).unwrap_or(0);
    hw.sysenter = [
        msr::find(&v.msrs, msr::IA32_SYSENTER_CS).unwrap_or(0),
        msr::find(&v.msrs, msr::IA32_SYSENTER_ESP).unwrap_or(0),
        msr::find(&v.msrs, msr::IA32_SYSENTER_EIP).unwrap_or(0),
    ];
    hw.fpu_regs = hvm_types::fxsave_pack(&v.fpu);

    let mut lapic_regs = v.lapic_regs.clone();
    if lapic_regs.len() < hypertp_uisr::state::LAPIC_REGS_SIZE {
        lapic_regs.resize(hypertp_uisr::state::LAPIC_REGS_SIZE, 0);
    }
    lapic_page::apply(&mut lapic_regs, &v.lapic);

    let mut mtrr_var = [0u64; 16];
    for (i, (base, mask)) in v.mtrr.variable.iter().take(8).enumerate() {
        mtrr_var[i * 2] = *base;
        mtrr_var[i * 2 + 1] = *mask;
    }
    XenVcpu {
        hw,
        lapic: HvmHwLapic {
            apic_base_msr: v.lapic.apic_base_msr,
            disabled: 0,
            timer_divisor: v.lapic.timer_divide as u32,
            tdt_msr: 0,
        },
        lapic_regs,
        mtrr: HvmHwMtrr {
            msr_pat_cr: msr::find(&v.msrs, msr::IA32_PAT).unwrap_or(0x0007_0406_0007_0406),
            msr_mtrr_var: mtrr_var,
            msr_mtrr_fixed: v.mtrr.fixed,
            msr_mtrr_cap: 0x508,
            msr_mtrr_def_type: v.mtrr.def_type,
        },
        xsave: HvmHwXsave {
            xcr0: v.xsave.xcr0,
            xcr0_accum: v.xsave.xcr0,
            area: v.xsave.area.clone(),
        },
    }
}

/// Translates Xen's IOAPIC record to the UISR section.
pub fn ioapic_to_uisr(io: &HvmHwIoapic) -> IoApicState {
    IoApicState {
        id: io.id,
        base: io.base_address,
        redirection: io
            .redirtbl
            .iter()
            .map(|&r| hvm_types::rte_unpack(r))
            .collect(),
    }
}

/// Rebuilds Xen's 48-pin IOAPIC from UISR, applying the §4.2.1
/// compatibility fix when the source hypervisor had fewer pins.
pub fn ioapic_from_uisr(io: &IoApicState, warnings: &mut Vec<String>) -> HvmHwIoapic {
    let mut entries = io.redirection.clone();
    if entries.len() != XEN_IOAPIC_PINS {
        warnings.push(format!(
            "IOAPIC resized from {} to {} pins; new pins come up masked",
            entries.len(),
            XEN_IOAPIC_PINS
        ));
        entries.resize(
            XEN_IOAPIC_PINS,
            hypertp_uisr::RedirectionEntry {
                masked: true,
                ..Default::default()
            },
        );
    }
    HvmHwIoapic {
        base_address: io.base,
        ioregsel: 0,
        id: io.id,
        redirtbl: entries.iter().map(hvm_types::rte_pack).collect(),
    }
}

/// Translates Xen's PIT record to the UISR section.
pub fn pit_to_uisr(p: &HvmHwPit) -> PitState {
    PitState {
        channels: [
            hvm_types::pit_channel_to_uisr(&p.channels[0]),
            hvm_types::pit_channel_to_uisr(&p.channels[1]),
            hvm_types::pit_channel_to_uisr(&p.channels[2]),
        ],
        speaker: p.speaker_data_on,
    }
}

/// Rebuilds Xen's PIT record from UISR.
pub fn pit_from_uisr(p: &PitState) -> HvmHwPit {
    HvmHwPit {
        channels: [
            hvm_types::pit_channel_from_uisr(&p.channels[0]),
            hvm_types::pit_channel_from_uisr(&p.channels[1]),
            hvm_types::pit_channel_from_uisr(&p.channels[2]),
        ],
        speaker_data_on: p.speaker,
    }
}

/// Assembles a UISR VM description from parsed HVM context records
/// (platform part of `to_uisr_*`; the caller adds devices and memory).
pub fn records_to_uisr(name: &str, records: &[HvmRecord]) -> UisrVm {
    let mut vm = UisrVm::new(name);
    // Group per-vCPU records by instance.
    let mut per_vcpu: std::collections::BTreeMap<u16, XenVcpu> = std::collections::BTreeMap::new();
    fn entry(m: &mut std::collections::BTreeMap<u16, XenVcpu>, i: u16) -> &mut XenVcpu {
        m.entry(i).or_insert_with(|| XenVcpu::reset(i as u32))
    }
    for rec in records {
        match rec {
            HvmRecord::Cpu(i, c) => entry(&mut per_vcpu, *i).hw = (**c).clone(),
            HvmRecord::Lapic(i, l) => entry(&mut per_vcpu, *i).lapic = *l,
            HvmRecord::LapicRegs(i, p) => entry(&mut per_vcpu, *i).lapic_regs = p.clone(),
            HvmRecord::Mtrr(i, m) => entry(&mut per_vcpu, *i).mtrr = (**m).clone(),
            HvmRecord::Xsave(i, x) => entry(&mut per_vcpu, *i).xsave = x.clone(),
            HvmRecord::Ioapic(io) => vm.ioapic = ioapic_to_uisr(io),
            HvmRecord::Pit(p) => vm.pit = pit_to_uisr(p),
            HvmRecord::Header(_) => {}
        }
    }
    for (i, v) in per_vcpu {
        vm.vcpus.push(vcpu_to_uisr(i as u32, &v));
    }
    vm
}

#[cfg(test)]
mod tests {
    use super::*;

    fn busy_vcpu() -> XenVcpu {
        let mut v = XenVcpu::reset(2);
        v.hw.gprs[0] = 0x1111;
        v.hw.gprs[15] = 0xffff;
        v.hw.rip = 0xffff_8000_dead_beef;
        v.hw.msr_lstar = 0xffff_8000_0080_0000;
        v.hw.tsc = 123_456_789;
        v.hw.fpu_regs[40] = 0x55; // st0 data
        v.xsave.area[100] = 9;
        lapic_page::set_tpr(&mut v.lapic_regs, 0x40);
        lapic_page::write32(&mut v.lapic_regs, lapic_page::OFF_TMICT, 5000);
        v.lapic.timer_divisor = 3;
        lapic_page::write32(&mut v.lapic_regs, lapic_page::OFF_TDCR, 3);
        v.mtrr.msr_mtrr_var[0] = 0xc000_0006;
        v.mtrr.msr_mtrr_var[1] = 0xffff_c000_0800;
        v
    }

    #[test]
    fn vcpu_roundtrip_via_uisr() {
        let v = busy_vcpu();
        let u = vcpu_to_uisr(2, &v);
        assert_eq!(u.regs.rax, 0x1111);
        assert_eq!(u.regs.r15, 0xffff);
        assert_eq!(msr::find(&u.msrs, msr::LSTAR), Some(0xffff_8000_0080_0000));
        assert_eq!(u.sregs.cr8, 0x4, "CR8 mirrors TPR[7:4]");
        assert_eq!(u.lapic.timer_initial, 5000);
        assert_eq!(u.mtrr.variable[0], (0xc000_0006, 0xffff_c000_0800));
        let back = vcpu_from_uisr(&u);
        assert_eq!(back.hw, v.hw);
        assert_eq!(back.lapic.apic_base_msr, v.lapic.apic_base_msr);
        assert_eq!(back.lapic.timer_divisor, v.lapic.timer_divisor);
        assert_eq!(back.lapic_regs, v.lapic_regs);
        assert_eq!(back.mtrr.msr_mtrr_var, v.mtrr.msr_mtrr_var);
        assert_eq!(back.mtrr.msr_mtrr_fixed, v.mtrr.msr_mtrr_fixed);
        assert_eq!(back.xsave.area, v.xsave.area);
    }

    #[test]
    fn ioapic_24_to_48_expansion_warns() {
        let mut io = IoApicState::default();
        io.resize_pins(24);
        io.redirection[5].vector = 0x21;
        let mut warnings = Vec::new();
        let xen_io = ioapic_from_uisr(&io, &mut warnings);
        assert_eq!(xen_io.redirtbl.len(), 48);
        assert_eq!(warnings.len(), 1);
        assert!(warnings[0].contains("24 to 48"));
        assert_eq!(hvm_types::rte_unpack(xen_io.redirtbl[5]).vector, 0x21);
        assert!(hvm_types::rte_unpack(xen_io.redirtbl[40]).masked);
    }

    #[test]
    fn ioapic_48_needs_no_warning() {
        let io = IoApicState::default(); // 48 pins.
        let mut warnings = Vec::new();
        ioapic_from_uisr(&io, &mut warnings);
        assert!(warnings.is_empty());
    }

    #[test]
    fn records_to_uisr_groups_vcpus() {
        let v0 = busy_vcpu();
        let mut v1 = XenVcpu::reset(1);
        v1.hw.gprs[0] = 7;
        let records = vec![
            HvmRecord::Cpu(0, Box::new(v0.hw.clone())),
            HvmRecord::LapicRegs(0, v0.lapic_regs.clone()),
            HvmRecord::Lapic(0, v0.lapic),
            HvmRecord::Mtrr(0, Box::new(v0.mtrr.clone())),
            HvmRecord::Xsave(0, v0.xsave.clone()),
            HvmRecord::Cpu(1, Box::new(v1.hw.clone())),
            HvmRecord::Ioapic(HvmHwIoapic::default()),
            HvmRecord::Pit(HvmHwPit::default()),
        ];
        let vm = records_to_uisr("test", &records);
        assert_eq!(vm.vcpus.len(), 2);
        assert_eq!(vm.vcpus[0].regs.rax, 0x1111);
        assert_eq!(vm.vcpus[1].regs.rax, 7);
        assert_eq!(vm.ioapic.pins(), 48);
    }

    #[test]
    fn pit_roundtrip() {
        let mut p = HvmHwPit::default();
        p.channels[0].count = 0x1234;
        p.channels[2].gate = 1;
        p.speaker_data_on = 1;
        let u = pit_to_uisr(&p);
        let back = pit_from_uisr(&u);
        assert_eq!(back.channels[0].count, 0x1234);
        assert_eq!(back.channels[2].gate, 1);
        assert_eq!(back.speaker_data_on, 1);
    }
}
