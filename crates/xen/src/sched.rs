//! The Credit scheduler's run queues.
//!
//! The vCPU scheduler's queues are the paper's canonical example of *VM
//! Management State* (§3.1): hypervisor-dependent, but never translated —
//! the target hypervisor rebuilds them from the VMi States of all VMs. The
//! model implements Xen's Credit accounting (weights, credit burn,
//! UNDER/OVER priorities, round-robin within a priority) and a `rebuild`
//! entry point used after transplant.

use std::collections::VecDeque;

/// Scheduling priority derived from remaining credit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Priority {
    /// Positive credit remaining.
    Under,
    /// Credit exhausted.
    Over,
}

/// A schedulable vCPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedVcpu {
    /// Owning domain.
    pub domid: u32,
    /// vCPU index within the domain.
    pub vcpu: u32,
    /// Remaining credit.
    pub credit: i32,
    /// Weight (share of CPU relative to other domains).
    pub weight: u32,
}

impl SchedVcpu {
    /// Current priority band.
    pub fn priority(&self) -> Priority {
        if self.credit > 0 {
            Priority::Under
        } else {
            Priority::Over
        }
    }
}

/// Default weight (Xen's default is 256).
pub const DEFAULT_WEIGHT: u32 = 256;

/// Credit grant per accounting period per weight unit.
const CREDIT_PER_PERIOD: i32 = 300;

/// The Credit scheduler: one run queue per physical CPU.
#[derive(Debug, Clone)]
pub struct CreditScheduler {
    queues: Vec<VecDeque<SchedVcpu>>,
}

impl CreditScheduler {
    /// Creates a scheduler for `pcpus` physical CPUs.
    ///
    /// # Panics
    ///
    /// Panics if `pcpus` is zero.
    pub fn new(pcpus: usize) -> Self {
        assert!(pcpus > 0, "need at least one pcpu");
        CreditScheduler {
            queues: vec![VecDeque::new(); pcpus],
        }
    }

    /// Number of physical CPUs.
    pub fn pcpus(&self) -> usize {
        self.queues.len()
    }

    /// Inserts a vCPU on the least-loaded run queue.
    pub fn insert(&mut self, domid: u32, vcpu: u32, weight: u32) {
        let q = self
            .queues
            .iter_mut()
            .min_by_key(|q| q.len())
            .expect("at least one queue");
        q.push_back(SchedVcpu {
            domid,
            vcpu,
            credit: CREDIT_PER_PERIOD,
            weight,
        });
    }

    /// Removes all vCPUs of a domain.
    pub fn remove_domain(&mut self, domid: u32) {
        for q in &mut self.queues {
            q.retain(|v| v.domid != domid);
        }
    }

    /// Picks the next vCPU to run on `pcpu`: the head-most UNDER vCPU,
    /// else the head OVER vCPU. The picked vCPU burns credit and rotates
    /// to the tail.
    pub fn pick_next(&mut self, pcpu: usize) -> Option<SchedVcpu> {
        let q = self.queues.get_mut(pcpu)?;
        if q.is_empty() {
            return None;
        }
        let idx = q
            .iter()
            .position(|v| v.priority() == Priority::Under)
            .unwrap_or(0);
        let mut v = q.remove(idx).expect("index in range");
        v.credit -= 100;
        let picked = v;
        q.push_back(v);
        Some(picked)
    }

    /// Accounting tick: redistributes credit proportionally to weights
    /// (Xen's 30 ms accounting period).
    pub fn account(&mut self) {
        let total_weight: u64 = self.queues.iter().flatten().map(|v| v.weight as u64).sum();
        if total_weight == 0 {
            return;
        }
        let n: u64 = self.queues.iter().map(|q| q.len() as u64).sum();
        for q in &mut self.queues {
            for v in q.iter_mut() {
                let share = (CREDIT_PER_PERIOD as u64 * n * v.weight as u64 / total_weight) as i32;
                v.credit = (v.credit + share).min(2 * CREDIT_PER_PERIOD);
            }
        }
    }

    /// Rebuilds the queues from scratch after a transplant: the defining
    /// operation on VM Management State. `domains` lists
    /// `(domid, vcpus, weight)` triples recovered from the VMi States.
    pub fn rebuild(&mut self, domains: &[(u32, u32, u32)]) {
        for q in &mut self.queues {
            q.clear();
        }
        for &(domid, vcpus, weight) in domains {
            for v in 0..vcpus {
                self.insert(domid, v, weight);
            }
        }
    }

    /// All queued vCPUs as `(domid, vcpu)` pairs, sorted (for set
    /// comparison in tests).
    pub fn queued_vcpus(&self) -> Vec<(u32, u32)> {
        let mut v: Vec<(u32, u32)> = self
            .queues
            .iter()
            .flatten()
            .map(|s| (s.domid, s.vcpu))
            .collect();
        v.sort_unstable();
        v
    }

    /// Approximate footprint in bytes (VM Management State accounting).
    pub fn footprint_bytes(&self) -> u64 {
        self.queues
            .iter()
            .map(|q| 64 + q.len() as u64 * std::mem::size_of::<SchedVcpu>() as u64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_balances_queues() {
        let mut s = CreditScheduler::new(4);
        for i in 0..8 {
            s.insert(1, i, DEFAULT_WEIGHT);
        }
        for q in &s.queues {
            assert_eq!(q.len(), 2);
        }
    }

    #[test]
    fn pick_prefers_under() {
        let mut s = CreditScheduler::new(1);
        s.insert(1, 0, DEFAULT_WEIGHT);
        s.insert(2, 0, DEFAULT_WEIGHT);
        // Burn domain 1's credit to OVER.
        for _ in 0..6 {
            while let Some(v) = s.pick_next(0) {
                if v.domid == 2 {
                    break;
                }
            }
        }
        // Force: set credits directly through accounting behaviour.
        let q = &mut s.queues[0];
        for v in q.iter_mut() {
            v.credit = if v.domid == 1 { -100 } else { 50 };
        }
        let picked = s.pick_next(0).unwrap();
        assert_eq!(picked.domid, 2, "UNDER vCPU preferred");
    }

    #[test]
    fn account_respects_weights() {
        let mut s = CreditScheduler::new(1);
        s.insert(1, 0, 256);
        s.insert(2, 0, 512);
        for v in s.queues[0].iter_mut() {
            v.credit = 0;
        }
        s.account();
        let c1 = s.queues[0].iter().find(|v| v.domid == 1).unwrap().credit;
        let c2 = s.queues[0].iter().find(|v| v.domid == 2).unwrap().credit;
        assert!(c2 > c1, "heavier weight earns more credit: {c1} vs {c2}");
        assert_eq!(c2, 2 * c1);
    }

    #[test]
    fn rebuild_restores_same_vcpu_set() {
        let mut a = CreditScheduler::new(2);
        a.insert(1, 0, 256);
        a.insert(1, 1, 256);
        a.insert(7, 0, 512);
        let before = a.queued_vcpus();
        let mut b = CreditScheduler::new(8); // Different pcpu count on target.
        b.rebuild(&[(1, 2, 256), (7, 1, 512)]);
        assert_eq!(b.queued_vcpus(), before);
    }

    #[test]
    fn remove_domain() {
        let mut s = CreditScheduler::new(2);
        s.insert(1, 0, 256);
        s.insert(2, 0, 256);
        s.remove_domain(1);
        assert_eq!(s.queued_vcpus(), vec![(2, 0)]);
    }

    #[test]
    fn empty_queue_picks_none() {
        let mut s = CreditScheduler::new(1);
        assert_eq!(s.pick_next(0), None);
        assert_eq!(s.pick_next(9), None);
    }
}
