//! Grant tables: Xen's page-sharing mechanism between domains.
//!
//! Paravirtual I/O shares guest pages with dom0 backends through grant
//! references. For transplant this matters because an in-flight grant
//! mapping would pin guest memory into hypervisor-specific state; the
//! §4.2.3 device pause/unplug step exists precisely to drain these before
//! translation. The model tracks grants and refuses transplant-time
//! teardown while any mapping is active.

use hypertp_machine::Gfn;

/// One grant table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GrantEntry {
    /// Domain allowed to map the page.
    pub domid: u32,
    /// The granted guest frame.
    pub gfn: Gfn,
    /// Whether the peer may only read.
    pub readonly: bool,
    /// Active mapping count.
    pub mapped: u32,
}

/// Errors from grant operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GrantError {
    /// Reference out of range or revoked.
    BadRef(u32),
    /// Mapping attempted by a domain the grant doesn't name.
    NotPermitted {
        /// The domain the grant names.
        expected: u32,
        /// The caller.
        got: u32,
    },
    /// End-access attempted while mappings are active.
    StillMapped(u32),
}

impl std::fmt::Display for GrantError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GrantError::BadRef(r) => write!(f, "bad grant reference {r}"),
            GrantError::NotPermitted { expected, got } => {
                write!(f, "grant map by domain {got}, granted to {expected}")
            }
            GrantError::StillMapped(r) => write!(f, "grant {r} still mapped"),
        }
    }
}

impl std::error::Error for GrantError {}

/// A domain's grant table.
#[derive(Debug, Clone, Default)]
pub struct GrantTable {
    entries: Vec<Option<GrantEntry>>,
}

impl GrantTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        GrantTable::default()
    }

    /// Grants `domid` access to `gfn`, returning the grant reference.
    pub fn grant_access(&mut self, domid: u32, gfn: Gfn, readonly: bool) -> u32 {
        let gref = self.entries.len() as u32;
        self.entries.push(Some(GrantEntry {
            domid,
            gfn,
            readonly,
            mapped: 0,
        }));
        gref
    }

    /// Maps a granted page from `caller_domid`, returning the GFN.
    pub fn map(&mut self, gref: u32, caller_domid: u32) -> Result<Gfn, GrantError> {
        let e = self
            .entries
            .get_mut(gref as usize)
            .and_then(|e| e.as_mut())
            .ok_or(GrantError::BadRef(gref))?;
        if e.domid != caller_domid {
            return Err(GrantError::NotPermitted {
                expected: e.domid,
                got: caller_domid,
            });
        }
        e.mapped += 1;
        Ok(e.gfn)
    }

    /// Unmaps a previously mapped grant.
    pub fn unmap(&mut self, gref: u32) -> Result<(), GrantError> {
        let e = self
            .entries
            .get_mut(gref as usize)
            .and_then(|e| e.as_mut())
            .ok_or(GrantError::BadRef(gref))?;
        if e.mapped == 0 {
            return Err(GrantError::BadRef(gref));
        }
        e.mapped -= 1;
        Ok(())
    }

    /// Revokes a grant (`gnttab_end_foreign_access`); fails while mapped.
    pub fn end_access(&mut self, gref: u32) -> Result<(), GrantError> {
        let slot = self
            .entries
            .get_mut(gref as usize)
            .ok_or(GrantError::BadRef(gref))?;
        match slot {
            Some(e) if e.mapped > 0 => Err(GrantError::StillMapped(gref)),
            Some(_) => {
                *slot = None;
                Ok(())
            }
            None => Err(GrantError::BadRef(gref)),
        }
    }

    /// Forcibly unmaps every active mapping (backend teardown during the
    /// §4.2.3 device pause). Returns the number of mappings released.
    pub fn unmap_all(&mut self) -> usize {
        let mut released = 0;
        for e in self.entries.iter_mut().flatten() {
            released += e.mapped as usize;
            e.mapped = 0;
        }
        released
    }

    /// Number of grants with active mappings — must be zero before a
    /// transplant may proceed past device pause.
    pub fn active_mappings(&self) -> usize {
        self.entries
            .iter()
            .flatten()
            .filter(|e| e.mapped > 0)
            .count()
    }

    /// Number of live grant entries.
    pub fn live_entries(&self) -> usize {
        self.entries.iter().flatten().count()
    }

    /// Approximate footprint in bytes.
    pub fn footprint_bytes(&self) -> u64 {
        (self.entries.len() * 24) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grant_map_unmap_end() {
        let mut g = GrantTable::new();
        let r = g.grant_access(0, Gfn(42), false);
        assert_eq!(g.map(r, 0).unwrap(), Gfn(42));
        assert_eq!(g.active_mappings(), 1);
        assert_eq!(g.end_access(r), Err(GrantError::StillMapped(r)));
        g.unmap(r).unwrap();
        assert_eq!(g.active_mappings(), 0);
        g.end_access(r).unwrap();
        assert_eq!(g.live_entries(), 0);
        assert_eq!(g.map(r, 0), Err(GrantError::BadRef(r)));
    }

    #[test]
    fn wrong_domain_rejected() {
        let mut g = GrantTable::new();
        let r = g.grant_access(3, Gfn(1), true);
        assert_eq!(
            g.map(r, 4),
            Err(GrantError::NotPermitted {
                expected: 3,
                got: 4
            })
        );
    }

    #[test]
    fn unmap_without_map_rejected() {
        let mut g = GrantTable::new();
        let r = g.grant_access(0, Gfn(1), false);
        assert_eq!(g.unmap(r), Err(GrantError::BadRef(r)));
    }
}
