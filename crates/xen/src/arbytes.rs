//! VMX-style packed segment attributes ("arbytes").
//!
//! Xen's `hvm_hw_cpu` save record stores each segment's attributes as the
//! raw VMX access-rights word, while KVM's `kvm_segment` explodes them into
//! individual fields. Converting between the two is exactly the kind of
//! work the paper's platform translation functions perform (§4.2.1); UISR
//! uses the exploded form, so Xen's `to_uisr` path unpacks and its
//! `from_uisr` path repacks.
//!
//! Access-rights layout (Intel SDM Vol. 3, 24.4.1):
//!
//! ```text
//! bits 0..3   segment type
//! bit  4      S (descriptor type: 0 = system, 1 = code/data)
//! bits 5..6   DPL
//! bit  7      P (present)
//! bit  12     AVL
//! bit  13     L (64-bit code)
//! bit  14     D/B
//! bit  15     G (granularity)
//! ```

use hypertp_uisr::SegmentRegister;

/// Packs a UISR segment's attributes into a VMX access-rights word.
pub fn pack(seg: &SegmentRegister) -> u32 {
    let mut ar = 0u32;
    ar |= (seg.type_ as u32) & 0xf;
    ar |= (seg.s as u32) << 4;
    ar |= ((seg.dpl as u32) & 0x3) << 5;
    ar |= (seg.present as u32) << 7;
    ar |= (seg.avl as u32) << 12;
    ar |= (seg.l as u32) << 13;
    ar |= (seg.db as u32) << 14;
    ar |= (seg.g as u32) << 15;
    ar
}

/// Unpacks a VMX access-rights word into segment attribute fields,
/// returning a segment with zeroed base/limit/selector (the caller fills
/// those from the adjacent record fields).
pub fn unpack(ar: u32) -> SegmentRegister {
    SegmentRegister {
        base: 0,
        limit: 0,
        selector: 0,
        type_: (ar & 0xf) as u8,
        s: ar & (1 << 4) != 0,
        dpl: ((ar >> 5) & 0x3) as u8,
        present: ar & (1 << 7) != 0,
        avl: ar & (1 << 12) != 0,
        l: ar & (1 << 13) != 0,
        db: ar & (1 << 14) != 0,
        g: ar & (1 << 15) != 0,
    }
}

/// The access-rights word of a flat 64-bit kernel code segment.
pub const AR_CODE64: u32 = 0xa09b;

/// The access-rights word of a flat data segment.
pub const AR_DATA: u32 = 0xc093;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn code64_roundtrip() {
        let seg = unpack(AR_CODE64);
        assert!(seg.present);
        assert!(seg.l);
        assert!(!seg.db);
        assert!(seg.g);
        assert!(seg.s);
        assert_eq!(seg.type_, 0xb);
        assert_eq!(seg.dpl, 0);
        assert_eq!(pack(&seg), AR_CODE64);
    }

    #[test]
    fn data_roundtrip() {
        let seg = unpack(AR_DATA);
        assert!(seg.present);
        assert!(!seg.l);
        assert!(seg.db);
        assert_eq!(seg.type_, 0x3);
        assert_eq!(pack(&seg), AR_DATA);
    }

    #[test]
    fn randomized_pack_unpack() {
        // Exhaustive over the whole 16-bit AR space (formerly a sampled
        // proptest): only the defined bits survive a roundtrip.
        for ar in 0u32..0x1_0000 {
            let defined = ar & 0xf0ff;
            assert_eq!(pack(&unpack(ar)), defined, "ar={ar:#x}");
        }
    }

    #[test]
    fn attributes_preserved_through_pack() {
        let mut seg = unpack(AR_DATA);
        seg.base = 0xdead_0000;
        seg.limit = 0xffff;
        seg.selector = 0x18;
        // base/limit/selector are carried outside the AR word.
        let ar = pack(&seg);
        let back = unpack(ar);
        assert_eq!(back.type_, seg.type_);
        assert_eq!(back.dpl, seg.dpl);
        assert_eq!(back.g, seg.g);
    }
}
