//! The per-domain physical-to-machine (P2M) table.
//!
//! Xen tracks HVM guest memory in a per-domain P2M with superpage (2 MiB)
//! entries and a log-dirty mode used by live migration. The P2M is *VMi
//! State* in the memory-separation taxonomy: its contents (the guest
//! frame map) are what PRAM records, while the table structure itself is
//! rebuilt by the target hypervisor.

use std::collections::{BTreeMap, BTreeSet};

use hypertp_machine::{Extent, Gfn, Mfn};

/// Errors from P2M manipulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum P2mError {
    /// The new mapping overlaps an existing one.
    Overlap {
        /// Base GFN of the rejected mapping.
        gfn: Gfn,
    },
    /// No mapping covers the GFN.
    NotMapped {
        /// The unmapped GFN.
        gfn: Gfn,
    },
}

impl std::fmt::Display for P2mError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            P2mError::Overlap { gfn } => write!(f, "p2m overlap at {gfn}"),
            P2mError::NotMapped { gfn } => write!(f, "{gfn} not mapped"),
        }
    }
}

impl std::error::Error for P2mError {}

/// A physical-to-machine table.
#[derive(Debug, Clone, Default)]
pub struct P2m {
    /// Base GFN -> machine extent, non-overlapping.
    entries: BTreeMap<u64, Extent>,
    /// Dirty GFNs when log-dirty mode is active.
    dirty: Option<BTreeSet<u64>>,
}

impl P2m {
    /// Creates an empty table.
    pub fn new() -> Self {
        P2m::default()
    }

    /// Maps `2^order` pages at `gfn` to `extent`.
    pub fn map(&mut self, gfn: Gfn, extent: Extent) -> Result<(), P2mError> {
        let end = gfn.0 + extent.pages();
        // Check the predecessor and any successor starting before `end`.
        if let Some((&base, e)) = self.entries.range(..=gfn.0).next_back() {
            if base + e.pages() > gfn.0 {
                return Err(P2mError::Overlap { gfn });
            }
        }
        if self.entries.range(gfn.0..end).next().is_some() {
            return Err(P2mError::Overlap { gfn });
        }
        self.entries.insert(gfn.0, extent);
        Ok(())
    }

    /// Translates a GFN to its machine frame.
    pub fn translate(&self, gfn: Gfn) -> Result<Mfn, P2mError> {
        let (&base, e) = self
            .entries
            .range(..=gfn.0)
            .next_back()
            .ok_or(P2mError::NotMapped { gfn })?;
        if gfn.0 < base + e.pages() {
            Ok(e.base + (gfn.0 - base))
        } else {
            Err(P2mError::NotMapped { gfn })
        }
    }

    /// Translates a batch of GFNs, exploiting sorted input.
    ///
    /// Migration gathers hand in ascending GFN lists (round one walks the
    /// address space in order; later rounds come from the `BTreeSet`
    /// dirty log), so instead of one `O(log n)` range query per page this
    /// walks the entry map and the input in tandem — `O(n + m)` for the
    /// whole batch. A non-monotonic input degrades gracefully to
    /// per-GFN [`P2m::translate`] for the out-of-order stretch; results
    /// and errors are identical to the per-page path either way.
    pub fn translate_many(&self, gfns: &[Gfn]) -> Result<Vec<Mfn>, P2mError> {
        let mut out = Vec::with_capacity(gfns.len());
        let mut iter = self.entries.iter().peekable();
        let mut cur: Option<(u64, Extent)> = None;
        let mut prev = 0u64;
        for &g in gfns {
            if g.0 < prev {
                // Out-of-order input: the tandem cursor is already past
                // this GFN, so answer it with a point query.
                out.push(self.translate(g)?);
                continue;
            }
            prev = g.0;
            // Advance the cursor to the last entry starting at or below g.
            while let Some(&(&base, &e)) = iter.peek() {
                if base <= g.0 {
                    cur = Some((base, e));
                    iter.next();
                } else {
                    break;
                }
            }
            match cur {
                Some((base, e)) if g.0 >= base && g.0 < base + e.pages() => {
                    out.push(e.base + (g.0 - base));
                }
                _ => return Err(P2mError::NotMapped { gfn: g }),
            }
        }
        Ok(out)
    }

    /// Translates a batch like [`P2m::translate_many`] but hands the
    /// caller physically-contiguous `(base MFN, page count)` runs instead
    /// of one MFN per page, and allocates nothing. Consecutive GFNs that
    /// land on consecutive machine frames coalesce into one visit, so the
    /// zero-copy gather path turns each run into a single RAM slice
    /// borrow. Translation errors are identical to the per-page path;
    /// runs visited before the failing GFN have already been delivered.
    pub fn translate_runs(
        &self,
        gfns: &[Gfn],
        visit: &mut dyn FnMut(Mfn, u64),
    ) -> Result<(), P2mError> {
        let mut iter = self.entries.iter().peekable();
        let mut cur: Option<(u64, Extent)> = None;
        let mut prev = 0u64;
        let mut run: Option<(Mfn, u64)> = None;
        for &g in gfns {
            let m = if g.0 < prev {
                // Out-of-order input: point query, same as translate_many.
                self.translate(g)?
            } else {
                prev = g.0;
                while let Some(&(&base, &e)) = iter.peek() {
                    if base <= g.0 {
                        cur = Some((base, e));
                        iter.next();
                    } else {
                        break;
                    }
                }
                match cur {
                    Some((base, e)) if g.0 >= base && g.0 < base + e.pages() => {
                        e.base + (g.0 - base)
                    }
                    _ => return Err(P2mError::NotMapped { gfn: g }),
                }
            };
            match run {
                Some((b, n)) if b.0 + n == m.0 => run = Some((b, n + 1)),
                Some((b, n)) => {
                    visit(b, n);
                    run = Some((m, 1));
                }
                None => run = Some((m, 1)),
            }
        }
        if let Some((b, n)) = run {
            visit(b, n);
        }
        Ok(())
    }

    /// Returns all mappings sorted by GFN — the input to PRAM construction.
    pub fn mappings(&self) -> Vec<(Gfn, Extent)> {
        self.entries.iter().map(|(&g, &e)| (Gfn(g), e)).collect()
    }

    /// Total mapped guest pages.
    pub fn total_pages(&self) -> u64 {
        self.entries.values().map(|e| e.pages()).sum()
    }

    /// Number of P2M entries (PRAM page entries this P2M will produce).
    pub fn entry_count(&self) -> u64 {
        self.entries.len() as u64
    }

    /// Enables log-dirty mode (migration pre-copy).
    pub fn enable_log_dirty(&mut self) {
        self.dirty = Some(BTreeSet::new());
    }

    /// Disables log-dirty mode.
    pub fn disable_log_dirty(&mut self) {
        self.dirty = None;
    }

    /// True if log-dirty mode is active.
    pub fn log_dirty_enabled(&self) -> bool {
        self.dirty.is_some()
    }

    /// Records a write to `gfn` if log-dirty mode is active.
    pub fn mark_dirty(&mut self, gfn: Gfn) {
        if let Some(d) = &mut self.dirty {
            d.insert(gfn.0);
        }
    }

    /// Returns and clears the dirty set (Xen's `XEN_DOMCTL_SHADOW_OP_CLEAN`).
    pub fn read_and_clear_dirty(&mut self) -> Vec<Gfn> {
        match &mut self.dirty {
            Some(d) => std::mem::take(d).into_iter().map(Gfn).collect(),
            None => Vec::new(),
        }
    }

    /// Estimated metadata footprint of the table itself, in bytes (8 bytes
    /// per entry plus one 4 KiB page per 512 entries of directory).
    pub fn metadata_bytes(&self) -> u64 {
        let n = self.entries.len() as u64;
        n * 8 + n.div_ceil(512) * 4096
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypertp_machine::PageOrder;

    fn ext(base: u64, order: u8) -> Extent {
        Extent::new(Mfn(base), PageOrder(order))
    }

    #[test]
    fn map_and_translate() {
        let mut p = P2m::new();
        p.map(Gfn(0), ext(512, 9)).unwrap();
        p.map(Gfn(512), ext(2048, 9)).unwrap();
        assert_eq!(p.translate(Gfn(0)).unwrap(), Mfn(512));
        assert_eq!(p.translate(Gfn(511)).unwrap(), Mfn(1023));
        assert_eq!(p.translate(Gfn(512)).unwrap(), Mfn(2048));
        assert_eq!(p.translate(Gfn(700)).unwrap(), Mfn(2048 + 188));
        assert!(p.translate(Gfn(1024)).is_err());
        assert_eq!(p.total_pages(), 1024);
        assert_eq!(p.entry_count(), 2);
    }

    #[test]
    fn overlap_rejected() {
        let mut p = P2m::new();
        p.map(Gfn(100), ext(0, 2)).unwrap(); // covers 100..104
        assert!(matches!(
            p.map(Gfn(103), ext(16, 0)),
            Err(P2mError::Overlap { .. })
        ));
        assert!(matches!(
            p.map(Gfn(98), ext(8, 2)),
            Err(P2mError::Overlap { .. })
        ));
        p.map(Gfn(104), ext(32, 0)).unwrap();
    }

    #[test]
    fn log_dirty_cycle() {
        let mut p = P2m::new();
        p.map(Gfn(0), ext(0, 9)).unwrap();
        p.mark_dirty(Gfn(5)); // Not enabled: dropped.
        p.enable_log_dirty();
        p.mark_dirty(Gfn(1));
        p.mark_dirty(Gfn(2));
        p.mark_dirty(Gfn(1));
        assert_eq!(p.read_and_clear_dirty(), vec![Gfn(1), Gfn(2)]);
        assert!(p.read_and_clear_dirty().is_empty());
        p.disable_log_dirty();
        assert!(!p.log_dirty_enabled());
    }

    #[test]
    fn translate_many_matches_per_page_translate() {
        let mut p = P2m::new();
        // Two runs with a hole between them: gfns 0..512 and 1024..1536.
        p.map(Gfn(0), ext(2048, 9)).unwrap();
        p.map(Gfn(1024), ext(4096, 9)).unwrap();
        let sorted: Vec<Gfn> = [0u64, 1, 255, 511, 1024, 1300, 1535]
            .iter()
            .map(|&g| Gfn(g))
            .collect();
        let got = p.translate_many(&sorted).unwrap();
        for (g, m) in sorted.iter().zip(&got) {
            assert_eq!(p.translate(*g).unwrap(), *m, "mismatch at {g:?}");
        }
        // Out-of-order input falls back to point queries, same answers.
        let unsorted = vec![Gfn(1535), Gfn(0), Gfn(1024), Gfn(511), Gfn(1)];
        let got = p.translate_many(&unsorted).unwrap();
        for (g, m) in unsorted.iter().zip(&got) {
            assert_eq!(p.translate(*g).unwrap(), *m, "mismatch at {g:?}");
        }
        // The hole and the tail fail exactly like `translate`.
        assert!(p.translate_many(&[Gfn(0), Gfn(512)]).is_err());
        assert!(p.translate_many(&[Gfn(0), Gfn(700)]).is_err());
        assert!(p.translate_many(&[Gfn(1536)]).is_err());
        assert_eq!(p.translate_many(&[]).unwrap(), Vec::<Mfn>::new());
    }

    #[test]
    fn translate_runs_coalesces_and_matches_translate_many() {
        let mut p = P2m::new();
        p.map(Gfn(0), ext(2048, 9)).unwrap(); // gfn 0..512 -> mfn 2048..
        p.map(Gfn(512), ext(8192, 9)).unwrap(); // gfn 512..1024 -> mfn 8192..
        let gfns: Vec<Gfn> = (0..700).map(Gfn).collect();
        let mut runs = Vec::new();
        p.translate_runs(&gfns, &mut |m, n| runs.push((m, n)))
            .unwrap();
        // Two physically-contiguous runs, one visit each.
        assert_eq!(runs, vec![(Mfn(2048), 512), (Mfn(8192), 188)]);
        // Flattened runs equal the per-page translation, also for sparse
        // and out-of-order inputs.
        for gfns in [
            (0u64..700).collect::<Vec<_>>(),
            vec![5, 6, 7, 100, 513, 514, 512],
            vec![1023, 0, 511, 512],
        ] {
            let gfns: Vec<Gfn> = gfns.into_iter().map(Gfn).collect();
            let mut flat = Vec::new();
            p.translate_runs(&gfns, &mut |m, n| {
                flat.extend((0..n).map(|i| m + i));
            })
            .unwrap();
            assert_eq!(flat, p.translate_many(&gfns).unwrap());
        }
        // Unmapped GFNs fail like translate_many.
        assert!(p
            .translate_runs(&[Gfn(0), Gfn(2000)], &mut |_, _| {})
            .is_err());
    }

    #[test]
    fn mappings_sorted() {
        let mut p = P2m::new();
        p.map(Gfn(512), ext(0, 9)).unwrap();
        p.map(Gfn(0), ext(512, 9)).unwrap();
        let m = p.mappings();
        assert_eq!(m[0].0, Gfn(0));
        assert_eq!(m[1].0, Gfn(512));
    }

    #[test]
    fn metadata_footprint() {
        let mut p = P2m::new();
        for i in 0..1024u64 {
            p.map(Gfn(i), ext(1024 + i, 0)).unwrap();
        }
        assert_eq!(p.metadata_bytes(), 1024 * 8 + 2 * 4096);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use hypertp_machine::PageOrder;
    use hypertp_sim::SimRng;

    /// Random non-overlapping maps translate every covered GFN to the
    /// right frame and reject every uncovered GFN.
    /// (Formerly proptest, 64 cases.)
    #[test]
    fn translate_matches_construction() {
        let mut rng = SimRng::new(0x92a0_0001);
        for _ in 0..64 {
            let n_runs = 1 + rng.gen_range(29) as usize;
            let layout: Vec<(u64, u64)> = (0..n_runs)
                .map(|_| (rng.gen_range(4), rng.gen_range(8)))
                .collect();
            let mut p = P2m::new();
            let mut truth: Vec<(u64, u64, u64)> = Vec::new(); // (gfn, mfn, pages)
            let mut gfn = 0u64;
            let mut mfn = 0u64;
            for (order, gap) in layout {
                gfn += gap;
                let order = PageOrder(order as u8);
                // Align the machine side as the allocator would.
                mfn = mfn.next_multiple_of(order.pages());
                let e = Extent::new(Mfn(mfn), order);
                p.map(Gfn(gfn), e).expect("construction is overlap-free");
                truth.push((gfn, mfn, order.pages()));
                gfn += order.pages();
                mfn += order.pages();
            }
            for &(g, m, n) in &truth {
                for off in 0..n {
                    assert_eq!(p.translate(Gfn(g + off)).unwrap(), Mfn(m + off));
                }
            }
            // A GFN beyond the layout fails.
            assert!(p.translate(Gfn(gfn + 1)).is_err());
            // Re-mapping anything inside an existing run fails.
            if let Some(&(g, _, _)) = truth.first() {
                assert!(p
                    .map(Gfn(g), Extent::new(Mfn(1 << 20), PageOrder(0)))
                    .is_err());
            }
            assert_eq!(
                p.total_pages(),
                truth.iter().map(|&(_, _, n)| n).sum::<u64>()
            );
        }
    }
}
