//! A xenstored model: the hierarchical configuration store.
//!
//! Xen's toolstack publishes domain metadata under `/local/domain/<id>/...`
//! and device backends watch those paths. The store is *VM Management
//! State*: the target hypervisor re-registers every adopted domain rather
//! than translating the tree.

use std::collections::BTreeMap;

/// A hierarchical key/value store with `/`-separated paths.
#[derive(Debug, Clone, Default)]
pub struct XenStore {
    entries: BTreeMap<String, String>,
}

impl XenStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        XenStore::default()
    }

    /// Writes a value, creating parent directories implicitly.
    pub fn write(&mut self, path: &str, value: impl Into<String>) {
        self.entries.insert(normalize(path), value.into());
    }

    /// Reads a value.
    pub fn read(&self, path: &str) -> Option<&str> {
        self.entries.get(&normalize(path)).map(String::as_str)
    }

    /// Removes a path and everything beneath it. Returns the number of
    /// entries removed.
    pub fn rm(&mut self, path: &str) -> usize {
        let p = normalize(path);
        let prefix = format!("{p}/");
        let keys: Vec<String> = self
            .entries
            .keys()
            .filter(|k| **k == p || k.starts_with(&prefix))
            .cloned()
            .collect();
        for k in &keys {
            self.entries.remove(k);
        }
        keys.len()
    }

    /// Lists the immediate children of a directory.
    pub fn ls(&self, path: &str) -> Vec<String> {
        let p = normalize(path);
        let prefix = if p.is_empty() {
            String::new()
        } else {
            format!("{p}/")
        };
        let mut out: Vec<String> = self
            .entries
            .keys()
            .filter_map(|k| k.strip_prefix(&prefix))
            .map(|rest| rest.split('/').next().unwrap_or(rest).to_string())
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Publishes the standard paths for a domain.
    pub fn register_domain(&mut self, domid: u32, name: &str, memory_kb: u64, vcpus: u32) {
        let base = format!("/local/domain/{domid}");
        self.write(&format!("{base}/name"), name);
        self.write(&format!("{base}/memory/target"), memory_kb.to_string());
        self.write(&format!("{base}/cpu/count"), vcpus.to_string());
        self.write(&format!("{base}/state"), "running");
    }

    /// Removes a domain's subtree.
    pub fn unregister_domain(&mut self, domid: u32) -> usize {
        self.rm(&format!("/local/domain/{domid}"))
    }

    /// Number of entries (tests + footprint accounting).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the store is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Approximate footprint in bytes.
    pub fn footprint_bytes(&self) -> u64 {
        self.entries
            .iter()
            .map(|(k, v)| (k.len() + v.len() + 32) as u64)
            .sum()
    }
}

fn normalize(path: &str) -> String {
    let mut p = path.trim().trim_end_matches('/').to_string();
    if !p.starts_with('/') {
        p.insert(0, '/');
    }
    p.trim_start_matches('/').to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_rm() {
        let mut s = XenStore::new();
        s.write("/local/domain/1/name", "vm0");
        assert_eq!(s.read("/local/domain/1/name"), Some("vm0"));
        assert_eq!(s.read("local/domain/1/name"), Some("vm0"));
        assert_eq!(s.rm("/local/domain/1"), 1);
        assert_eq!(s.read("/local/domain/1/name"), None);
    }

    #[test]
    fn ls_lists_children() {
        let mut s = XenStore::new();
        s.register_domain(1, "a", 1 << 20, 1);
        s.register_domain(2, "b", 1 << 20, 2);
        let doms = s.ls("/local/domain");
        assert_eq!(doms, vec!["1", "2"]);
        let keys = s.ls("/local/domain/1");
        assert!(keys.contains(&"name".to_string()));
        assert!(keys.contains(&"memory".to_string()));
    }

    #[test]
    fn register_unregister_domain() {
        let mut s = XenStore::new();
        s.register_domain(7, "web", 4 << 20, 4);
        assert_eq!(s.read("/local/domain/7/name"), Some("web"));
        assert_eq!(s.read("/local/domain/7/cpu/count"), Some("4"));
        let removed = s.unregister_domain(7);
        assert_eq!(removed, 4);
        assert!(s.is_empty());
    }

    #[test]
    fn rm_is_subtree_scoped() {
        let mut s = XenStore::new();
        s.write("/a/b", "1");
        s.write("/a/bc", "2"); // Not under /a/b.
        assert_eq!(s.rm("/a/b"), 1);
        assert_eq!(s.read("/a/bc"), Some("2"));
    }
}
