//! Event channels: Xen's interdomain notification primitive.
//!
//! §2.1 notes that 38.4% of Xen's critical vulnerabilities live in PV
//! mechanisms such as event channels and hypercalls — which is much of why
//! transplanting *away* from Xen during a vulnerability window is
//! attractive. The model implements the allocate/bind/send/close port
//! lifecycle; ports are per-domain *VMi State* that is re-established by
//! device reconnection rather than translated (the §4.2.3 unplug/replug
//! strategy).

/// State of one event channel port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PortState {
    /// Allocated, waiting for a remote domain to bind.
    Unbound {
        /// Domain allowed to bind.
        remote_domid: u32,
    },
    /// Connected to a remote domain's port.
    Interdomain {
        /// Peer domain.
        remote_domid: u32,
        /// Peer port number.
        remote_port: u32,
    },
    /// Bound to a virtual IRQ.
    Virq {
        /// VIRQ number.
        virq: u32,
    },
}

/// A domain's event channel table.
#[derive(Debug, Clone, Default)]
pub struct EventChannels {
    ports: Vec<Option<PortState>>,
    pending: Vec<bool>,
}

/// Errors from event channel operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvtchnError {
    /// Port number out of range or closed.
    InvalidPort(u32),
    /// Bind attempted by a domain other than the designated remote.
    BadRemote {
        /// The designated remote.
        expected: u32,
        /// The caller.
        got: u32,
    },
    /// Port is not in a bindable state.
    NotUnbound(u32),
}

impl std::fmt::Display for EvtchnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvtchnError::InvalidPort(p) => write!(f, "invalid event channel port {p}"),
            EvtchnError::BadRemote { expected, got } => {
                write!(f, "bind from domain {got}, expected {expected}")
            }
            EvtchnError::NotUnbound(p) => write!(f, "port {p} is not unbound"),
        }
    }
}

impl std::error::Error for EvtchnError {}

impl EventChannels {
    /// Creates an empty table.
    pub fn new() -> Self {
        EventChannels::default()
    }

    /// Allocates an unbound port that `remote_domid` may bind
    /// (`EVTCHNOP_alloc_unbound`).
    pub fn alloc_unbound(&mut self, remote_domid: u32) -> u32 {
        let port = self.ports.len() as u32;
        self.ports.push(Some(PortState::Unbound { remote_domid }));
        self.pending.push(false);
        port
    }

    /// Completes an interdomain binding (`EVTCHNOP_bind_interdomain`).
    pub fn bind_interdomain(
        &mut self,
        port: u32,
        caller_domid: u32,
        remote_port: u32,
    ) -> Result<(), EvtchnError> {
        let slot = self
            .ports
            .get_mut(port as usize)
            .and_then(|s| s.as_mut())
            .ok_or(EvtchnError::InvalidPort(port))?;
        match *slot {
            PortState::Unbound { remote_domid } if remote_domid == caller_domid => {
                *slot = PortState::Interdomain {
                    remote_domid,
                    remote_port,
                };
                Ok(())
            }
            PortState::Unbound { remote_domid } => Err(EvtchnError::BadRemote {
                expected: remote_domid,
                got: caller_domid,
            }),
            _ => Err(EvtchnError::NotUnbound(port)),
        }
    }

    /// Binds a port to a virtual IRQ (`EVTCHNOP_bind_virq`).
    pub fn bind_virq(&mut self, virq: u32) -> u32 {
        let port = self.ports.len() as u32;
        self.ports.push(Some(PortState::Virq { virq }));
        self.pending.push(false);
        port
    }

    /// Raises an event on a port (`EVTCHNOP_send`).
    pub fn send(&mut self, port: u32) -> Result<(), EvtchnError> {
        if self.ports.get(port as usize).and_then(|s| *s).is_none() {
            return Err(EvtchnError::InvalidPort(port));
        }
        self.pending[port as usize] = true;
        Ok(())
    }

    /// Consumes a pending event, returning whether one was pending.
    pub fn consume(&mut self, port: u32) -> Result<bool, EvtchnError> {
        if self.ports.get(port as usize).and_then(|s| *s).is_none() {
            return Err(EvtchnError::InvalidPort(port));
        }
        Ok(std::mem::take(&mut self.pending[port as usize]))
    }

    /// Closes a port (`EVTCHNOP_close`).
    pub fn close(&mut self, port: u32) -> Result<(), EvtchnError> {
        let slot = self
            .ports
            .get_mut(port as usize)
            .ok_or(EvtchnError::InvalidPort(port))?;
        if slot.is_none() {
            return Err(EvtchnError::InvalidPort(port));
        }
        *slot = None;
        self.pending[port as usize] = false;
        Ok(())
    }

    /// Number of open ports.
    pub fn open_ports(&self) -> usize {
        self.ports.iter().flatten().count()
    }

    /// Approximate memory footprint in bytes (VM Management State
    /// accounting).
    pub fn footprint_bytes(&self) -> u64 {
        (self.ports.len() * 16) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_bind_send_consume() {
        let mut e = EventChannels::new();
        let p = e.alloc_unbound(5);
        e.bind_interdomain(p, 5, 9).unwrap();
        e.send(p).unwrap();
        assert!(e.consume(p).unwrap());
        assert!(!e.consume(p).unwrap());
        assert_eq!(e.open_ports(), 1);
    }

    #[test]
    fn wrong_remote_rejected() {
        let mut e = EventChannels::new();
        let p = e.alloc_unbound(5);
        assert_eq!(
            e.bind_interdomain(p, 6, 0),
            Err(EvtchnError::BadRemote {
                expected: 5,
                got: 6
            })
        );
    }

    #[test]
    fn double_bind_rejected() {
        let mut e = EventChannels::new();
        let p = e.alloc_unbound(5);
        e.bind_interdomain(p, 5, 0).unwrap();
        assert_eq!(e.bind_interdomain(p, 5, 0), Err(EvtchnError::NotUnbound(p)));
    }

    #[test]
    fn closed_port_invalid() {
        let mut e = EventChannels::new();
        let p = e.bind_virq(3);
        e.close(p).unwrap();
        assert_eq!(e.send(p), Err(EvtchnError::InvalidPort(p)));
        assert_eq!(e.close(p), Err(EvtchnError::InvalidPort(p)));
        assert_eq!(e.open_ports(), 0);
    }

    #[test]
    fn out_of_range_port() {
        let mut e = EventChannels::new();
        assert_eq!(e.send(42), Err(EvtchnError::InvalidPort(42)));
    }
}
