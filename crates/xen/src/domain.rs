//! The per-domain container: vCPUs, P2M, platform devices, PV machinery.

use hypertp_core::{HtpError, VmConfig, VmState};
use hypertp_machine::{Gfn, Machine, PageOrder};
use hypertp_sim::SimRng;
use hypertp_uisr::state::LAPIC_REGS_SIZE;
use hypertp_uisr::{lapic_page, DeviceState};

use crate::arbytes::{AR_CODE64, AR_DATA};
use crate::events::EventChannels;
use crate::grant::GrantTable;
use crate::hvm_context::{save_context, HvmRecord, HvmSaveHeader};
use crate::hvm_types::{HvmHwCpu, HvmHwIoapic, HvmHwLapic, HvmHwMtrr, HvmHwPit, HvmHwXsave};
use crate::p2m::P2m;

/// One virtual CPU with Xen's state containers.
#[derive(Debug, Clone)]
pub struct XenVcpu {
    /// The CPU save record.
    pub hw: HvmHwCpu,
    /// LAPIC bookkeeping.
    pub lapic: HvmHwLapic,
    /// LAPIC register page image.
    pub lapic_regs: Vec<u8>,
    /// MTRR record.
    pub mtrr: HvmHwMtrr,
    /// XSAVE record.
    pub xsave: HvmHwXsave,
}

impl XenVcpu {
    /// Creates a vCPU in the state Xen's HVM builder leaves it: 64-bit
    /// flat segments, paging enabled, LAPIC at the architectural base.
    // Field-by-field construction mirrors Xen's hvm_vcpu_initialise.
    #[allow(clippy::field_reassign_with_default)]
    pub fn reset(apic_id: u32) -> Self {
        let mut hw = HvmHwCpu::default();
        hw.rip = 0x0010_0000;
        hw.rflags = 0x2;
        hw.crs[0] = 0x8000_0031; // cr0: PG | PE | NE | ET.
        hw.crs[1] = 0; // cr2.
        hw.crs[2] = 0x1000; // cr3: boot page tables.
        hw.crs[3] = 0x6a0; // cr4: PAE | OSFXSR | OSXMMEXCPT | OSXSAVE.
        hw.msr_efer = 0xd01; // LME | LMA | SCE | NXE.
                             // A proper FXSAVE image (fcw/mxcsr at architectural reset values),
                             // as xsave init leaves it — an all-zero image is not valid state.
        hw.fpu_regs = crate::hvm_types::fxsave_pack(&hypertp_uisr::FpuState::default());
        for (i, seg) in hw.segs.iter_mut().enumerate() {
            seg.arbytes = if i == crate::hvm_types::SEG_CS {
                AR_CODE64
            } else {
                AR_DATA
            };
            seg.limit = 0xffff_ffff;
        }
        let mut lapic_regs = vec![0u8; LAPIC_REGS_SIZE];
        lapic_page::set_apic_id(&mut lapic_regs, apic_id);
        lapic_page::write32(&mut lapic_regs, lapic_page::OFF_SVR, 0x1ff);
        let bsp = if apic_id == 0 { 1 << 8 } else { 0 };
        XenVcpu {
            hw,
            lapic: HvmHwLapic {
                apic_base_msr: 0xfee0_0000 | (1 << 11) | bsp,
                disabled: 0,
                timer_divisor: 0,
                tdt_msr: 0,
            },
            lapic_regs,
            mtrr: HvmHwMtrr::default(),
            xsave: HvmHwXsave {
                xcr0: 0x7,
                xcr0_accum: 0x7,
                area: vec![0; hypertp_uisr::state::XSAVE_AREA_SIZE],
            },
        }
    }
}

/// A Xen HVM domain.
#[derive(Debug)]
pub struct Domain {
    /// Domain id.
    pub domid: u32,
    /// Cross-hypervisor configuration.
    pub config: VmConfig,
    /// Lifecycle state.
    pub state: VmState,
    /// Virtual CPUs.
    pub vcpus: Vec<XenVcpu>,
    /// Physical-to-machine table.
    pub p2m: P2m,
    /// Virtual IOAPIC (48 pins).
    pub ioapic: HvmHwIoapic,
    /// Virtual PIT.
    pub pit: HvmHwPit,
    /// Event channels.
    pub evtchn: EventChannels,
    /// Grant table.
    pub grants: GrantTable,
    /// Emulated/pass-through devices.
    pub devices: Vec<DeviceState>,
    /// Per-domain deterministic stream for guest activity.
    pub rng: SimRng,
}

impl Domain {
    /// Builds a fresh domain, allocating guest memory from the machine.
    pub fn create(domid: u32, config: &VmConfig, machine: &mut Machine) -> Result<Self, HtpError> {
        let order = if config.huge_pages {
            PageOrder(9)
        } else {
            PageOrder(0)
        };
        let mut p2m = P2m::new();
        let chunks = config.pages() / order.pages();
        for i in 0..chunks {
            let e = machine.ram_mut().alloc(order)?;
            p2m.map(Gfn(i * order.pages()), e)
                .map_err(|_| HtpError::Unsupported("fresh p2m cannot overlap"))?;
            // Deterministic initial contents on the first frame of each
            // chunk (guest OS image data).
            let seed = config.name.bytes().fold(domid as u64, |a, b| {
                a.wrapping_mul(31).wrapping_add(b as u64)
            });
            machine
                .ram_mut()
                .write(e.base, seed ^ (i * order.pages()).wrapping_mul(0x9e37))?;
        }
        let vcpus = (0..config.vcpus).map(XenVcpu::reset).collect();
        let mut evtchn = EventChannels::new();
        // Console and xenstore rings, as libxl sets up.
        evtchn.alloc_unbound(0);
        evtchn.alloc_unbound(0);
        let mut grants = GrantTable::new();
        let mut devices = Vec::new();
        if config.has_network {
            devices.push(DeviceState::Network {
                mac: [0x00, 0x16, 0x3e, 0, 0, domid as u8], // Xen OUI.
                unplugged: false,
            });
            grants.grant_access(0, Gfn(1), false); // vif ring page.
        }
        devices.push(DeviceState::Block {
            backend: config.storage_backend.clone(),
            sectors: config.memory_gb * (1 << 30) / 512,
            pending_requests: 0,
        });
        devices.push(DeviceState::Console { tx_buffered: 0 });
        Ok(Domain {
            domid,
            config: config.clone(),
            state: VmState::Running,
            vcpus,
            p2m,
            ioapic: HvmHwIoapic::default(),
            pit: HvmHwPit::default(),
            evtchn,
            grants,
            devices,
            rng: SimRng::new(domid as u64 * 0x9e37_79b9 + 1),
        })
    }

    /// Serializes the domain's platform state as an HVM context stream
    /// (`xc_domain_hvm_getcontext`).
    pub fn hvm_context_save(&self) -> Vec<u8> {
        let mut records = Vec::new();
        for (i, v) in self.vcpus.iter().enumerate() {
            let inst = i as u16;
            records.push(HvmRecord::Cpu(inst, Box::new(v.hw.clone())));
            records.push(HvmRecord::Lapic(inst, v.lapic));
            records.push(HvmRecord::LapicRegs(inst, v.lapic_regs.clone()));
            records.push(HvmRecord::Mtrr(inst, Box::new(v.mtrr.clone())));
            records.push(HvmRecord::Xsave(inst, v.xsave.clone()));
        }
        records.push(HvmRecord::Ioapic(self.ioapic.clone()));
        records.push(HvmRecord::Pit(self.pit));
        save_context(&HvmSaveHeader::default(), &records)
    }

    /// VMi State footprint in bytes (Fig. 2 accounting): platform state
    /// containers plus P2M metadata plus per-VM PV machinery.
    pub fn vmi_state_bytes(&self) -> u64 {
        let per_vcpu = 1024
            + 32
            + LAPIC_REGS_SIZE as u64
            + 8 * 30
            + self
                .vcpus
                .first()
                .map(|v| v.xsave.area.len() as u64)
                .unwrap_or(0);
        self.vcpus.len() as u64 * per_vcpu
            + self.p2m.metadata_bytes()
            + 48 * 8
            + 64
            + self.evtchn.footprint_bytes()
            + self.grants.footprint_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypertp_machine::MachineSpec;

    fn machine() -> Machine {
        let mut spec = MachineSpec::m1();
        spec.ram_gb = 4;
        Machine::new(spec)
    }

    #[test]
    fn create_allocates_guest_memory() {
        let mut m = machine();
        let d = Domain::create(1, &VmConfig::small("vm0"), &mut m).unwrap();
        assert_eq!(d.p2m.total_pages(), 262_144);
        assert_eq!(d.p2m.entry_count(), 512); // Huge pages.
        assert_eq!(d.vcpus.len(), 1);
        assert!(d.devices.len() >= 2);
        assert_eq!(d.evtchn.open_ports(), 2);
    }

    #[test]
    fn small_pages_when_huge_disabled() {
        let mut m = machine();
        let cfg = VmConfig::small("vm0").with_huge_pages(false);
        let d = Domain::create(1, &cfg, &mut m).unwrap();
        assert_eq!(d.p2m.entry_count(), 262_144);
    }

    #[test]
    fn vcpu_reset_state_is_64bit() {
        let v = XenVcpu::reset(0);
        assert_eq!(v.hw.msr_efer & 0x500, 0x500); // LME | LMA.
        assert_eq!(v.hw.segs[crate::hvm_types::SEG_CS].arbytes, AR_CODE64);
        assert_eq!(v.lapic.apic_base_msr & (1 << 8), 1 << 8, "BSP bit");
        assert_eq!(lapic_page::apic_id(&v.lapic_regs), 0);
        let v1 = XenVcpu::reset(1);
        assert_eq!(v1.lapic.apic_base_msr & (1 << 8), 0);
        assert_eq!(lapic_page::apic_id(&v1.lapic_regs), 1);
    }

    #[test]
    fn context_save_parses_back() {
        let mut m = machine();
        let d = Domain::create(1, &VmConfig::small("vm0").with_vcpus(2), &mut m).unwrap();
        let buf = d.hvm_context_save();
        let records = crate::hvm_context::load_context(&buf).unwrap();
        // Header + 2 vCPUs × 5 records + IOAPIC + PIT.
        assert_eq!(records.len(), 1 + 10 + 2);
    }

    #[test]
    fn vmi_state_is_small_relative_to_guest() {
        let mut m = machine();
        let d = Domain::create(1, &VmConfig::small("vm0"), &mut m).unwrap();
        let vmi = d.vmi_state_bytes();
        let guest = d.config.memory_gb << 30;
        assert!(vmi < guest / 100, "vmi={vmi} guest={guest}");
    }
}
