//! A Xen-like type-1 hypervisor model.
//!
//! The paper's prototype re-engineers Xen 4.12.1 (HVM mode) into a
//! HyperTP-compliant hypervisor. This crate reproduces the pieces of Xen the
//! transplant path touches, with Xen's *own* representation choices so the
//! UISR translation layer has real format conversion to do:
//!
//! * [`hvm_types`] / [`hvm_context`] — Xen's HVM save records
//!   (`hvm_hw_cpu`, `hvm_hw_lapic`, ...) and the typed record stream
//!   produced by `xc_domain_hvm_getcontext`. Segment attributes are packed
//!   VMX-style `arbytes`; syscall MSRs live inline in the CPU record.
//! * [`p2m`] — the per-domain physical-to-machine table with 2 MiB
//!   superpage support and log-dirty tracking (used by live migration).
//! * [`events`] — event channels (interdomain notification ports).
//! * [`grant`] — grant tables (page sharing with dom0 backends).
//! * [`sched`] — the Credit scheduler's run queues: pure *VM Management
//!   State* that a transplant rebuilds instead of translating.
//! * [`xenstore`] — the xenstored hierarchical configuration store.
//! * [`domain`] — the per-domain container tying the above together.
//! * [`hypervisor`] — [`XenHypervisor`], the `hypertp_core::Hypervisor`
//!   implementation (the dom0 toolstack view: libxl + libxenctrl).

pub mod arbytes;
pub mod domain;
pub mod events;
pub mod grant;
pub mod hvm_context;
pub mod hvm_types;
pub mod hypervisor;
pub mod p2m;
pub mod sched;
pub mod xenstore;
pub mod xl;
pub mod xlate;

pub use hypervisor::XenHypervisor;
