//! `XenHypervisor`: the dom0 toolstack view of the Xen host.
//!
//! Implements `hypertp_core::Hypervisor`. The save path goes through the
//! HVM context *byte stream* (as the prototype does via libxenctrl's
//! `xc_domain_hvm_getcontext`), not through in-memory structs, so the
//! context format is exercised on every transplant.

use std::collections::BTreeMap;

use hypertp_core::{
    hypervisor::config_from_uisr, HtpError, Hypervisor, HypervisorKind, MemSepReport, RestoredVm,
    VmConfig, VmId, VmState,
};
use hypertp_machine::{Extent, Gfn, Machine, PageOrder};
use hypertp_uisr::{DeviceState, MemoryRegion, UisrVm};

use crate::domain::Domain;
use crate::hvm_context::load_context;
use crate::sched::{CreditScheduler, DEFAULT_WEIGHT};
use crate::xenstore::XenStore;
use crate::xlate;

/// The Xen hypervisor model (type-1: the hypervisor plus its dom0).
pub struct XenHypervisor {
    version: String,
    domains: BTreeMap<u32, Domain>,
    next_domid: u32,
    sched: CreditScheduler,
    store: XenStore,
    /// Xenheap frames: pure HV State, dies with the micro-reboot.
    heap: Vec<Extent>,
}

impl XenHypervisor {
    /// Boots the hypervisor on a machine, allocating its xenheap.
    pub fn new(machine: &mut Machine) -> Self {
        let mut heap = Vec::new();
        // A modest xenheap model: 16 MiB of hypervisor-global allocations.
        for _ in 0..8 {
            if let Ok(e) = machine.ram_mut().alloc(PageOrder(9)) {
                let _ = machine.ram_mut().write(e.base, 0xe4_e4_e4);
                heap.push(e);
            }
        }
        let pcpus = machine.spec().threads.max(1);
        let mut store = XenStore::new();
        store.write("/tool/xenstored/domid", "0");
        store.register_domain(0, "Domain-0", 4 << 20, 2);
        XenHypervisor {
            version: "4.12.1".to_string(),
            domains: BTreeMap::new(),
            next_domid: 1,
            sched: CreditScheduler::new(pcpus),
            store,
            heap,
        }
    }

    fn dom(&self, id: VmId) -> Result<&Domain, HtpError> {
        self.domains.get(&id.0).ok_or(HtpError::UnknownVm(id))
    }

    fn dom_mut(&mut self, id: VmId) -> Result<&mut Domain, HtpError> {
        self.domains.get_mut(&id.0).ok_or(HtpError::UnknownVm(id))
    }

    fn register(&mut self, mut domain: Domain) -> VmId {
        let domid = self.next_domid;
        self.next_domid += 1;
        domain.domid = domid;
        for v in 0..domain.config.vcpus {
            self.sched.insert(domid, v, DEFAULT_WEIGHT);
        }
        self.store.register_domain(
            domid,
            &domain.config.name,
            domain.config.memory_gb << 20,
            domain.config.vcpus,
        );
        self.domains.insert(domid, domain);
        VmId(domid)
    }

    /// Read-only access to the xenstore (tests, orchestration).
    pub fn xenstore(&self) -> &XenStore {
        &self.store
    }

    /// Read-only access to the scheduler (tests).
    pub fn scheduler(&self) -> &CreditScheduler {
        &self.sched
    }

    /// Direct access to a domain's internals (debugging and tests; the
    /// orchestration paths never reach past the `Hypervisor` trait).
    pub fn domain_mut(&mut self, id: VmId) -> Option<&mut Domain> {
        self.domains.get_mut(&id.0)
    }

    /// Coalesces a P2M mapping list into UISR memory regions.
    fn memory_regions(mappings: &[(Gfn, Extent)]) -> Vec<MemoryRegion> {
        let mut regions: Vec<MemoryRegion> = Vec::new();
        for (gfn, e) in mappings {
            match regions.last_mut() {
                Some(r) if r.gfn_start + r.pages == gfn.0 => r.pages += e.pages(),
                _ => regions.push(MemoryRegion {
                    gfn_start: gfn.0,
                    pages: e.pages(),
                }),
            }
        }
        regions
    }
}

impl Hypervisor for XenHypervisor {
    fn kind(&self) -> HypervisorKind {
        HypervisorKind::Xen
    }

    fn version(&self) -> &str {
        &self.version
    }

    fn create_vm(&mut self, machine: &mut Machine, config: &VmConfig) -> Result<VmId, HtpError> {
        let domain = Domain::create(self.next_domid, config, machine)?;
        Ok(self.register(domain))
    }

    fn destroy_vm(&mut self, machine: &mut Machine, id: VmId) -> Result<(), HtpError> {
        let d = self.domains.remove(&id.0).ok_or(HtpError::UnknownVm(id))?;
        for (_, e) in d.p2m.mappings() {
            machine.ram_mut().free(e)?;
        }
        self.sched.remove_domain(id.0);
        self.store.unregister_domain(id.0);
        Ok(())
    }

    fn pause_vm(&mut self, id: VmId) -> Result<(), HtpError> {
        self.dom_mut(id)?.state = VmState::Paused;
        Ok(())
    }

    fn resume_vm(&mut self, id: VmId) -> Result<(), HtpError> {
        self.dom_mut(id)?.state = VmState::Running;
        Ok(())
    }

    fn vm_state(&self, id: VmId) -> Result<VmState, HtpError> {
        Ok(self.dom(id)?.state)
    }

    fn vm_ids(&self) -> Vec<VmId> {
        self.domains.keys().map(|&d| VmId(d)).collect()
    }

    fn vm_config(&self, id: VmId) -> Result<&VmConfig, HtpError> {
        Ok(&self.dom(id)?.config)
    }

    fn find_vm(&self, name: &str) -> Option<VmId> {
        self.domains
            .iter()
            .find(|(_, d)| d.config.name == name)
            .map(|(&id, _)| VmId(id))
    }

    fn guest_memory_map(&self, id: VmId) -> Result<Vec<(Gfn, Extent)>, HtpError> {
        Ok(self.dom(id)?.p2m.mappings())
    }

    fn read_guest(&self, machine: &Machine, id: VmId, gfn: Gfn) -> Result<u64, HtpError> {
        let d = self.dom(id)?;
        let mfn = d.p2m.translate(gfn).map_err(|_| HtpError::UnknownVm(id))?;
        Ok(machine.ram().read(mfn)?)
    }

    fn read_guest_many(
        &self,
        machine: &Machine,
        id: VmId,
        gfns: &[Gfn],
    ) -> Result<Vec<u64>, HtpError> {
        // One domain lookup and one tandem P2M walk per batch instead of
        // a BTreeMap range query per page (see `P2m::translate_many`).
        let d = self.dom(id)?;
        let mfns = d
            .p2m
            .translate_many(gfns)
            .map_err(|_| HtpError::UnknownVm(id))?;
        let ram = machine.ram();
        let mut out = Vec::with_capacity(mfns.len());
        for mfn in mfns {
            out.push(ram.read(mfn)?);
        }
        Ok(out)
    }

    fn read_guest_into(
        &self,
        machine: &Machine,
        id: VmId,
        gfns: &[Gfn],
        out: &mut Vec<u64>,
    ) -> Result<(), HtpError> {
        // Zero-copy gather: the P2M hands back physically-contiguous
        // (MFN, pages) runs and each run is borrowed straight from the
        // RAM extent backing — no intermediate MFN vector, no per-page
        // read call, and no allocation once `out` has warmed up.
        let d = self.dom(id)?;
        let ram = machine.ram();
        out.clear();
        out.reserve(gfns.len());
        let mut mem_err: Option<hypertp_machine::MemError> = None;
        d.p2m
            .translate_runs(gfns, &mut |mfn, pages| {
                if mem_err.is_some() {
                    return;
                }
                match ram.content_slice(mfn, pages) {
                    Ok(s) => out.extend_from_slice(s),
                    Err(e) => mem_err = Some(e),
                }
            })
            .map_err(|_| HtpError::UnknownVm(id))?;
        match mem_err {
            Some(e) => Err(e.into()),
            None => Ok(()),
        }
    }

    fn write_guest(
        &mut self,
        machine: &mut Machine,
        id: VmId,
        gfn: Gfn,
        content: u64,
    ) -> Result<(), HtpError> {
        let d = self.dom_mut(id)?;
        let mfn = d.p2m.translate(gfn).map_err(|_| HtpError::UnknownVm(id))?;
        machine.ram_mut().write(mfn, content)?;
        d.p2m.mark_dirty(gfn);
        Ok(())
    }

    fn guest_tick(
        &mut self,
        machine: &mut Machine,
        id: VmId,
        dirty_pages: u64,
    ) -> Result<(), HtpError> {
        let d = self.dom_mut(id)?;
        if d.state != VmState::Running {
            return Err(HtpError::WrongVmState {
                vm: id,
                expected: "running",
                found: d.state.name(),
            });
        }
        let total = d.config.pages();
        let mut writes = Vec::with_capacity(dirty_pages as usize);
        for _ in 0..dirty_pages {
            writes.push((Gfn(d.rng.gen_range(total)), d.rng.next_u64()));
        }
        for v in &mut d.vcpus {
            v.hw.rip = v.hw.rip.wrapping_add(16 * dirty_pages + 4);
            v.hw.gprs[0] = v.hw.gprs[0].wrapping_add(1);
            v.hw.tsc = v.hw.tsc.wrapping_add(1000 + dirty_pages * 50);
        }
        for (gfn, val) in writes {
            self.write_guest(machine, id, gfn, val)?;
        }
        Ok(())
    }

    fn enable_dirty_log(&mut self, id: VmId) -> Result<(), HtpError> {
        self.dom_mut(id)?.p2m.enable_log_dirty();
        Ok(())
    }

    fn collect_dirty(&mut self, id: VmId) -> Result<Vec<Gfn>, HtpError> {
        Ok(self.dom_mut(id)?.p2m.read_and_clear_dirty())
    }

    fn notify_prepare_transplant(
        &mut self,
        _machine: &mut Machine,
        id: VmId,
    ) -> Result<hypertp_sim::SimDuration, HtpError> {
        let d = self.dom_mut(id)?;
        let mut cost = hypertp_core::devices::quiesce(&mut d.devices);
        // With the rings idle, dom0 backends drop their grant mappings.
        let released = d.grants.unmap_all();
        cost += hypertp_core::devices::DRAIN_PER_REQUEST * released as u64;
        Ok(cost)
    }

    fn save_uisr(&self, _machine: &Machine, id: VmId) -> Result<UisrVm, HtpError> {
        let d = self.dom(id)?;
        if d.state != VmState::Paused {
            return Err(HtpError::WrongVmState {
                vm: id,
                expected: "paused",
                found: d.state.name(),
            });
        }
        if d.grants.active_mappings() > 0 {
            return Err(HtpError::IncompatibleState {
                section: "devices",
                detail: "grant mappings still active; devices not quiesced".to_string(),
            });
        }
        hypertp_core::devices::check_quiesced(&d.devices)?;
        // Save through the byte-stream path, exactly like the prototype.
        let buf = d.hvm_context_save();
        let records = load_context(&buf).map_err(|e| HtpError::IncompatibleState {
            section: "HVM context",
            detail: e.to_string(),
        })?;
        let mut vm = xlate::records_to_uisr(&d.config.name, &records);
        // §4.2.3: network devices are unplugged before transplant and
        // rescanned on the other side.
        vm.devices = d
            .devices
            .iter()
            .map(|dev| match dev {
                DeviceState::Network { mac, .. } => DeviceState::Network {
                    mac: *mac,
                    unplugged: true,
                },
                other => other.clone(),
            })
            .collect();
        vm.memory.regions = Self::memory_regions(&d.p2m.mappings());
        vm.memory.pram_file = Some(d.config.name.clone());
        Ok(vm)
    }

    fn prepare_incoming(
        &mut self,
        machine: &mut Machine,
        config: &VmConfig,
    ) -> Result<VmId, HtpError> {
        let mut domain = Domain::create(self.next_domid, config, machine)?;
        domain.state = VmState::Paused;
        Ok(self.register(domain))
    }

    fn restore_uisr(
        &mut self,
        _machine: &mut Machine,
        id: VmId,
        uisr: &UisrVm,
    ) -> Result<RestoredVm, HtpError> {
        let mut warnings = Vec::new();
        let d = self.dom_mut(id)?;
        d.vcpus = uisr.vcpus.iter().map(xlate::vcpu_from_uisr).collect();
        d.ioapic = xlate::ioapic_from_uisr(&uisr.ioapic, &mut warnings);
        d.pit = xlate::pit_from_uisr(&uisr.pit);
        d.devices = replug_devices(&uisr.devices);
        Ok(RestoredVm { id, warnings })
    }

    fn adopt_vm(
        &mut self,
        machine: &mut Machine,
        uisr: &UisrVm,
        mappings: &[(Gfn, Extent)],
    ) -> Result<RestoredVm, HtpError> {
        let huge = mappings
            .first()
            .map(|(_, e)| e.order.0 >= 9)
            .unwrap_or(true);
        let config = config_from_uisr(uisr, huge);
        let mut warnings = Vec::new();
        // Integrate the in-place guest memory (the paper's "PRAM
        // filesystem API into Xen"): the frames are reserved by the early
        // boot parse; adopting marks them owned again without touching
        // contents.
        let mut p2m = crate::p2m::P2m::new();
        for (gfn, e) in mappings {
            machine.ram_mut().adopt_reserved(e.base, e.pages())?;
            p2m.map(*gfn, *e).map_err(|_| HtpError::IncompatibleState {
                section: "memory",
                detail: format!("overlapping PRAM mappings at {gfn}"),
            })?;
        }
        let vcpus: Vec<_> = uisr.vcpus.iter().map(xlate::vcpu_from_uisr).collect();
        let ioapic = xlate::ioapic_from_uisr(&uisr.ioapic, &mut warnings);
        let pit = xlate::pit_from_uisr(&uisr.pit);
        let mut evtchn = crate::events::EventChannels::new();
        evtchn.alloc_unbound(0);
        evtchn.alloc_unbound(0);
        let domain = Domain {
            domid: self.next_domid,
            config,
            state: VmState::Paused,
            vcpus,
            p2m,
            ioapic,
            pit,
            evtchn,
            grants: crate::grant::GrantTable::new(),
            devices: replug_devices(&uisr.devices),
            rng: hypertp_sim::SimRng::new(self.next_domid as u64 + 0xabcd),
        };
        let id = self.register(domain);
        Ok(RestoredVm { id, warnings })
    }

    fn memsep_report(&self, _machine: &Machine) -> MemSepReport {
        let guest_state: u64 = self
            .domains
            .values()
            .map(|d| d.p2m.total_pages() * 4096)
            .sum();
        let vmi_state: u64 = self.domains.values().map(Domain::vmi_state_bytes).sum();
        let vm_mgmt_state = self.sched.footprint_bytes()
            + self.store.footprint_bytes()
            + self.domains.len() as u64 * 256;
        let hv_state: u64 = self.heap.iter().map(|e| e.bytes()).sum();
        MemSepReport {
            guest_state,
            vmi_state,
            vm_mgmt_state,
            hv_state,
        }
    }
}

/// Re-plugs unplugged network devices during restoration (§4.2.3's rescan).
fn replug_devices(devices: &[DeviceState]) -> Vec<DeviceState> {
    devices
        .iter()
        .map(|d| match d {
            DeviceState::Network { mac, .. } => DeviceState::Network {
                mac: *mac,
                unplugged: false,
            },
            other => other.clone(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypertp_machine::MachineSpec;

    fn machine() -> Machine {
        let mut spec = MachineSpec::m1();
        spec.ram_gb = 4;
        Machine::new(spec)
    }

    #[test]
    fn boot_allocates_heap_and_dom0_paths() {
        let mut m = machine();
        let hv = XenHypervisor::new(&mut m);
        assert!(!hv.heap.is_empty());
        assert_eq!(hv.xenstore().read("/local/domain/0/name"), Some("Domain-0"));
    }

    #[test]
    fn create_registers_everywhere() {
        let mut m = machine();
        let mut hv = XenHypervisor::new(&mut m);
        let id = hv
            .create_vm(&mut m, &VmConfig::small("web").with_vcpus(2))
            .unwrap();
        assert_eq!(hv.xenstore().read("/local/domain/1/name"), Some("web"));
        assert_eq!(hv.scheduler().queued_vcpus(), vec![(1, 0), (1, 1)]);
        assert_eq!(hv.vm_state(id).unwrap(), VmState::Running);
        hv.destroy_vm(&mut m, id).unwrap();
        assert!(hv.scheduler().queued_vcpus().is_empty());
        assert_eq!(hv.xenstore().read("/local/domain/1/name"), None);
    }

    #[test]
    fn save_uisr_carries_platform_state() {
        let mut m = machine();
        let mut hv = XenHypervisor::new(&mut m);
        let id = hv.create_vm(&mut m, &VmConfig::small("vm0")).unwrap();
        hv.guest_tick(&mut m, id, 10).unwrap();
        hv.pause_vm(id).unwrap();
        let u = hv.save_uisr(&m, id).unwrap();
        assert_eq!(u.name, "vm0");
        assert_eq!(u.vcpus.len(), 1);
        assert!(u.vcpus[0].regs.rip > 0x10_0000);
        assert_eq!(u.ioapic.pins(), 48);
        assert_eq!(u.memory.total_pages(), 262_144);
        assert_eq!(u.memory.pram_file.as_deref(), Some("vm0"));
        // Network device marked unplugged for the transplant.
        assert!(u.devices.iter().any(|d| matches!(
            d,
            DeviceState::Network {
                unplugged: true,
                ..
            }
        )));
    }

    #[test]
    fn save_requires_pause() {
        let mut m = machine();
        let mut hv = XenHypervisor::new(&mut m);
        let id = hv.create_vm(&mut m, &VmConfig::small("vm0")).unwrap();
        assert!(matches!(
            hv.save_uisr(&m, id),
            Err(HtpError::WrongVmState { .. })
        ));
    }

    #[test]
    fn active_grant_mappings_block_save() {
        let mut m = machine();
        let mut hv = XenHypervisor::new(&mut m);
        let id = hv.create_vm(&mut m, &VmConfig::small("vm0")).unwrap();
        hv.pause_vm(id).unwrap();
        let d = hv.domains.get_mut(&id.0).unwrap();
        let gref = d.grants.grant_access(0, Gfn(7), false);
        d.grants.map(gref, 0).unwrap();
        assert!(matches!(
            hv.save_uisr(&m, id),
            Err(HtpError::IncompatibleState {
                section: "devices",
                ..
            })
        ));
    }

    #[test]
    fn notify_quiesces_devices_and_grants() {
        let mut m = machine();
        let mut hv = XenHypervisor::new(&mut m);
        let id = hv.create_vm(&mut m, &VmConfig::small("vm0")).unwrap();
        // Inject in-flight I/O and an active backend grant mapping.
        {
            let d = hv.domains.get_mut(&id.0).unwrap();
            for dev in &mut d.devices {
                if let DeviceState::Block {
                    pending_requests, ..
                } = dev
                {
                    *pending_requests = 31;
                }
            }
            let gref = d.grants.grant_access(0, Gfn(9), false);
            d.grants.map(gref, 0).unwrap();
        }
        hv.pause_vm(id).unwrap();
        // Unquiesced: the save path refuses.
        assert!(hv.save_uisr(&m, id).is_err());
        hv.resume_vm(id).unwrap();
        // Quiesce: costs time proportional to the work, then save succeeds.
        let cost = hv.notify_prepare_transplant(&mut m, id).unwrap();
        assert!(cost > hypertp_core::devices::NOTIFY_RTT);
        hv.pause_vm(id).unwrap();
        let u = hv.save_uisr(&m, id).unwrap();
        assert!(u.devices.iter().all(|dev| !matches!(
            dev,
            DeviceState::Block { pending_requests, .. } if *pending_requests > 0
        )));
    }

    #[test]
    fn dirty_log_via_p2m() {
        let mut m = machine();
        let mut hv = XenHypervisor::new(&mut m);
        let id = hv.create_vm(&mut m, &VmConfig::small("vm0")).unwrap();
        hv.enable_dirty_log(id).unwrap();
        hv.write_guest(&mut m, id, Gfn(42), 1).unwrap();
        hv.write_guest(&mut m, id, Gfn(17), 2).unwrap();
        let dirty = hv.collect_dirty(id).unwrap();
        assert_eq!(dirty, vec![Gfn(17), Gfn(42)]);
    }

    #[test]
    fn memsep_guest_dominates() {
        let mut m = machine();
        let mut hv = XenHypervisor::new(&mut m);
        hv.create_vm(&mut m, &VmConfig::small("vm0")).unwrap();
        let r = hv.memsep_report(&m);
        assert_eq!(r.guest_state, 1 << 30);
        assert!(r.translation_ratio() < 0.01);
        assert!(r.vmi_state > 0);
        assert!(r.vm_mgmt_state > 0);
        assert!(r.hv_state > 0);
    }
}
