//! The HVM context record stream (`xc_domain_hvm_get/setcontext`).
//!
//! Xen serializes a domain's platform state as a sequence of typed records,
//! each preceded by a `hvm_save_descriptor { typecode, instance, length }`.
//! The paper integrates these functions directly into InPlaceTP "as part of
//! the VM save/load process" (§4.2.1); our `to_uisr` path therefore starts
//! from this byte stream, exactly as the prototype's userspace tooling does
//! via libxenctrl.

use crate::hvm_types::{
    HvmHwCpu, HvmHwIoapic, HvmHwLapic, HvmHwMtrr, HvmHwPit, HvmHwXsave, HvmPitChannel, HvmSegment,
};

/// Record typecodes (Xen's `HVM_SAVE_CODE(...)` values).
pub mod typecode {
    /// Stream header.
    pub const HEADER: u16 = 1;
    /// Per-vCPU CPU state.
    pub const CPU: u16 = 2;
    /// Virtual IOAPIC.
    pub const IOAPIC: u16 = 4;
    /// Per-vCPU LAPIC bookkeeping.
    pub const LAPIC: u16 = 5;
    /// Per-vCPU LAPIC register page.
    pub const LAPIC_REGS: u16 = 6;
    /// Virtual PIT.
    pub const PIT: u16 = 10;
    /// Per-vCPU MTRRs.
    pub const MTRR: u16 = 14;
    /// Per-vCPU XSAVE area.
    pub const XSAVE: u16 = 16;
    /// End of stream.
    pub const END: u16 = 0;
}

/// Stream header (Xen's `hvm_save_header`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HvmSaveHeader {
    /// Magic value ("HVM2" little-endian).
    pub magic: u32,
    /// Xen version that produced the stream.
    pub version: u32,
    /// Changeset (unused here, kept for layout fidelity).
    pub changeset: u64,
    /// CPUID signature of the saving host.
    pub cpuid: u32,
    /// Guest TSC frequency in kHz.
    pub gtsc_khz: u32,
}

/// The header magic: "HVM2".
pub const HVM_MAGIC: u32 = 0x3254_4d48;

impl Default for HvmSaveHeader {
    fn default() -> Self {
        HvmSaveHeader {
            magic: HVM_MAGIC,
            version: 2,
            changeset: 0,
            cpuid: 0x000_906ea, // Arbitrary but stable host signature.
            gtsc_khz: 2_500_000,
        }
    }
}

/// One parsed record from an HVM context stream.
#[derive(Debug, Clone, PartialEq)]
pub enum HvmRecord {
    /// Stream header.
    Header(HvmSaveHeader),
    /// Per-vCPU CPU state; the `u16` is the vCPU instance.
    Cpu(u16, Box<HvmHwCpu>),
    /// Per-vCPU LAPIC bookkeeping.
    Lapic(u16, HvmHwLapic),
    /// Per-vCPU LAPIC register page.
    LapicRegs(u16, Vec<u8>),
    /// Per-vCPU MTRRs.
    Mtrr(u16, Box<HvmHwMtrr>),
    /// Per-vCPU XSAVE area.
    Xsave(u16, HvmHwXsave),
    /// The domain's IOAPIC.
    Ioapic(HvmHwIoapic),
    /// The domain's PIT.
    Pit(HvmHwPit),
}

/// Errors from HVM context parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ContextError {
    /// Stream shorter than a descriptor or record body.
    Truncated,
    /// Missing or malformed header.
    BadHeader,
    /// A record's length field disagrees with its typecode.
    BadLength {
        /// Record typecode.
        typecode: u16,
        /// Length found in the descriptor.
        length: u32,
    },
    /// Unknown record typecode.
    UnknownTypecode(u16),
    /// Stream did not terminate with an END record.
    MissingEnd,
}

impl std::fmt::Display for ContextError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ContextError::Truncated => write!(f, "truncated HVM context"),
            ContextError::BadHeader => write!(f, "bad HVM context header"),
            ContextError::BadLength { typecode, length } => {
                write!(f, "bad length {length} for typecode {typecode}")
            }
            ContextError::UnknownTypecode(t) => write!(f, "unknown typecode {t}"),
            ContextError::MissingEnd => write!(f, "missing END record"),
        }
    }
}

impl std::error::Error for ContextError {}

struct W(Vec<u8>);

impl W {
    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn bytes(&mut self, b: &[u8]) {
        self.0.extend_from_slice(b);
    }
}

struct R<'a> {
    b: &'a [u8],
    p: usize,
}

impl<'a> R<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ContextError> {
        if self.p + n > self.b.len() {
            return Err(ContextError::Truncated);
        }
        let s = &self.b[self.p..self.p + n];
        self.p += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, ContextError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, ContextError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2")))
    }
    fn u32(&mut self) -> Result<u32, ContextError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }
    fn u64(&mut self) -> Result<u64, ContextError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }
}

fn put_cpu(w: &mut W, c: &HvmHwCpu) {
    for g in c.gprs {
        w.u64(g);
    }
    w.u64(c.rip);
    w.u64(c.rflags);
    for cr in c.crs {
        w.u64(cr);
    }
    for dr in c.drs {
        w.u64(dr);
    }
    for s in &c.segs {
        w.u32(s.sel);
        w.u32(s.limit);
        w.u64(s.base);
        w.u32(s.arbytes);
    }
    w.u64(c.gdtr_base);
    w.u32(c.gdtr_limit);
    w.u64(c.idtr_base);
    w.u32(c.idtr_limit);
    for v in c.sysenter {
        w.u64(v);
    }
    w.u64(c.shadow_gs);
    for v in [
        c.msr_flags,
        c.msr_lstar,
        c.msr_star,
        c.msr_cstar,
        c.msr_syscall_mask,
        c.msr_efer,
        c.msr_tsc_aux,
        c.tsc,
    ] {
        w.u64(v);
    }
    w.bytes(&c.fpu_regs);
    w.u32(c.pending_event);
    w.u32(c.error_code);
}

/// Byte length of an encoded `hvm_hw_cpu` record body.
pub const CPU_RECORD_LEN: u32 =
    (16 + 2 + 4 + 6) as u32 * 8 + 8 * 20 + (8 + 4 + 8 + 4) + 3 * 8 + 8 + 8 * 8 + 512 + 8;

fn get_cpu(r: &mut R) -> Result<HvmHwCpu, ContextError> {
    let mut c = HvmHwCpu::default();
    for g in &mut c.gprs {
        *g = r.u64()?;
    }
    c.rip = r.u64()?;
    c.rflags = r.u64()?;
    for cr in &mut c.crs {
        *cr = r.u64()?;
    }
    for dr in &mut c.drs {
        *dr = r.u64()?;
    }
    for s in &mut c.segs {
        *s = HvmSegment {
            sel: r.u32()?,
            limit: r.u32()?,
            base: r.u64()?,
            arbytes: r.u32()?,
        };
    }
    c.gdtr_base = r.u64()?;
    c.gdtr_limit = r.u32()?;
    c.idtr_base = r.u64()?;
    c.idtr_limit = r.u32()?;
    for v in &mut c.sysenter {
        *v = r.u64()?;
    }
    c.shadow_gs = r.u64()?;
    c.msr_flags = r.u64()?;
    c.msr_lstar = r.u64()?;
    c.msr_star = r.u64()?;
    c.msr_cstar = r.u64()?;
    c.msr_syscall_mask = r.u64()?;
    c.msr_efer = r.u64()?;
    c.msr_tsc_aux = r.u64()?;
    c.tsc = r.u64()?;
    c.fpu_regs = r.take(512)?.try_into().expect("512");
    c.pending_event = r.u32()?;
    c.error_code = r.u32()?;
    Ok(c)
}

fn put_record(w: &mut W, typecode: u16, instance: u16, body: impl FnOnce(&mut W)) {
    w.u16(typecode);
    w.u16(instance);
    let len_pos = w.0.len();
    w.u32(0);
    let start = w.0.len();
    body(w);
    let len = (w.0.len() - start) as u32;
    w.0[len_pos..len_pos + 4].copy_from_slice(&len.to_le_bytes());
}

/// Serializes records into an HVM context byte stream (with header and END
/// record).
pub fn save_context(header: &HvmSaveHeader, records: &[HvmRecord]) -> Vec<u8> {
    let mut w = W(Vec::new());
    put_record(&mut w, typecode::HEADER, 0, |w| {
        w.u32(header.magic);
        w.u32(header.version);
        w.u64(header.changeset);
        w.u32(header.cpuid);
        w.u32(header.gtsc_khz);
    });
    for rec in records {
        match rec {
            HvmRecord::Header(_) => {} // Header is written once, above.
            HvmRecord::Cpu(inst, c) => put_record(&mut w, typecode::CPU, *inst, |w| {
                put_cpu(w, c);
            }),
            HvmRecord::Lapic(inst, l) => put_record(&mut w, typecode::LAPIC, *inst, |w| {
                w.u64(l.apic_base_msr);
                w.u32(l.disabled);
                w.u32(l.timer_divisor);
                w.u64(l.tdt_msr);
            }),
            HvmRecord::LapicRegs(inst, page) => {
                put_record(&mut w, typecode::LAPIC_REGS, *inst, |w| {
                    w.bytes(page);
                })
            }
            HvmRecord::Mtrr(inst, m) => put_record(&mut w, typecode::MTRR, *inst, |w| {
                w.u64(m.msr_pat_cr);
                for v in m.msr_mtrr_var {
                    w.u64(v);
                }
                for v in m.msr_mtrr_fixed {
                    w.u64(v);
                }
                w.u64(m.msr_mtrr_cap);
                w.u64(m.msr_mtrr_def_type);
            }),
            HvmRecord::Xsave(inst, x) => put_record(&mut w, typecode::XSAVE, *inst, |w| {
                w.u64(x.xcr0);
                w.u64(x.xcr0_accum);
                w.bytes(&x.area);
            }),
            HvmRecord::Ioapic(io) => put_record(&mut w, typecode::IOAPIC, 0, |w| {
                w.u64(io.base_address);
                w.u32(io.ioregsel);
                w.u8(io.id);
                w.u8(io.redirtbl.len() as u8);
                for rte in &io.redirtbl {
                    w.u64(*rte);
                }
            }),
            HvmRecord::Pit(p) => put_record(&mut w, typecode::PIT, 0, |w| {
                for ch in &p.channels {
                    w.u32(ch.count);
                    w.u16(ch.latched_count);
                    w.u8(ch.count_latched);
                    w.u8(ch.status_latched);
                    w.u8(ch.status);
                    w.u8(ch.read_state);
                    w.u8(ch.write_state);
                    w.u8(ch.write_latch);
                    w.u8(ch.rw_mode);
                    w.u8(ch.mode);
                    w.u8(ch.bcd);
                    w.u8(ch.gate);
                }
                w.u8(p.speaker_data_on);
            }),
        }
    }
    put_record(&mut w, typecode::END, 0, |_| {});
    w.0
}

/// Parses an HVM context byte stream into records. The header is returned
/// as the first record.
pub fn load_context(buf: &[u8]) -> Result<Vec<HvmRecord>, ContextError> {
    let mut r = R { b: buf, p: 0 };
    let mut out = Vec::new();
    let mut saw_header = false;
    let mut saw_end = false;
    while r.p < r.b.len() {
        let typecode = r.u16()?;
        let instance = r.u16()?;
        let length = r.u32()?;
        let body = r.take(length as usize)?;
        let mut br = R { b: body, p: 0 };
        match typecode {
            typecode::END => {
                saw_end = true;
                break;
            }
            typecode::HEADER => {
                let h = HvmSaveHeader {
                    magic: br.u32()?,
                    version: br.u32()?,
                    changeset: br.u64()?,
                    cpuid: br.u32()?,
                    gtsc_khz: br.u32()?,
                };
                if h.magic != HVM_MAGIC {
                    return Err(ContextError::BadHeader);
                }
                saw_header = true;
                out.push(HvmRecord::Header(h));
            }
            typecode::CPU => {
                if length != CPU_RECORD_LEN {
                    return Err(ContextError::BadLength { typecode, length });
                }
                out.push(HvmRecord::Cpu(instance, Box::new(get_cpu(&mut br)?)));
            }
            typecode::LAPIC => out.push(HvmRecord::Lapic(
                instance,
                HvmHwLapic {
                    apic_base_msr: br.u64()?,
                    disabled: br.u32()?,
                    timer_divisor: br.u32()?,
                    tdt_msr: br.u64()?,
                },
            )),
            typecode::LAPIC_REGS => {
                out.push(HvmRecord::LapicRegs(instance, body.to_vec()));
            }
            typecode::MTRR => {
                let mut m = HvmHwMtrr {
                    msr_pat_cr: br.u64()?,
                    ..HvmHwMtrr::default()
                };
                for v in &mut m.msr_mtrr_var {
                    *v = br.u64()?;
                }
                for v in &mut m.msr_mtrr_fixed {
                    *v = br.u64()?;
                }
                m.msr_mtrr_cap = br.u64()?;
                m.msr_mtrr_def_type = br.u64()?;
                out.push(HvmRecord::Mtrr(instance, Box::new(m)));
            }
            typecode::XSAVE => {
                let xcr0 = br.u64()?;
                let xcr0_accum = br.u64()?;
                let area = br.b[br.p..].to_vec();
                out.push(HvmRecord::Xsave(
                    instance,
                    HvmHwXsave {
                        xcr0,
                        xcr0_accum,
                        area,
                    },
                ));
            }
            typecode::IOAPIC => {
                let base_address = br.u64()?;
                let ioregsel = br.u32()?;
                let id = br.u8()?;
                let pins = br.u8()? as usize;
                let mut redirtbl = Vec::with_capacity(pins);
                for _ in 0..pins {
                    redirtbl.push(br.u64()?);
                }
                out.push(HvmRecord::Ioapic(HvmHwIoapic {
                    base_address,
                    ioregsel,
                    id,
                    redirtbl,
                }));
            }
            typecode::PIT => {
                let mut p = HvmHwPit::default();
                for ch in &mut p.channels {
                    *ch = HvmPitChannel {
                        count: br.u32()?,
                        latched_count: br.u16()?,
                        count_latched: br.u8()?,
                        status_latched: br.u8()?,
                        status: br.u8()?,
                        read_state: br.u8()?,
                        write_state: br.u8()?,
                        write_latch: br.u8()?,
                        rw_mode: br.u8()?,
                        mode: br.u8()?,
                        bcd: br.u8()?,
                        gate: br.u8()?,
                    };
                }
                p.speaker_data_on = br.u8()?;
                out.push(HvmRecord::Pit(p));
            }
            t => return Err(ContextError::UnknownTypecode(t)),
        }
    }
    if !saw_header {
        return Err(ContextError::BadHeader);
    }
    if !saw_end {
        return Err(ContextError::MissingEnd);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[allow(clippy::field_reassign_with_default)]
    fn sample_records() -> Vec<HvmRecord> {
        let mut cpu = HvmHwCpu::default();
        cpu.rip = 0xffff_8000_0010_0000;
        cpu.gprs[0] = 42;
        cpu.msr_efer = 0xd01;
        cpu.fpu_regs[24] = 0x80; // mxcsr low byte
        vec![
            HvmRecord::Cpu(0, Box::new(cpu)),
            HvmRecord::Lapic(
                0,
                HvmHwLapic {
                    apic_base_msr: 0xfee0_0900,
                    disabled: 0,
                    timer_divisor: 3,
                    tdt_msr: 0,
                },
            ),
            HvmRecord::LapicRegs(0, vec![0xaa; 1024]),
            HvmRecord::Mtrr(0, Box::default()),
            HvmRecord::Xsave(
                0,
                HvmHwXsave {
                    xcr0: 7,
                    xcr0_accum: 7,
                    area: vec![1, 2, 3, 4],
                },
            ),
            HvmRecord::Ioapic(HvmHwIoapic::default()),
            HvmRecord::Pit(HvmHwPit::default()),
        ]
    }

    #[test]
    fn roundtrip() {
        let recs = sample_records();
        let buf = save_context(&HvmSaveHeader::default(), &recs);
        let back = load_context(&buf).unwrap();
        assert!(matches!(back[0], HvmRecord::Header(_)));
        assert_eq!(&back[1..], &recs[..]);
    }

    #[test]
    fn cpu_record_length_constant_matches() {
        let recs = vec![HvmRecord::Cpu(0, Box::default())];
        let buf = save_context(&HvmSaveHeader::default(), &recs);
        // Header record: 8 desc + 24 body. CPU descriptor at offset 32.
        let len = u32::from_le_bytes(buf[36..40].try_into().unwrap());
        assert_eq!(len, CPU_RECORD_LEN);
    }

    #[test]
    fn truncated_stream_rejected() {
        let buf = save_context(&HvmSaveHeader::default(), &sample_records());
        for cut in [3, 8, 40, buf.len() - 9] {
            assert!(load_context(&buf[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn missing_end_rejected() {
        let buf = save_context(&HvmSaveHeader::default(), &[]);
        // Strip the END record (8 bytes descriptor, empty body).
        let no_end = &buf[..buf.len() - 8];
        assert_eq!(load_context(no_end), Err(ContextError::MissingEnd));
    }

    #[test]
    fn bad_magic_rejected() {
        let mut buf = save_context(&HvmSaveHeader::default(), &[]);
        buf[8] ^= 0xff; // Corrupt the magic inside the header body.
        assert_eq!(load_context(&buf), Err(ContextError::BadHeader));
    }

    #[test]
    fn unknown_typecode_rejected() {
        let mut w = W(Vec::new());
        put_record(&mut w, typecode::HEADER, 0, |w| {
            let h = HvmSaveHeader::default();
            w.u32(h.magic);
            w.u32(h.version);
            w.u64(h.changeset);
            w.u32(h.cpuid);
            w.u32(h.gtsc_khz);
        });
        put_record(&mut w, 99, 0, |_| {});
        assert_eq!(load_context(&w.0), Err(ContextError::UnknownTypecode(99)));
    }

    #[test]
    fn multi_vcpu_instances() {
        let recs: Vec<HvmRecord> = (0..4)
            .map(|i| {
                let mut c = HvmHwCpu::default();
                c.gprs[0] = i as u64;
                HvmRecord::Cpu(i, Box::new(c))
            })
            .collect();
        let buf = save_context(&HvmSaveHeader::default(), &recs);
        let back = load_context(&buf).unwrap();
        for (i, rec) in back[1..].iter().enumerate() {
            match rec {
                HvmRecord::Cpu(inst, c) => {
                    assert_eq!(*inst, i as u16);
                    assert_eq!(c.gprs[0], i as u64);
                }
                other => panic!("unexpected record {other:?}"),
            }
        }
    }
}

#[cfg(test)]
mod fuzz {
    use super::*;
    use hypertp_sim::SimRng;

    /// `load_context` over arbitrary bytes is total: Xen's record
    /// parser must never panic on a corrupted save stream.
    /// (Formerly proptest, 256 cases.)
    #[test]
    fn load_arbitrary_bytes_is_total() {
        let mut rng = SimRng::new(0xc0f7_0001);
        for _ in 0..256 {
            let len = rng.gen_range(600) as usize;
            let bytes: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
            let _ = load_context(&bytes);
        }
    }

    /// Single-byte corruption of a valid stream is either detected or
    /// still yields structurally valid records — never a panic.
    #[test]
    fn load_mutated_stream_is_total() {
        let recs = vec![HvmRecord::Cpu(0, Box::default())];
        let clean = save_context(&HvmSaveHeader::default(), &recs);
        let mut rng = SimRng::new(0xc0f7_0002);
        for _ in 0..256 {
            let mut buf = clean.clone();
            let pos = rng.gen_range(buf.len() as u64) as usize;
            buf[pos] = rng.next_u64() as u8;
            let _ = load_context(&buf);
        }
    }
}
