//! Architectural MSR indices shared by the translation layers.
//!
//! Xen keeps the syscall MSRs inline in its `hvm_hw_cpu` record while KVM
//! exchanges them through `KVM_GET/SET_MSRS` lists; UISR uses the list form
//! (Table 2 maps "CPU regs" to "(S)REGS, **MSRS**, FPU"). These constants
//! name the indices both sides agree on.

/// IA32_TIME_STAMP_COUNTER.
pub const IA32_TSC: u32 = 0x10;
/// IA32_APIC_BASE.
pub const IA32_APIC_BASE: u32 = 0x1b;
/// IA32_SYSENTER_CS.
pub const IA32_SYSENTER_CS: u32 = 0x174;
/// IA32_SYSENTER_ESP.
pub const IA32_SYSENTER_ESP: u32 = 0x175;
/// IA32_SYSENTER_EIP.
pub const IA32_SYSENTER_EIP: u32 = 0x176;
/// IA32_PAT.
pub const IA32_PAT: u32 = 0x277;
/// IA32_EFER.
pub const IA32_EFER: u32 = 0xc000_0080;
/// STAR (legacy syscall target).
pub const STAR: u32 = 0xc000_0081;
/// LSTAR (64-bit syscall target).
pub const LSTAR: u32 = 0xc000_0082;
/// CSTAR (compat syscall target).
pub const CSTAR: u32 = 0xc000_0083;
/// SFMASK (syscall flag mask).
pub const SFMASK: u32 = 0xc000_0084;
/// KERNEL_GS_BASE (shadow GS).
pub const KERNEL_GS_BASE: u32 = 0xc000_0102;
/// TSC_AUX.
pub const TSC_AUX: u32 = 0xc000_0103;

/// MTRRcap.
pub const MTRR_CAP: u32 = 0xfe;
/// MTRRdefType.
pub const MTRR_DEF_TYPE: u32 = 0x2ff;
/// First variable-range MTRR base (PHYSBASE0); bases and masks interleave
/// upward from here.
pub const MTRR_PHYS_BASE0: u32 = 0x200;
/// Fixed-range MTRR indices, in Xen's `msr_mtrr_fixed` array order.
pub const MTRR_FIXED: [u32; 11] = [
    0x250, 0x258, 0x259, 0x268, 0x269, 0x26a, 0x26b, 0x26c, 0x26d, 0x26e, 0x26f,
];

/// Looks up an MSR in a UISR MSR list.
pub fn find(msrs: &[crate::MsrEntry], index: u32) -> Option<u64> {
    msrs.iter().find(|m| m.index == index).map(|m| m.data)
}

/// Inserts or updates an MSR in a UISR MSR list.
pub fn set(msrs: &mut Vec<crate::MsrEntry>, index: u32, data: u64) {
    if let Some(m) = msrs.iter_mut().find(|m| m.index == index) {
        m.data = data;
    } else {
        msrs.push(crate::MsrEntry { index, data });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MsrEntry;

    #[test]
    fn find_and_set() {
        let mut msrs: Vec<MsrEntry> = Vec::new();
        assert_eq!(find(&msrs, IA32_EFER), None);
        set(&mut msrs, IA32_EFER, 0xd01);
        assert_eq!(find(&msrs, IA32_EFER), Some(0xd01));
        set(&mut msrs, IA32_EFER, 0x500);
        assert_eq!(find(&msrs, IA32_EFER), Some(0x500));
        assert_eq!(msrs.len(), 1);
    }

    #[test]
    fn fixed_mtrr_count() {
        assert_eq!(MTRR_FIXED.len(), 11);
    }
}
