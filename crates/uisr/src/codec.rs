//! Binary codec for UISR.
//!
//! InPlaceTP saves encoded UISR blobs in RAM across the micro-reboot;
//! MigrationTP ships them over the network. The encoding is a compact,
//! versioned little-endian format. Its size is measured (not asserted) by
//! the Fig. 14 experiment: ≈5 KB for a 1-vCPU VM growing by ≈3.8 KB per
//! additional vCPU, matching the paper's 5 KB → 38 KB range over 1–10
//! vCPUs.
//!
//! A JSON encoding ([`to_json`]/[`from_json`]) is provided for debugging
//! and for the codec-cost ablation bench.

use crate::state::{
    CpuRegisters, DescriptorTable, DeviceState, FpuState, IoApicState, LapicState, MemoryRegion,
    MemorySpec, MsrEntry, MtrrState, PitChannel, PitState, RedirectionEntry, SegmentRegister,
    SpecialRegisters, UisrVm, VcpuState, XsaveState,
};

const MAGIC: &[u8; 4] = b"UISR";
const VERSION: u16 = 1;

/// Errors from UISR decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Buffer ended before the structure was complete.
    Truncated,
    /// The magic bytes did not match.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u16),
    /// Unknown device tag.
    BadTag(u8),
    /// Bytes left over after a complete decode.
    TrailingBytes(usize),
    /// A string field was not valid UTF-8.
    BadUtf8,
    /// The JSON debug encoding was malformed.
    BadJson(String),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "truncated UISR blob"),
            CodecError::BadMagic => write!(f, "bad UISR magic"),
            CodecError::BadVersion(v) => write!(f, "unsupported UISR version {v}"),
            CodecError::BadTag(t) => write!(f, "unknown device tag {t}"),
            CodecError::TrailingBytes(n) => write!(f, "{n} trailing bytes after UISR"),
            CodecError::BadUtf8 => write!(f, "invalid UTF-8 in UISR string"),
            CodecError::BadJson(msg) => write!(f, "malformed UISR JSON: {msg}"),
        }
    }
}

impl std::error::Error for CodecError {}

struct Writer<'a> {
    buf: &'a mut Vec<u8>,
}

impl<'a> Writer<'a> {
    fn new(buf: &'a mut Vec<u8>) -> Self {
        Writer { buf }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    fn str16(&mut self, s: &str) {
        self.u16(s.len() as u16);
        self.bytes(s.as_bytes());
    }

    fn vec_u8(&mut self, v: &[u8]) {
        self.u32(v.len() as u32);
        self.bytes(v);
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.pos + n > self.buf.len() {
            return Err(CodecError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    fn bool(&mut self) -> Result<bool, CodecError> {
        Ok(self.u8()? != 0)
    }

    fn u16(&mut self) -> Result<u16, CodecError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len 2")))
    }

    fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len 4")))
    }

    fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }

    fn str16(&mut self) -> Result<String, CodecError> {
        let n = self.u16()? as usize;
        let b = self.take(n)?;
        String::from_utf8(b.to_vec()).map_err(|_| CodecError::BadUtf8)
    }

    fn vec_u8(&mut self) -> Result<Vec<u8>, CodecError> {
        let n = self.u32()? as usize;
        Ok(self.take(n)?.to_vec())
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
}

fn put_regs(w: &mut Writer, r: &CpuRegisters) {
    for v in [
        r.rax, r.rbx, r.rcx, r.rdx, r.rsi, r.rdi, r.rsp, r.rbp, r.r8, r.r9, r.r10, r.r11, r.r12,
        r.r13, r.r14, r.r15, r.rip, r.rflags,
    ] {
        w.u64(v);
    }
}

fn get_regs(r: &mut Reader) -> Result<CpuRegisters, CodecError> {
    Ok(CpuRegisters {
        rax: r.u64()?,
        rbx: r.u64()?,
        rcx: r.u64()?,
        rdx: r.u64()?,
        rsi: r.u64()?,
        rdi: r.u64()?,
        rsp: r.u64()?,
        rbp: r.u64()?,
        r8: r.u64()?,
        r9: r.u64()?,
        r10: r.u64()?,
        r11: r.u64()?,
        r12: r.u64()?,
        r13: r.u64()?,
        r14: r.u64()?,
        r15: r.u64()?,
        rip: r.u64()?,
        rflags: r.u64()?,
    })
}

fn put_segment(w: &mut Writer, s: &SegmentRegister) {
    w.u64(s.base);
    w.u32(s.limit);
    w.u16(s.selector);
    w.u8(s.type_);
    w.bool(s.present);
    w.u8(s.dpl);
    w.bool(s.db);
    w.bool(s.s);
    w.bool(s.l);
    w.bool(s.g);
    w.bool(s.avl);
}

fn get_segment(r: &mut Reader) -> Result<SegmentRegister, CodecError> {
    Ok(SegmentRegister {
        base: r.u64()?,
        limit: r.u32()?,
        selector: r.u16()?,
        type_: r.u8()?,
        present: r.bool()?,
        dpl: r.u8()?,
        db: r.bool()?,
        s: r.bool()?,
        l: r.bool()?,
        g: r.bool()?,
        avl: r.bool()?,
    })
}

fn put_dt(w: &mut Writer, d: &DescriptorTable) {
    w.u64(d.base);
    w.u16(d.limit);
}

fn get_dt(r: &mut Reader) -> Result<DescriptorTable, CodecError> {
    Ok(DescriptorTable {
        base: r.u64()?,
        limit: r.u16()?,
    })
}

fn put_sregs(w: &mut Writer, s: &SpecialRegisters) {
    for seg in [&s.cs, &s.ds, &s.es, &s.fs, &s.gs, &s.ss, &s.tr, &s.ldt] {
        put_segment(w, seg);
    }
    put_dt(w, &s.gdt);
    put_dt(w, &s.idt);
    for v in [s.cr0, s.cr2, s.cr3, s.cr4, s.cr8, s.efer, s.apic_base] {
        w.u64(v);
    }
}

fn get_sregs(r: &mut Reader) -> Result<SpecialRegisters, CodecError> {
    Ok(SpecialRegisters {
        cs: get_segment(r)?,
        ds: get_segment(r)?,
        es: get_segment(r)?,
        fs: get_segment(r)?,
        gs: get_segment(r)?,
        ss: get_segment(r)?,
        tr: get_segment(r)?,
        ldt: get_segment(r)?,
        gdt: get_dt(r)?,
        idt: get_dt(r)?,
        cr0: r.u64()?,
        cr2: r.u64()?,
        cr3: r.u64()?,
        cr4: r.u64()?,
        cr8: r.u64()?,
        efer: r.u64()?,
        apic_base: r.u64()?,
    })
}

fn put_fpu(w: &mut Writer, f: &FpuState) {
    w.u16(f.fcw);
    w.u16(f.fsw);
    w.u8(f.ftw);
    w.u16(f.last_opcode);
    w.u64(f.last_ip);
    w.u64(f.last_dp);
    w.u32(f.mxcsr);
    w.u32(f.mxcsr_mask);
    for st in &f.st {
        w.bytes(st);
    }
    for xmm in &f.xmm {
        w.bytes(xmm);
    }
}

fn get_fpu(r: &mut Reader) -> Result<FpuState, CodecError> {
    let mut f = FpuState {
        fcw: r.u16()?,
        fsw: r.u16()?,
        ftw: r.u8()?,
        last_opcode: r.u16()?,
        last_ip: r.u64()?,
        last_dp: r.u64()?,
        mxcsr: r.u32()?,
        mxcsr_mask: r.u32()?,
        ..FpuState::default()
    };
    for i in 0..8 {
        f.st[i] = r.take(16)?.try_into().expect("len 16");
    }
    for i in 0..16 {
        f.xmm[i] = r.take(16)?.try_into().expect("len 16");
    }
    Ok(f)
}

fn put_vcpu(w: &mut Writer, v: &VcpuState) {
    w.u32(v.id);
    put_regs(w, &v.regs);
    put_sregs(w, &v.sregs);
    put_fpu(w, &v.fpu);
    w.u32(v.msrs.len() as u32);
    for m in &v.msrs {
        w.u32(m.index);
        w.u64(m.data);
    }
    w.u64(v.xsave.xcr0);
    w.vec_u8(&v.xsave.area);
    w.u32(v.lapic.apic_id);
    w.u64(v.lapic.apic_base_msr);
    w.u8(v.lapic.tpr);
    w.u8(v.lapic.timer_divide);
    w.u32(v.lapic.timer_initial);
    w.u32(v.lapic.timer_current);
    w.bool(v.lapic.timer_pending);
    w.vec_u8(&v.lapic_regs);
    w.u64(v.mtrr.def_type);
    for f in &v.mtrr.fixed {
        w.u64(*f);
    }
    w.u32(v.mtrr.variable.len() as u32);
    for (b, m) in &v.mtrr.variable {
        w.u64(*b);
        w.u64(*m);
    }
}

fn get_vcpu(r: &mut Reader) -> Result<VcpuState, CodecError> {
    let id = r.u32()?;
    let regs = get_regs(r)?;
    let sregs = get_sregs(r)?;
    let fpu = get_fpu(r)?;
    let n_msrs = r.u32()? as usize;
    let mut msrs = Vec::with_capacity(n_msrs.min(4096));
    for _ in 0..n_msrs {
        msrs.push(MsrEntry {
            index: r.u32()?,
            data: r.u64()?,
        });
    }
    let xcr0 = r.u64()?;
    let area = r.vec_u8()?;
    let lapic = LapicState {
        apic_id: r.u32()?,
        apic_base_msr: r.u64()?,
        tpr: r.u8()?,
        timer_divide: r.u8()?,
        timer_initial: r.u32()?,
        timer_current: r.u32()?,
        timer_pending: r.bool()?,
    };
    let lapic_regs = r.vec_u8()?;
    let def_type = r.u64()?;
    let mut fixed = [0u64; 11];
    for f in &mut fixed {
        *f = r.u64()?;
    }
    let n_var = r.u32()? as usize;
    let mut variable = Vec::with_capacity(n_var.min(64));
    for _ in 0..n_var {
        variable.push((r.u64()?, r.u64()?));
    }
    Ok(VcpuState {
        id,
        regs,
        sregs,
        fpu,
        msrs,
        xsave: XsaveState { xcr0, area },
        lapic,
        lapic_regs,
        mtrr: MtrrState {
            def_type,
            fixed,
            variable,
        },
    })
}

fn put_redir(w: &mut Writer, e: &RedirectionEntry) {
    w.u8(e.vector);
    w.u8(e.delivery_mode);
    w.bool(e.dest_mode);
    w.bool(e.masked);
    w.bool(e.trigger_level);
    w.bool(e.remote_irr);
    w.u8(e.dest);
}

fn get_redir(r: &mut Reader) -> Result<RedirectionEntry, CodecError> {
    Ok(RedirectionEntry {
        vector: r.u8()?,
        delivery_mode: r.u8()?,
        dest_mode: r.bool()?,
        masked: r.bool()?,
        trigger_level: r.bool()?,
        remote_irr: r.bool()?,
        dest: r.u8()?,
    })
}

fn put_device(w: &mut Writer, d: &DeviceState) {
    match d {
        DeviceState::Network { mac, unplugged } => {
            w.u8(1);
            w.bytes(mac);
            w.bool(*unplugged);
        }
        DeviceState::Block {
            backend,
            sectors,
            pending_requests,
        } => {
            w.u8(2);
            w.str16(backend);
            w.u64(*sectors);
            w.u32(*pending_requests);
        }
        DeviceState::Console { tx_buffered } => {
            w.u8(3);
            w.u32(*tx_buffered);
        }
        DeviceState::PassThrough { bdf, guest_paused } => {
            w.u8(4);
            w.str16(bdf);
            w.bool(*guest_paused);
        }
    }
}

fn get_device(r: &mut Reader) -> Result<DeviceState, CodecError> {
    match r.u8()? {
        1 => Ok(DeviceState::Network {
            mac: r.take(6)?.try_into().expect("len 6"),
            unplugged: r.bool()?,
        }),
        2 => Ok(DeviceState::Block {
            backend: r.str16()?,
            sectors: r.u64()?,
            pending_requests: r.u32()?,
        }),
        3 => Ok(DeviceState::Console {
            tx_buffered: r.u32()?,
        }),
        4 => Ok(DeviceState::PassThrough {
            bdf: r.str16()?,
            guest_paused: r.bool()?,
        }),
        t => Err(CodecError::BadTag(t)),
    }
}

/// Exact size in bytes of [`encode`]'s output for `vm`.
///
/// Used by [`encode_into`] to pre-size the destination so the hot
/// per-VM encode path performs at most one allocation.
pub fn encoded_size(vm: &UisrVm) -> usize {
    const SEGMENT: usize = 8 + 4 + 2 + 1 + 1 + 1 + 1 + 1 + 1 + 1 + 1; // 22
    const DT: usize = 8 + 2;
    const SREGS: usize = 8 * SEGMENT + 2 * DT + 7 * 8;
    const REGS: usize = 18 * 8;
    const FPU: usize = 2 + 2 + 1 + 2 + 8 + 8 + 4 + 4 + 8 * 16 + 16 * 16;
    const LAPIC: usize = 4 + 8 + 1 + 1 + 4 + 4 + 1;
    const PIT_CHANNEL: usize = 4 + 2 + 1 + 1 + 1 + 1 + 1 + 1;
    const REDIR: usize = 1 + 1 + 1 + 1 + 1 + 1 + 1;

    let mut n = MAGIC.len() + 2; // magic + version
    n += 2 + vm.name.len();
    n += 4; // vcpu count
    for v in &vm.vcpus {
        n += 4 + REGS + SREGS + FPU;
        n += 4 + v.msrs.len() * (4 + 8);
        n += 8 + 4 + v.xsave.area.len();
        n += LAPIC;
        n += 4 + v.lapic_regs.len();
        n += 8 + 11 * 8 + 4 + v.mtrr.variable.len() * 16;
    }
    n += 1 + 8 + 4 + vm.ioapic.redirection.len() * REDIR;
    n += 3 * PIT_CHANNEL + 1;
    n += 4;
    for d in &vm.devices {
        n += 1;
        n += match d {
            DeviceState::Network { .. } => 6 + 1,
            DeviceState::Block { backend, .. } => 2 + backend.len() + 8 + 4,
            DeviceState::Console { .. } => 4,
            DeviceState::PassThrough { bdf, .. } => 2 + bdf.len() + 1,
        };
    }
    n += 4 + vm.memory.regions.len() * 16;
    n += match &vm.memory.pram_file {
        Some(f) => 1 + 2 + f.len(),
        None => 1,
    };
    n
}

/// Encodes a VM's UISR description to the binary wire/RAM format.
pub fn encode(vm: &UisrVm) -> Vec<u8> {
    let mut buf = Vec::new();
    encode_into(vm, &mut buf);
    buf
}

/// Encodes into a caller-provided buffer, clearing it first.
///
/// The buffer is grown at most once (to [`encoded_size`]), so a worker
/// that encodes many VMs can reuse one allocation across calls.
pub fn encode_into(vm: &UisrVm, buf: &mut Vec<u8>) {
    buf.clear();
    buf.reserve(encoded_size(vm));
    let mut w = Writer::new(buf);
    w.bytes(MAGIC);
    w.u16(VERSION);
    w.str16(&vm.name);
    w.u32(vm.vcpus.len() as u32);
    for v in &vm.vcpus {
        put_vcpu(&mut w, v);
    }
    w.u8(vm.ioapic.id);
    w.u64(vm.ioapic.base);
    w.u32(vm.ioapic.redirection.len() as u32);
    for e in &vm.ioapic.redirection {
        put_redir(&mut w, e);
    }
    for c in &vm.pit.channels {
        put_pit_channel(&mut w, c);
    }
    w.u8(vm.pit.speaker);
    w.u32(vm.devices.len() as u32);
    for d in &vm.devices {
        put_device(&mut w, d);
    }
    w.u32(vm.memory.regions.len() as u32);
    for reg in &vm.memory.regions {
        w.u64(reg.gfn_start);
        w.u64(reg.pages);
    }
    match &vm.memory.pram_file {
        Some(f) => {
            w.u8(1);
            w.str16(f);
        }
        None => w.u8(0),
    }
    debug_assert_eq!(buf.len(), encoded_size(vm), "size hint must be exact");
}

fn put_pit_channel(w: &mut Writer, c: &PitChannel) {
    w.u32(c.count);
    w.u16(c.latched_count);
    w.u8(c.status);
    w.u8(c.read_state);
    w.u8(c.write_state);
    w.u8(c.mode);
    w.bool(c.bcd);
    w.bool(c.gate);
}

fn get_pit_channel(r: &mut Reader) -> Result<PitChannel, CodecError> {
    Ok(PitChannel {
        count: r.u32()?,
        latched_count: r.u16()?,
        status: r.u8()?,
        read_state: r.u8()?,
        write_state: r.u8()?,
        mode: r.u8()?,
        bcd: r.bool()?,
        gate: r.bool()?,
    })
}

/// Decodes a binary UISR blob.
pub fn decode(buf: &[u8]) -> Result<UisrVm, CodecError> {
    let mut r = Reader::new(buf);
    if r.take(4)? != MAGIC {
        return Err(CodecError::BadMagic);
    }
    let ver = r.u16()?;
    if ver != VERSION {
        return Err(CodecError::BadVersion(ver));
    }
    let name = r.str16()?;
    let n_vcpus = r.u32()? as usize;
    let mut vcpus = Vec::with_capacity(n_vcpus.min(512));
    for _ in 0..n_vcpus {
        vcpus.push(get_vcpu(&mut r)?);
    }
    let ioapic_id = r.u8()?;
    let ioapic_base = r.u64()?;
    let pins = r.u32()? as usize;
    let mut redirection = Vec::with_capacity(pins.min(256));
    for _ in 0..pins {
        redirection.push(get_redir(&mut r)?);
    }
    let mut channels = [PitChannel::default(); 3];
    for c in &mut channels {
        *c = get_pit_channel(&mut r)?;
    }
    let speaker = r.u8()?;
    let n_dev = r.u32()? as usize;
    let mut devices = Vec::with_capacity(n_dev.min(256));
    for _ in 0..n_dev {
        devices.push(get_device(&mut r)?);
    }
    let n_reg = r.u32()? as usize;
    let mut regions = Vec::with_capacity(n_reg.min(4096));
    for _ in 0..n_reg {
        regions.push(MemoryRegion {
            gfn_start: r.u64()?,
            pages: r.u64()?,
        });
    }
    let pram_file = if r.u8()? == 1 { Some(r.str16()?) } else { None };
    if r.remaining() != 0 {
        return Err(CodecError::TrailingBytes(r.remaining()));
    }
    Ok(UisrVm {
        name,
        vcpus,
        ioapic: IoApicState {
            id: ioapic_id,
            base: ioapic_base,
            redirection,
        },
        pit: PitState { channels, speaker },
        devices,
        memory: MemorySpec { regions, pram_file },
    })
}

// ---------------------------------------------------------------------------
// JSON debug encoding (hand-written; the workspace has no serde).
// ---------------------------------------------------------------------------

use hypertp_sim::json::{self, Json};

fn jbytes(bytes: &[u8]) -> Json {
    Json::Arr(bytes.iter().map(|&b| Json::U64(b as u64)).collect())
}

fn jsegment(s: &SegmentRegister) -> Json {
    Json::obj()
        .with("base", json::u(s.base))
        .with("limit", json::u(s.limit as u64))
        .with("selector", json::u(s.selector as u64))
        .with("type", json::u(s.type_ as u64))
        .with("present", Json::Bool(s.present))
        .with("dpl", json::u(s.dpl as u64))
        .with("db", Json::Bool(s.db))
        .with("s", Json::Bool(s.s))
        .with("l", Json::Bool(s.l))
        .with("g", Json::Bool(s.g))
        .with("avl", Json::Bool(s.avl))
}

fn jdt(d: &DescriptorTable) -> Json {
    Json::obj()
        .with("base", json::u(d.base))
        .with("limit", json::u(d.limit as u64))
}

fn jvcpu(v: &VcpuState) -> Json {
    let r = &v.regs;
    let regs = Json::obj()
        .with("rax", json::u(r.rax))
        .with("rbx", json::u(r.rbx))
        .with("rcx", json::u(r.rcx))
        .with("rdx", json::u(r.rdx))
        .with("rsi", json::u(r.rsi))
        .with("rdi", json::u(r.rdi))
        .with("rsp", json::u(r.rsp))
        .with("rbp", json::u(r.rbp))
        .with("r8", json::u(r.r8))
        .with("r9", json::u(r.r9))
        .with("r10", json::u(r.r10))
        .with("r11", json::u(r.r11))
        .with("r12", json::u(r.r12))
        .with("r13", json::u(r.r13))
        .with("r14", json::u(r.r14))
        .with("r15", json::u(r.r15))
        .with("rip", json::u(r.rip))
        .with("rflags", json::u(r.rflags));
    let s = &v.sregs;
    let sregs = Json::obj()
        .with("cs", jsegment(&s.cs))
        .with("ds", jsegment(&s.ds))
        .with("es", jsegment(&s.es))
        .with("fs", jsegment(&s.fs))
        .with("gs", jsegment(&s.gs))
        .with("ss", jsegment(&s.ss))
        .with("tr", jsegment(&s.tr))
        .with("ldt", jsegment(&s.ldt))
        .with("gdt", jdt(&s.gdt))
        .with("idt", jdt(&s.idt))
        .with("cr0", json::u(s.cr0))
        .with("cr2", json::u(s.cr2))
        .with("cr3", json::u(s.cr3))
        .with("cr4", json::u(s.cr4))
        .with("cr8", json::u(s.cr8))
        .with("efer", json::u(s.efer))
        .with("apic_base", json::u(s.apic_base));
    let f = &v.fpu;
    let fpu = Json::obj()
        .with("fcw", json::u(f.fcw as u64))
        .with("fsw", json::u(f.fsw as u64))
        .with("ftw", json::u(f.ftw as u64))
        .with("last_opcode", json::u(f.last_opcode as u64))
        .with("last_ip", json::u(f.last_ip))
        .with("last_dp", json::u(f.last_dp))
        .with("mxcsr", json::u(f.mxcsr as u64))
        .with("mxcsr_mask", json::u(f.mxcsr_mask as u64))
        .with("st", Json::Arr(f.st.iter().map(|x| jbytes(x)).collect()))
        .with("xmm", Json::Arr(f.xmm.iter().map(|x| jbytes(x)).collect()));
    let l = &v.lapic;
    let lapic = Json::obj()
        .with("apic_id", json::u(l.apic_id as u64))
        .with("apic_base_msr", json::u(l.apic_base_msr))
        .with("tpr", json::u(l.tpr as u64))
        .with("timer_divide", json::u(l.timer_divide as u64))
        .with("timer_initial", json::u(l.timer_initial as u64))
        .with("timer_current", json::u(l.timer_current as u64))
        .with("timer_pending", Json::Bool(l.timer_pending));
    let m = &v.mtrr;
    let mtrr = Json::obj()
        .with("def_type", json::u(m.def_type))
        .with(
            "fixed",
            Json::Arr(m.fixed.iter().map(|&x| json::u(x)).collect()),
        )
        .with(
            "variable",
            Json::Arr(
                m.variable
                    .iter()
                    .map(|&(b, msk)| Json::Arr(vec![json::u(b), json::u(msk)]))
                    .collect(),
            ),
        );
    Json::obj()
        .with("id", json::u(v.id as u64))
        .with("regs", regs)
        .with("sregs", sregs)
        .with("fpu", fpu)
        .with(
            "msrs",
            Json::Arr(
                v.msrs
                    .iter()
                    .map(|m| {
                        Json::obj()
                            .with("index", json::u(m.index as u64))
                            .with("data", json::u(m.data))
                    })
                    .collect(),
            ),
        )
        .with(
            "xsave",
            Json::obj()
                .with("xcr0", json::u(v.xsave.xcr0))
                .with("area", jbytes(&v.xsave.area)),
        )
        .with("lapic", lapic)
        .with("lapic_regs", jbytes(&v.lapic_regs))
        .with("mtrr", mtrr)
}

fn jdevice(d: &DeviceState) -> Json {
    match d {
        DeviceState::Network { mac, unplugged } => Json::obj()
            .with("kind", json::s("network"))
            .with("mac", jbytes(mac))
            .with("unplugged", Json::Bool(*unplugged)),
        DeviceState::Block {
            backend,
            sectors,
            pending_requests,
        } => Json::obj()
            .with("kind", json::s("block"))
            .with("backend", json::s(backend.clone()))
            .with("sectors", json::u(*sectors))
            .with("pending_requests", json::u(*pending_requests as u64)),
        DeviceState::Console { tx_buffered } => Json::obj()
            .with("kind", json::s("console"))
            .with("tx_buffered", json::u(*tx_buffered as u64)),
        DeviceState::PassThrough { bdf, guest_paused } => Json::obj()
            .with("kind", json::s("pass_through"))
            .with("bdf", json::s(bdf.clone()))
            .with("guest_paused", Json::Bool(*guest_paused)),
    }
}

/// Encodes a VM's UISR to JSON (debugging / ablation bench).
pub fn to_json(vm: &UisrVm) -> String {
    let redirection = Json::Arr(
        vm.ioapic
            .redirection
            .iter()
            .map(|e| {
                Json::obj()
                    .with("vector", json::u(e.vector as u64))
                    .with("delivery_mode", json::u(e.delivery_mode as u64))
                    .with("dest_mode", Json::Bool(e.dest_mode))
                    .with("masked", Json::Bool(e.masked))
                    .with("trigger_level", Json::Bool(e.trigger_level))
                    .with("remote_irr", Json::Bool(e.remote_irr))
                    .with("dest", json::u(e.dest as u64))
            })
            .collect(),
    );
    let channels = Json::Arr(
        vm.pit
            .channels
            .iter()
            .map(|c| {
                Json::obj()
                    .with("count", json::u(c.count as u64))
                    .with("latched_count", json::u(c.latched_count as u64))
                    .with("status", json::u(c.status as u64))
                    .with("read_state", json::u(c.read_state as u64))
                    .with("write_state", json::u(c.write_state as u64))
                    .with("mode", json::u(c.mode as u64))
                    .with("bcd", Json::Bool(c.bcd))
                    .with("gate", Json::Bool(c.gate))
            })
            .collect(),
    );
    Json::obj()
        .with("name", json::s(vm.name.clone()))
        .with("vcpus", Json::Arr(vm.vcpus.iter().map(jvcpu).collect()))
        .with(
            "ioapic",
            Json::obj()
                .with("id", json::u(vm.ioapic.id as u64))
                .with("base", json::u(vm.ioapic.base))
                .with("redirection", redirection),
        )
        .with(
            "pit",
            Json::obj()
                .with("channels", channels)
                .with("speaker", json::u(vm.pit.speaker as u64)),
        )
        .with(
            "devices",
            Json::Arr(vm.devices.iter().map(jdevice).collect()),
        )
        .with(
            "memory",
            Json::obj()
                .with(
                    "regions",
                    Json::Arr(
                        vm.memory
                            .regions
                            .iter()
                            .map(|r| {
                                Json::obj()
                                    .with("gfn_start", json::u(r.gfn_start))
                                    .with("pages", json::u(r.pages))
                            })
                            .collect(),
                    ),
                )
                .with(
                    "pram_file",
                    match &vm.memory.pram_file {
                        Some(f) => json::s(f.clone()),
                        None => Json::Null,
                    },
                ),
        )
        .encode()
}

fn bad(msg: &str) -> CodecError {
    CodecError::BadJson(msg.to_string())
}

fn need<'a>(v: &'a Json, key: &str) -> Result<&'a Json, CodecError> {
    v.get(key).ok_or_else(|| bad(&format!("missing key {key}")))
}

fn need_u64(v: &Json, key: &str) -> Result<u64, CodecError> {
    need(v, key)?
        .as_u64()
        .ok_or_else(|| bad(&format!("{key}: expected unsigned integer")))
}

fn need_u32(v: &Json, key: &str) -> Result<u32, CodecError> {
    u32::try_from(need_u64(v, key)?).map_err(|_| bad(&format!("{key}: out of u32 range")))
}

fn need_u16(v: &Json, key: &str) -> Result<u16, CodecError> {
    u16::try_from(need_u64(v, key)?).map_err(|_| bad(&format!("{key}: out of u16 range")))
}

fn need_u8(v: &Json, key: &str) -> Result<u8, CodecError> {
    u8::try_from(need_u64(v, key)?).map_err(|_| bad(&format!("{key}: out of u8 range")))
}

fn need_bool(v: &Json, key: &str) -> Result<bool, CodecError> {
    need(v, key)?
        .as_bool()
        .ok_or_else(|| bad(&format!("{key}: expected bool")))
}

fn need_str(v: &Json, key: &str) -> Result<String, CodecError> {
    Ok(need(v, key)?
        .as_str()
        .ok_or_else(|| bad(&format!("{key}: expected string")))?
        .to_string())
}

fn need_arr<'a>(v: &'a Json, key: &str) -> Result<&'a [Json], CodecError> {
    need(v, key)?
        .as_arr()
        .ok_or_else(|| bad(&format!("{key}: expected array")))
}

fn need_bytes(v: &Json, key: &str) -> Result<Vec<u8>, CodecError> {
    need_arr(v, key)?
        .iter()
        .map(|x| {
            x.as_u64()
                .and_then(|b| u8::try_from(b).ok())
                .ok_or_else(|| bad(&format!("{key}: expected byte array")))
        })
        .collect()
}

fn need_byte_array<const N: usize>(v: &Json, key: &str) -> Result<[u8; N], CodecError> {
    need_bytes(v, key)?
        .try_into()
        .map_err(|_| bad(&format!("{key}: expected {N} bytes")))
}

fn bytes_n<const N: usize>(slot: &Json, what: &str) -> Result<[u8; N], CodecError> {
    let arr = slot
        .as_arr()
        .ok_or_else(|| bad(&format!("{what}: expected byte array")))?;
    let v = arr
        .iter()
        .map(|x| {
            x.as_u64()
                .and_then(|b| u8::try_from(b).ok())
                .ok_or_else(|| bad(&format!("{what}: expected byte array")))
        })
        .collect::<Result<Vec<u8>, CodecError>>()?;
    v.try_into()
        .map_err(|_| bad(&format!("{what}: expected {N} bytes")))
}

fn pjsegment(v: &Json) -> Result<SegmentRegister, CodecError> {
    Ok(SegmentRegister {
        base: need_u64(v, "base")?,
        limit: need_u32(v, "limit")?,
        selector: need_u16(v, "selector")?,
        type_: need_u8(v, "type")?,
        present: need_bool(v, "present")?,
        dpl: need_u8(v, "dpl")?,
        db: need_bool(v, "db")?,
        s: need_bool(v, "s")?,
        l: need_bool(v, "l")?,
        g: need_bool(v, "g")?,
        avl: need_bool(v, "avl")?,
    })
}

fn pjdt(v: &Json) -> Result<DescriptorTable, CodecError> {
    Ok(DescriptorTable {
        base: need_u64(v, "base")?,
        limit: need_u16(v, "limit")?,
    })
}

fn pjvcpu(v: &Json) -> Result<VcpuState, CodecError> {
    let r = need(v, "regs")?;
    let regs = CpuRegisters {
        rax: need_u64(r, "rax")?,
        rbx: need_u64(r, "rbx")?,
        rcx: need_u64(r, "rcx")?,
        rdx: need_u64(r, "rdx")?,
        rsi: need_u64(r, "rsi")?,
        rdi: need_u64(r, "rdi")?,
        rsp: need_u64(r, "rsp")?,
        rbp: need_u64(r, "rbp")?,
        r8: need_u64(r, "r8")?,
        r9: need_u64(r, "r9")?,
        r10: need_u64(r, "r10")?,
        r11: need_u64(r, "r11")?,
        r12: need_u64(r, "r12")?,
        r13: need_u64(r, "r13")?,
        r14: need_u64(r, "r14")?,
        r15: need_u64(r, "r15")?,
        rip: need_u64(r, "rip")?,
        rflags: need_u64(r, "rflags")?,
    };
    let s = need(v, "sregs")?;
    let sregs = SpecialRegisters {
        cs: pjsegment(need(s, "cs")?)?,
        ds: pjsegment(need(s, "ds")?)?,
        es: pjsegment(need(s, "es")?)?,
        fs: pjsegment(need(s, "fs")?)?,
        gs: pjsegment(need(s, "gs")?)?,
        ss: pjsegment(need(s, "ss")?)?,
        tr: pjsegment(need(s, "tr")?)?,
        ldt: pjsegment(need(s, "ldt")?)?,
        gdt: pjdt(need(s, "gdt")?)?,
        idt: pjdt(need(s, "idt")?)?,
        cr0: need_u64(s, "cr0")?,
        cr2: need_u64(s, "cr2")?,
        cr3: need_u64(s, "cr3")?,
        cr4: need_u64(s, "cr4")?,
        cr8: need_u64(s, "cr8")?,
        efer: need_u64(s, "efer")?,
        apic_base: need_u64(s, "apic_base")?,
    };
    let f = need(v, "fpu")?;
    let mut fpu = FpuState {
        fcw: need_u16(f, "fcw")?,
        fsw: need_u16(f, "fsw")?,
        ftw: need_u8(f, "ftw")?,
        last_opcode: need_u16(f, "last_opcode")?,
        last_ip: need_u64(f, "last_ip")?,
        last_dp: need_u64(f, "last_dp")?,
        mxcsr: need_u32(f, "mxcsr")?,
        mxcsr_mask: need_u32(f, "mxcsr_mask")?,
        ..FpuState::default()
    };
    let st = need_arr(f, "st")?;
    if st.len() != 8 {
        return Err(bad("fpu.st: expected 8 entries"));
    }
    for (i, slot) in st.iter().enumerate() {
        fpu.st[i] = bytes_n::<16>(slot, "fpu.st")?;
    }
    let xmm = need_arr(f, "xmm")?;
    if xmm.len() != 16 {
        return Err(bad("fpu.xmm: expected 16 entries"));
    }
    for (i, slot) in xmm.iter().enumerate() {
        fpu.xmm[i] = bytes_n::<16>(slot, "fpu.xmm")?;
    }
    let msrs = need_arr(v, "msrs")?
        .iter()
        .map(|m| {
            Ok(MsrEntry {
                index: need_u32(m, "index")?,
                data: need_u64(m, "data")?,
            })
        })
        .collect::<Result<Vec<_>, CodecError>>()?;
    let x = need(v, "xsave")?;
    let xsave = XsaveState {
        xcr0: need_u64(x, "xcr0")?,
        area: need_bytes(x, "area")?,
    };
    let l = need(v, "lapic")?;
    let lapic = LapicState {
        apic_id: need_u32(l, "apic_id")?,
        apic_base_msr: need_u64(l, "apic_base_msr")?,
        tpr: need_u8(l, "tpr")?,
        timer_divide: need_u8(l, "timer_divide")?,
        timer_initial: need_u32(l, "timer_initial")?,
        timer_current: need_u32(l, "timer_current")?,
        timer_pending: need_bool(l, "timer_pending")?,
    };
    let m = need(v, "mtrr")?;
    let fixed_v = need_arr(m, "fixed")?;
    if fixed_v.len() != 11 {
        return Err(bad("mtrr.fixed: expected 11 entries"));
    }
    let mut fixed = [0u64; 11];
    for (i, x) in fixed_v.iter().enumerate() {
        fixed[i] = x
            .as_u64()
            .ok_or_else(|| bad("mtrr.fixed: expected unsigned integer"))?;
    }
    let variable = need_arr(m, "variable")?
        .iter()
        .map(|pair| {
            let b = pair
                .idx(0)
                .and_then(|x| x.as_u64())
                .ok_or_else(|| bad("mtrr.variable: expected [base, mask]"))?;
            let msk = pair
                .idx(1)
                .and_then(|x| x.as_u64())
                .ok_or_else(|| bad("mtrr.variable: expected [base, mask]"))?;
            Ok((b, msk))
        })
        .collect::<Result<Vec<_>, CodecError>>()?;
    Ok(VcpuState {
        id: need_u32(v, "id")?,
        regs,
        sregs,
        fpu,
        msrs,
        xsave,
        lapic,
        lapic_regs: need_bytes(v, "lapic_regs")?,
        mtrr: MtrrState {
            def_type: need_u64(m, "def_type")?,
            fixed,
            variable,
        },
    })
}

fn pjdevice(v: &Json) -> Result<DeviceState, CodecError> {
    match need_str(v, "kind")?.as_str() {
        "network" => Ok(DeviceState::Network {
            mac: need_byte_array::<6>(v, "mac")?,
            unplugged: need_bool(v, "unplugged")?,
        }),
        "block" => Ok(DeviceState::Block {
            backend: need_str(v, "backend")?,
            sectors: need_u64(v, "sectors")?,
            pending_requests: need_u32(v, "pending_requests")?,
        }),
        "console" => Ok(DeviceState::Console {
            tx_buffered: need_u32(v, "tx_buffered")?,
        }),
        "pass_through" => Ok(DeviceState::PassThrough {
            bdf: need_str(v, "bdf")?,
            guest_paused: need_bool(v, "guest_paused")?,
        }),
        other => Err(bad(&format!("unknown device kind {other:?}"))),
    }
}

/// Decodes a VM's UISR from JSON.
pub fn from_json(text: &str) -> Result<UisrVm, CodecError> {
    let v = Json::parse(text).map_err(|e| bad(&e.to_string()))?;
    let io = need(&v, "ioapic")?;
    let redirection = need_arr(io, "redirection")?
        .iter()
        .map(|e| {
            Ok(RedirectionEntry {
                vector: need_u8(e, "vector")?,
                delivery_mode: need_u8(e, "delivery_mode")?,
                dest_mode: need_bool(e, "dest_mode")?,
                masked: need_bool(e, "masked")?,
                trigger_level: need_bool(e, "trigger_level")?,
                remote_irr: need_bool(e, "remote_irr")?,
                dest: need_u8(e, "dest")?,
            })
        })
        .collect::<Result<Vec<_>, CodecError>>()?;
    let pit_v = need(&v, "pit")?;
    let ch = need_arr(pit_v, "channels")?;
    if ch.len() != 3 {
        return Err(bad("pit.channels: expected 3 entries"));
    }
    let mut channels = [PitChannel::default(); 3];
    for (i, c) in ch.iter().enumerate() {
        channels[i] = PitChannel {
            count: need_u32(c, "count")?,
            latched_count: need_u16(c, "latched_count")?,
            status: need_u8(c, "status")?,
            read_state: need_u8(c, "read_state")?,
            write_state: need_u8(c, "write_state")?,
            mode: need_u8(c, "mode")?,
            bcd: need_bool(c, "bcd")?,
            gate: need_bool(c, "gate")?,
        };
    }
    let mem = need(&v, "memory")?;
    let regions = need_arr(mem, "regions")?
        .iter()
        .map(|r| {
            Ok(MemoryRegion {
                gfn_start: need_u64(r, "gfn_start")?,
                pages: need_u64(r, "pages")?,
            })
        })
        .collect::<Result<Vec<_>, CodecError>>()?;
    let pram_file = match need(mem, "pram_file")? {
        Json::Null => None,
        Json::Str(s) => Some(s.clone()),
        _ => return Err(bad("memory.pram_file: expected string or null")),
    };
    Ok(UisrVm {
        name: need_str(&v, "name")?,
        vcpus: need_arr(&v, "vcpus")?
            .iter()
            .map(pjvcpu)
            .collect::<Result<Vec<_>, CodecError>>()?,
        ioapic: IoApicState {
            id: need_u8(io, "id")?,
            base: need_u64(io, "base")?,
            redirection,
        },
        pit: PitState {
            channels,
            speaker: need_u8(pit_v, "speaker")?,
        },
        devices: need_arr(&v, "devices")?
            .iter()
            .map(pjdevice)
            .collect::<Result<Vec<_>, CodecError>>()?,
        memory: MemorySpec { regions, pram_file },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::VcpuState;

    fn sample_vm(vcpus: u32) -> UisrVm {
        let mut vm = UisrVm::new("test-vm");
        for i in 0..vcpus {
            let mut v = VcpuState::reset(i);
            v.regs.rip = 0xffff_8000_0000_0000 + i as u64;
            v.regs.rax = 42 + i as u64;
            v.msrs = (0..40)
                .map(|k| MsrEntry {
                    index: 0xc000_0080 + k,
                    data: k as u64 * 7,
                })
                .collect();
            vm.vcpus.push(v);
        }
        vm.devices.push(DeviceState::Network {
            mac: [2, 0, 0, 0, 0, 1],
            unplugged: false,
        });
        vm.devices.push(DeviceState::Block {
            backend: "nbd://storage/vm0".into(),
            sectors: 2 << 20,
            pending_requests: 3,
        });
        vm.memory.regions.push(MemoryRegion {
            gfn_start: 0,
            pages: 262_144,
        });
        vm.memory.pram_file = Some("test-vm".into());
        vm
    }

    #[test]
    fn binary_roundtrip() {
        let vm = sample_vm(2);
        let buf = encode(&vm);
        let back = decode(&buf).unwrap();
        assert_eq!(back, vm);
    }

    #[test]
    fn truncation_detected() {
        let buf = encode(&sample_vm(1));
        for cut in [0, 3, 10, buf.len() / 2, buf.len() - 1] {
            assert!(
                decode(&buf[..cut]).is_err(),
                "decode of {cut}-byte prefix must fail"
            );
        }
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut buf = encode(&sample_vm(1));
        buf.push(0);
        assert_eq!(decode(&buf), Err(CodecError::TrailingBytes(1)));
    }

    #[test]
    fn bad_magic_detected() {
        let mut buf = encode(&sample_vm(1));
        buf[0] = b'X';
        assert_eq!(decode(&buf), Err(CodecError::BadMagic));
    }

    #[test]
    fn bad_version_detected() {
        let mut buf = encode(&sample_vm(1));
        buf[4] = 99;
        assert_eq!(decode(&buf), Err(CodecError::BadVersion(99)));
    }

    #[test]
    fn fig14_uisr_sizes() {
        // Fig. 14: UISR memory footprint grows from ≈5 KB at 1 vCPU to
        // ≈38 KB at 10 vCPUs. Allow ±25% — the shape is the claim.
        let s1 = encode(&sample_vm(1)).len() as f64;
        let s10 = encode(&sample_vm(10)).len() as f64;
        assert!((3_800.0..6_300.0).contains(&s1), "1 vCPU = {s1} B");
        assert!((28_000.0..48_000.0).contains(&s10), "10 vCPUs = {s10} B");
        // Growth is linear in vCPUs.
        let s5 = encode(&sample_vm(5)).len() as f64;
        let slope_low = (s5 - s1) / 4.0;
        let slope_high = (s10 - s5) / 5.0;
        assert!((slope_low - slope_high).abs() < 1.0);
    }

    #[test]
    fn json_roundtrip() {
        let vm = sample_vm(2);
        let back = from_json(&to_json(&vm)).unwrap();
        assert_eq!(back, vm);
    }

    #[test]
    fn binary_encoding_is_much_smaller_than_json() {
        let vm = sample_vm(4);
        let bin = encode(&vm).len();
        let json = to_json(&vm).len();
        assert!(json > 2 * bin, "bin={bin} json={json}");
    }

    #[test]
    fn randomized_roundtrip_register_values() {
        // Deterministic randomized loop (formerly proptest, 32 cases).
        let mut rng = hypertp_sim::SimRng::new(0x5eed_0001);
        for _ in 0..32 {
            let mut vm = sample_vm(1);
            vm.vcpus[0].regs.rip = rng.next_u64();
            vm.vcpus[0].regs.rax = rng.next_u64();
            vm.vcpus[0].sregs.cr3 = rng.next_u64();
            let n = rng.gen_range(64) as usize;
            for i in 0..n {
                vm.vcpus[0].lapic_regs[i] = rng.next_u64() as u8;
            }
            let back = decode(&encode(&vm)).unwrap();
            assert_eq!(back, vm);
        }
    }

    #[test]
    fn encode_into_matches_encode_and_reuses_buffer() {
        let vm1 = sample_vm(2);
        let vm2 = sample_vm(5);
        let mut buf = Vec::new();
        encode_into(&vm1, &mut buf);
        assert_eq!(buf, encode(&vm1));
        assert_eq!(buf.len(), encoded_size(&vm1));
        let cap = buf.capacity();
        // Re-encoding a smaller VM into the same buffer must not grow it.
        encode_into(&vm1, &mut buf);
        assert_eq!(buf.capacity(), cap);
        // A larger VM grows it exactly once.
        encode_into(&vm2, &mut buf);
        assert_eq!(buf, encode(&vm2));
        assert_eq!(buf.len(), encoded_size(&vm2));
    }
}

#[cfg(test)]
mod fuzz {
    use super::*;
    use hypertp_sim::SimRng;

    /// Decoding arbitrary bytes never panics — it returns an error or
    /// a structurally valid VM. (Formerly proptest, 256 cases.)
    #[test]
    fn decode_arbitrary_bytes_is_total() {
        let mut rng = SimRng::new(0xdec0_de01);
        for _ in 0..256 {
            let len = rng.gen_range(512) as usize;
            let bytes: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
            let _ = decode(&bytes);
        }
        // Also exercise prefixes of a valid blob with a plausible header.
        let mut vm = UisrVm::new("fuzz");
        vm.vcpus.push(crate::state::VcpuState::reset(0));
        let blob = encode(&vm);
        for _ in 0..64 {
            let cut = rng.gen_range(blob.len() as u64) as usize;
            let _ = decode(&blob[..cut]);
        }
    }

    /// Mutating one byte of a valid blob never panics; when the mutation
    /// still decodes, re-encoding and re-decoding is a fixed point
    /// (decoding normalizes, e.g. any non-zero bool byte becomes 1).
    #[test]
    fn decode_mutated_blob_is_total() {
        let mut vm = UisrVm::new("fuzz");
        vm.vcpus.push(crate::state::VcpuState::reset(0));
        let blob = encode(&vm);
        let mut rng = SimRng::new(0xdec0_de02);
        for _ in 0..256 {
            let mut buf = blob.clone();
            let pos = rng.gen_range(buf.len() as u64) as usize;
            buf[pos] = rng.next_u64() as u8;
            if let Ok(decoded) = decode(&buf) {
                let renorm = decode(&encode(&decoded)).expect("re-decode");
                assert_eq!(renorm, decoded);
            }
        }
    }
}

#[cfg(test)]
mod props {
    //! Seeded roundtrip properties, restoring the coverage the proptest
    //! suites provided before the workspace went dependency-free. Every
    //! assertion carries the seed and case number, so a failure is
    //! replayable by pasting the seed into [`SimRng::new`].

    use super::*;
    use crate::state::{DeviceState, MemoryRegion, MsrEntry, RedirectionEntry, UisrVm, VcpuState};
    use hypertp_sim::SimRng;

    /// Cases per property (the proptest suites ran 256).
    const CASES: u64 = 256;
    /// The property seed; change it and the failing-case messages follow.
    const SEED: u64 = 0x0150_c0de;

    fn gen_vm(rng: &mut SimRng) -> UisrVm {
        let mut vm = UisrVm::new(format!("prop-{}", rng.gen_range(1_000)));
        for i in 0..1 + rng.gen_range(4) {
            let mut v = VcpuState::reset(i as u32);
            v.regs.rip = rng.next_u64();
            v.regs.rsp = rng.next_u64();
            v.regs.rax = rng.next_u64();
            v.regs.rflags = rng.next_u64();
            v.sregs.cr3 = rng.next_u64();
            v.fpu.fcw = rng.next_u64() as u16;
            v.fpu.st[(rng.gen_range(8)) as usize][(rng.gen_range(16)) as usize] =
                rng.next_u64() as u8;
            v.fpu.xmm[(rng.gen_range(16)) as usize][(rng.gen_range(16)) as usize] =
                rng.next_u64() as u8;
            v.msrs = (0..rng.gen_range(40))
                .map(|_| MsrEntry {
                    index: rng.next_u64() as u32,
                    data: rng.next_u64(),
                })
                .collect();
            v.xsave.xcr0 = rng.next_u64();
            for _ in 0..8 {
                let pos = rng.gen_range(v.xsave.area.len() as u64) as usize;
                v.xsave.area[pos] = rng.next_u64() as u8;
            }
            for _ in 0..8 {
                let pos = rng.gen_range(v.lapic_regs.len() as u64) as usize;
                v.lapic_regs[pos] = rng.next_u64() as u8;
            }
            v.lapic.apic_id = i as u32;
            v.lapic.timer_initial = rng.next_u64() as u32;
            v.lapic.timer_pending = rng.gen_bool(0.5);
            v.mtrr.def_type = rng.next_u64();
            v.mtrr.variable = (0..rng.gen_range(9))
                .map(|_| (rng.next_u64(), rng.next_u64()))
                .collect();
            vm.vcpus.push(v);
        }
        vm.ioapic.resize_pins(1 + rng.gen_range(48) as usize);
        for e in &mut vm.ioapic.redirection {
            *e = RedirectionEntry {
                vector: rng.next_u64() as u8,
                delivery_mode: (rng.gen_range(8)) as u8,
                dest_mode: rng.gen_bool(0.5),
                masked: rng.gen_bool(0.5),
                trigger_level: rng.gen_bool(0.5),
                remote_irr: rng.gen_bool(0.5),
                dest: rng.next_u64() as u8,
            };
        }
        vm.pit.channels[(rng.gen_range(3)) as usize].count = rng.next_u64() as u32;
        vm.pit.speaker = rng.next_u64() as u8;
        for _ in 0..rng.gen_range(4) {
            let dev = match rng.gen_range(4) {
                0 => DeviceState::Network {
                    mac: [
                        2,
                        0,
                        rng.next_u64() as u8,
                        rng.next_u64() as u8,
                        rng.next_u64() as u8,
                        rng.next_u64() as u8,
                    ],
                    unplugged: rng.gen_bool(0.5),
                },
                1 => DeviceState::Block {
                    backend: format!("nbd://pool/{}", rng.gen_range(1_000)),
                    sectors: rng.next_u64() >> 16,
                    pending_requests: (rng.gen_range(64)) as u32,
                },
                2 => DeviceState::Console {
                    tx_buffered: rng.next_u64() as u32,
                },
                _ => DeviceState::PassThrough {
                    bdf: format!(
                        "{:02x}:{:02x}.{}",
                        rng.gen_range(256),
                        rng.gen_range(32),
                        rng.gen_range(8)
                    ),
                    guest_paused: rng.gen_bool(0.5),
                },
            };
            vm.devices.push(dev);
        }
        for _ in 0..1 + rng.gen_range(4) {
            vm.memory.regions.push(MemoryRegion {
                gfn_start: rng.gen_range(1 << 40),
                pages: 1 + rng.gen_range(1 << 20),
            });
        }
        vm
    }

    /// The binary codec roundtrips any structurally valid VM exactly.
    #[test]
    fn binary_codec_roundtrips_random_vms() {
        let mut rng = SimRng::new(SEED);
        for case in 0..CASES {
            let vm = gen_vm(&mut rng);
            let blob = encode(&vm);
            assert_eq!(blob.len(), encoded_size(&vm), "seed {SEED:#x} case {case}");
            let back = decode(&blob)
                .unwrap_or_else(|e| panic!("seed {SEED:#x} case {case}: decode failed: {e}"));
            assert_eq!(back, vm, "seed {SEED:#x} case {case}");
        }
    }

    /// The JSON codec agrees with the binary codec on the same VMs.
    #[test]
    fn json_codec_roundtrips_random_vms() {
        let mut rng = SimRng::new(SEED ^ 0x150);
        for case in 0..CASES / 4 {
            let vm = gen_vm(&mut rng);
            let text = to_json(&vm);
            let back = from_json(&text).unwrap_or_else(|e| {
                panic!(
                    "seed {:#x} case {case}: from_json failed: {e}",
                    SEED ^ 0x150
                )
            });
            assert_eq!(back, vm, "seed {:#x} case {case}", SEED ^ 0x150);
        }
    }

    /// Regression corpus carried over from the proptest era:
    /// `pos_seed = 13878943932095113043, val = 2` once drove the mutation
    /// fuzzer into a decode path that panicked instead of erroring.
    #[test]
    fn corpus_pos_seed_13878943932095113043_val_2() {
        let mut vm = UisrVm::new("corpus");
        vm.vcpus.push(VcpuState::reset(0));
        let blob = encode(&vm);
        let mut pos_rng = SimRng::new(13_878_943_932_095_113_043);
        let pos = pos_rng.gen_range(blob.len() as u64) as usize;
        let mut buf = blob;
        buf[pos] = 2;
        // Must not panic; a normalizing decode must be a fixed point.
        if let Ok(decoded) = decode(&buf) {
            let renorm = decode(&encode(&decoded)).expect("re-decode");
            assert_eq!(renorm, decoded);
        }
    }
}
