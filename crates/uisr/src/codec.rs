//! Binary codec for UISR.
//!
//! InPlaceTP saves encoded UISR blobs in RAM across the micro-reboot;
//! MigrationTP ships them over the network. The encoding is a compact,
//! versioned little-endian format. Its size is measured (not asserted) by
//! the Fig. 14 experiment: ≈5 KB for a 1-vCPU VM growing by ≈3.8 KB per
//! additional vCPU, matching the paper's 5 KB → 38 KB range over 1–10
//! vCPUs.
//!
//! A JSON encoding ([`to_json`]/[`from_json`]) is provided for debugging
//! and for the codec-cost ablation bench.

use crate::state::{
    CpuRegisters, DescriptorTable, DeviceState, FpuState, IoApicState, LapicState, MemoryRegion,
    MemorySpec, MsrEntry, MtrrState, PitChannel, PitState, RedirectionEntry, SegmentRegister,
    SpecialRegisters, UisrVm, VcpuState, XsaveState,
};

const MAGIC: &[u8; 4] = b"UISR";
const VERSION: u16 = 1;

/// Errors from UISR decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Buffer ended before the structure was complete.
    Truncated,
    /// The magic bytes did not match.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u16),
    /// Unknown device tag.
    BadTag(u8),
    /// Bytes left over after a complete decode.
    TrailingBytes(usize),
    /// A string field was not valid UTF-8.
    BadUtf8,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "truncated UISR blob"),
            CodecError::BadMagic => write!(f, "bad UISR magic"),
            CodecError::BadVersion(v) => write!(f, "unsupported UISR version {v}"),
            CodecError::BadTag(t) => write!(f, "unknown device tag {t}"),
            CodecError::TrailingBytes(n) => write!(f, "{n} trailing bytes after UISR"),
            CodecError::BadUtf8 => write!(f, "invalid UTF-8 in UISR string"),
        }
    }
}

impl std::error::Error for CodecError {}

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new() -> Self {
        Writer { buf: Vec::new() }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    fn str16(&mut self, s: &str) {
        self.u16(s.len() as u16);
        self.bytes(s.as_bytes());
    }

    fn vec_u8(&mut self, v: &[u8]) {
        self.u32(v.len() as u32);
        self.bytes(v);
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.pos + n > self.buf.len() {
            return Err(CodecError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    fn bool(&mut self) -> Result<bool, CodecError> {
        Ok(self.u8()? != 0)
    }

    fn u16(&mut self) -> Result<u16, CodecError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len 2")))
    }

    fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len 4")))
    }

    fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }

    fn str16(&mut self) -> Result<String, CodecError> {
        let n = self.u16()? as usize;
        let b = self.take(n)?;
        String::from_utf8(b.to_vec()).map_err(|_| CodecError::BadUtf8)
    }

    fn vec_u8(&mut self) -> Result<Vec<u8>, CodecError> {
        let n = self.u32()? as usize;
        Ok(self.take(n)?.to_vec())
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
}

fn put_regs(w: &mut Writer, r: &CpuRegisters) {
    for v in [
        r.rax, r.rbx, r.rcx, r.rdx, r.rsi, r.rdi, r.rsp, r.rbp, r.r8, r.r9, r.r10, r.r11, r.r12,
        r.r13, r.r14, r.r15, r.rip, r.rflags,
    ] {
        w.u64(v);
    }
}

fn get_regs(r: &mut Reader) -> Result<CpuRegisters, CodecError> {
    Ok(CpuRegisters {
        rax: r.u64()?,
        rbx: r.u64()?,
        rcx: r.u64()?,
        rdx: r.u64()?,
        rsi: r.u64()?,
        rdi: r.u64()?,
        rsp: r.u64()?,
        rbp: r.u64()?,
        r8: r.u64()?,
        r9: r.u64()?,
        r10: r.u64()?,
        r11: r.u64()?,
        r12: r.u64()?,
        r13: r.u64()?,
        r14: r.u64()?,
        r15: r.u64()?,
        rip: r.u64()?,
        rflags: r.u64()?,
    })
}

fn put_segment(w: &mut Writer, s: &SegmentRegister) {
    w.u64(s.base);
    w.u32(s.limit);
    w.u16(s.selector);
    w.u8(s.type_);
    w.bool(s.present);
    w.u8(s.dpl);
    w.bool(s.db);
    w.bool(s.s);
    w.bool(s.l);
    w.bool(s.g);
    w.bool(s.avl);
}

fn get_segment(r: &mut Reader) -> Result<SegmentRegister, CodecError> {
    Ok(SegmentRegister {
        base: r.u64()?,
        limit: r.u32()?,
        selector: r.u16()?,
        type_: r.u8()?,
        present: r.bool()?,
        dpl: r.u8()?,
        db: r.bool()?,
        s: r.bool()?,
        l: r.bool()?,
        g: r.bool()?,
        avl: r.bool()?,
    })
}

fn put_dt(w: &mut Writer, d: &DescriptorTable) {
    w.u64(d.base);
    w.u16(d.limit);
}

fn get_dt(r: &mut Reader) -> Result<DescriptorTable, CodecError> {
    Ok(DescriptorTable {
        base: r.u64()?,
        limit: r.u16()?,
    })
}

fn put_sregs(w: &mut Writer, s: &SpecialRegisters) {
    for seg in [&s.cs, &s.ds, &s.es, &s.fs, &s.gs, &s.ss, &s.tr, &s.ldt] {
        put_segment(w, seg);
    }
    put_dt(w, &s.gdt);
    put_dt(w, &s.idt);
    for v in [s.cr0, s.cr2, s.cr3, s.cr4, s.cr8, s.efer, s.apic_base] {
        w.u64(v);
    }
}

fn get_sregs(r: &mut Reader) -> Result<SpecialRegisters, CodecError> {
    Ok(SpecialRegisters {
        cs: get_segment(r)?,
        ds: get_segment(r)?,
        es: get_segment(r)?,
        fs: get_segment(r)?,
        gs: get_segment(r)?,
        ss: get_segment(r)?,
        tr: get_segment(r)?,
        ldt: get_segment(r)?,
        gdt: get_dt(r)?,
        idt: get_dt(r)?,
        cr0: r.u64()?,
        cr2: r.u64()?,
        cr3: r.u64()?,
        cr4: r.u64()?,
        cr8: r.u64()?,
        efer: r.u64()?,
        apic_base: r.u64()?,
    })
}

fn put_fpu(w: &mut Writer, f: &FpuState) {
    w.u16(f.fcw);
    w.u16(f.fsw);
    w.u8(f.ftw);
    w.u16(f.last_opcode);
    w.u64(f.last_ip);
    w.u64(f.last_dp);
    w.u32(f.mxcsr);
    w.u32(f.mxcsr_mask);
    for st in &f.st {
        w.bytes(st);
    }
    for xmm in &f.xmm {
        w.bytes(xmm);
    }
}

fn get_fpu(r: &mut Reader) -> Result<FpuState, CodecError> {
    let mut f = FpuState {
        fcw: r.u16()?,
        fsw: r.u16()?,
        ftw: r.u8()?,
        last_opcode: r.u16()?,
        last_ip: r.u64()?,
        last_dp: r.u64()?,
        mxcsr: r.u32()?,
        mxcsr_mask: r.u32()?,
        ..FpuState::default()
    };
    for i in 0..8 {
        f.st[i] = r.take(16)?.try_into().expect("len 16");
    }
    for i in 0..16 {
        f.xmm[i] = r.take(16)?.try_into().expect("len 16");
    }
    Ok(f)
}

fn put_vcpu(w: &mut Writer, v: &VcpuState) {
    w.u32(v.id);
    put_regs(w, &v.regs);
    put_sregs(w, &v.sregs);
    put_fpu(w, &v.fpu);
    w.u32(v.msrs.len() as u32);
    for m in &v.msrs {
        w.u32(m.index);
        w.u64(m.data);
    }
    w.u64(v.xsave.xcr0);
    w.vec_u8(&v.xsave.area);
    w.u32(v.lapic.apic_id);
    w.u64(v.lapic.apic_base_msr);
    w.u8(v.lapic.tpr);
    w.u8(v.lapic.timer_divide);
    w.u32(v.lapic.timer_initial);
    w.u32(v.lapic.timer_current);
    w.bool(v.lapic.timer_pending);
    w.vec_u8(&v.lapic_regs);
    w.u64(v.mtrr.def_type);
    for f in &v.mtrr.fixed {
        w.u64(*f);
    }
    w.u32(v.mtrr.variable.len() as u32);
    for (b, m) in &v.mtrr.variable {
        w.u64(*b);
        w.u64(*m);
    }
}

fn get_vcpu(r: &mut Reader) -> Result<VcpuState, CodecError> {
    let id = r.u32()?;
    let regs = get_regs(r)?;
    let sregs = get_sregs(r)?;
    let fpu = get_fpu(r)?;
    let n_msrs = r.u32()? as usize;
    let mut msrs = Vec::with_capacity(n_msrs.min(4096));
    for _ in 0..n_msrs {
        msrs.push(MsrEntry {
            index: r.u32()?,
            data: r.u64()?,
        });
    }
    let xcr0 = r.u64()?;
    let area = r.vec_u8()?;
    let lapic = LapicState {
        apic_id: r.u32()?,
        apic_base_msr: r.u64()?,
        tpr: r.u8()?,
        timer_divide: r.u8()?,
        timer_initial: r.u32()?,
        timer_current: r.u32()?,
        timer_pending: r.bool()?,
    };
    let lapic_regs = r.vec_u8()?;
    let def_type = r.u64()?;
    let mut fixed = [0u64; 11];
    for f in &mut fixed {
        *f = r.u64()?;
    }
    let n_var = r.u32()? as usize;
    let mut variable = Vec::with_capacity(n_var.min(64));
    for _ in 0..n_var {
        variable.push((r.u64()?, r.u64()?));
    }
    Ok(VcpuState {
        id,
        regs,
        sregs,
        fpu,
        msrs,
        xsave: XsaveState { xcr0, area },
        lapic,
        lapic_regs,
        mtrr: MtrrState {
            def_type,
            fixed,
            variable,
        },
    })
}

fn put_redir(w: &mut Writer, e: &RedirectionEntry) {
    w.u8(e.vector);
    w.u8(e.delivery_mode);
    w.bool(e.dest_mode);
    w.bool(e.masked);
    w.bool(e.trigger_level);
    w.bool(e.remote_irr);
    w.u8(e.dest);
}

fn get_redir(r: &mut Reader) -> Result<RedirectionEntry, CodecError> {
    Ok(RedirectionEntry {
        vector: r.u8()?,
        delivery_mode: r.u8()?,
        dest_mode: r.bool()?,
        masked: r.bool()?,
        trigger_level: r.bool()?,
        remote_irr: r.bool()?,
        dest: r.u8()?,
    })
}

fn put_device(w: &mut Writer, d: &DeviceState) {
    match d {
        DeviceState::Network { mac, unplugged } => {
            w.u8(1);
            w.bytes(mac);
            w.bool(*unplugged);
        }
        DeviceState::Block {
            backend,
            sectors,
            pending_requests,
        } => {
            w.u8(2);
            w.str16(backend);
            w.u64(*sectors);
            w.u32(*pending_requests);
        }
        DeviceState::Console { tx_buffered } => {
            w.u8(3);
            w.u32(*tx_buffered);
        }
        DeviceState::PassThrough { bdf, guest_paused } => {
            w.u8(4);
            w.str16(bdf);
            w.bool(*guest_paused);
        }
    }
}

fn get_device(r: &mut Reader) -> Result<DeviceState, CodecError> {
    match r.u8()? {
        1 => Ok(DeviceState::Network {
            mac: r.take(6)?.try_into().expect("len 6"),
            unplugged: r.bool()?,
        }),
        2 => Ok(DeviceState::Block {
            backend: r.str16()?,
            sectors: r.u64()?,
            pending_requests: r.u32()?,
        }),
        3 => Ok(DeviceState::Console {
            tx_buffered: r.u32()?,
        }),
        4 => Ok(DeviceState::PassThrough {
            bdf: r.str16()?,
            guest_paused: r.bool()?,
        }),
        t => Err(CodecError::BadTag(t)),
    }
}

/// Encodes a VM's UISR description to the binary wire/RAM format.
pub fn encode(vm: &UisrVm) -> Vec<u8> {
    let mut w = Writer::new();
    w.bytes(MAGIC);
    w.u16(VERSION);
    w.str16(&vm.name);
    w.u32(vm.vcpus.len() as u32);
    for v in &vm.vcpus {
        put_vcpu(&mut w, v);
    }
    w.u8(vm.ioapic.id);
    w.u64(vm.ioapic.base);
    w.u32(vm.ioapic.redirection.len() as u32);
    for e in &vm.ioapic.redirection {
        put_redir(&mut w, e);
    }
    for c in &vm.pit.channels {
        put_pit_channel(&mut w, c);
    }
    w.u8(vm.pit.speaker);
    w.u32(vm.devices.len() as u32);
    for d in &vm.devices {
        put_device(&mut w, d);
    }
    w.u32(vm.memory.regions.len() as u32);
    for reg in &vm.memory.regions {
        w.u64(reg.gfn_start);
        w.u64(reg.pages);
    }
    match &vm.memory.pram_file {
        Some(f) => {
            w.u8(1);
            w.str16(f);
        }
        None => w.u8(0),
    }
    w.buf
}

fn put_pit_channel(w: &mut Writer, c: &PitChannel) {
    w.u32(c.count);
    w.u16(c.latched_count);
    w.u8(c.status);
    w.u8(c.read_state);
    w.u8(c.write_state);
    w.u8(c.mode);
    w.bool(c.bcd);
    w.bool(c.gate);
}

fn get_pit_channel(r: &mut Reader) -> Result<PitChannel, CodecError> {
    Ok(PitChannel {
        count: r.u32()?,
        latched_count: r.u16()?,
        status: r.u8()?,
        read_state: r.u8()?,
        write_state: r.u8()?,
        mode: r.u8()?,
        bcd: r.bool()?,
        gate: r.bool()?,
    })
}

/// Decodes a binary UISR blob.
pub fn decode(buf: &[u8]) -> Result<UisrVm, CodecError> {
    let mut r = Reader::new(buf);
    if r.take(4)? != MAGIC {
        return Err(CodecError::BadMagic);
    }
    let ver = r.u16()?;
    if ver != VERSION {
        return Err(CodecError::BadVersion(ver));
    }
    let name = r.str16()?;
    let n_vcpus = r.u32()? as usize;
    let mut vcpus = Vec::with_capacity(n_vcpus.min(512));
    for _ in 0..n_vcpus {
        vcpus.push(get_vcpu(&mut r)?);
    }
    let ioapic_id = r.u8()?;
    let ioapic_base = r.u64()?;
    let pins = r.u32()? as usize;
    let mut redirection = Vec::with_capacity(pins.min(256));
    for _ in 0..pins {
        redirection.push(get_redir(&mut r)?);
    }
    let mut channels = [PitChannel::default(); 3];
    for c in &mut channels {
        *c = get_pit_channel(&mut r)?;
    }
    let speaker = r.u8()?;
    let n_dev = r.u32()? as usize;
    let mut devices = Vec::with_capacity(n_dev.min(256));
    for _ in 0..n_dev {
        devices.push(get_device(&mut r)?);
    }
    let n_reg = r.u32()? as usize;
    let mut regions = Vec::with_capacity(n_reg.min(4096));
    for _ in 0..n_reg {
        regions.push(MemoryRegion {
            gfn_start: r.u64()?,
            pages: r.u64()?,
        });
    }
    let pram_file = if r.u8()? == 1 { Some(r.str16()?) } else { None };
    if r.remaining() != 0 {
        return Err(CodecError::TrailingBytes(r.remaining()));
    }
    Ok(UisrVm {
        name,
        vcpus,
        ioapic: IoApicState {
            id: ioapic_id,
            base: ioapic_base,
            redirection,
        },
        pit: PitState { channels, speaker },
        devices,
        memory: MemorySpec { regions, pram_file },
    })
}

/// Encodes a VM's UISR to pretty JSON (debugging / ablation bench).
pub fn to_json(vm: &UisrVm) -> String {
    serde_json::to_string(vm).expect("UISR state is always serializable")
}

/// Decodes a VM's UISR from JSON.
pub fn from_json(s: &str) -> Result<UisrVm, serde_json::Error> {
    serde_json::from_str(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::VcpuState;

    fn sample_vm(vcpus: u32) -> UisrVm {
        let mut vm = UisrVm::new("test-vm");
        for i in 0..vcpus {
            let mut v = VcpuState::reset(i);
            v.regs.rip = 0xffff_8000_0000_0000 + i as u64;
            v.regs.rax = 42 + i as u64;
            v.msrs = (0..40)
                .map(|k| MsrEntry {
                    index: 0xc000_0080 + k,
                    data: k as u64 * 7,
                })
                .collect();
            vm.vcpus.push(v);
        }
        vm.devices.push(DeviceState::Network {
            mac: [2, 0, 0, 0, 0, 1],
            unplugged: false,
        });
        vm.devices.push(DeviceState::Block {
            backend: "nbd://storage/vm0".into(),
            sectors: 2 << 20,
            pending_requests: 3,
        });
        vm.memory.regions.push(MemoryRegion {
            gfn_start: 0,
            pages: 262_144,
        });
        vm.memory.pram_file = Some("test-vm".into());
        vm
    }

    #[test]
    fn binary_roundtrip() {
        let vm = sample_vm(2);
        let buf = encode(&vm);
        let back = decode(&buf).unwrap();
        assert_eq!(back, vm);
    }

    #[test]
    fn truncation_detected() {
        let buf = encode(&sample_vm(1));
        for cut in [0, 3, 10, buf.len() / 2, buf.len() - 1] {
            assert!(
                decode(&buf[..cut]).is_err(),
                "decode of {cut}-byte prefix must fail"
            );
        }
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut buf = encode(&sample_vm(1));
        buf.push(0);
        assert_eq!(decode(&buf), Err(CodecError::TrailingBytes(1)));
    }

    #[test]
    fn bad_magic_detected() {
        let mut buf = encode(&sample_vm(1));
        buf[0] = b'X';
        assert_eq!(decode(&buf), Err(CodecError::BadMagic));
    }

    #[test]
    fn bad_version_detected() {
        let mut buf = encode(&sample_vm(1));
        buf[4] = 99;
        assert_eq!(decode(&buf), Err(CodecError::BadVersion(99)));
    }

    #[test]
    fn fig14_uisr_sizes() {
        // Fig. 14: UISR memory footprint grows from ≈5 KB at 1 vCPU to
        // ≈38 KB at 10 vCPUs. Allow ±25% — the shape is the claim.
        let s1 = encode(&sample_vm(1)).len() as f64;
        let s10 = encode(&sample_vm(10)).len() as f64;
        assert!((3_800.0..6_300.0).contains(&s1), "1 vCPU = {s1} B");
        assert!((28_000.0..48_000.0).contains(&s10), "10 vCPUs = {s10} B");
        // Growth is linear in vCPUs.
        let s5 = encode(&sample_vm(5)).len() as f64;
        let slope_low = (s5 - s1) / 4.0;
        let slope_high = (s10 - s5) / 5.0;
        assert!((slope_low - slope_high).abs() < 1.0);
    }

    #[test]
    fn json_roundtrip() {
        let vm = sample_vm(2);
        let back = from_json(&to_json(&vm)).unwrap();
        assert_eq!(back, vm);
    }

    #[test]
    fn binary_encoding_is_much_smaller_than_json() {
        let vm = sample_vm(4);
        let bin = encode(&vm).len();
        let json = to_json(&vm).len();
        assert!(json > 2 * bin, "bin={bin} json={json}");
    }

    #[test]
    fn proptest_roundtrip_register_values() {
        use proptest::prelude::*;
        proptest!(proptest::test_runner::Config::with_cases(32), |(
            rip: u64, rax: u64, cr3: u64, vec in proptest::collection::vec(any::<u8>(), 0..64)
        )| {
            let mut vm = sample_vm(1);
            vm.vcpus[0].regs.rip = rip;
            vm.vcpus[0].regs.rax = rax;
            vm.vcpus[0].sregs.cr3 = cr3;
            for (i, b) in vec.iter().enumerate() {
                vm.vcpus[0].lapic_regs[i] = *b;
            }
            let back = decode(&encode(&vm)).unwrap();
            prop_assert_eq!(back, vm);
        });
    }
}

#[cfg(test)]
mod fuzz {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// Decoding arbitrary bytes never panics — it returns an error or
        /// a structurally valid VM.
        #[test]
        fn decode_arbitrary_bytes_is_total(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
            let _ = decode(&bytes);
        }

        /// Mutating one byte of a valid blob never panics, and a mutation
        /// inside the header is always detected.
        #[test]
        fn decode_mutated_blob_is_total(pos_seed: u64, val: u8) {
            let mut vm = UisrVm::new("fuzz");
            vm.vcpus.push(crate::state::VcpuState::reset(0));
            let mut buf = encode(&vm);
            let pos = (pos_seed % buf.len() as u64) as usize;
            buf[pos] = val;
            if let Ok(decoded) = decode(&buf) {
                // Decoding normalizes (e.g. any non-zero bool byte becomes
                // 1), so require idempotence rather than byte-canonicality:
                // re-encoding and re-decoding is a fixed point.
                let renorm = decode(&encode(&decoded)).expect("re-decode");
                prop_assert_eq!(renorm, decoded);
            }
        }
    }
}
