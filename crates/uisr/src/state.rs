//! Typed UISR state structures.
//!
//! These are the hypervisor-independent descriptions of "the structures of a
//! VM which are necessary to restore it in any hypervisor" (§3.1). The
//! shapes mirror hardware-defined state (x86 registers, LAPIC/IOAPIC/PIT
//! programming models), since both Xen HVM and KVM virtualize the same
//! hardware; what differs per hypervisor is the *container format*, which
//! is exactly what the translation layers strip away.

/// Size of the LAPIC register page image carried in UISR (the
/// architecturally defined registers occupy the first KiB of the 4 KiB
/// APIC page).
pub const LAPIC_REGS_SIZE: usize = 1024;

/// Size of the XSAVE area carried in UISR: legacy FXSAVE region (512 B) +
/// XSAVE header (64 B) + AVX state (256 B) + reserved headroom.
pub const XSAVE_AREA_SIZE: usize = 1344;

/// Number of IOAPIC pins on Xen's virtual IOAPIC (§4.2.1).
pub const XEN_IOAPIC_PINS: usize = 48;

/// Number of IOAPIC pins on KVM's virtual IOAPIC (§4.2.1).
pub const KVM_IOAPIC_PINS: usize = 24;

/// General-purpose registers, instruction pointer and flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[allow(missing_docs)]
pub struct CpuRegisters {
    pub rax: u64,
    pub rbx: u64,
    pub rcx: u64,
    pub rdx: u64,
    pub rsi: u64,
    pub rdi: u64,
    pub rsp: u64,
    pub rbp: u64,
    pub r8: u64,
    pub r9: u64,
    pub r10: u64,
    pub r11: u64,
    pub r12: u64,
    pub r13: u64,
    pub r14: u64,
    pub r15: u64,
    pub rip: u64,
    pub rflags: u64,
}

/// A segment register (hidden part included).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[allow(missing_docs)]
pub struct SegmentRegister {
    pub base: u64,
    pub limit: u32,
    pub selector: u16,
    pub type_: u8,
    pub present: bool,
    pub dpl: u8,
    pub db: bool,
    pub s: bool,
    pub l: bool,
    pub g: bool,
    pub avl: bool,
}

/// A descriptor table register (GDTR/IDTR).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[allow(missing_docs)]
pub struct DescriptorTable {
    pub base: u64,
    pub limit: u16,
}

/// Control registers, segment state and system table registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[allow(missing_docs)]
pub struct SpecialRegisters {
    pub cs: SegmentRegister,
    pub ds: SegmentRegister,
    pub es: SegmentRegister,
    pub fs: SegmentRegister,
    pub gs: SegmentRegister,
    pub ss: SegmentRegister,
    pub tr: SegmentRegister,
    pub ldt: SegmentRegister,
    pub gdt: DescriptorTable,
    pub idt: DescriptorTable,
    pub cr0: u64,
    pub cr2: u64,
    pub cr3: u64,
    pub cr4: u64,
    pub cr8: u64,
    pub efer: u64,
    pub apic_base: u64,
}

/// Legacy x87/SSE state (the FXSAVE image, exploded).
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)]
pub struct FpuState {
    pub fcw: u16,
    pub fsw: u16,
    pub ftw: u8,
    pub last_opcode: u16,
    pub last_ip: u64,
    pub last_dp: u64,
    pub mxcsr: u32,
    pub mxcsr_mask: u32,
    /// Eight 80-bit x87 registers, stored in 16-byte slots.
    pub st: [[u8; 16]; 8],
    /// Sixteen 128-bit XMM registers.
    pub xmm: [[u8; 16]; 16],
}

impl Default for FpuState {
    fn default() -> Self {
        FpuState {
            fcw: 0x037f,
            fsw: 0,
            ftw: 0,
            last_opcode: 0,
            last_ip: 0,
            last_dp: 0,
            mxcsr: 0x1f80,
            mxcsr_mask: 0xffff,
            st: [[0; 16]; 8],
            xmm: [[0; 16]; 16],
        }
    }
}

/// One model-specific register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MsrEntry {
    /// MSR index (e.g. `0xC000_0080` for EFER).
    pub index: u32,
    /// MSR value.
    pub data: u64,
}

/// Extended processor state: XCR0 plus the raw XSAVE area image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XsaveState {
    /// XCR0 (enabled state components).
    pub xcr0: u64,
    /// Raw XSAVE area bytes.
    pub area: Vec<u8>,
}

impl Default for XsaveState {
    fn default() -> Self {
        XsaveState {
            xcr0: 0x7, // x87 | SSE | AVX
            area: vec![0; XSAVE_AREA_SIZE],
        }
    }
}

/// Local APIC architectural state (the non-register-page part: timer and
/// pending interrupt bookkeeping that hypervisors track out of band).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[allow(missing_docs)]
pub struct LapicState {
    pub apic_id: u32,
    pub apic_base_msr: u64,
    pub tpr: u8,
    /// Timer divide configuration.
    pub timer_divide: u8,
    /// Timer initial count.
    pub timer_initial: u32,
    /// Timer current count at save time.
    pub timer_current: u32,
    /// True if a timer interrupt is pending delivery.
    pub timer_pending: bool,
}

/// Memory type range registers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MtrrState {
    /// MTRR_DEF_TYPE.
    pub def_type: u64,
    /// The 11 fixed-range MTRRs.
    pub fixed: [u64; 11],
    /// Variable-range MTRR (base, mask) pairs.
    pub variable: Vec<(u64, u64)>,
}

impl Default for MtrrState {
    fn default() -> Self {
        MtrrState {
            def_type: 0x0c06, // MTRRs enabled, default WB.
            fixed: [0x0606_0606_0606_0606; 11],
            variable: vec![(0, 0); 8],
        }
    }
}

/// A single IOAPIC redirection table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[allow(missing_docs)]
pub struct RedirectionEntry {
    pub vector: u8,
    pub delivery_mode: u8,
    pub dest_mode: bool,
    pub masked: bool,
    pub trigger_level: bool,
    pub remote_irr: bool,
    pub dest: u8,
}

/// Virtual IOAPIC state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IoApicState {
    /// IOAPIC ID.
    pub id: u8,
    /// MMIO base address.
    pub base: u64,
    /// One redirection entry per pin; the pin count is
    /// hypervisor-dependent (48 on Xen, 24 on KVM — the §4.2.1
    /// compatibility fix disconnects the upper pins when moving to KVM).
    pub redirection: Vec<RedirectionEntry>,
}

impl Default for IoApicState {
    fn default() -> Self {
        IoApicState {
            id: 0,
            base: 0xfec0_0000,
            // Pins come out of reset masked (82093AA reset state).
            redirection: vec![
                RedirectionEntry {
                    masked: true,
                    ..RedirectionEntry::default()
                };
                XEN_IOAPIC_PINS
            ],
        }
    }
}

impl IoApicState {
    /// Number of pins.
    pub fn pins(&self) -> usize {
        self.redirection.len()
    }

    /// Truncates or extends the redirection table to `pins` entries — the
    /// §4.2.1 IOAPIC compatibility fix. New pins come up masked.
    pub fn resize_pins(&mut self, pins: usize) {
        self.redirection.resize(
            pins,
            RedirectionEntry {
                masked: true,
                ..RedirectionEntry::default()
            },
        );
    }
}

/// One PIT (8254) channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[allow(missing_docs)]
pub struct PitChannel {
    pub count: u32,
    pub latched_count: u16,
    pub status: u8,
    pub read_state: u8,
    pub write_state: u8,
    pub mode: u8,
    pub bcd: bool,
    pub gate: bool,
}

/// Virtual PIT state.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PitState {
    /// The three 8254 channels.
    pub channels: [PitChannel; 3],
    /// Speaker port (0x61) state.
    pub speaker: u8,
}

/// State of one emulated or pass-through I/O device (§4.2.3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeviceState {
    /// An emulated network device. Per §4.2.3 these are unplugged before
    /// transplant and rescanned afterwards, so only identity persists.
    Network {
        /// MAC address.
        mac: [u8; 6],
        /// True if the device was unplugged pre-transplant (it must be
        /// re-plugged during restoration).
        unplugged: bool,
    },
    /// An emulated block device backed by network storage.
    Block {
        /// Backend identifier (e.g. an iSCSI/NBD URI).
        backend: String,
        /// Number of 512-byte sectors.
        sectors: u64,
        /// In-flight request queue captured at pause time.
        pending_requests: u32,
    },
    /// A serial console.
    Console {
        /// Bytes buffered in the transmit FIFO at pause time.
        tx_buffered: u32,
    },
    /// A pass-through device: the hardware is unchanged across transplant;
    /// the guest driver was asked to pause it (driver state lives in guest
    /// memory).
    PassThrough {
        /// PCI BDF identifier.
        bdf: String,
        /// True if the guest acknowledged the pause request.
        guest_paused: bool,
    },
}

/// One guest-physical memory region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryRegion {
    /// First guest frame number of the region.
    pub gfn_start: u64,
    /// Length in 4 KiB pages.
    pub pages: u64,
}

/// The VM's guest memory description.
///
/// For InPlaceTP the actual frame map travels through PRAM and this spec
/// names the PRAM file; for MigrationTP the pages travel over the wire and
/// the regions describe the layout to recreate.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MemorySpec {
    /// Guest-physical regions.
    pub regions: Vec<MemoryRegion>,
    /// PRAM file carrying the frame map (InPlaceTP only).
    pub pram_file: Option<String>,
}

impl MemorySpec {
    /// Total guest pages.
    pub fn total_pages(&self) -> u64 {
        self.regions.iter().map(|r| r.pages).sum()
    }

    /// Total guest bytes.
    pub fn total_bytes(&self) -> u64 {
        self.total_pages() * 4096
    }
}

/// Per-vCPU UISR state (one entry per `to_uisr_vCPU` call).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct VcpuState {
    /// vCPU index.
    pub id: u32,
    /// General-purpose registers.
    pub regs: CpuRegisters,
    /// Special registers.
    pub sregs: SpecialRegisters,
    /// x87/SSE state.
    pub fpu: FpuState,
    /// Model-specific registers.
    pub msrs: Vec<MsrEntry>,
    /// Extended state.
    pub xsave: XsaveState,
    /// LAPIC bookkeeping state.
    pub lapic: LapicState,
    /// Raw LAPIC register page image.
    pub lapic_regs: Vec<u8>,
    /// Memory type range registers.
    pub mtrr: MtrrState,
}

impl VcpuState {
    /// Creates a vCPU state with architectural reset defaults.
    pub fn reset(id: u32) -> Self {
        VcpuState {
            id,
            lapic_regs: vec![0; LAPIC_REGS_SIZE],
            ..VcpuState::default()
        }
    }
}

/// The complete UISR description of one VM — the unit InPlaceTP stores in
/// RAM and MigrationTP ships over the network.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct UisrVm {
    /// VM name (stable across hypervisors).
    pub name: String,
    /// Per-vCPU state.
    pub vcpus: Vec<VcpuState>,
    /// Virtual IOAPIC.
    pub ioapic: IoApicState,
    /// Virtual PIT.
    pub pit: PitState,
    /// Emulated/pass-through device states.
    pub devices: Vec<DeviceState>,
    /// Guest memory description.
    pub memory: MemorySpec,
}

impl UisrVm {
    /// Creates an empty UISR description for a VM.
    pub fn new(name: impl Into<String>) -> Self {
        UisrVm {
            name: name.into(),
            ..UisrVm::default()
        }
    }

    /// Iterates over the IOAPIC redirection entries at or above `pin`
    /// (the pins a smaller target IOAPIC would drop).
    pub fn redirection_beyond(&self, pin: usize) -> impl Iterator<Item = &RedirectionEntry> {
        self.ioapic.redirection.iter().skip(pin)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vcpu_reset_defaults() {
        let v = VcpuState::reset(3);
        assert_eq!(v.id, 3);
        assert_eq!(v.lapic_regs.len(), LAPIC_REGS_SIZE);
        assert_eq!(v.fpu.fcw, 0x037f);
        assert_eq!(v.xsave.area.len(), XSAVE_AREA_SIZE);
    }

    #[test]
    fn ioapic_pin_resize_masks_new_pins() {
        let mut io = IoApicState::default();
        assert_eq!(io.pins(), XEN_IOAPIC_PINS);
        io.resize_pins(KVM_IOAPIC_PINS);
        assert_eq!(io.pins(), 24);
        io.resize_pins(XEN_IOAPIC_PINS);
        assert_eq!(io.pins(), 48);
        assert!(io.redirection[47].masked, "re-added pins come up masked");
    }

    #[test]
    fn memory_spec_totals() {
        let m = MemorySpec {
            regions: vec![
                MemoryRegion {
                    gfn_start: 0,
                    pages: 100,
                },
                MemoryRegion {
                    gfn_start: 0x1000,
                    pages: 28,
                },
            ],
            pram_file: None,
        };
        assert_eq!(m.total_pages(), 128);
        assert_eq!(m.total_bytes(), 128 * 4096);
    }

    #[test]
    fn json_debug_codec_roundtrip() {
        let mut vm = UisrVm::new("vm0");
        vm.vcpus.push(VcpuState::reset(0));
        vm.devices.push(DeviceState::Network {
            mac: [0xde, 0xad, 0xbe, 0xef, 0, 1],
            unplugged: false,
        });
        let json = crate::codec::to_json(&vm);
        let back: UisrVm = crate::codec::from_json(&json).unwrap();
        assert_eq!(back, vm);
    }
}
