//! Architectural accessors for the LAPIC register page image.
//!
//! Both Xen and KVM carry the local APIC's memory-mapped registers as a raw
//! page image (Xen's `LAPIC_REGS` save record, KVM's `KVM_GET/SET_LAPIC`).
//! The register *offsets* are architectural (Intel SDM Vol. 3, 10.4.1), so
//! the same accessors serve both hypervisors' translation paths and keep
//! the summary fields in [`crate::state::LapicState`] consistent with the
//! page image.

/// APIC ID register offset.
pub const OFF_ID: usize = 0x20;
/// Task priority register offset.
pub const OFF_TPR: usize = 0x80;
/// Spurious interrupt vector register offset.
pub const OFF_SVR: usize = 0xf0;
/// LVT timer register offset.
pub const OFF_LVT_TIMER: usize = 0x320;
/// Timer initial count register offset.
pub const OFF_TMICT: usize = 0x380;
/// Timer current count register offset.
pub const OFF_TMCCT: usize = 0x390;
/// Timer divide configuration register offset.
pub const OFF_TDCR: usize = 0x3e0;

/// Reads a 32-bit register from the page image.
///
/// # Panics
///
/// Panics if the page is shorter than `offset + 4`.
pub fn read32(page: &[u8], offset: usize) -> u32 {
    u32::from_le_bytes(
        page[offset..offset + 4]
            .try_into()
            .expect("4-byte LAPIC register"),
    )
}

/// Writes a 32-bit register into the page image.
///
/// # Panics
///
/// Panics if the page is shorter than `offset + 4`.
pub fn write32(page: &mut [u8], offset: usize, value: u32) {
    page[offset..offset + 4].copy_from_slice(&value.to_le_bytes());
}

/// Reads the APIC ID (stored in bits 24..32 of the ID register).
pub fn apic_id(page: &[u8]) -> u32 {
    read32(page, OFF_ID) >> 24
}

/// Sets the APIC ID.
pub fn set_apic_id(page: &mut [u8], id: u32) {
    write32(page, OFF_ID, id << 24);
}

/// Reads the task priority (bits 0..8 of the TPR register).
pub fn tpr(page: &[u8]) -> u8 {
    (read32(page, OFF_TPR) & 0xff) as u8
}

/// Sets the task priority.
pub fn set_tpr(page: &mut [u8], tpr: u8) {
    write32(page, OFF_TPR, tpr as u32);
}

/// Derives the [`crate::state::LapicState`] summary fields from a page
/// image plus the APIC base MSR.
pub fn summarize(page: &[u8], apic_base_msr: u64) -> crate::state::LapicState {
    crate::state::LapicState {
        apic_id: apic_id(page),
        apic_base_msr,
        tpr: tpr(page),
        timer_divide: (read32(page, OFF_TDCR) & 0xf) as u8,
        timer_initial: read32(page, OFF_TMICT),
        timer_current: read32(page, OFF_TMCCT),
        timer_pending: read32(page, OFF_LVT_TIMER) & (1 << 12) != 0,
    }
}

/// Writes the summary fields back into a page image (the inverse of
/// [`summarize`], up to the delivery-status bit which is read-only).
pub fn apply(page: &mut [u8], s: &crate::state::LapicState) {
    set_apic_id(page, s.apic_id);
    set_tpr(page, s.tpr);
    write32(page, OFF_TDCR, s.timer_divide as u32);
    write32(page, OFF_TMICT, s.timer_initial);
    write32(page, OFF_TMCCT, s.timer_current);
    let mut lvt = read32(page, OFF_LVT_TIMER);
    if s.timer_pending {
        lvt |= 1 << 12;
    } else {
        lvt &= !(1 << 12);
    }
    write32(page, OFF_LVT_TIMER, lvt);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::{LapicState, LAPIC_REGS_SIZE};

    #[test]
    fn id_and_tpr_accessors() {
        let mut page = vec![0u8; LAPIC_REGS_SIZE];
        set_apic_id(&mut page, 3);
        set_tpr(&mut page, 0x20);
        assert_eq!(apic_id(&page), 3);
        assert_eq!(tpr(&page), 0x20);
    }

    #[test]
    fn summarize_apply_roundtrip() {
        let s = LapicState {
            apic_id: 5,
            apic_base_msr: 0xfee0_0900,
            tpr: 0x30,
            timer_divide: 0b1011,
            timer_initial: 100_000,
            timer_current: 42_000,
            timer_pending: true,
        };
        let mut page = vec![0u8; LAPIC_REGS_SIZE];
        apply(&mut page, &s);
        let back = summarize(&page, s.apic_base_msr);
        assert_eq!(back, s);
    }

    #[test]
    fn pending_bit_clears() {
        let mut page = vec![0u8; LAPIC_REGS_SIZE];
        let mut s = LapicState {
            timer_pending: true,
            ..LapicState::default()
        };
        apply(&mut page, &s);
        assert!(summarize(&page, 0).timer_pending);
        s.timer_pending = false;
        apply(&mut page, &s);
        assert!(!summarize(&page, 0).timer_pending);
    }
}
