//! The Xen ↔ UISR ↔ KVM state-mapping registry (Table 2).
//!
//! Each row names the hypervisor-native containers a UISR section is
//! translated from and to. The `table2` experiment binary prints this
//! registry; the hypervisor crates use it to assert they cover every
//! section.

/// One row of Table 2: how a piece of Xen HVM state maps through UISR into
/// KVM's ioctl-level state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MappingRow {
    /// Xen HVM context record type(s) (as saved by
    /// `xc_domain_hvm_getcontext`).
    pub xen_state: &'static str,
    /// UISR section name.
    pub uisr: &'static str,
    /// KVM state container(s) (the ioctls kvmtool issues on restore).
    pub kvm_state: &'static str,
}

/// Returns the full Table 2 mapping.
pub fn state_mapping() -> &'static [MappingRow] {
    &[
        MappingRow {
            xen_state: "CPU regs",
            uisr: "CPU",
            kvm_state: "(S)REGS, MSRS, FPU",
        },
        MappingRow {
            xen_state: "LAPIC",
            uisr: "LAPIC",
            kvm_state: "MSRS",
        },
        MappingRow {
            xen_state: "LAPIC regs",
            uisr: "LAPIC_REGS",
            kvm_state: "LAPIC_REGS",
        },
        MappingRow {
            xen_state: "MTRR",
            uisr: "MTRR",
            kvm_state: "MSRS",
        },
        MappingRow {
            xen_state: "XSAVE",
            uisr: "XSAVE",
            kvm_state: "XCRS, XSAVE",
        },
        MappingRow {
            xen_state: "IOAPIC",
            uisr: "IOAPIC",
            kvm_state: "IRQCHIP",
        },
        MappingRow {
            xen_state: "PIT",
            uisr: "PIT",
            kvm_state: "PIT2",
        },
    ]
}

/// Returns the UISR section names, in table order.
pub fn uisr_sections() -> Vec<&'static str> {
    state_mapping().iter().map(|r| r.uisr).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_has_seven_rows() {
        assert_eq!(state_mapping().len(), 7);
    }

    #[test]
    fn table2_exact_contents() {
        let rows = state_mapping();
        assert_eq!(rows[0].xen_state, "CPU regs");
        assert_eq!(rows[0].kvm_state, "(S)REGS, MSRS, FPU");
        assert_eq!(rows[5].uisr, "IOAPIC");
        assert_eq!(rows[5].kvm_state, "IRQCHIP");
        assert_eq!(rows[6].kvm_state, "PIT2");
    }

    #[test]
    fn sections_are_unique() {
        let mut s = uisr_sections();
        s.sort_unstable();
        s.dedup();
        assert_eq!(s.len(), state_mapping().len());
    }
}
