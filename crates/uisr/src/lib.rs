//! UISR: the Unified Intermediate State Representation.
//!
//! UISR is HyperTP's hypervisor-neutral VM state format (§3.1). Like XDR for
//! network data, it decouples the *n* hypervisors in an operator's pool from
//! each other: a hypervisor developer implements `to_uisr_*` and
//! `from_uisr_*` translations against this one format instead of against
//! every other hypervisor's internal representation.
//!
//! The crate contains:
//!
//! * [`state`] — typed state structures for every virtualized resource the
//!   paper's Table 2 covers: CPU registers, special registers, FPU, MSRs,
//!   XSAVE, LAPIC (+ register page), MTRR, IOAPIC, PIT — plus emulated
//!   device state and the guest memory map.
//! * [`codec`] — a compact, versioned binary encoding (the format saved in
//!   RAM by InPlaceTP and sent over the wire by MigrationTP) and a JSON
//!   debug encoding. The binary sizes drive Fig. 14's "UISR formats" series
//!   (~5 KB for a 1-vCPU VM up to ~38 KB at 10 vCPUs).
//! * [`mapping`] — the Xen ↔ UISR ↔ KVM state-mapping registry
//!   reproducing Table 2.

pub mod codec;
pub mod lapic_page;
pub mod mapping;
pub mod msr;
pub mod state;

pub use codec::{decode, encode, CodecError};
pub use mapping::{state_mapping, MappingRow};
pub use state::{
    CpuRegisters, DescriptorTable, DeviceState, FpuState, IoApicState, LapicState, MemoryRegion,
    MemorySpec, MsrEntry, MtrrState, PitChannel, PitState, RedirectionEntry, SegmentRegister,
    SpecialRegisters, UisrVm, VcpuState, XsaveState,
};
