//! Datacenter-scale upgrade: plan and execute a rolling hypervisor
//! transplant of a 10-host × 10-VM cluster (the §5.4 experiment), scale
//! the same planner+executor to lazily-derived synthetic fleets through
//! the sharded campaign engine, then drive a single host through the
//! OpenStack-style "one-click" API.
//!
//! Run with: `cargo run --example datacenter_upgrade`

use hypertp::cluster::exec::{execute, execute_sharded, ExecConfig};
use hypertp::cluster::openstack::{pool, LibvirtDriver, NovaManager};
use hypertp::cluster::{plan_upgrade, Cluster};
use hypertp::prelude::*;

fn main() {
    // Part 1: the BtrPlace-style plan for varying InPlaceTP coverage.
    println!("rolling upgrade of 10 hosts x 10 VMs (offline groups of 2):");
    let baseline = {
        let c = Cluster::paper_testbed(0, 42);
        execute(
            &c,
            &plan_upgrade(&c, 2).expect("plan"),
            &ExecConfig::default(),
        )
    };
    for pct in [0u32, 20, 40, 60, 80] {
        let cluster = Cluster::paper_testbed(pct, 42);
        let plan = plan_upgrade(&cluster, 2).expect("plan");
        let report = execute(&cluster, &plan, &ExecConfig::default());
        println!(
            "  {pct:>2}% InPlaceTP-compatible: {:>3} migrations, {:>2} in-place upgrades, \
             {:>5.1} min total ({:+.1}% vs all-migration)",
            report.migrations,
            report.inplace_upgrades,
            report.total.as_secs_f64() / 60.0,
            -report.time_gain_pct(&baseline),
        );
    }

    // Part 2: the same planner and executor at datacenter scale. Hosts
    // are derived lazily from the seed, so no per-host state is built up
    // front, and the sharded executor keeps reports byte-identical to a
    // sequential walk at any shard count.
    println!("\nsharded campaign engine on synthetic fleets (seed 42, groups of 25):");
    for hosts in [1_000usize, 10_000] {
        let fleet = Cluster::synthetic(hosts, 42).with_compat_percent(80);
        let plan = plan_upgrade(&fleet, 25).expect("plan");
        let report = execute_sharded(&fleet, &plan, &ExecConfig::default(), 64);
        println!(
            "  {hosts:>6} hosts: {:>5} migrations + {:>4} in-place upgrades, \
             {:>6.1} h simulated, mean VM ready {:.0}s",
            report.migrations,
            report.inplace_upgrades,
            report.total.as_secs_f64() / 3600.0,
            report.mean_vm_ready.as_secs_f64(),
        );
    }

    // Part 3: the OpenStack integration — one host, one click.
    println!("\nNova-style host live upgrade:");
    let registry = pool();
    let clock = SimClock::new();
    let computes = (0..2)
        .map(|i| {
            let mut spec = MachineSpec::m1();
            spec.ram_gb = 8;
            LibvirtDriver::new(
                format!("compute-{i}"),
                spec,
                clock.clone(),
                &registry,
                HypervisorKind::Xen,
            )
            .expect("boot host")
        })
        .collect();
    let mut nova = NovaManager::new(registry, computes);
    nova.boot(&VmConfig::small("api-server")).expect("boot");
    nova.boot(&VmConfig::small("legacy-app").with_inplace_compatible(false))
        .expect("boot");
    let host = nova.host_of("api-server").expect("scheduled");
    let (report, evacuations) = nova
        .host_live_upgrade(host, HypervisorKind::Kvm)
        .expect("host live upgrade");
    println!(
        "  compute-{host}: {} evacuation(s), then in-place transplant of {} VM(s) \
         with {:.2}s downtime; now running {}",
        evacuations.len(),
        report.vm_count,
        report.downtime().as_secs_f64(),
        nova.compute(host).hypervisor_kind(),
    );
    for m in &evacuations {
        println!(
            "  evacuated '{}' in {:.1}s (downtime {:.1} ms)",
            m.vm_name,
            m.total.as_secs_f64(),
            m.downtime.as_millis_f64()
        );
    }
}
