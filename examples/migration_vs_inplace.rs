//! MigrationTP vs InPlaceTP for the same VM: the trade-off at the heart
//! of HyperTP (§3) — milliseconds of downtime but minutes of copying and
//! a spare machine, versus seconds of downtime with no extra resources.
//!
//! Run with: `cargo run --example migration_vs_inplace`

use hypertp::prelude::*;

fn main() {
    let registry = hypertp::default_registry();
    let vm = VmConfig::small("db-primary")
        .with_vcpus(2)
        .with_memory_gb(8);

    // --- MigrationTP: needs a second machine already running KVM. ---
    let clock = SimClock::new();
    let mut src_machine = Machine::with_clock(MachineSpec::m1(), clock.clone());
    let mut dst_machine = Machine::with_clock(MachineSpec::m1(), clock);
    let mut src = registry
        .create(HypervisorKind::Xen, &mut src_machine)
        .expect("boot Xen");
    let mut dst = registry
        .create(HypervisorKind::Kvm, &mut dst_machine)
        .expect("boot KVM");
    let id = src.create_vm(&mut src_machine, &vm).expect("create VM");
    // A database-like write rate keeps the pre-copy honest.
    let tp = MigrationTp::new().with_config(MigrationConfig {
        dirty_rate_pages_per_sec: 3_500.0,
        ..MigrationConfig::default()
    });
    let m = tp
        .migrate(
            &mut src_machine,
            src.as_mut(),
            id,
            &mut dst_machine,
            dst.as_mut(),
        )
        .expect("migrate");
    println!("MigrationTP (Xen→KVM over 1 Gbps):");
    println!(
        "  {} pre-copy rounds, {:.1} GiB sent, total {:.1}s",
        m.rounds.len(),
        m.bytes_sent as f64 / (1u64 << 30) as f64,
        m.total.as_secs_f64()
    );
    println!(
        "  downtime {:.1} ms (+ {} B of UISR through the proxies)",
        m.downtime.as_millis_f64(),
        m.uisr_bytes
    );

    // --- InPlaceTP: same machine, micro-reboot. ---
    let mut machine = Machine::new(MachineSpec::m1());
    let mut xen = registry
        .create(HypervisorKind::Xen, &mut machine)
        .expect("boot Xen");
    xen.create_vm(&mut machine, &vm).expect("create VM");
    let engine = InPlaceTransplant::new(&registry);
    let (_kvm, r) = engine
        .run(&mut machine, xen, HypervisorKind::Kvm)
        .expect("transplant");
    println!("\nInPlaceTP (Xen→KVM, same machine):");
    println!(
        "  total {:.2}s, downtime {:.2}s, zero guest bytes copied \
         ({} KiB of PRAM metadata, {} KiB of UISR)",
        r.total().as_secs_f64(),
        r.downtime().as_secs_f64(),
        r.pram_stats.metadata_bytes() / 1024,
        r.uisr_bytes / 1024
    );

    println!(
        "\ntrade-off: MigrationTP {:.0}x less downtime; InPlaceTP {:.0}x faster overall \
         and no spare machine",
        r.downtime().as_secs_f64() / m.downtime.as_secs_f64(),
        m.total.as_secs_f64() / r.total().as_secs_f64()
    );
}
