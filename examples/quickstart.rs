//! Quickstart: transplant a Xen host onto KVM in place.
//!
//! Run with: `cargo run --example quickstart`

use hypertp::prelude::*;

fn main() {
    // A server (the paper's M1: 4C/8T @2.5 GHz, 16 GB RAM) running Xen
    // with one small VM.
    let mut machine = Machine::new(MachineSpec::m1());
    let mut xen: Box<dyn Hypervisor> = Box::new(XenHypervisor::new(&mut machine));
    let vm = xen
        .create_vm(&mut machine, &VmConfig::small("web-1"))
        .expect("create VM");
    xen.write_guest(&mut machine, vm, Gfn(100), 0xC0FFEE)
        .expect("guest write");
    println!(
        "running {} {} with VM 'web-1' ({} vCPU, {} GiB)",
        xen.kind(),
        xen.version(),
        1,
        1
    );

    // A critical Xen CVE drops. Transplant the host onto KVM without
    // rebooting the VM.
    let registry = hypertp::default_registry();
    let engine = InPlaceTransplant::new(&registry);
    let (kvm, report) = engine
        .run(&mut machine, xen, HypervisorKind::Kvm)
        .expect("transplant");

    println!("transplanted onto {} {}", kvm.kind(), kvm.version());
    println!(
        "  phases: PRAM {:.2}s (pre-pause) | translation {:.2}s | reboot {:.2}s | restoration {:.2}s",
        report.pram.as_secs_f64(),
        report.translation.as_secs_f64(),
        report.reboot.as_secs_f64(),
        report.restoration.as_secs_f64(),
    );
    println!(
        "  VM downtime: {:.2}s ({:.2}s for networked apps)",
        report.downtime().as_secs_f64(),
        report.downtime_with_network().as_secs_f64()
    );
    for w in &report.warnings {
        println!("  compatibility: {w}");
    }

    // Guest memory survived byte-for-byte.
    let vm = kvm.find_vm("web-1").expect("VM adopted");
    let value = kvm.read_guest(&machine, vm, Gfn(100)).expect("guest read");
    assert_eq!(value, 0xC0FFEE);
    println!("guest memory intact (gfn 100 = {value:#x}); VM is running again");
}
